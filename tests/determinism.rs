//! Determinism: every stage of the pipeline is a pure function of its
//! seeds, so experiments are exactly reproducible.

use ripple::{collect_profile, Ripple, RippleConfig};
use ripple_program::{Layout, LayoutConfig};
use ripple_sim::{simulate, PrefetcherKind, SimConfig};
use ripple_workloads::{generate, App, AppSpec, InputConfig};

#[test]
fn generation_execution_and_simulation_are_deterministic() {
    let run = || {
        let app = generate(&AppSpec::tiny(77));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let profile =
            collect_profile(&app, &layout, InputConfig::training(77), 50_000).unwrap();
        let cfg = SimConfig::default().with_prefetcher(PrefetcherKind::Fdip);
        let stats = simulate(&app.program, &layout, &profile.trace, &cfg).stats;
        (profile.trace.len(), stats)
    };
    let (len_a, stats_a) = run();
    let (len_b, stats_b) = run();
    assert_eq!(len_a, len_b);
    assert_eq!(stats_a, stats_b);
}

#[test]
fn full_ripple_pipeline_is_deterministic() {
    let run = || {
        let app = generate(&App::Tomcat.spec());
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let profile = collect_profile(
            &app,
            &layout,
            InputConfig::training(App::Tomcat.spec().seed),
            200_000,
        )
        .unwrap();
        let ripple = Ripple::train(&app.program, &layout, &profile.trace, RippleConfig::default());
        let o = ripple.evaluate(&profile.trace);
        (
            o.injected_static,
            o.ripple.demand_misses,
            o.coverage.covered_windows,
            o.ripple_accuracy,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_inputs_produce_different_traces_same_input_identical() {
    let app = generate(&App::Kafka.spec());
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let a = collect_profile(&app, &layout, InputConfig::numbered(1, 9), 60_000).unwrap();
    let b = collect_profile(&app, &layout, InputConfig::numbered(1, 9), 60_000).unwrap();
    let c = collect_profile(&app, &layout, InputConfig::numbered(2, 9), 60_000).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_ne!(a.trace, c.trace);
}
