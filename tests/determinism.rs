//! Determinism: every stage of the pipeline is a pure function of its
//! seeds, so experiments are exactly reproducible — including under the
//! parallel evaluation harness, whose results are byte-identical to a
//! sequential run at any thread count.

use std::sync::Arc;

use ripple::{collect_profile, policy_matrix, Ripple, RippleConfig};
use ripple_obs::{JsonlRecorder, MetricsRecorder, NullRecorder, Recorder};
use ripple_program::{Layout, LayoutConfig};
use ripple_sim::{
    ideal_policy_for, simulate, PolicyKind, PrefetcherKind, SimConfig, SimSession, VecSink,
};
use ripple_workloads::{generate, App, AppSpec, InputConfig};

#[test]
fn generation_execution_and_simulation_are_deterministic() {
    let run = || {
        let app = generate(&AppSpec::tiny(77));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let profile = collect_profile(&app, &layout, InputConfig::training(77), 50_000).unwrap();
        let cfg = SimConfig::default().with_prefetcher(PrefetcherKind::Fdip);
        let stats = simulate(&app.program, &layout, &profile.trace, &cfg);
        (profile.trace.len(), stats)
    };
    let (len_a, stats_a) = run();
    let (len_b, stats_b) = run();
    assert_eq!(len_a, len_b);
    assert_eq!(stats_a, stats_b);
}

#[test]
fn full_ripple_pipeline_is_deterministic() {
    let run = || {
        let app = generate(&App::Tomcat.spec());
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let profile = collect_profile(
            &app,
            &layout,
            InputConfig::training(App::Tomcat.spec().seed),
            200_000,
        )
        .unwrap();
        let ripple = Ripple::train(
            &app.program,
            &layout,
            &profile.trace,
            RippleConfig::default(),
        )
        .unwrap();
        let o = ripple.evaluate(&profile.trace).unwrap();
        (
            o.injected_static,
            o.ripple.demand_misses,
            o.coverage.covered_windows,
            o.ripple_accuracy,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_inputs_produce_different_traces_same_input_identical() {
    let app = generate(&App::Kafka.spec());
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let a = collect_profile(&app, &layout, InputConfig::numbered(1, 9), 60_000).unwrap();
    let b = collect_profile(&app, &layout, InputConfig::numbered(1, 9), 60_000).unwrap();
    let c = collect_profile(&app, &layout, InputConfig::numbered(2, 9), 60_000).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_ne!(a.trace, c.trace);
}

/// The harness's SimStats are byte-identical whether the policy matrix runs
/// on one worker (the sequential reference) or many, across applications
/// and prefetchers.
#[test]
fn policy_matrix_is_thread_count_invariant() {
    for app_id in [App::Tomcat, App::Kafka] {
        let spec = app_id.spec();
        let app = generate(&spec);
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let profile = collect_profile(&app, &layout, InputConfig::training(spec.seed), 80_000)
            .expect("profile collection");
        for pf in [PrefetcherKind::None, PrefetcherKind::Fdip] {
            let cfg = SimConfig::default().with_prefetcher(pf);
            let session = SimSession::new(&app.program, &layout, &profile.trace, cfg);
            let policies = [
                PolicyKind::LRU,
                PolicyKind::RANDOM,
                PolicyKind::SRRIP,
                ideal_policy_for(pf),
            ];
            let sequential = policy_matrix(&session, &policies, 1).unwrap();
            let parallel = policy_matrix(&session, &policies, 8).unwrap();
            assert_eq!(sequential, parallel, "{app_id}/{}", pf.name());
        }
    }
}

/// The full `RippleOutcome` — every stat, accuracy score and overhead — is
/// identical at any worker count, across ≥2 apps × 2 prefetchers.
#[test]
fn ripple_outcome_is_thread_count_invariant() {
    for app_id in [App::Tomcat, App::Kafka] {
        let spec = app_id.spec();
        let app = generate(&spec);
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let profile = collect_profile(&app, &layout, InputConfig::training(spec.seed), 80_000)
            .expect("profile collection");
        for pf in [PrefetcherKind::None, PrefetcherKind::Fdip] {
            let outcome = |threads: usize| {
                let mut config = RippleConfig::default();
                config.sim.prefetcher = pf;
                config.threads = Some(threads);
                let ripple = Ripple::train(&app.program, &layout, &profile.trace, config).unwrap();
                ripple.evaluate(&profile.trace).unwrap()
            };
            assert_eq!(outcome(1), outcome(8), "{app_id}/{}", pf.name());
        }
    }
}

/// Observability recorders observe, never feed back: attaching a
/// `MetricsRecorder` or a `JsonlRecorder` must leave `SimStats`, the full
/// eviction stream, and the entire `RippleOutcome` byte-identical to the
/// `NullRecorder` default, across ≥2 apps × 2 prefetchers.
#[test]
fn recorders_never_perturb_results() {
    for app_id in [App::Tomcat, App::Kafka] {
        let spec = app_id.spec();
        let app = generate(&spec);
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let profile = collect_profile(&app, &layout, InputConfig::training(spec.seed), 80_000)
            .expect("profile collection");
        for pf in [PrefetcherKind::None, PrefetcherKind::Fdip] {
            let run = |recorder: Arc<dyn Recorder>| {
                let cfg = SimConfig::default().with_prefetcher(pf);
                let session = SimSession::new(&app.program, &layout, &profile.trace, cfg)
                    .with_recorder(recorder);
                let mut sink = VecSink::new();
                let stats = session.run_with_sink(ideal_policy_for(pf), &mut sink);
                (stats, sink.into_events())
            };
            let baseline = run(Arc::new(NullRecorder));
            let metrics = Arc::new(MetricsRecorder::new());
            assert_eq!(
                baseline,
                run(metrics.clone()),
                "MetricsRecorder perturbed {app_id}/{}",
                pf.name()
            );
            assert!(
                metrics.snapshot().phase("session.run").is_some(),
                "recorder saw nothing"
            );
            let jsonl = Arc::new(JsonlRecorder::new(Vec::new()));
            assert_eq!(
                baseline,
                run(jsonl.clone()),
                "JsonlRecorder perturbed {app_id}/{}",
                pf.name()
            );

            let outcome = |recorder: Arc<dyn Recorder>| {
                let mut config = RippleConfig::default();
                config.sim.prefetcher = pf;
                let ripple = Ripple::train_with_recorder(
                    &app.program,
                    &layout,
                    &profile.trace,
                    config,
                    recorder,
                )
                .unwrap();
                ripple.evaluate(&profile.trace).unwrap()
            };
            assert_eq!(
                outcome(Arc::new(NullRecorder)),
                outcome(Arc::new(MetricsRecorder::new())),
                "recorded pipeline diverged on {app_id}/{}",
                pf.name()
            );
        }
    }
}
