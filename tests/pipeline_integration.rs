//! End-to-end integration: the full Ripple pipeline on a calibrated data
//! center application must reproduce the paper's headline ordering —
//! ideal cache ≥ ideal replacement ≥ Ripple-LRU ≥ LRU — and reduce
//! misses on the rewritten binary.

use ripple::{collect_profile, Ripple, RippleConfig};
use ripple_program::{Layout, LayoutConfig};
use ripple_sim::PrefetcherKind;
use ripple_workloads::{generate, App, InputConfig};

const BUDGET: u64 = 700_000;

fn run_app(app_id: App, prefetcher: PrefetcherKind) -> ripple::RippleOutcome {
    let spec = app_id.spec();
    let app = generate(&spec);
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let profile = collect_profile(&app, &layout, InputConfig::training(spec.seed), BUDGET)
        .expect("profile collection");
    let mut config = RippleConfig::default();
    config.sim.prefetcher = prefetcher;
    config.threshold = 0.55;
    let ripple = Ripple::train(&app.program, &layout, &profile.trace, config).expect("train");
    ripple.evaluate(&profile.trace).expect("evaluate")
}

#[test]
fn cassandra_no_prefetch_headline_ordering() {
    let o = run_app(App::Cassandra, PrefetcherKind::None);
    // Ideal cache dominates everything.
    assert!(o.ideal_cache_speedup_pct() > o.ideal_speedup_pct());
    assert!(o.ideal_speedup_pct() > 0.0, "ideal must beat LRU");
    // Ripple lands between LRU and the ideal replacement policy.
    assert!(
        o.speedup_pct() <= o.ideal_speedup_pct(),
        "ripple {:.2}% cannot beat ideal {:.2}%",
        o.speedup_pct(),
        o.ideal_speedup_pct()
    );
    assert!(
        o.ripple.demand_misses < o.lru_reference.demand_misses,
        "ripple must reduce misses: {} !< {}",
        o.ripple.demand_misses,
        o.lru_reference.demand_misses
    );
    // Metrics live in sane ranges.
    assert!(o.coverage.coverage() > 0.05);
    assert!(o.ripple_accuracy.accuracy() > 0.5);
    assert!(o.static_overhead_pct < 4.4, "{}", o.static_overhead_pct);
    assert!(o.dynamic_overhead_pct < 12.0, "{}", o.dynamic_overhead_pct);
}

#[test]
fn ripple_beats_accuracy_of_underlying_lru() {
    let o = run_app(App::Kafka, PrefetcherKind::None);
    assert!(
        o.ripple_accuracy.accuracy() > o.underlying_accuracy.accuracy(),
        "ripple {:.2} must evict more accurately than LRU {:.2}",
        o.ripple_accuracy.accuracy(),
        o.underlying_accuracy.accuracy()
    );
}

#[test]
fn fdip_pipeline_stays_sane() {
    let o = run_app(App::Tomcat, PrefetcherKind::Fdip);
    assert!(o.ideal.demand_misses <= o.lru_reference.demand_misses);
    assert!(o.ripple.invalidate_instructions > 0);
    // Under a strong prefetcher Ripple's headroom shrinks; it must at
    // least stay close to the baseline rather than regress badly.
    assert!(
        o.speedup_pct() > -1.5,
        "ripple regressed too much: {:.2}%",
        o.speedup_pct()
    );
}

#[test]
fn jit_apps_have_lower_coverage() {
    let jit = run_app(App::Wordpress, PrefetcherKind::None);
    let non_jit = run_app(App::Verilator, PrefetcherKind::None);
    assert!(
        jit.coverage.skipped_unrewritable > 0,
        "wordpress must skip jit cues"
    );
    assert!(
        non_jit.coverage.coverage() > jit.coverage.coverage(),
        "verilator coverage {:.2} must exceed wordpress {:.2}",
        non_jit.coverage.coverage(),
        jit.coverage.coverage()
    );
}
