//! Fault-tolerance integration tests: corrupted packet streams must
//! surface typed errors or degrade gracefully — never panic — and the
//! degraded pipeline must stay deterministic at any thread count.
//!
//! The `ripple-check` `faults` dimension fuzzes the same surfaces with
//! shrinking repros; these tests pin the workflow end to end from the
//! public `ripple` API.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::{Rng, SeedableRng, StdRng};
use ripple::ripple_trace::{
    reconstruct_trace, reconstruct_trace_lossy, record_trace_with_sync, DecodeOptions,
};
use ripple::{policy_matrix, Ripple, RippleConfig};
use ripple_program::{Layout, LayoutConfig};
use ripple_sim::{PolicyKind, SimConfig, SimSession};
use ripple_workloads::{execute, generate, App, AppSpec, InputConfig};

/// Applies `rounds` random byte-level faults (bit flips, truncation,
/// duplication, deletion, insertion) to a copy of `bytes`.
fn corrupt(bytes: &[u8], seed: u64, rounds: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = bytes.to_vec();
    for _ in 0..rounds {
        if out.is_empty() {
            out.push(rng.next_u64() as u8);
            continue;
        }
        let i = rng.gen_range(0..out.len());
        match rng.gen_range(0u32..10) {
            0..=5 => out[i] ^= 1 << rng.gen_range(0u8..8),
            6 => out.truncate(i),
            7 => {
                let end = (i + rng.gen_range(1..=8usize)).min(out.len());
                let span = out[i..end].to_vec();
                out.splice(i..i, span);
            }
            8 => {
                let end = (i + rng.gen_range(1..=8usize)).min(out.len());
                out.drain(i..end);
            }
            _ => out.insert(i, rng.next_u64() as u8),
        }
    }
    out
}

/// 500 fixed-seed mutated streams through both decoders: every outcome is
/// a typed result, never a panic, and lossy decoding with an open bound
/// always produces a trace plus consistent loss accounting.
#[test]
fn five_hundred_mutated_traces_never_panic() {
    let app = generate(&AppSpec::tiny(23));
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let trace = execute(&app.program, &app.model, InputConfig::training(23), 12_000);
    let bytes = record_trace_with_sync(&app.program, &layout, trace.iter(), 32);
    let open = DecodeOptions {
        max_drop_ratio: 1.0,
    };

    for seed in 0..500u64 {
        let mangled = corrupt(&bytes, 0xdead_beef ^ seed, 1 + (seed % 5) as usize);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let strict = reconstruct_trace(&app.program, &layout, &mangled);
            let lossy = reconstruct_trace_lossy(&app.program, &layout, &mangled, &open);
            (strict.is_ok(), lossy)
        }));
        let (strict_ok, lossy) = match outcome {
            Ok(pair) => pair,
            Err(_) => panic!("decoder panicked on mutated stream (seed {seed})"),
        };
        let lossy = lossy
            .unwrap_or_else(|e| panic!("lossy decode with open bound failed (seed {seed}): {e}"));
        let h = lossy.health;
        assert_eq!(h.total_bytes, mangled.len() as u64, "seed {seed}");
        assert!(h.dropped_bytes <= h.total_bytes, "seed {seed}");
        assert!((0.0..=1.0).contains(&h.drop_ratio()), "seed {seed}");
        if strict_ok {
            // A stream the strict decoder accepts is pristine to the
            // lossy one as well.
            assert!(h.is_lossless(), "seed {seed}: {h:?}");
        }
    }
}

/// A lossily recovered trace produces byte-identical simulator output on
/// one worker and on four, with the trace health stamped onto every
/// policy's stats.
#[test]
fn lossy_recovery_is_thread_count_invariant() {
    let spec = App::Tomcat.spec();
    let app = generate(&spec);
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let trace = execute(
        &app.program,
        &app.model,
        InputConfig::training(spec.seed),
        30_000,
    );
    let mut bytes = record_trace_with_sync(&app.program, &layout, trace.iter(), 64);
    let start = bytes.len() / 2;
    let end = (start + 24).min(bytes.len());
    for b in &mut bytes[start..end] {
        *b = !*b;
    }

    let lossy = reconstruct_trace_lossy(
        &app.program,
        &layout,
        &bytes,
        &DecodeOptions {
            max_drop_ratio: 1.0,
        },
    )
    .expect("open bound accepts any loss");
    assert!(
        lossy.health.dropped_packets > 0,
        "the corrupt span must actually cost packets: {:?}",
        lossy.health
    );

    let policies = [PolicyKind::LRU, PolicyKind::RANDOM, PolicyKind::SRRIP];
    let run = |threads: usize| {
        let session = SimSession::new(&app.program, &layout, &lossy.trace, SimConfig::default())
            .with_trace_health(lossy.health);
        policy_matrix(&session, &policies, threads).expect("no job panics")
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(sequential, parallel);
    for stats in &sequential {
        assert_eq!(stats.dropped_packets, lossy.health.dropped_packets);
        assert_eq!(stats.resync_events, lossy.health.resync_events);
    }

    // The full pipeline accepts the degraded trace too, identically at
    // either worker count.
    let outcome = |threads: usize| {
        let config = RippleConfig::builder()
            .threads(Some(threads))
            .build()
            .expect("valid config");
        let ripple =
            Ripple::train(&app.program, &layout, &lossy.trace, config).expect("train degraded");
        ripple.evaluate(&lossy.trace).expect("evaluate degraded")
    };
    let seq = outcome(1);
    let par = outcome(4);
    assert_eq!(seq.ripple, par.ripple);
    assert_eq!(seq.baseline, par.baseline);
    assert_eq!(seq.injected_static, par.injected_static);
}

/// The drop-ratio bound is enforced: the same corrupt stream decodes
/// under an open bound and fails under a bound tighter than its actual
/// loss, with the typed `DropRatioExceeded` error.
#[test]
fn drop_ratio_bound_is_enforced() {
    use ripple::ripple_trace::ReconstructError;

    let app = generate(&AppSpec::tiny(31));
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let trace = execute(&app.program, &app.model, InputConfig::training(31), 8_000);
    let mut bytes = record_trace_with_sync(&app.program, &layout, trace.iter(), 16);
    let start = bytes.len() / 2;
    let end = (start + 16).min(bytes.len());
    for b in &mut bytes[start..end] {
        *b = !*b;
    }

    let open = reconstruct_trace_lossy(
        &app.program,
        &layout,
        &bytes,
        &DecodeOptions {
            max_drop_ratio: 1.0,
        },
    )
    .expect("open bound accepts any loss");
    let ratio = open.health.drop_ratio();
    assert!(ratio > 0.0, "corruption must drop bytes: {:?}", open.health);

    let err = reconstruct_trace_lossy(
        &app.program,
        &layout,
        &bytes,
        &DecodeOptions {
            max_drop_ratio: ratio / 2.0,
        },
    )
    .expect_err("tight bound must reject");
    assert!(
        matches!(err, ReconstructError::DropRatioExceeded { .. }),
        "{err}"
    );
}
