//! Full-pipeline equivalence between the interned fast path and the
//! retained reference frontend: training and evaluating Ripple must
//! produce an identical [`RippleOutcome`] under either [`LinePath`], at
//! any harness thread count.

use ripple::{Ripple, RippleConfig, RippleOutcome};
use ripple_program::{Layout, LayoutConfig};
use ripple_sim::LinePath;
use ripple_workloads::{execute, generate, AppSpec, InputConfig};

fn outcome(line_path: LinePath, threads: Option<usize>) -> RippleOutcome {
    let app = generate(&AppSpec::tiny(21));
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let trace = execute(&app.program, &app.model, InputConfig::training(21), 60_000);
    let mut cfg = RippleConfig::default();
    // Shrink the L1I so the tiny app thrashes it, and drop the recurrence
    // filter (tiny traces rarely repeat pairs).
    cfg.sim.l1i = ripple_sim::CacheGeometry::new(2 * 1024, 4);
    cfg.sim.line_path = line_path;
    cfg.analysis.min_windows_per_injection = 1;
    cfg.threshold = 0.1;
    cfg.threads = threads;
    let ripple = Ripple::train(&app.program, &layout, &trace, cfg).expect("train");
    ripple.evaluate(&trace).expect("evaluate")
}

#[test]
fn pipeline_outcome_is_line_path_independent() {
    let fast = outcome(LinePath::Interned, Some(1));
    let reference = outcome(LinePath::Reference, Some(1));
    assert_eq!(fast, reference);
    assert!(fast.ripple.invalidate_instructions > 0, "non-trivial run");
}

#[test]
fn pipeline_equivalence_holds_under_parallel_evaluation() {
    let serial = outcome(LinePath::Interned, Some(1));
    let parallel_fast = outcome(LinePath::Interned, Some(4));
    let parallel_reference = outcome(LinePath::Reference, Some(4));
    assert_eq!(serial, parallel_fast);
    assert_eq!(parallel_fast, parallel_reference);
}
