//! Cross-crate integration: program → trace → workloads → sim glue.

use ripple_program::{
    rewrite, CodeKind, Injection, InjectionPlan, InstKind, Layout, LayoutConfig, LineMapper,
    Program, ProgramBuilder,
};
use ripple_sim::{simulate, PolicyKind, PrefetcherKind, SimConfig};
use ripple_trace::{reconstruct_trace, record_trace};
use ripple_workloads::{execute, generate, App, AppSpec, InputConfig};

#[test]
fn every_app_profile_roundtrips_through_the_tracer() {
    for app_id in [App::Cassandra, App::Drupal, App::Verilator] {
        let app = generate(&app_id.spec());
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(&app.program, &app.model, InputConfig::training(1), 120_000);
        let bytes = record_trace(&app.program, &layout, trace.iter());
        let decoded = reconstruct_trace(&app.program, &layout, &bytes).expect("valid");
        assert_eq!(decoded, trace, "{app_id}");
    }
}

#[test]
fn rewritten_binaries_execute_identically_modulo_invalidates() {
    // Injecting invalidations must not change which blocks execute; only
    // extra invalidate instructions and shifted addresses differ.
    let app = generate(&AppSpec::tiny(3));
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let trace = execute(&app.program, &app.model, InputConfig::training(3), 30_000);

    // Inject into the three most-executed blocks.
    let mut counts = std::collections::HashMap::new();
    for b in trace.iter() {
        *counts.entry(b).or_insert(0u32) += 1;
    }
    let mut hot: Vec<_> = counts.into_iter().collect();
    hot.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let victim = ripple_program::CodeLoc::new(hot[5].0, 0);
    let mut plan = InjectionPlan::new();
    for &(cue, _) in hot.iter().take(3) {
        plan.push(Injection { cue, victim });
    }
    let rw = rewrite(&app.program, &layout, &plan);
    rw.program.validate().expect("valid after rewrite");

    // Same trace replays on both binaries; instruction counts differ by
    // exactly the executed invalidates.
    let base = simulate(&app.program, &layout, &trace, &SimConfig::default());
    let ripple = simulate(&rw.program, &rw.layout, &trace, &SimConfig::default());
    assert_eq!(base.instructions, ripple.instructions);
    assert!(ripple.invalidate_instructions > 0);
    assert_eq!(base.blocks, ripple.blocks);
}

#[test]
fn line_mapper_tracks_every_code_line() {
    let app = generate(&AppSpec::tiny(5));
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let plan = InjectionPlan::new();
    let rw = rewrite(&app.program, &layout, &plan);
    let mapper = LineMapper::new(&app.program, &layout, &rw.layout);
    // Identity rewrite: every code line maps to itself.
    for block in app.program.blocks() {
        for line in layout.lines_of_block(block.id()) {
            assert_eq!(mapper.map(line), line);
        }
    }
}

#[test]
fn offline_ideals_lower_bound_online_policies_on_real_apps() {
    let app = generate(&App::FinagleChirper.spec());
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let trace = execute(&app.program, &app.model, InputConfig::training(2), 250_000);
    for pf in [
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::Fdip,
    ] {
        let cfg = SimConfig::default().with_prefetcher(pf);
        let lru = simulate(&app.program, &layout, &trace, &cfg);
        let ideal_kind = if pf == PrefetcherKind::None {
            PolicyKind::OPT
        } else {
            PolicyKind::DEMAND_MIN
        };
        let ideal = simulate(
            &app.program,
            &layout,
            &trace,
            &cfg.clone().with_policy(ideal_kind),
        );
        assert!(
            ideal.demand_misses <= lru.demand_misses,
            "{}: ideal {} > lru {}",
            pf.name(),
            ideal.demand_misses,
            lru.demand_misses
        );
    }
}

#[test]
fn invalidate_instructions_survive_program_validation() {
    let mut b = ProgramBuilder::new();
    let main = b.add_function("main", CodeKind::Static);
    let b0 = b.add_block(main);
    let b1 = b.add_block(main);
    b.push_inst(b0, ripple_program::Instruction::other(40));
    b.push_inst(b1, ripple_program::Instruction::ret());
    let program: Program = b.finish(main).unwrap();
    let layout = Layout::new(&program, &LayoutConfig::default());
    let mut plan = InjectionPlan::new();
    plan.push(Injection {
        cue: b1,
        victim: ripple_program::CodeLoc::new(b0, 0),
    });
    let rw = rewrite(&program, &layout, &plan);
    rw.program.validate().unwrap();
    let block = rw.program.block(b1);
    assert_eq!(block.injected_prefix_len(), 1);
    assert!(matches!(
        block.instructions()[0].kind(),
        InstKind::Invalidate { .. }
    ));
}

#[test]
fn plan_artifacts_serialize_and_reapply() {
    // The "link-time artifact" flow a deployment would use: compute a
    // plan, serialize it, deserialize, and apply it to a fresh build of
    // the same program — the result must be identical.
    use ripple::{Ripple, RippleConfig};
    use ripple_workloads::AppSpec;

    let app = generate(&AppSpec::tiny(41));
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let trace = execute(&app.program, &app.model, InputConfig::training(41), 40_000);
    let mut config = RippleConfig::default();
    config.sim.l1i = ripple_sim::CacheGeometry::new(2 * 1024, 4);
    config.analysis.min_windows_per_injection = 1;
    config.threshold = 0.2;
    let ripple = Ripple::train(&app.program, &layout, &trace, config).expect("train");
    let (plan, _) = ripple.plan().expect("plan");
    assert!(!plan.is_empty());

    use ripple_json::{FromJson, ToJson};
    let json = plan.to_json().to_compact_string();
    let value = ripple_json::parse(&json).expect("plans serialize to valid json");
    let plan2 = InjectionPlan::from_json(&value).expect("plans deserialize");
    assert_eq!(plan, plan2);

    let rw1 = rewrite(&app.program, &layout, &plan);
    let fresh = generate(&AppSpec::tiny(41)); // deterministic rebuild
    let rw2 = rewrite(&fresh.program, &layout, &plan2);
    assert_eq!(rw1.program, rw2.program);
    assert_eq!(rw1.layout, rw2.layout);
}
