//! Quickstart: optimize one data center application with Ripple and print
//! the before/after numbers the paper reports.
//!
//! Run with `cargo run --release --example quickstart [app]`.

use ripple::{best_threshold, collect_profile, sweep, Ripple, RippleConfig};
use ripple_program::{Layout, LayoutConfig};
use ripple_workloads::{generate, App, InputConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_default();
    let app_id = App::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .unwrap_or(App::Cassandra);

    // 1. Generate the application and lay it out (the "binary").
    let spec = app_id.spec();
    let app = generate(&spec);
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    println!(
        "{app_id}: {} functions, {} basic blocks, {} KiB of text",
        app.program.num_functions(),
        app.program.num_blocks(),
        layout.code_bytes() / 1024
    );

    // 2. Profile: execute under load while recording a PT-style packet
    //    stream, then decode it into the basic-block trace (§III-A).
    let profile = collect_profile(&app, &layout, InputConfig::training(spec.seed), 800_000)
        .expect("profile collection");
    println!(
        "profiled {} blocks ({} instructions, {:.2} trace bytes/block)",
        profile.trace.len(),
        profile.trace.dynamic_instruction_count(&app.program),
        profile.bytes_per_block()
    );

    // 3. Train: replay the ideal policy, build eviction windows, compute
    //    cue-block probabilities (§III-B); tune the invalidation threshold
    //    per application as the paper does (winners land in 45–65 %); and
    //    4. evaluate: inject invalidations at link time and simulate
    //    (§III-C, §IV).
    let ripple = Ripple::train(
        &app.program,
        &layout,
        &profile.trace,
        RippleConfig::default(),
    )
    .expect("train");
    let tuned =
        best_threshold(&sweep(&ripple, &profile.trace, &[0.45, 0.55, 0.65]).expect("sweep"))
            .expect("non-empty sweep");
    println!("tuned invalidation threshold: {:.2}", tuned.threshold);
    let o = ripple
        .evaluate_with_threshold(&profile.trace, tuned.threshold)
        .expect("evaluate");

    println!("\nresults (32 KB / 8-way L1I, no prefetching, LRU underneath)");
    println!("  LRU baseline misses    {}", o.lru_reference.demand_misses);
    println!("  Ripple-LRU misses      {}", o.ripple.demand_misses);
    println!("  ideal-replacement      {}", o.ideal.demand_misses);
    println!(
        "  miss reduction         {:+.2}% (ideal {:+.2}%)",
        o.miss_reduction_pct(),
        o.ideal_miss_reduction_pct()
    );
    println!(
        "  speedup                {:+.2}% (ideal {:+.2}%, ideal cache {:+.2}%)",
        o.speedup_pct(),
        o.ideal_speedup_pct(),
        o.ideal_cache_speedup_pct()
    );
    println!(
        "  coverage               {:.1}%",
        o.coverage.coverage() * 100.0
    );
    println!(
        "  accuracy               {:.1}% (LRU's own: {:.1}%)",
        o.ripple_accuracy.accuracy() * 100.0,
        o.underlying_accuracy.accuracy() * 100.0
    );
    println!("  static overhead        {:.2}%", o.static_overhead_pct);
    println!("  dynamic overhead       {:.2}%", o.dynamic_overhead_pct);
}
