//! Threshold tuning: reproduce the paper's Fig. 6 coverage/accuracy
//! trade-off for one application and pick the best-performing threshold.
//!
//! Run with `cargo run --release --example threshold_tuning [app]`.

use ripple::{best_threshold, collect_profile, sweep, Ripple, RippleConfig};
use ripple_program::{Layout, LayoutConfig};
use ripple_workloads::{generate, App, InputConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_default();
    let app_id = App::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .unwrap_or(App::FinagleHttp);
    println!("tuning invalidation threshold for {app_id}");

    let spec = app_id.spec();
    let app = generate(&spec);
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let profile = collect_profile(&app, &layout, InputConfig::training(spec.seed), 400_000)
        .expect("profile collection");

    let ripple = Ripple::train(
        &app.program,
        &layout,
        &profile.trace,
        RippleConfig::default(),
    )
    .expect("train");
    let thresholds: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    let points = sweep(&ripple, &profile.trace, &thresholds).expect("sweep");

    println!("\n threshold  coverage  accuracy   speedup");
    for p in &points {
        println!(
            "   {:>5.2}    {:>6.1}%   {:>6.1}%   {:>+6.2}%",
            p.threshold,
            p.coverage * 100.0,
            p.accuracy * 100.0,
            p.speedup_pct
        );
    }
    let best = best_threshold(&points).expect("non-empty sweep");
    println!(
        "\nbest threshold: {:.2} ({:+.2}% speedup, {:.0}% coverage, {:.0}% accuracy)",
        best.threshold,
        best.speedup_pct,
        best.coverage * 100.0,
        best.accuracy * 100.0
    );
}
