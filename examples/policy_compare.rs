//! Policy comparison: run every replacement policy on one application and
//! print the §II-D comparison (none of the prior policies beat LRU; the
//! offline ideals do).
//!
//! Run with `cargo run --release --example policy_compare [app]`.

use ripple::{collect_profile, effective_threads, policy_matrix};
use ripple_program::{Layout, LayoutConfig};
use ripple_sim::{PolicyKind, PrefetcherKind, SimConfig, SimSession};
use ripple_workloads::{generate, App, InputConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_default();
    let app_id = App::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .unwrap_or(App::Cassandra);
    let spec = app_id.spec();
    let app = generate(&spec);
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let profile = collect_profile(&app, &layout, InputConfig::training(spec.seed), 400_000)
        .expect("profile collection");

    println!("{app_id} under FDIP prefetching\n");
    println!(
        " {:<12} {:>8} {:>10} {:>12}",
        "policy", "misses", "mpki", "speedup-vs-lru"
    );
    let cfg = SimConfig::default().with_prefetcher(PrefetcherKind::Fdip);
    let policies = [
        PolicyKind::Lru,
        PolicyKind::Random,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::Ghrp,
        PolicyKind::Hawkeye,
        PolicyKind::Harmony,
        PolicyKind::Opt,
        PolicyKind::DemandMin,
    ];
    // One session records the request stream once; every policy replays it,
    // fanned out across the machine's cores.
    let session = SimSession::new(&app.program, &layout, &profile.trace, cfg);
    let results =
        policy_matrix(&session, &policies, effective_threads(None)).expect("policy matrix");
    let lru = &results[0];
    for (kind, r) in policies.iter().zip(&results) {
        println!(
            " {:<12} {:>8} {:>10.2} {:>11.2}%",
            kind.name(),
            r.demand_misses,
            r.mpki(),
            r.speedup_pct_over(lru)
        );
    }
}
