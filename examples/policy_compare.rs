//! Policy comparison: run every registered replacement policy on one
//! application and print the §II-D comparison (none of the prior policies
//! beat LRU; the offline ideals do).
//!
//! The policy list comes from the global registry via
//! [`ripple::policy_matrix_all`] — registering a new policy adds a row
//! here with no code change.
//!
//! Run with `cargo run --release --example policy_compare [app]`.

use std::sync::Arc;

use ripple::{collect_profile, effective_threads, policy_matrix_all, profile_temperatures};
use ripple_program::{Layout, LayoutConfig};
use ripple_sim::{PolicyKind, PrefetcherKind, SimConfig, SimSession};
use ripple_workloads::{generate, App, InputConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_default();
    let app_id = App::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .unwrap_or(App::Cassandra);
    let spec = app_id.spec();
    let app = generate(&spec);
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let profile = collect_profile(&app, &layout, InputConfig::training(spec.seed), 400_000)
        .expect("profile collection");

    println!("{app_id} under FDIP prefetching\n");
    println!(
        " {:<12} {:>8} {:>10} {:>12}",
        "policy", "misses", "mpki", "speedup-vs-lru"
    );
    let mut cfg = SimConfig::default().with_prefetcher(PrefetcherKind::Fdip);
    // Profile-hinted policies (TRRIP) read line temperatures from the
    // training trace; the others ignore them.
    cfg.temperatures = Some(Arc::new(profile_temperatures(&layout, &profile.trace)));
    // One session records the request stream once; every policy replays it,
    // fanned out across the machine's cores.
    let session = SimSession::new(&app.program, &layout, &profile.trace, cfg);
    let (policies, results) =
        policy_matrix_all(&session, effective_threads(None)).expect("policy matrix");
    let lru = &results[PolicyKind::LRU.index()];
    for (kind, r) in policies.iter().zip(&results) {
        println!(
            " {:<12} {:>8} {:>10.2} {:>11.2}%",
            kind.name(),
            r.demand_misses,
            r.mpki(),
            r.speedup_pct_over(lru)
        );
    }
}
