//! Trace inspection: record a PT-style packet stream for a workload,
//! decode it, and report the compression and footprint statistics a
//! profiling deployment would care about (§III-A).
//!
//! Run with `cargo run --release --example trace_inspection`.

use ripple_program::{Layout, LayoutConfig};
use ripple_trace::{decode_packets, reconstruct_trace, record_trace, Packet};
use ripple_workloads::{execute, generate, App, InputConfig};

fn main() {
    let app_id = App::Kafka;
    let spec = app_id.spec();
    let app = generate(&spec);
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    println!(
        "{app_id}: {} functions, {} basic blocks, {} KiB of text",
        app.program.num_functions(),
        app.program.num_blocks(),
        layout.code_bytes() / 1024
    );

    let executed = execute(
        &app.program,
        &app.model,
        InputConfig::training(spec.seed),
        200_000,
    );
    let bytes = record_trace(&app.program, &layout, executed.iter());
    let packets = decode_packets(&bytes).expect("well-formed stream");

    let mut tnt_bits = 0u64;
    let mut tips = 0u64;
    for p in &packets {
        match p {
            Packet::Tnt { count, .. } => tnt_bits += u64::from(*count),
            Packet::Tip { .. } => tips += 1,
            _ => {}
        }
    }
    println!("\ntrace statistics");
    println!("  executed blocks        {}", executed.len());
    println!(
        "  executed instructions  {}",
        executed.dynamic_instruction_count(&app.program)
    );
    println!("  encoded bytes          {}", bytes.len());
    println!(
        "  bytes / block          {:.3}",
        bytes.len() as f64 / executed.len() as f64
    );
    println!("  packets                {}", packets.len());
    println!("  TNT bits               {tnt_bits}");
    println!("  TIP packets            {tips}");
    println!(
        "  dynamic footprint      {} lines",
        executed.footprint_lines(&layout)
    );

    let decoded = reconstruct_trace(&app.program, &layout, &bytes).expect("decodable");
    assert_eq!(decoded, executed, "decoder must reproduce the execution");
    println!("\ndecoder round-trip: exact ({} blocks)", decoded.len());
}
