//! Subcommand implementations.

use std::error::Error;
use std::fs;

use ripple::{
    best_threshold, collect_profile, effective_threads, policy_matrix, sweep, Ripple, RippleConfig,
};
use ripple_json::ToJson;
use ripple_program::{Layout, LayoutConfig};
use ripple_sim::{simulate, PolicyKind, PrefetcherKind, SimConfig, SimSession};
use ripple_workloads::{generate, App, Application, InputConfig};

use crate::args::{ArgError, Args};

/// Top-level usage text.
pub const USAGE: &str = "\
usage:
  ripple-cli apps
  ripple-cli spec     <app> [--out FILE]           # export a workload spec as JSON
  ripple-cli plan     <app> [--threshold T] [--prefetcher P] [--out FILE]
  ripple-cli profile  <app> [--instructions N] [--input K] [--out FILE]
  ripple-cli inspect  <FILE> --app <app>
  ripple-cli simulate <app> [--policy P] [--prefetcher P] [--instructions N]
  ripple-cli compare  <app> [--prefetcher P] [--instructions N] [--threads N]
  ripple-cli optimize <app> [--threshold T] [--prefetcher P] [--underlying P] [--instructions N] [--threads N]
  ripple-cli sweep    <app> [--prefetcher P] [--instructions N] [--threads N]

apps: cassandra drupal finagle-chirper finagle-http kafka mediawiki tomcat verilator wordpress
policies: lru tree-plru random srrip drrip ghrp hawkeye harmony opt demand-min
prefetchers: none nlp fdip
--threads defaults to the machine's available parallelism; results are
identical at any thread count";

type CmdResult = Result<(), Box<dyn Error>>;

/// Dispatches `argv` to a subcommand.
pub fn dispatch(argv: &[String]) -> CmdResult {
    let Some(cmd) = argv.first() else {
        return Err(Box::new(ArgError("missing subcommand".into())));
    };
    let rest = Args::parse(&argv[1..])?;
    match cmd.as_str() {
        "apps" => apps(&rest),
        "spec" => spec_cmd(&rest),
        "plan" => plan_cmd(&rest),
        "profile" => profile(&rest),
        "inspect" => inspect(&rest),
        "simulate" => simulate_cmd(&rest),
        "compare" => compare(&rest),
        "optimize" => optimize(&rest),
        "sweep" => sweep_cmd(&rest),
        other => Err(Box::new(ArgError(format!("unknown subcommand {other:?}")))),
    }
}

fn parse_app(args: &Args) -> Result<App, ArgError> {
    let name = args
        .positional(0)
        .ok_or_else(|| ArgError("missing <app> argument".into()))?;
    App::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| ArgError(format!("unknown application {name:?}")))
}

fn parse_prefetcher(args: &Args) -> Result<PrefetcherKind, ArgError> {
    match args.flag("prefetcher").unwrap_or("none") {
        "none" | "no-prefetch" => Ok(PrefetcherKind::None),
        "nlp" | "next-line" => Ok(PrefetcherKind::NextLine),
        "fdip" => Ok(PrefetcherKind::Fdip),
        other => Err(ArgError(format!("unknown prefetcher {other:?}"))),
    }
}

fn parse_policy(name: &str) -> Result<PolicyKind, ArgError> {
    Ok(match name {
        "lru" => PolicyKind::Lru,
        "tree-plru" | "plru" => PolicyKind::TreePlru,
        "random" => PolicyKind::Random,
        "srrip" => PolicyKind::Srrip,
        "drrip" => PolicyKind::Drrip,
        "ghrp" => PolicyKind::Ghrp,
        "hawkeye" => PolicyKind::Hawkeye,
        "harmony" => PolicyKind::Harmony,
        "opt" => PolicyKind::Opt,
        "demand-min" => PolicyKind::DemandMin,
        other => return Err(ArgError(format!("unknown policy {other:?}"))),
    })
}

/// Parses `--threads N` (`None` = available parallelism, resolved by the
/// harness).
fn parse_threads(args: &Args) -> Result<Option<usize>, ArgError> {
    match args.flag("threads") {
        None => Ok(None),
        Some(v) => v
            .parse::<usize>()
            .map(Some)
            .map_err(|_| ArgError(format!("--threads: cannot parse {v:?}"))),
    }
}

fn load(
    app_id: App,
    input: InputConfig,
    budget: u64,
) -> Result<(Application, Layout, ripple_trace::BbTrace), Box<dyn Error>> {
    let app = generate(&app_id.spec());
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let profile = collect_profile(&app, &layout, input, budget)?;
    Ok((app, layout, profile.trace))
}

fn apps(args: &Args) -> CmdResult {
    args.expect_flags(&[])?;
    println!(
        "{:<16} {:>9} {:>8} {:>10} {:>5}",
        "app", "functions", "blocks", "text(KiB)", "jit"
    );
    for app_id in App::ALL {
        let app = generate(&app_id.spec());
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        println!(
            "{:<16} {:>9} {:>8} {:>10} {:>5}",
            app_id.name(),
            app.program.num_functions(),
            app.program.num_blocks(),
            layout.code_bytes() / 1024,
            if app_id.has_jit() { "yes" } else { "no" }
        );
    }
    Ok(())
}

/// Exports an application's workload specification as editable JSON —
/// the starting point for modelling a custom application.
fn spec_cmd(args: &Args) -> CmdResult {
    args.expect_flags(&["out"])?;
    let app_id = parse_app(args)?;
    let json = app_id.spec().to_json().to_pretty_string();
    match args.flag("out") {
        Some(path) => {
            fs::write(path, &json)?;
            println!("wrote {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

/// Computes and exports an injection plan (the "link-time artifact"): the
/// list of (cue block, victim code location) pairs as JSON.
fn plan_cmd(args: &Args) -> CmdResult {
    args.expect_flags(&["threshold", "prefetcher", "instructions", "out"])?;
    let app_id = parse_app(args)?;
    let budget = args.parse_flag("instructions", 600_000u64)?;
    let threshold = args.parse_flag("threshold", 0.55f64)?;
    let prefetcher = parse_prefetcher(args)?;
    let (app, layout, trace) = load(app_id, InputConfig::training(app_id.spec().seed), budget)?;
    let mut config = RippleConfig::default();
    config.threshold = threshold;
    config.sim.prefetcher = prefetcher;
    let ripple = Ripple::train(&app.program, &layout, &trace, config);
    let (plan, cov) = ripple.plan();
    println!(
        "{app_id}: {} injections covering {}/{} windows ({:.1}%)",
        plan.len(),
        cov.covered_windows,
        cov.total_windows,
        cov.coverage() * 100.0
    );
    if let Some(path) = args.flag("out") {
        fs::write(path, plan.to_json().to_pretty_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn profile(args: &Args) -> CmdResult {
    args.expect_flags(&["instructions", "input", "out"])?;
    let app_id = parse_app(args)?;
    let budget = args.parse_flag("instructions", 400_000u64)?;
    let input_id = args.parse_flag("input", 0u32)?;
    let spec = app_id.spec();
    let app = generate(&spec);
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let input = InputConfig::numbered(input_id, spec.seed);

    let executed = ripple_workloads::execute(&app.program, &app.model, input, budget);
    let bytes = ripple_trace::record_trace(&app.program, &layout, executed.iter());
    println!("profiled {app_id} input#{input_id}");
    println!("  executed blocks  {}", executed.len());
    println!(
        "  instructions     {}",
        executed.dynamic_instruction_count(&app.program)
    );
    println!(
        "  packet bytes     {} ({:.3} B/block)",
        bytes.len(),
        bytes.len() as f64 / executed.len() as f64
    );
    if let Some(path) = args.flag("out") {
        fs::write(path, &bytes)?;
        println!("  written to       {path}");
    }
    Ok(())
}

fn inspect(args: &Args) -> CmdResult {
    args.expect_flags(&["app"])?;
    let path = args
        .positional(0)
        .ok_or_else(|| ArgError("missing <FILE> argument".into()))?;
    let name = args.flag("app").ok_or_else(|| {
        ArgError("--app is required (traces are decoded against the app's CFG)".into())
    })?;
    let app_id = App::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| ArgError(format!("unknown application {name:?}")))?;
    let app = generate(&app_id.spec());
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let bytes = fs::read(path)?;
    let trace = ripple_trace::reconstruct_trace(&app.program, &layout, &bytes)?;
    println!("decoded {path} against {app_id}");
    println!("  blocks            {}", trace.len());
    println!("  unique blocks     {}", trace.unique_blocks());
    println!(
        "  instructions      {}",
        trace.dynamic_instruction_count(&app.program)
    );
    println!("  footprint lines   {}", trace.footprint_lines(&layout));
    Ok(())
}

fn simulate_cmd(args: &Args) -> CmdResult {
    args.expect_flags(&["policy", "prefetcher", "instructions"])?;
    let app_id = parse_app(args)?;
    let budget = args.parse_flag("instructions", 400_000u64)?;
    let policy = parse_policy(args.flag("policy").unwrap_or("lru"))?;
    let prefetcher = parse_prefetcher(args)?;
    let (app, layout, trace) = load(app_id, InputConfig::training(app_id.spec().seed), budget)?;

    let cfg = SimConfig::default()
        .with_policy(policy)
        .with_prefetcher(prefetcher);
    let r = simulate(&app.program, &layout, &trace, &cfg);
    println!("{app_id} / {} / {}", policy.name(), prefetcher.name());
    println!("  instructions   {}", r.instructions);
    println!("  cycles         {:.0}", r.cycles);
    println!("  IPC            {:.3}", r.ipc());
    println!("  demand misses  {}", r.demand_misses);
    println!("  MPKI           {:.2}", r.mpki());
    println!("  compulsory     {:.2} MPKI", r.compulsory_mpki());
    if prefetcher != PrefetcherKind::None {
        println!(
            "  prefetches     {} issued, {} fills",
            r.prefetches_issued, r.prefetch_fills
        );
    }
    Ok(())
}

fn compare(args: &Args) -> CmdResult {
    args.expect_flags(&["prefetcher", "instructions", "threads"])?;
    let app_id = parse_app(args)?;
    let budget = args.parse_flag("instructions", 400_000u64)?;
    let prefetcher = parse_prefetcher(args)?;
    let threads = effective_threads(parse_threads(args)?);
    let (app, layout, trace) = load(app_id, InputConfig::training(app_id.spec().seed), budget)?;
    // One session: all nine policies replay the same recorded request
    // stream as parallel harness jobs (the two offline ideals share the
    // session's single recording pass).
    let base_cfg = SimConfig::default().with_prefetcher(prefetcher);
    let session = SimSession::new(&app.program, &layout, &trace, base_cfg);
    let policies = [
        PolicyKind::Lru,
        PolicyKind::Random,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::Ghrp,
        PolicyKind::Hawkeye,
        PolicyKind::Harmony,
        PolicyKind::Opt,
        PolicyKind::DemandMin,
    ];
    let results = policy_matrix(&session, &policies, threads);
    let lru = &results[0];
    println!("{app_id} under {} prefetching", prefetcher.name());
    println!(
        "{:<12} {:>9} {:>8} {:>10}",
        "policy", "misses", "mpki", "vs-lru"
    );
    for (kind, r) in policies.iter().zip(&results) {
        println!(
            "{:<12} {:>9} {:>8.2} {:>+9.2}%",
            kind.name(),
            r.demand_misses,
            r.mpki(),
            r.speedup_pct_over(lru)
        );
    }
    Ok(())
}

fn optimize(args: &Args) -> CmdResult {
    args.expect_flags(&[
        "threshold",
        "prefetcher",
        "underlying",
        "instructions",
        "threads",
    ])?;
    let app_id = parse_app(args)?;
    let budget = args.parse_flag("instructions", 600_000u64)?;
    let threshold = args.parse_flag("threshold", 0.55f64)?;
    let prefetcher = parse_prefetcher(args)?;
    let underlying = parse_policy(args.flag("underlying").unwrap_or("lru"))?;
    let threads = parse_threads(args)?;
    let (app, layout, trace) = load(app_id, InputConfig::training(app_id.spec().seed), budget)?;

    let mut config = RippleConfig::default();
    config.threshold = threshold;
    config.sim.prefetcher = prefetcher;
    config.underlying = underlying;
    config.threads = threads;
    let ripple = Ripple::train(&app.program, &layout, &trace, config);
    let o = ripple.evaluate(&trace);

    println!(
        "{app_id}: Ripple-{} under {} (threshold {threshold})",
        underlying.name(),
        prefetcher.name()
    );
    println!("  baseline misses     {}", o.lru_reference.demand_misses);
    println!("  ripple misses       {}", o.ripple.demand_misses);
    println!("  ideal misses        {}", o.ideal.demand_misses);
    println!(
        "  miss reduction      {:+.2}% (ideal {:+.2}%)",
        o.miss_reduction_pct(),
        o.ideal_miss_reduction_pct()
    );
    println!(
        "  speedup             {:+.2}% (ideal {:+.2}%, ideal cache {:+.2}%)",
        o.speedup_pct(),
        o.ideal_speedup_pct(),
        o.ideal_cache_speedup_pct()
    );
    println!(
        "  coverage            {:.1}%",
        o.coverage.coverage() * 100.0
    );
    println!(
        "  accuracy            {:.1}% (underlying {:.1}%)",
        o.ripple_accuracy.accuracy() * 100.0,
        o.underlying_accuracy.accuracy() * 100.0
    );
    println!(
        "  static overhead     {:.2}% ({} invalidates)",
        o.static_overhead_pct, o.injected_static
    );
    println!("  dynamic overhead    {:.2}%", o.dynamic_overhead_pct);
    Ok(())
}

fn sweep_cmd(args: &Args) -> CmdResult {
    args.expect_flags(&["prefetcher", "instructions", "threads"])?;
    let app_id = parse_app(args)?;
    let budget = args.parse_flag("instructions", 600_000u64)?;
    let prefetcher = parse_prefetcher(args)?;
    let threads = parse_threads(args)?;
    let (app, layout, trace) = load(app_id, InputConfig::training(app_id.spec().seed), budget)?;
    let mut config = RippleConfig::default();
    config.sim.prefetcher = prefetcher;
    config.threads = threads;
    let ripple = Ripple::train(&app.program, &layout, &trace, config);
    let thresholds: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    let points = sweep(&ripple, &trace, &thresholds);
    println!("{app_id} threshold sweep under {}", prefetcher.name());
    println!(" threshold  coverage  accuracy   speedup");
    for p in &points {
        println!(
            "   {:>5.2}    {:>6.1}%   {:>6.1}%   {:>+6.2}%",
            p.threshold,
            p.coverage * 100.0,
            p.accuracy * 100.0,
            p.speedup_pct
        );
    }
    if let Some(b) = best_threshold(&points) {
        println!("best: {:.2} ({:+.2}%)", b.threshold, b.speedup_pct);
    }
    Ok(())
}
