//! Subcommand implementations.

use std::error::Error;
use std::fs;
use std::sync::{Arc, Mutex};

use ripple::{
    best_threshold, collect_profile, effective_threads, policy_matrix_all, profile_temperatures,
    run_report, sweep, validate_run_report, Ripple, RippleConfig, SchemaTag, COMPARE_PHASES,
    PIPELINE_PHASES,
};
use ripple_fleet::{run_fleet, validate_fleet_report, FleetConfig, FLEET_PHASES};
use ripple_json::{ToJson, Value};
use ripple_lab::{validate_lab_report, Experiment, LabOptions, LAB_PHASES};
use ripple_obs::{Field, FieldValue, MetricsRecorder, NullRecorder, Recorder, TeeRecorder};
use ripple_program::{Layout, LayoutConfig};
use ripple_sim::{PolicyKind, PolicyRegistry, PrefetcherKind, SimConfig, SimSession};
use ripple_trace::DecodeOptions;
use ripple_workloads::{generate, App, Application, InputConfig};

use crate::args::{ArgError, Args, CommonRunArgs};

/// Top-level usage text; the policy list is derived from the registry so
/// a newly registered policy shows up with zero CLI edits.
pub fn usage() -> String {
    let policies: Vec<&str> = PolicyRegistry::global().names().collect();
    format!(
        "\
usage:
  ripple-cli apps
  ripple-cli policies                              # list registered replacement policies
  ripple-cli spec     <app> [--out FILE]           # export a workload spec as JSON
  ripple-cli plan     <app> [--threshold T] [--prefetcher P] [--out FILE]
  ripple-cli profile  <app> [--instructions N] [--input K] [--sync N] [--out FILE]
  ripple-cli inspect  <FILE> --app <app>
  ripple-cli simulate <app> [--policy P] [--prefetcher P] [--instructions N]
                            [--trace FILE] [--lossy] [--max-drop-ratio R]
                            [--replay-shards N] [RUN-FLAGS]
  ripple-cli compare  <app> [--prefetcher P] [--instructions N]
                            [--replay-shards N] [RUN-FLAGS]
  ripple-cli optimize <app> [--threshold T] [--prefetcher P] [--underlying P] [--instructions N] [RUN-FLAGS]
  ripple-cli sweep    <app> [--prefetcher P] [--instructions N] [RUN-FLAGS]
  ripple-cli fleet    [--instances N] [--epochs N] [--canary-pct P]
                      [--shard-instructions N] [--drift-epoch E] [--gate-pct P]
                      [--poison-instance I] [--retry-attempts N] [RUN-FLAGS]
  ripple-cli lab      list
  ripple-cli lab      describe <experiment>
  ripple-cli lab      run <experiment> [--instructions N] [--out FILE] [RUN-FLAGS]
  ripple-cli faults   [--cases N] [--seed S]
  ripple-cli validate-metrics <FILE> [--phases compare|pipeline|fleet|lab]

apps: cassandra drupal finagle-chirper finagle-http kafka mediawiki tomcat verilator wordpress
policies: {}
prefetchers: none nlp fdip
RUN-FLAGS is the shared run-control cluster, accepted uniformly:
  [--threads N] [--metrics FILE] [--progress] [--seed S]
--threads 0 (or omitting the flag) auto-detects the machine's available
parallelism; results are identical at any thread count
--seed S overrides the command's deterministic seed: the training-input
seed for simulate/compare/optimize/sweep (default: the app spec's own),
the service seed for fleet, the fault-injector seed for lab
--replay-shards N partitions the L1I sets across N threads during
captured-stream replay (set-local policies only; others fall back to
sequential replay); results are byte-identical at any shard count
--metrics FILE dumps a ripple.run_report.v1 JSON document (phase timings,
counters, per-job harness timings); --progress prints live k/n
job-completion lines to stderr
simulate --trace FILE replays a recorded packet stream (see `profile
--out`) instead of re-executing; --lossy skips unrecoverable packet spans
(counted as trace.dropped_packets / trace.resync_events) as long as the
dropped-byte fraction stays within --max-drop-ratio (default 1.0)
fleet runs the continuous profiling service: N instances emit trace
shards each epoch, profiles aggregate per service, plans train through a
drift-invalidated artifact cache and canary-roll behind an MPKI gate;
--metrics dumps a deterministic ripple.fleet_report.v1 (byte-identical
at any --threads, validated by validate-metrics)
lab runs a declarative experiment: a JSON grid declaration (a built-in
name from `lab list`, or a path to a declaration file) expanded over
apps x target profiles x prefetchers x policies x thresholds x fault
modes x replay shards and executed on the shared harness; tables print
to stdout, --metrics dumps the deterministic ripple.lab_report.v1
(byte-identical at any --threads), --out saves the rendered tables

exit codes: 0 success, 1 runtime/io error, 2 usage or invalid
configuration, 3 corrupt trace, 4 isolated evaluation-job panic",
        policies.join(" ")
    )
}

type CmdResult = Result<(), Box<dyn Error>>;

/// Dispatches `argv` to a subcommand.
pub fn dispatch(argv: &[String]) -> CmdResult {
    let Some(cmd) = argv.first() else {
        return Err(Box::new(ArgError("missing subcommand".into())));
    };
    let rest = Args::parse(&argv[1..])?;
    match cmd.as_str() {
        "apps" => apps(&rest),
        "policies" => policies_cmd(&rest),
        "spec" => spec_cmd(&rest),
        "plan" => plan_cmd(&rest),
        "profile" => profile(&rest),
        "inspect" => inspect(&rest),
        "simulate" => simulate_cmd(&rest),
        "compare" => compare(&rest),
        "optimize" => optimize(&rest),
        "sweep" => sweep_cmd(&rest),
        "fleet" => fleet_cmd(&rest),
        "lab" => lab_cmd(&rest),
        "faults" => faults_cmd(&rest),
        "validate-metrics" => validate_metrics(&rest),
        other => Err(Box::new(ArgError(format!("unknown subcommand {other:?}")))),
    }
}

fn find_app(name: &str) -> Result<App, ArgError> {
    App::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| {
            let valid: Vec<&str> = App::ALL.iter().map(|a| a.name()).collect();
            ArgError(format!(
                "unknown application {name:?} (valid values: {})",
                valid.join(" ")
            ))
        })
}

fn parse_app(args: &Args) -> Result<App, ArgError> {
    let name = args
        .positional(0)
        .ok_or_else(|| ArgError("missing <app> argument".into()))?;
    find_app(name)
}

fn parse_prefetcher(args: &Args) -> Result<PrefetcherKind, ArgError> {
    match args.flag("prefetcher").unwrap_or("none") {
        "none" | "no-prefetch" => Ok(PrefetcherKind::None),
        "nlp" | "next-line" => Ok(PrefetcherKind::NextLine),
        "fdip" => Ok(PrefetcherKind::Fdip),
        other => Err(ArgError(format!(
            "unknown prefetcher {other:?} (valid values: none nlp fdip)"
        ))),
    }
}

fn parse_policy(name: &str) -> Result<PolicyKind, ArgError> {
    // Name/alias resolution lives in the registry; the CLI only renders
    // the error with the registered names.
    PolicyKind::parse(name).ok_or_else(|| {
        let valid: Vec<&str> = PolicyRegistry::global().names().collect();
        ArgError(format!(
            "unknown policy {name:?} (valid values: {})",
            valid.join(" ")
        ))
    })
}

/// The training input a simulation command profiles: the app spec's own
/// seed unless the shared `--seed` flag overrides it.
fn training_input(app_id: App, common: &CommonRunArgs) -> InputConfig {
    InputConfig::training(common.seed.unwrap_or(app_id.spec().seed))
}

/// Parses `--replay-shards N` (default 1): how many threads partition
/// the L1I sets during captured-stream replay. Results are byte-identical
/// at any shard count; range validation happens in the sim config
/// builder.
fn parse_replay_shards(args: &Args) -> Result<usize, ArgError> {
    args.parse_flag("replay-shards", 1usize)
}

/// Parses `--threshold T`, rejecting values outside the probability range
/// the analysis thresholds over.
fn parse_threshold(args: &Args, default: f64) -> Result<f64, ArgError> {
    let t = args.parse_flag("threshold", default)?;
    if !t.is_finite() || !(0.0..=1.0).contains(&t) {
        return Err(ArgError(format!(
            "--threshold: {t} is out of range (must be within 0.0..=1.0)"
        )));
    }
    Ok(t)
}

/// Live progress printer: one `k/n jobs done (slowest: …)` line per
/// completed harness job, on stderr so it never mixes with the result
/// tables.
#[derive(Debug, Default)]
struct ProgressRecorder {
    state: Mutex<ProgressState>,
}

#[derive(Debug, Default)]
struct ProgressState {
    scope: String,
    total: u64,
    done: u64,
    slowest: Option<(u64, u64)>, // (job index, run_ns)
}

fn field_u64(fields: &[Field<'_>], name: &str) -> Option<u64> {
    fields.iter().find_map(|&(n, v)| match v {
        FieldValue::U64(x) if n == name => Some(x),
        _ => None,
    })
}

fn field_str<'a>(fields: &[Field<'a>], name: &str) -> Option<&'a str> {
    fields.iter().find_map(|&(n, v)| match v {
        FieldValue::Str(s) if n == name => Some(s),
        _ => None,
    })
}

impl Recorder for ProgressRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn event(&self, name: &str, fields: &[Field<'_>]) {
        let mut state = self.state.lock().expect("progress state poisoned");
        match name {
            "harness.batch" => {
                state.scope = field_str(fields, "scope").unwrap_or("?").to_string();
                state.total = field_u64(fields, "jobs").unwrap_or(0);
                state.done = 0;
                state.slowest = None;
            }
            "harness.job" => {
                state.done += 1;
                let job = field_u64(fields, "job").unwrap_or(0);
                let run_ns = field_u64(fields, "run_ns").unwrap_or(0);
                if state.slowest.is_none_or(|(_, worst)| run_ns > worst) {
                    state.slowest = Some((job, run_ns));
                }
                let (slow_job, slow_ns) = state.slowest.unwrap_or((job, run_ns));
                eprintln!(
                    "  {}/{} jobs done (slowest: {}#{} {:.1}ms)",
                    state.done,
                    state.total.max(state.done),
                    state.scope,
                    slow_job,
                    slow_ns as f64 / 1e6
                );
            }
            _ => {}
        }
    }
}

/// Builds the recorder requested by `--metrics` / `--progress`. Returns
/// the recorder to attach plus the metrics aggregator (when a report file
/// was requested) for [`write_metrics`] to snapshot afterwards.
fn build_recorder(common: &CommonRunArgs) -> (Arc<dyn Recorder>, Option<Arc<MetricsRecorder>>) {
    let metrics = common
        .metrics
        .as_deref()
        .map(|_| Arc::new(MetricsRecorder::new()));
    let progress = common.progress;
    match (metrics, progress) {
        (None, false) => (Arc::new(NullRecorder), None),
        (Some(m), false) => (m.clone(), Some(m)),
        (None, true) => (Arc::new(ProgressRecorder::default()), None),
        (Some(m), true) => {
            let tee = TeeRecorder::new()
                .with(m.clone())
                .with(Arc::new(ProgressRecorder::default()));
            (Arc::new(tee), Some(m))
        }
    }
}

/// Dumps the run report to the `--metrics` path, if one was requested.
/// `wall` is the clock started before the command's first timed work —
/// the single root every phase's `share_pct` is computed against (phases
/// nest, so shares against a phase-total sum would double-count).
fn write_metrics(
    common: &CommonRunArgs,
    command: &str,
    app: &str,
    metrics: Option<Arc<MetricsRecorder>>,
    wall: std::time::Instant,
) -> CmdResult {
    if let (Some(path), Some(m)) = (common.metrics.as_deref(), metrics) {
        let wall_ns = u64::try_from(wall.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let report = run_report(command, app, &m.snapshot(), wall_ns);
        fs::write(path, report.to_pretty_string())?;
        println!("metrics written to {path}");
    }
    Ok(())
}

/// Validates a `--metrics` dump: parses it with ripple-json, dispatches
/// on the document's `schema` tag (run reports vs fleet reports), and
/// checks the required phase set (inferred from the report's `command`
/// unless `--phases` overrides it). This is the CI gate for the
/// observability artifacts.
fn validate_metrics(args: &Args) -> CmdResult {
    args.expect_flags(&["phases"])?;
    let path = args
        .positional(0)
        .ok_or_else(|| ArgError("missing <FILE> argument".into()))?;
    // Reject a bad --phases value before touching the file, so the flag
    // error is never masked by a missing artifact. Each phase set names
    // the schema it belongs to; with no override the document's own
    // schema tag picks the validator.
    let explicit = args.flag("phases");
    let forced = match explicit {
        None => None,
        Some("compare" | "pipeline") => Some(SchemaTag::Run),
        Some("fleet") => Some(SchemaTag::Fleet),
        Some("lab") => Some(SchemaTag::Lab),
        Some(other) => {
            return Err(Box::new(ArgError(format!(
                "unknown phase set {other:?} (valid values: compare pipeline fleet lab)"
            ))))
        }
    };
    let text = fs::read_to_string(path)?;
    let report =
        ripple_json::parse(&text).map_err(|e| ArgError(format!("{path}: not valid JSON: {e}")))?;
    let tag = match forced {
        Some(tag) => tag,
        None => SchemaTag::of_report(&report).map_err(|e| ArgError(format!("{path}: {e}")))?,
    };
    match tag {
        SchemaTag::Fleet => {
            validate_fleet_report(&report).map_err(|e| ArgError(format!("{path}: {e}")))?;
            println!(
                "{path}: valid {} report, all {} fleet phases present",
                SchemaTag::Fleet.as_str(),
                FLEET_PHASES.len()
            );
        }
        SchemaTag::Lab => {
            validate_lab_report(&report).map_err(|e| ArgError(format!("{path}: {e}")))?;
            println!(
                "{path}: valid {} report, all {} lab phases present",
                SchemaTag::Lab.as_str(),
                LAB_PHASES.len()
            );
        }
        SchemaTag::Run => {
            let required: &[&str] = match explicit {
                Some("compare") => COMPARE_PHASES,
                Some("pipeline") => PIPELINE_PHASES,
                _ => match report.get("command").ok().and_then(|v| v.as_str().ok()) {
                    Some("compare") => COMPARE_PHASES,
                    _ => PIPELINE_PHASES,
                },
            };
            validate_run_report(&report, required).map_err(|e| ArgError(format!("{path}: {e}")))?;
            println!(
                "{path}: valid {} report, all {} required phases timed",
                SchemaTag::Run.as_str(),
                required.len()
            );
        }
    }
    Ok(())
}

/// Runs the fleet-scale continuous profiling service and prints the
/// per-epoch outcome table. `--metrics` dumps the deterministic
/// `ripple.fleet_report.v1` document (the fleet's own schema — unlike
/// the other subcommands this is not a wall-time run report, so it is
/// byte-identical at any `--threads`).
fn fleet_cmd(args: &Args) -> CmdResult {
    args.expect_flags(&CommonRunArgs::allowed(&[
        "instances",
        "epochs",
        "canary-pct",
        "shard-instructions",
        "drift-epoch",
        "gate-pct",
        "poison-instance",
        "retry-attempts",
    ]))?;
    let common = CommonRunArgs::extract(args)?;
    let defaults = FleetConfig::default();
    let parse_opt = |name: &str| -> Result<Option<u32>, ArgError> {
        match args.flag(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<u32>()
                .map(Some)
                .map_err(|_| ArgError(format!("--{name}: cannot parse {v:?}"))),
        }
    };
    let config = FleetConfig {
        instances: args.parse_flag("instances", defaults.instances)?,
        epochs: args.parse_flag("epochs", defaults.epochs)?,
        canary_pct: args.parse_flag("canary-pct", defaults.canary_pct)?,
        seed: common.seed.unwrap_or(defaults.seed),
        threads: common.threads,
        shard_instructions: args.parse_flag("shard-instructions", defaults.shard_instructions)?,
        drift_epoch: parse_opt("drift-epoch")?,
        regression_gate_pct: args.parse_flag("gate-pct", defaults.regression_gate_pct)?,
        poison_instance: parse_opt("poison-instance")?.map(|p| p as usize),
        retry_attempts: args.parse_flag("retry-attempts", defaults.retry_attempts)?,
    };
    let recorder: Arc<dyn Recorder> = if common.progress {
        Arc::new(ProgressRecorder::default())
    } else {
        Arc::new(NullRecorder)
    };
    let report = run_fleet(&config, recorder)?;
    print_fleet_table(&report);
    if let Some(path) = common.metrics.as_deref() {
        fs::write(path, report.to_pretty_string())?;
        println!("metrics written to {path}");
    }
    Ok(())
}

/// The `lab` subcommand family: `list` the built-in experiment
/// declarations, `describe` one's axes and grid size, or `run` one (a
/// built-in name, or a path to a declaration JSON file) on the shared
/// harness. Like `fleet`, `--metrics` dumps the command's own
/// deterministic schema (`ripple.lab_report.v1`), byte-identical at any
/// `--threads`.
fn lab_cmd(args: &Args) -> CmdResult {
    let action = args
        .positional(0)
        .ok_or_else(|| ArgError("missing lab action (list, describe or run)".into()))?;
    match action {
        "list" => lab_list(args),
        "describe" => lab_describe(args),
        "run" => lab_run(args),
        other => Err(Box::new(ArgError(format!(
            "unknown lab action {other:?} (valid values: list describe run)"
        )))),
    }
}

/// Loads an experiment declaration: a built-in name, or (when the
/// argument names an existing file) a declaration JSON file on disk.
fn load_experiment(name: &str) -> Result<Experiment, Box<dyn Error>> {
    if std::path::Path::new(name).is_file() {
        let text = fs::read_to_string(name)?;
        return Ok(Experiment::parse(&text).map_err(|e| ArgError(format!("{name}: {e}")))?);
    }
    Ok(ripple_lab::builtin(name)?)
}

fn lab_list(args: &Args) -> CmdResult {
    args.expect_flags(&[])?;
    println!(
        "{:<20} {:>7} {:>10}  description",
        "experiment", "points", "runs/point"
    );
    for (name, _) in ripple_lab::BUILTIN_EXPERIMENTS {
        let resolved = ripple_lab::builtin(name)?.resolve()?;
        println!(
            "{:<20} {:>7} {:>10}  {}",
            name,
            resolved.num_points(),
            resolved.runs_per_point(),
            resolved.description
        );
    }
    Ok(())
}

fn lab_describe(args: &Args) -> CmdResult {
    args.expect_flags(&[])?;
    let name = args
        .positional(1)
        .ok_or_else(|| ArgError("missing <experiment> argument".into()))?;
    let resolved = load_experiment(name)?.resolve()?;
    println!("{}: {}", resolved.name, resolved.description);
    println!("  instructions/app  {}", resolved.instructions);
    let names = |v: Vec<String>| {
        if v.is_empty() {
            "-".into()
        } else {
            v.join(" ")
        }
    };
    println!(
        "  profiles          {}",
        names(
            resolved
                .profiles
                .iter()
                .map(|p| p.name.to_string())
                .collect()
        )
    );
    println!(
        "  apps              {}",
        names(resolved.apps.iter().map(|a| a.name().to_string()).collect())
    );
    println!(
        "  prefetchers       {}",
        names(
            resolved
                .prefetchers
                .iter()
                .map(|p| p.name().to_string())
                .collect()
        )
    );
    println!(
        "  policies          {}",
        names(
            resolved
                .policies
                .iter()
                .map(|p| p.name().to_string())
                .collect()
        )
    );
    println!(
        "  ripple underlying {}",
        names(
            resolved
                .ripple_underlying
                .iter()
                .map(|p| p.name().to_string())
                .collect()
        )
    );
    println!(
        "  thresholds        {}",
        names(resolved.thresholds.iter().map(|t| format!("{t}")).collect())
    );
    println!(
        "  fault modes       {}",
        names(
            resolved
                .fault_modes
                .iter()
                .map(|m| m.name().to_string())
                .collect()
        )
    );
    println!(
        "  replay shards     {}",
        names(
            resolved
                .replay_shards
                .iter()
                .map(|n| n.to_string())
                .collect()
        )
    );
    println!(
        "  grid              {} points x {} runs/point",
        resolved.num_points(),
        resolved.runs_per_point()
    );
    Ok(())
}

fn lab_run(args: &Args) -> CmdResult {
    args.expect_flags(&CommonRunArgs::allowed(&["instructions", "out"]))?;
    let common = CommonRunArgs::extract(args)?;
    let name = args
        .positional(1)
        .ok_or_else(|| ArgError("missing <experiment> argument".into()))?;
    let resolved = load_experiment(name)?.resolve()?;
    let instructions = match args.flag("instructions") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| ArgError(format!("--instructions: cannot parse {v:?}")))?,
        ),
    };
    let recorder: Arc<dyn Recorder> = if common.progress {
        Arc::new(ProgressRecorder::default())
    } else {
        Arc::new(NullRecorder)
    };
    let options = LabOptions {
        threads: common.threads,
        recorder,
        instructions,
        seed: common.seed.unwrap_or(0),
    };
    let run = ripple_lab::run_experiment(&resolved, &options)?;
    // The emitted document must always satisfy its own validator — a
    // failure here is a lab bug, not a user error.
    validate_lab_report(&run.report).map_err(|e| ArgError(format!("internal: {e}")))?;
    let tables =
        ripple_lab::render_tables(&run.report).map_err(|e| ArgError(format!("internal: {e}")))?;
    print!("{tables}");
    if let Some(path) = args.flag("out") {
        fs::write(path, &tables)?;
        println!("tables written to {path}");
    }
    if let Some(path) = common.metrics.as_deref() {
        fs::write(path, run.report.to_pretty_string())?;
        println!("metrics written to {path}");
    }
    Ok(())
}

fn print_fleet_table(report: &Value) {
    let get_u = |v: &Value, k: &str| v.get(k).ok().and_then(|x| x.as_u64().ok()).unwrap_or(0);
    let get_f = |v: &Value, k: &str| v.get(k).ok().and_then(|x| x.as_f64().ok()).unwrap_or(0.0);
    println!(
        "fleet: {} instances over {} services, {} epochs, canary {}%, seed {}",
        get_u(report, "instances"),
        get_u(report, "services"),
        get_u(report, "epochs"),
        get_u(report, "canary_pct"),
        get_u(report, "seed"),
    );
    println!(
        "{:<5} {:<5} {:>10} {:>13} {:>13} {:>10} {:>7}  decisions",
        "epoch", "drift", "fleet-mpki", "baseline-mpki", "canary-delta%", "cache-hit%", "shards"
    );
    let entries = report
        .get("epoch_reports")
        .ok()
        .and_then(|e| e.as_array().ok())
        .unwrap_or(&[]);
    for entry in entries {
        let canary = entry.get("canary").ok();
        let cache = entry.get("artifact_cache").ok();
        let health = entry.get("shard_health").ok();
        let decisions = canary
            .and_then(|c| c.get("decisions").ok())
            .and_then(|d| d.as_array().ok())
            .map(|ds| {
                ds.iter()
                    .filter_map(|d| d.as_str().ok())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .unwrap_or_default();
        let drift = entry
            .get("drift")
            .ok()
            .and_then(|d| d.as_bool().ok())
            .unwrap_or(false);
        let (ok_shards, failed) = health
            .map(|h| (get_u(h, "shards_ok"), get_u(h, "shards_failed")))
            .unwrap_or((0, 0));
        println!(
            "{:<5} {:<5} {:>10.3} {:>13.3} {:>13.2} {:>10.1} {:>7}  {}",
            get_u(entry, "epoch"),
            if drift { "yes" } else { "-" },
            get_f(entry, "fleet_mpki"),
            get_f(entry, "baseline_mpki"),
            canary.map(|c| get_f(c, "delta_pct")).unwrap_or(0.0),
            cache.map(|c| get_f(c, "hit_rate") * 100.0).unwrap_or(0.0),
            format!("{}/{}", ok_shards, ok_shards + failed),
            decisions
        );
    }
}

fn load(
    app_id: App,
    input: InputConfig,
    budget: u64,
) -> Result<(Application, Layout, ripple_trace::BbTrace), Box<dyn Error>> {
    let app = generate(&app_id.spec());
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let profile = collect_profile(&app, &layout, input, budget)?;
    Ok((app, layout, profile.trace))
}

/// Lists every registered replacement policy straight from the registry —
/// the README's policy table is regenerated from this output.
fn policies_cmd(args: &Args) -> CmdResult {
    args.expect_flags(&[])?;
    println!(
        "{:<12} {:<8} {:<17} {:<7} description",
        "policy", "aliases", "family", "future"
    );
    for id in PolicyRegistry::global().all() {
        let d = id.descriptor();
        let aliases = if d.aliases.is_empty() {
            "-".to_string()
        } else {
            d.aliases.join(",")
        };
        println!(
            "{:<12} {:<8} {:<17} {:<7} {}",
            d.name,
            aliases,
            d.family.name(),
            if d.needs_future_index { "yes" } else { "no" },
            d.description
        );
    }
    Ok(())
}

fn apps(args: &Args) -> CmdResult {
    args.expect_flags(&[])?;
    println!(
        "{:<16} {:>9} {:>8} {:>10} {:>5}",
        "app", "functions", "blocks", "text(KiB)", "jit"
    );
    for app_id in App::ALL {
        let app = generate(&app_id.spec());
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        println!(
            "{:<16} {:>9} {:>8} {:>10} {:>5}",
            app_id.name(),
            app.program.num_functions(),
            app.program.num_blocks(),
            layout.code_bytes() / 1024,
            if app_id.has_jit() { "yes" } else { "no" }
        );
    }
    Ok(())
}

/// Exports an application's workload specification as editable JSON —
/// the starting point for modelling a custom application.
fn spec_cmd(args: &Args) -> CmdResult {
    args.expect_flags(&["out"])?;
    let app_id = parse_app(args)?;
    let json = app_id.spec().to_json().to_pretty_string();
    match args.flag("out") {
        Some(path) => {
            fs::write(path, &json)?;
            println!("wrote {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

/// Computes and exports an injection plan (the "link-time artifact"): the
/// list of (cue block, victim code location) pairs as JSON.
fn plan_cmd(args: &Args) -> CmdResult {
    args.expect_flags(&["threshold", "prefetcher", "instructions", "out"])?;
    let app_id = parse_app(args)?;
    let budget = args.parse_flag("instructions", 600_000u64)?;
    let threshold = parse_threshold(args, 0.55)?;
    let prefetcher = parse_prefetcher(args)?;
    let (app, layout, trace) = load(app_id, InputConfig::training(app_id.spec().seed), budget)?;
    let config = RippleConfig::builder()
        .threshold(threshold)
        .sim(
            SimConfig::builder()
                .prefetcher(prefetcher)
                .build()
                .map_err(ripple::Error::from)?,
        )
        .build()
        .map_err(ripple::Error::from)?;
    let ripple = Ripple::train(&app.program, &layout, &trace, config)?;
    let (plan, cov) = ripple.plan()?;
    println!(
        "{app_id}: {} injections covering {}/{} windows ({:.1}%)",
        plan.len(),
        cov.covered_windows,
        cov.total_windows,
        cov.coverage() * 100.0
    );
    if let Some(path) = args.flag("out") {
        fs::write(path, plan.to_json().to_pretty_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn profile(args: &Args) -> CmdResult {
    args.expect_flags(&["instructions", "input", "out", "sync"])?;
    let app_id = parse_app(args)?;
    let budget = args.parse_flag("instructions", 400_000u64)?;
    let input_id = args.parse_flag("input", 0u32)?;
    let sync_interval = args.parse_flag("sync", 0u64)?;
    let spec = app_id.spec();
    let app = generate(&spec);
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let input = InputConfig::numbered(input_id, spec.seed);

    let executed = ripple_workloads::execute(&app.program, &app.model, input, budget);
    let bytes = if sync_interval == 0 {
        ripple_trace::record_trace(&app.program, &layout, executed.iter())
    } else {
        // Periodic PSB checkpoints: slightly larger stream, but a lossy
        // replay can resynchronize mid-stream instead of dropping the
        // whole tail after a corrupt span.
        ripple_trace::record_trace_with_sync(&app.program, &layout, executed.iter(), sync_interval)
    };
    println!("profiled {app_id} input#{input_id}");
    println!("  executed blocks  {}", executed.len());
    println!(
        "  instructions     {}",
        executed.dynamic_instruction_count(&app.program)
    );
    // Guard the per-block rate: an empty trace (zero-instruction budget)
    // must not print NaN.
    let bytes_per_block = if executed.is_empty() {
        0.0
    } else {
        bytes.len() as f64 / executed.len() as f64
    };
    println!(
        "  packet bytes     {} ({bytes_per_block:.3} B/block)",
        bytes.len()
    );
    if let Some(path) = args.flag("out") {
        fs::write(path, &bytes)?;
        println!("  written to       {path}");
    }
    Ok(())
}

fn inspect(args: &Args) -> CmdResult {
    args.expect_flags(&["app"])?;
    let path = args
        .positional(0)
        .ok_or_else(|| ArgError("missing <FILE> argument".into()))?;
    let name = args.flag("app").ok_or_else(|| {
        ArgError("--app is required (traces are decoded against the app's CFG)".into())
    })?;
    let app_id = find_app(name)?;
    let app = generate(&app_id.spec());
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let bytes = fs::read(path)?;
    let trace = ripple_trace::reconstruct_trace(&app.program, &layout, &bytes)?;
    println!("decoded {path} against {app_id}");
    println!("  blocks            {}", trace.len());
    println!("  unique blocks     {}", trace.unique_blocks());
    println!(
        "  instructions      {}",
        trace.dynamic_instruction_count(&app.program)
    );
    println!("  footprint lines   {}", trace.footprint_lines(&layout));
    Ok(())
}

fn simulate_cmd(args: &Args) -> CmdResult {
    args.expect_flags(&CommonRunArgs::allowed(&[
        "policy",
        "prefetcher",
        "instructions",
        "trace",
        "lossy",
        "max-drop-ratio",
        "replay-shards",
    ]))?;
    let common = CommonRunArgs::extract(args)?;
    let app_id = parse_app(args)?;
    let budget = args.parse_flag("instructions", 400_000u64)?;
    let policy = parse_policy(args.flag("policy").unwrap_or("lru"))?;
    let prefetcher = parse_prefetcher(args)?;
    let max_drop_ratio = args.parse_flag("max-drop-ratio", 1.0f64)?;
    if !max_drop_ratio.is_finite() || !(0.0..=1.0).contains(&max_drop_ratio) {
        return Err(Box::new(ArgError(format!(
            "--max-drop-ratio: {max_drop_ratio} is out of range (must be within 0.0..=1.0)"
        ))));
    }
    if args.switch("lossy") && args.flag("trace").is_none() {
        return Err(Box::new(ArgError(
            "--lossy only applies when replaying a recorded stream (--trace FILE)".into(),
        )));
    }
    let (recorder, metrics) = build_recorder(&common);
    let wall = std::time::Instant::now();

    let cfg = SimConfig::builder()
        .policy(policy)
        .prefetcher(prefetcher)
        .replay_shards(parse_replay_shards(args)?)
        .build()
        .map_err(ripple::Error::from)?;

    // Replay a recorded packet stream, or execute the app fresh.
    let (app, layout, trace, health) = match args.flag("trace") {
        Some(path) => {
            let spec = app_id.spec();
            let app = generate(&spec);
            let layout = Layout::new(&app.program, &LayoutConfig::default());
            let bytes = fs::read(path)?;
            if args.switch("lossy") {
                let options = DecodeOptions { max_drop_ratio };
                let lossy =
                    ripple_trace::reconstruct_trace_lossy(&app.program, &layout, &bytes, &options)
                        .map_err(ripple::Error::from)?;
                (app, layout, lossy.trace, Some(lossy.health))
            } else {
                let trace = ripple_trace::reconstruct_trace(&app.program, &layout, &bytes)
                    .map_err(ripple::Error::from)?;
                (app, layout, trace, None)
            }
        }
        None => {
            let (app, layout, trace) = load(app_id, training_input(app_id, &common), budget)?;
            (app, layout, trace, None)
        }
    };

    let mut session = SimSession::new(&app.program, &layout, &trace, cfg).with_recorder(recorder);
    if let Some(health) = health {
        session = session.with_trace_health(health);
    }
    let r = session.run(policy);
    println!("{app_id} / {} / {}", policy.name(), prefetcher.name());
    println!("  instructions   {}", r.instructions);
    println!("  cycles         {:.0}", r.cycles);
    println!("  IPC            {:.3}", r.ipc());
    println!("  demand misses  {}", r.demand_misses);
    println!("  MPKI           {:.2}", r.mpki());
    println!("  compulsory     {:.2} MPKI", r.compulsory_mpki());
    if prefetcher != PrefetcherKind::None {
        println!(
            "  prefetches     {} issued, {} fills",
            r.prefetches_issued, r.prefetch_fills
        );
    }
    if let Some(h) = session.trace_health() {
        println!(
            "  trace health   {} of {} bytes dropped ({:.2}%), {} packets lost, {} resyncs",
            h.dropped_bytes,
            h.total_bytes,
            h.drop_ratio() * 100.0,
            h.dropped_packets,
            h.resync_events
        );
    }
    write_metrics(&common, "simulate", app_id.name(), metrics, wall)?;
    Ok(())
}

/// Runs the fault-injection dimension of the `ripple-check` oracle suite:
/// `--cases` mutated traces and reports, all of which must surface typed
/// errors (never panics) and keep the lossy decoder's loss accounting
/// consistent.
fn faults_cmd(args: &Args) -> CmdResult {
    args.expect_flags(&["cases", "seed"])?;
    let cases = args.parse_flag("cases", 500u64)?;
    let seed = args.parse_flag("seed", 0x5269_7070_6c65u64)?;
    println!("injecting faults into {cases} cases (seed {seed:#x})");
    let report = ripple_check::run_corpus(
        seed,
        cases,
        &[ripple_check::Dimension::Faults],
        |done, total| {
            if done % 100 == 0 || done == total {
                eprintln!("  {done}/{total} cases");
            }
        },
    );
    if report.failures.is_empty() {
        println!(
            "ok: {} corrupted inputs handled, zero panics",
            report.total_passed()
        );
        return Ok(());
    }
    for failure in &report.failures {
        eprintln!(
            "FAULT HANDLING FAILURE (case seed {:#x}): {}",
            failure.case_seed, failure.message
        );
        eprintln!("minimized repro:\n{}", failure.repro);
        eprintln!("replay: {}", failure.replay_line());
    }
    Err(format!(
        "{} of {cases} fault cases mishandled",
        report.failures.len()
    )
    .into())
}

fn compare(args: &Args) -> CmdResult {
    args.expect_flags(&CommonRunArgs::allowed(&[
        "prefetcher",
        "instructions",
        "replay-shards",
    ]))?;
    let common = CommonRunArgs::extract(args)?;
    let app_id = parse_app(args)?;
    let budget = args.parse_flag("instructions", 400_000u64)?;
    let prefetcher = parse_prefetcher(args)?;
    let threads = effective_threads(common.threads);
    let replay_shards = parse_replay_shards(args)?;
    let (recorder, metrics) = build_recorder(&common);
    let wall = std::time::Instant::now();
    let (app, layout, trace) = load(app_id, training_input(app_id, &common), budget)?;
    // One session: every registered policy replays the same recorded
    // request stream as parallel harness jobs (the offline ideals share
    // the session's single recording pass). Line temperatures are profiled
    // once from the trace; temperature-hinted policies (TRRIP) consume
    // them, the rest ignore them.
    let temperatures = profile_temperatures(&layout, &trace);
    let mut base_cfg = SimConfig::builder()
        .prefetcher(prefetcher)
        .replay_shards(replay_shards)
        .build()
        .map_err(ripple::Error::from)?;
    base_cfg.temperatures = Some(Arc::new(temperatures));
    let session = SimSession::new(&app.program, &layout, &trace, base_cfg).with_recorder(recorder);
    let (policies, results) = policy_matrix_all(&session, threads)?;
    let lru = &results[PolicyKind::LRU.index()];
    println!("{app_id} under {} prefetching", prefetcher.name());
    println!(
        "{:<12} {:>9} {:>8} {:>10}",
        "policy", "misses", "mpki", "vs-lru"
    );
    for (kind, r) in policies.iter().zip(&results) {
        println!(
            "{:<12} {:>9} {:>8.2} {:>+9.2}%",
            kind.name(),
            r.demand_misses,
            r.mpki(),
            r.speedup_pct_over(lru)
        );
    }
    write_metrics(&common, "compare", app_id.name(), metrics, wall)?;
    Ok(())
}

fn optimize(args: &Args) -> CmdResult {
    args.expect_flags(&CommonRunArgs::allowed(&[
        "threshold",
        "prefetcher",
        "underlying",
        "instructions",
    ]))?;
    let common = CommonRunArgs::extract(args)?;
    let app_id = parse_app(args)?;
    let budget = args.parse_flag("instructions", 600_000u64)?;
    let threshold = parse_threshold(args, 0.55)?;
    let prefetcher = parse_prefetcher(args)?;
    let underlying = parse_policy(args.flag("underlying").unwrap_or("lru"))?;
    let threads = common.threads;
    let (recorder, metrics) = build_recorder(&common);
    let wall = std::time::Instant::now();
    let (app, layout, trace) = load(app_id, training_input(app_id, &common), budget)?;

    let config = RippleConfig::builder()
        .threshold(threshold)
        .underlying(underlying)
        .threads(threads)
        .sim(
            SimConfig::builder()
                .prefetcher(prefetcher)
                .build()
                .map_err(ripple::Error::from)?,
        )
        .build()
        .map_err(ripple::Error::from)?;
    let ripple = Ripple::train_with_recorder(&app.program, &layout, &trace, config, recorder)?;
    let o = ripple.evaluate(&trace)?;

    println!(
        "{app_id}: Ripple-{} under {} (threshold {threshold})",
        underlying.name(),
        prefetcher.name()
    );
    println!("  baseline misses     {}", o.lru_reference.demand_misses);
    println!("  ripple misses       {}", o.ripple.demand_misses);
    println!("  ideal misses        {}", o.ideal.demand_misses);
    println!(
        "  miss reduction      {:+.2}% (ideal {:+.2}%)",
        o.miss_reduction_pct(),
        o.ideal_miss_reduction_pct()
    );
    println!(
        "  speedup             {:+.2}% (ideal {:+.2}%, ideal cache {:+.2}%)",
        o.speedup_pct(),
        o.ideal_speedup_pct(),
        o.ideal_cache_speedup_pct()
    );
    println!(
        "  coverage            {:.1}%",
        o.coverage.coverage() * 100.0
    );
    println!(
        "  accuracy            {:.1}% (underlying {:.1}%)",
        o.ripple_accuracy.accuracy() * 100.0,
        o.underlying_accuracy.accuracy() * 100.0
    );
    println!(
        "  static overhead     {:.2}% ({} invalidates)",
        o.static_overhead_pct, o.injected_static
    );
    println!("  dynamic overhead    {:.2}%", o.dynamic_overhead_pct);
    write_metrics(&common, "optimize", app_id.name(), metrics, wall)?;
    Ok(())
}

fn sweep_cmd(args: &Args) -> CmdResult {
    args.expect_flags(&CommonRunArgs::allowed(&["prefetcher", "instructions"]))?;
    let common = CommonRunArgs::extract(args)?;
    let app_id = parse_app(args)?;
    let budget = args.parse_flag("instructions", 600_000u64)?;
    let prefetcher = parse_prefetcher(args)?;
    let threads = common.threads;
    let (recorder, metrics) = build_recorder(&common);
    let wall = std::time::Instant::now();
    let (app, layout, trace) = load(app_id, training_input(app_id, &common), budget)?;
    let config = RippleConfig::builder()
        .threads(threads)
        .sim(
            SimConfig::builder()
                .prefetcher(prefetcher)
                .build()
                .map_err(ripple::Error::from)?,
        )
        .build()
        .map_err(ripple::Error::from)?;
    let ripple = Ripple::train_with_recorder(&app.program, &layout, &trace, config, recorder)?;
    let thresholds: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    let points = sweep(&ripple, &trace, &thresholds)?;
    println!("{app_id} threshold sweep under {}", prefetcher.name());
    println!(" threshold  coverage  accuracy   speedup");
    for p in &points {
        println!(
            "   {:>5.2}    {:>6.1}%   {:>6.1}%   {:>+6.2}%",
            p.threshold,
            p.coverage * 100.0,
            p.accuracy * 100.0,
            p.speedup_pct
        );
    }
    if let Some(b) = best_threshold(&points) {
        println!("best: {:.2} ({:+.2}%)", b.threshold, b.speedup_pct);
    }
    write_metrics(&common, "sweep", app_id.name(), metrics, wall)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &[&str]) -> Result<(), String> {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        dispatch(&argv).map_err(|e| e.to_string())
    }

    #[test]
    fn policies_subcommand_runs_and_rejects_flags() {
        run(&["policies"]).unwrap();
        let err = run(&["policies", "--florb", "1"]).unwrap_err();
        assert!(err.contains("unknown flag --florb"), "{err}");
    }

    #[test]
    fn usage_lists_registered_policies() {
        let u = usage();
        // The policy list is registry-derived: a new policy (TRRIP) shows
        // up without any usage-string edit.
        assert!(u.contains("trrip"), "{u}");
        assert!(u.contains("demand-min"), "{u}");
        assert!(u.contains("ripple-cli policies"), "{u}");
    }

    #[test]
    fn unknown_app_error_lists_valid_values() {
        let err = run(&["simulate", "tomact"]).unwrap_err();
        assert!(err.contains("unknown application"), "{err}");
        assert!(err.contains("tomcat"), "must list valid apps: {err}");
        assert!(err.contains("kafka"), "must list valid apps: {err}");
    }

    #[test]
    fn unknown_prefetcher_error_lists_valid_values() {
        let err = run(&["simulate", "tomcat", "--prefetcher", "fdpi"]).unwrap_err();
        assert!(err.contains("unknown prefetcher \"fdpi\""), "{err}");
        assert!(err.contains("none nlp fdip"), "{err}");
    }

    #[test]
    fn unknown_policy_error_lists_valid_values() {
        let err = run(&["simulate", "tomcat", "--policy", "mru"]).unwrap_err();
        assert!(err.contains("unknown policy \"mru\""), "{err}");
        assert!(err.contains("demand-min"), "{err}");
    }

    #[test]
    fn out_of_range_threshold_is_rejected() {
        for bad in ["1.5", "-0.1", "NaN", "inf"] {
            let err = run(&["plan", "tomcat", "--threshold", bad]).unwrap_err();
            assert!(err.contains("out of range"), "--threshold {bad}: {err}");
        }
    }

    #[test]
    fn unknown_phase_set_is_rejected() {
        let err = run(&["validate-metrics", "x.json", "--phases", "bogus"]).unwrap_err();
        assert!(err.contains("unknown phase set"), "{err}");
        assert!(err.contains("compare pipeline"), "{err}");
    }

    #[test]
    fn unknown_flag_is_rejected_per_command() {
        let err = run(&["compare", "tomcat", "--florb", "1"]).unwrap_err();
        assert!(err.contains("unknown flag --florb"), "{err}");
    }

    #[test]
    fn lossy_without_trace_is_rejected() {
        let err = run(&["simulate", "tomcat", "--lossy"]).unwrap_err();
        assert!(err.contains("--lossy only applies"), "{err}");
    }

    #[test]
    fn out_of_range_drop_ratio_is_rejected() {
        for bad in ["1.5", "-0.1", "NaN"] {
            let err = run(&[
                "simulate",
                "tomcat",
                "--trace",
                "x.bin",
                "--lossy",
                "--max-drop-ratio",
                bad,
            ])
            .unwrap_err();
            assert!(
                err.contains("out of range"),
                "--max-drop-ratio {bad}: {err}"
            );
        }
    }

    #[test]
    fn trace_replay_strict_rejects_corruption_and_lossy_recovers() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("ripple_cli_replay.bin");
        let trace_path = trace_path.to_str().unwrap().to_string();

        // Record a checkpointed stream, then replay it strictly: identical
        // simulator output to the in-process path.
        run(&[
            "profile",
            "tomcat",
            "--instructions",
            "20000",
            "--sync",
            "64",
            "--out",
            &trace_path,
        ])
        .unwrap();
        run(&["simulate", "tomcat", "--trace", &trace_path]).unwrap();

        // Corrupt a mid-stream span: strict replay fails with a decode
        // error, lossy replay degrades gracefully, and a zero drop bound
        // refuses the loss.
        let mut bytes = fs::read(&trace_path).unwrap();
        let start = bytes.len() / 3;
        let end = (start + 24).min(bytes.len());
        for b in &mut bytes[start..end] {
            *b ^= 0xff;
        }
        let corrupt_path = dir.join("ripple_cli_replay_corrupt.bin");
        let corrupt_path = corrupt_path.to_str().unwrap().to_string();
        fs::write(&corrupt_path, &bytes).unwrap();

        let err = run(&["simulate", "tomcat", "--trace", &corrupt_path]).unwrap_err();
        assert!(err.contains("trace reconstruction failed"), "{err}");
        run(&["simulate", "tomcat", "--trace", &corrupt_path, "--lossy"]).unwrap();
        let err = run(&[
            "simulate",
            "tomcat",
            "--trace",
            &corrupt_path,
            "--lossy",
            "--max-drop-ratio",
            "0.0",
        ])
        .unwrap_err();
        assert!(err.contains("drop-ratio"), "{err}");

        fs::remove_file(&trace_path).ok();
        fs::remove_file(&corrupt_path).ok();
    }

    #[test]
    fn faults_subcommand_runs_a_small_corpus() {
        run(&["faults", "--cases", "6", "--seed", "11"]).unwrap();
        let err = run(&["faults", "--cases", "6", "--florb", "1"]).unwrap_err();
        assert!(err.contains("unknown flag --florb"), "{err}");
    }

    #[test]
    fn validate_metrics_round_trip() {
        use ripple_obs::{FieldValue, MetricsRecorder};
        let m = MetricsRecorder::new();
        for name in COMPARE_PHASES {
            m.phase(name, 1_000);
        }
        m.event(
            "harness.job",
            &[
                ("scope", FieldValue::Str("policy_matrix")),
                ("job", FieldValue::U64(0)),
                ("queue_wait_ns", FieldValue::U64(5)),
                ("run_ns", FieldValue::U64(995)),
            ],
        );
        let report = run_report("compare", "tomcat", &m.snapshot(), 10_000);
        let path = std::env::temp_dir().join("ripple_cli_validate_metrics_round_trip.json");
        fs::write(&path, report.to_pretty_string()).unwrap();
        let path = path.to_str().unwrap().to_string();
        // Inferred phase set (from the report's own `command`) and the
        // explicit override must both validate.
        run(&["validate-metrics", &path]).unwrap();
        run(&["validate-metrics", &path, "--phases", "compare"]).unwrap();
        // The pipeline set requires train/eval phases this report lacks.
        let err = run(&["validate-metrics", &path, "--phases", "pipeline"]).unwrap_err();
        assert!(err.contains("train.oracle_replay"), "{err}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn fleet_smoke_is_thread_deterministic_and_validates() {
        let dir = std::env::temp_dir();
        let path_a = dir.join("ripple_cli_fleet_a.json");
        let path_b = dir.join("ripple_cli_fleet_b.json");
        let (path_a, path_b) = (
            path_a.to_str().unwrap().to_string(),
            path_b.to_str().unwrap().to_string(),
        );
        let base = [
            "fleet",
            "--instances",
            "3",
            "--epochs",
            "2",
            "--canary-pct",
            "50",
            "--seed",
            "7",
            "--shard-instructions",
            "4000",
        ];
        let mut argv_a: Vec<&str> = base.to_vec();
        argv_a.extend(["--threads", "1", "--metrics", &path_a]);
        run(&argv_a).unwrap();
        let mut argv_b: Vec<&str> = base.to_vec();
        argv_b.extend(["--threads", "4", "--metrics", &path_b]);
        run(&argv_b).unwrap();
        assert_eq!(
            fs::read_to_string(&path_a).unwrap(),
            fs::read_to_string(&path_b).unwrap(),
            "fleet report diverged across thread counts"
        );
        // Schema-tag inference and the explicit override both validate.
        run(&["validate-metrics", &path_a]).unwrap();
        run(&["validate-metrics", &path_a, "--phases", "fleet"]).unwrap();
        // A fleet report is not a run report: forcing the wrong set fails.
        let err = run(&["validate-metrics", &path_a, "--phases", "pipeline"]).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        fs::remove_file(&path_a).ok();
        fs::remove_file(&path_b).ok();
    }

    #[test]
    fn lab_list_and_describe_cover_the_builtins() {
        run(&["lab", "list"]).unwrap();
        run(&["lab", "describe", "lab-smoke"]).unwrap();
        let err = run(&["lab", "describe", "fig99"]).unwrap_err();
        assert!(err.contains("unknown experiment"), "{err}");
        assert!(err.contains("lab-smoke"), "must list builtins: {err}");
        let err = run(&["lab", "party"]).unwrap_err();
        assert!(err.contains("unknown lab action"), "{err}");
        let err = run(&["lab"]).unwrap_err();
        assert!(err.contains("missing lab action"), "{err}");
        let err = run(&["lab", "run"]).unwrap_err();
        assert!(err.contains("missing <experiment>"), "{err}");
        let err = run(&["lab", "run", "lab-smoke", "--florb", "1"]).unwrap_err();
        assert!(err.contains("unknown flag --florb"), "{err}");
    }

    #[test]
    fn lab_run_smoke_is_thread_deterministic_and_validates() {
        let dir = std::env::temp_dir();
        let path_a = dir.join("ripple_cli_lab_a.json");
        let path_b = dir.join("ripple_cli_lab_b.json");
        let (path_a, path_b) = (
            path_a.to_str().unwrap().to_string(),
            path_b.to_str().unwrap().to_string(),
        );
        let base = ["lab", "run", "lab-smoke", "--instructions", "20000"];
        let mut argv_a: Vec<&str> = base.to_vec();
        argv_a.extend(["--threads", "1", "--metrics", &path_a]);
        run(&argv_a).unwrap();
        let mut argv_b: Vec<&str> = base.to_vec();
        argv_b.extend(["--threads", "4", "--metrics", &path_b]);
        run(&argv_b).unwrap();
        assert_eq!(
            fs::read_to_string(&path_a).unwrap(),
            fs::read_to_string(&path_b).unwrap(),
            "lab report diverged across thread counts"
        );
        // Schema-tag inference and the explicit override both validate.
        run(&["validate-metrics", &path_a]).unwrap();
        run(&["validate-metrics", &path_a, "--phases", "lab"]).unwrap();
        // A lab report is not a run report: forcing the wrong set fails.
        let err = run(&["validate-metrics", &path_a, "--phases", "pipeline"]).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        // A declaration file on disk runs through the same path as a
        // built-in name.
        let decl_path = dir.join("ripple_cli_lab_decl.json");
        let decl_path = decl_path.to_str().unwrap().to_string();
        let decl = ripple_lab::builtin("lab-smoke").unwrap();
        fs::write(
            &decl_path,
            ripple_json::ToJson::to_json(&decl).to_pretty_string(),
        )
        .unwrap();
        run(&["lab", "describe", &decl_path]).unwrap();
        fs::remove_file(&decl_path).ok();
        fs::remove_file(&path_a).ok();
        fs::remove_file(&path_b).ok();
    }

    #[test]
    fn fleet_rejects_bad_knobs() {
        let err = run(&["fleet", "--canary-pct", "150"]).unwrap_err();
        assert!(err.contains("canary-pct"), "{err}");
        let err = run(&["fleet", "--instances", "abc"]).unwrap_err();
        assert!(err.contains("instances"), "{err}");
        let err = run(&["fleet", "--florb", "1"]).unwrap_err();
        assert!(err.contains("unknown flag --florb"), "{err}");
        let err = run(&["fleet", "--drift-epoch", "x"]).unwrap_err();
        assert!(err.contains("drift-epoch"), "{err}");
    }
}
