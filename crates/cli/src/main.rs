//! `ripple-cli` — command-line driver for the Ripple reproduction.
//!
//! ```text
//! ripple-cli apps
//! ripple-cli policies
//! ripple-cli profile  <app> [--instructions N] [--input K] [--out FILE]
//! ripple-cli inspect  <FILE> --app <app>
//! ripple-cli simulate <app> [--policy P] [--prefetcher P] [--instructions N]
//!                            [--trace FILE] [--lossy] [--max-drop-ratio R]
//! ripple-cli compare  <app> [--prefetcher P] [--instructions N] [--threads N]
//! ripple-cli optimize <app> [--threshold T] [--prefetcher P]
//!                            [--underlying P] [--instructions N] [--threads N]
//! ripple-cli sweep    <app> [--prefetcher P] [--instructions N] [--threads N]
//! ripple-cli faults   [--cases N] [--seed S]
//! ```
//!
//! The `compare`, `optimize` and `sweep` matrices run through the shared
//! parallel evaluation harness; `--threads` caps its workers (default: the
//! machine's available parallelism) without changing any output bit.
//!
//! Failures map to distinct exit codes (documented in `DESIGN.md` §10):
//! `1` runtime/io error, `2` usage or invalid configuration, `3` corrupt
//! trace, `4` isolated evaluation-job panic.

mod args;
mod commands;

use std::error::Error;
use std::process::ExitCode;

/// Exit code for a usage / configuration error (bad flag, unknown app,
/// out-of-range knob).
const EXIT_USAGE: u8 = 2;
/// Exit code for a corrupt or undecodable trace stream.
const EXIT_CORRUPT_TRACE: u8 = 3;
/// Exit code for an isolated evaluation-job panic caught by the harness.
const EXIT_JOB_PANIC: u8 = 4;

/// Maps an error to its documented exit code by walking the concrete
/// error types the commands surface.
fn exit_code_for(e: &(dyn Error + 'static)) -> u8 {
    if e.is::<args::ArgError>() {
        return EXIT_USAGE;
    }
    if let Some(err) = e.downcast_ref::<ripple::Error>() {
        return match err {
            ripple::Error::Config(_) => EXIT_USAGE,
            ripple::Error::Decode(_) | ripple::Error::Reconstruct(_) => EXIT_CORRUPT_TRACE,
            ripple::Error::Job(_) => EXIT_JOB_PANIC,
            _ => 1,
        };
    }
    if let Some(err) = e.downcast_ref::<ripple_fleet::FleetError>() {
        return match err {
            ripple_fleet::FleetError::Config(_) => EXIT_USAGE,
            ripple_fleet::FleetError::Pipeline(inner) => exit_code_for(inner),
        };
    }
    // Errors the substrate crates surface without the `ripple::Error`
    // wrapper (e.g. `inspect`'s direct decode, a bare harness failure).
    if e.is::<ripple::ripple_trace::ReconstructError>()
        || e.is::<ripple::ripple_trace::DecodePacketError>()
    {
        return EXIT_CORRUPT_TRACE;
    }
    if e.is::<ripple::JobError>() {
        return EXIT_JOB_PANIC;
    }
    if e.is::<ripple::ripple_sim::SimConfigError>() || e.is::<ripple::ConfigError>() {
        return EXIT_USAGE;
    }
    1
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            let code = exit_code_for(e.as_ref());
            if code == EXIT_USAGE {
                eprintln!("{}", commands::usage());
            }
            ExitCode::from(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(e: impl Error + 'static) -> Box<dyn Error> {
        Box::new(e)
    }

    #[test]
    fn exit_codes_follow_the_error_taxonomy() {
        use ripple::ripple_trace::ReconstructError;

        assert_eq!(
            exit_code_for(boxed(args::ArgError("bad flag".into())).as_ref()),
            EXIT_USAGE
        );
        assert_eq!(
            exit_code_for(boxed(ripple::Error::from(ReconstructError::MissingSync)).as_ref()),
            EXIT_CORRUPT_TRACE
        );
        assert_eq!(
            exit_code_for(boxed(ReconstructError::MissingSync).as_ref()),
            EXIT_CORRUPT_TRACE
        );
        let job = ripple::JobError {
            scope: "sweep".into(),
            index: 3,
            attempts: 1,
            panic_message: "boom".into(),
        };
        assert_eq!(exit_code_for(boxed(job.clone()).as_ref()), EXIT_JOB_PANIC);
        assert_eq!(
            exit_code_for(boxed(ripple::Error::from(job)).as_ref()),
            EXIT_JOB_PANIC
        );
        assert_eq!(
            exit_code_for(boxed(std::io::Error::other("disk on fire")).as_ref()),
            1
        );
        assert_eq!(
            exit_code_for(boxed(ripple_fleet::FleetError::Config("instances".into())).as_ref()),
            EXIT_USAGE
        );
        assert_eq!(
            exit_code_for(
                boxed(ripple_fleet::FleetError::Pipeline(ripple::Error::Config(
                    ripple::ConfigError::NotFinite { field: "threshold" }
                )))
                .as_ref()
            ),
            EXIT_USAGE
        );
    }
}
