//! `ripple-cli` — command-line driver for the Ripple reproduction.
//!
//! ```text
//! ripple-cli apps
//! ripple-cli profile  <app> [--instructions N] [--input K] [--out FILE]
//! ripple-cli inspect  <FILE> --app <app>
//! ripple-cli simulate <app> [--policy P] [--prefetcher P] [--instructions N]
//! ripple-cli compare  <app> [--prefetcher P] [--instructions N] [--threads N]
//! ripple-cli optimize <app> [--threshold T] [--prefetcher P]
//!                            [--underlying P] [--instructions N] [--threads N]
//! ripple-cli sweep    <app> [--prefetcher P] [--instructions N] [--threads N]
//! ```
//!
//! The `compare`, `optimize` and `sweep` matrices run through the shared
//! parallel evaluation harness; `--threads` caps its workers (default: the
//! machine's available parallelism) without changing any output bit.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
