//! Minimal flag parsing (no external dependencies).

use std::collections::HashMap;
use std::fmt;

/// A parse error with a human-readable message.
#[derive(Debug)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Flags that are boolean switches: they take no value token. Every other
/// `--flag` consumes the following token as its value.
pub const SWITCHES: &[&str] = &["progress", "lossy"];

/// Parsed positional arguments, `--flag value` pairs and bare switches.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `argv` (after the subcommand). Every `--flag` consumes the
    /// following token as its value, except the [`SWITCHES`], which stand
    /// alone.
    pub fn parse(argv: &[String]) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut it = argv.iter();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if SWITCHES.contains(&name) {
                    out.switches.push(name.to_string());
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| ArgError(format!("--{name} needs a value")))?;
                out.flags.insert(name.to_string(), value.clone());
            } else {
                out.positional.push(tok.clone());
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// A string flag.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Whether a boolean switch (see [`SWITCHES`]) was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A parsed flag with a default.
    pub fn parse_flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name}: cannot parse {v:?}"))),
        }
    }

    /// Rejects unknown flags and switches (catches typos).
    pub fn expect_flags(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.flags.keys().chain(self.switches.iter()) {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError(format!("unknown flag --{k}")));
            }
        }
        Ok(())
    }
}

/// The run-control flag cluster shared by every harness-driving
/// subcommand: `--threads N`, `--metrics FILE`, `--progress`, `--seed S`.
///
/// Parsing lives here once so `simulate`/`compare`/`optimize`/`sweep`/
/// `fleet`/`lab` cannot drift apart in how they read these flags. Each
/// command still owns its `expect_flags` allow-list; [`Self::allowed`]
/// appends the cluster's names to the command's own.
#[derive(Debug, Default, Clone)]
pub struct CommonRunArgs {
    /// `--threads N`: harness worker threads. `None` and `Some(0)` both
    /// mean "auto-detect"; results are identical at any thread count.
    pub threads: Option<usize>,
    /// `--metrics FILE`: where to dump the command's JSON report.
    pub metrics: Option<String>,
    /// `--progress`: live per-job completion lines on stderr.
    pub progress: bool,
    /// `--seed S`: the command's deterministic seed override (training
    /// input for simulation commands, service seed for `fleet`, fault
    /// injector for `lab`).
    pub seed: Option<u64>,
}

impl CommonRunArgs {
    /// The flag names this cluster consumes.
    pub const FLAGS: [&'static str; 4] = ["threads", "metrics", "progress", "seed"];

    /// A command's full allow-list: its own flags plus the cluster's.
    pub fn allowed(own: &[&'static str]) -> Vec<&'static str> {
        own.iter().copied().chain(Self::FLAGS).collect()
    }

    /// Extracts the cluster from parsed `args`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when `--threads` or `--seed` is not an
    /// unsigned integer.
    pub fn extract(args: &Args) -> Result<Self, ArgError> {
        let parse_u64 = |name: &str| -> Result<Option<u64>, ArgError> {
            match args.flag(name) {
                None => Ok(None),
                Some(v) => v
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|_| ArgError(format!("--{name}: cannot parse {v:?}"))),
            }
        };
        let threads = match args.flag("threads") {
            None => None,
            Some(v) => Some(
                v.parse::<usize>()
                    .map_err(|_| ArgError(format!("--threads: cannot parse {v:?}")))?,
            ),
        };
        Ok(CommonRunArgs {
            threads,
            metrics: args.flag("metrics").map(str::to_string),
            progress: args.switch("progress"),
            seed: parse_u64("seed")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_positional_and_flags() {
        let a = Args::parse(&v(&["kafka", "--instructions", "5000", "--policy", "lru"])).unwrap();
        assert_eq!(a.positional(0), Some("kafka"));
        assert_eq!(a.flag("policy"), Some("lru"));
        assert_eq!(a.parse_flag("instructions", 0u64).unwrap(), 5000);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&v(&["--policy"])).is_err());
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let a = Args::parse(&v(&["--florb", "1"])).unwrap();
        assert!(a.expect_flags(&["policy"]).is_err());
        assert!(a.expect_flags(&["florb"]).is_ok());
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&v(&[])).unwrap();
        assert_eq!(a.parse_flag("threshold", 0.5f64).unwrap(), 0.5);
    }

    #[test]
    fn switches_take_no_value() {
        // `--progress` must not consume the following token.
        let a = Args::parse(&v(&["kafka", "--progress", "--threads", "2"])).unwrap();
        assert!(a.switch("progress"));
        assert_eq!(a.positional(0), Some("kafka"));
        assert_eq!(a.flag("threads"), Some("2"));
        assert!(!a.switch("threads"));
        // Trailing switch needs no value either.
        let b = Args::parse(&v(&["--progress"])).unwrap();
        assert!(b.switch("progress"));
    }

    #[test]
    fn unknown_switch_is_rejected_by_expect_flags() {
        let a = Args::parse(&v(&["--progress"])).unwrap();
        assert!(a.expect_flags(&["threads"]).is_err());
        assert!(a.expect_flags(&["threads", "progress"]).is_ok());
    }

    #[test]
    fn common_cluster_extracts_all_four_flags() {
        let a = Args::parse(&v(&[
            "kafka",
            "--threads",
            "3",
            "--metrics",
            "out.json",
            "--progress",
            "--seed",
            "42",
        ]))
        .unwrap();
        let common = CommonRunArgs::extract(&a).unwrap();
        assert_eq!(common.threads, Some(3));
        assert_eq!(common.metrics.as_deref(), Some("out.json"));
        assert!(common.progress);
        assert_eq!(common.seed, Some(42));
        // The cluster's names pass a command allow-list built with it.
        assert!(a
            .expect_flags(&CommonRunArgs::allowed(&["instructions"]))
            .is_ok());
    }

    #[test]
    fn common_cluster_defaults_and_rejects_garbage() {
        let empty = CommonRunArgs::extract(&Args::parse(&v(&[])).unwrap()).unwrap();
        assert_eq!(empty.threads, None);
        assert_eq!(empty.metrics, None);
        assert!(!empty.progress);
        assert_eq!(empty.seed, None);
        for bad in [&["--threads", "x"][..], &["--seed", "-1"][..]] {
            let a = Args::parse(&v(bad)).unwrap();
            assert!(CommonRunArgs::extract(&a).is_err(), "{bad:?}");
        }
    }
}
