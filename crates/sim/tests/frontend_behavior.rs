//! Behavioral tests of the frontend: warmup gating, scripted
//! invalidations, prefetcher effects and the timing model.

use std::sync::Arc;

use ripple_program::{Layout, LayoutConfig, LineAddr};
use ripple_sim::{
    simulate, simulate_ideal_cache, simulate_with_sink, CacheGeometry, EvictionMechanism,
    PolicyKind, PrefetcherKind, SimConfig, VecSink,
};
use ripple_workloads::{execute, generate, AppSpec, InputConfig};

fn setup() -> (ripple_workloads::Application, Layout, ripple_trace::BbTrace) {
    let app = generate(&AppSpec::tiny(4));
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let trace = execute(&app.program, &app.model, InputConfig::training(4), 50_000);
    (app, layout, trace)
}

fn small_cfg() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.l1i = CacheGeometry::new(1024, 2);
    cfg
}

#[test]
fn warmup_fraction_gates_statistics() {
    let (app, layout, trace) = setup();
    let mut cold = small_cfg();
    cold.warmup_fraction = 0.0;
    let mut warm = small_cfg();
    warm.warmup_fraction = 0.5;
    let rc = simulate(&app.program, &layout, &trace, &cold);
    let rw = simulate(&app.program, &layout, &trace, &warm);
    assert!(rw.blocks < rc.blocks);
    assert!(rw.instructions < rc.instructions);
    assert!(rw.demand_misses < rc.demand_misses);
    // Compulsory misses concentrate in the warmup prefix.
    assert!(rw.compulsory_misses < rc.compulsory_misses);
}

#[test]
fn scripted_invalidation_of_ideal_victims_reproduces_opt() {
    // The oracle experiment from DESIGN.md §3a: invalidate every ideal
    // victim right before its eviction trigger and LRU becomes OPT.
    let (app, layout, trace) = setup();
    let opt_cfg = small_cfg().with_policy(PolicyKind::OPT);
    let mut sink = VecSink::new();
    let opt = simulate_with_sink(&app.program, &layout, &trace, &opt_cfg, &mut sink);
    let mut script: Vec<(u64, LineAddr)> = sink
        .events()
        .iter()
        .map(|e| (e.evict_pos, e.victim))
        .collect();
    script.sort_unstable_by_key(|&(p, _)| p);
    let mut lru_cfg = small_cfg();
    lru_cfg.scripted_invalidations = Some(Arc::new(script));
    let scripted = simulate(&app.program, &layout, &trace, &lru_cfg);
    assert_eq!(
        scripted.demand_misses, opt.demand_misses,
        "scripted LRU must equal OPT"
    );
}

#[test]
fn scripted_invalidate_hits_respect_warmup() {
    // Scripted invalidations must be stats-gated exactly like injected
    // ones: architectural state always updates, but hits landing in the
    // warmup prefix must not count.
    let (app, layout, trace) = setup();
    // A script that provably hits: invalidate every OPT victim at its
    // eviction trigger (same construction as the OPT oracle test above).
    let opt_cfg = small_cfg().with_policy(PolicyKind::OPT);
    let mut sink = VecSink::new();
    simulate_with_sink(&app.program, &layout, &trace, &opt_cfg, &mut sink);
    let mut script: Vec<(u64, LineAddr)> = sink
        .events()
        .iter()
        .map(|e| (e.evict_pos, e.victim))
        .collect();
    script.sort_unstable_by_key(|&(p, _)| p);
    let script = Arc::new(script);

    let mut cold = small_cfg();
    cold.warmup_fraction = 0.0;
    cold.scripted_invalidations = Some(script.clone());
    let mut warm = small_cfg();
    warm.warmup_fraction = 0.5;
    warm.scripted_invalidations = Some(script.clone());
    let rc = simulate(&app.program, &layout, &trace, &cold);
    let rw = simulate(&app.program, &layout, &trace, &warm);

    // The gate is stats-only, so every script entry hits (or misses)
    // identically in both runs; the warm run must simply not count the
    // hits scheduled inside its warmup prefix.
    let warmup_until = (trace.len() as f64 * 0.5) as u64;
    let in_warmup = script.iter().filter(|&&(p, _)| p < warmup_until).count() as u64;
    assert!(
        in_warmup > 0,
        "fixture must schedule invalidations in warmup"
    );
    assert!(rc.invalidate_hits >= in_warmup);
    assert_eq!(rw.invalidate_hits, rc.invalidate_hits - in_warmup);
}

#[test]
fn noop_mechanism_leaves_cache_untouched() {
    let (app, layout, trace) = setup();
    // Without injected instructions there is nothing to execute, so the
    // mechanisms are equivalent on a pristine binary.
    for mech in [
        EvictionMechanism::Invalidate,
        EvictionMechanism::Demote,
        EvictionMechanism::NoOp,
    ] {
        let mut cfg = small_cfg();
        cfg.eviction_mechanism = mech;
        let r = simulate(&app.program, &layout, &trace, &cfg);
        assert_eq!(r.invalidate_hits, 0);
        assert_eq!(r.invalidate_instructions, 0);
    }
}

#[test]
fn fdip_tracks_mispredictions_and_prefetches() {
    let (app, layout, trace) = setup();
    let cfg = small_cfg().with_prefetcher(PrefetcherKind::Fdip);
    let r = simulate(&app.program, &layout, &trace, &cfg);
    assert!(r.prefetches_issued > 0);
    assert!(r.prefetch_fills > 0);
    assert!(r.mispredictions > 0, "tiny app has noisy branches");
    assert!(r.prefetch_fills <= r.prefetches_issued);
}

#[test]
fn nlp_prefetches_next_lines_only() {
    let (app, layout, trace) = setup();
    let cfg = small_cfg().with_prefetcher(PrefetcherKind::NextLine);
    let r = simulate(&app.program, &layout, &trace, &cfg);
    assert!(r.prefetches_issued > 0);
    assert_eq!(r.mispredictions, 0, "nlp uses no branch predictor");
}

#[test]
fn timing_reflects_miss_latency() {
    let (app, layout, trace) = setup();
    // A slower memory hierarchy must cost cycles with the same misses.
    let fast = small_cfg();
    let mut slow = small_cfg();
    slow.l2_latency *= 4;
    slow.l3_latency *= 4;
    slow.mem_latency *= 4;
    let rf = simulate(&app.program, &layout, &trace, &fast);
    let rs = simulate(&app.program, &layout, &trace, &slow);
    assert_eq!(rf.demand_misses, rs.demand_misses);
    assert!(rs.cycles > rf.cycles);
}

#[test]
fn stall_exposure_scales_the_penalty() {
    let (app, layout, trace) = setup();
    let mut hidden = small_cfg();
    hidden.stall_exposure = 0.0;
    let r = simulate(&app.program, &layout, &trace, &hidden);
    let ideal = simulate_ideal_cache(&app.program, &trace, &hidden);
    // With no exposed stalls, cycles equal the ideal cache's.
    assert!((r.cycles - ideal.cycles).abs() < 1e-6);
}

#[test]
fn eviction_log_positions_are_within_trace() {
    let (app, layout, trace) = setup();
    let cfg = small_cfg();
    let mut sink = VecSink::new();
    simulate_with_sink(&app.program, &layout, &trace, &cfg, &mut sink);
    for e in sink.into_events() {
        assert!((e.evict_pos as usize) < trace.len());
        assert!(
            e.last_access_pos == u64::MAX || e.last_access_pos <= e.evict_pos,
            "last access cannot follow the eviction"
        );
    }
}

#[test]
fn demand_min_equals_opt_without_prefetching() {
    // Without prefetch requests in the stream, Demand-MIN degenerates to
    // Belady-OPT exactly.
    let (app, layout, trace) = setup();
    let opt = simulate(
        &app.program,
        &layout,
        &trace,
        &small_cfg().with_policy(PolicyKind::OPT),
    );
    let dm = simulate(
        &app.program,
        &layout,
        &trace,
        &small_cfg().with_policy(PolicyKind::DEMAND_MIN),
    );
    assert_eq!(opt.demand_misses, dm.demand_misses);
}

#[test]
fn late_prefetches_expose_partial_latency() {
    let (app, layout, trace) = setup();
    // NLP prefetches exactly one line ahead, so its hits are mostly late;
    // disabling the timeliness window must make NLP strictly faster.
    let mut timely = small_cfg().with_prefetcher(PrefetcherKind::NextLine);
    timely.prefetch_timeliness_blocks = 0;
    let mut late = small_cfg().with_prefetcher(PrefetcherKind::NextLine);
    late.prefetch_timeliness_blocks = 32;
    let rt = simulate(&app.program, &layout, &trace, &timely);
    let rl = simulate(&app.program, &layout, &trace, &late);
    assert_eq!(rt.demand_misses, rl.demand_misses);
    assert!(
        rl.cycles > rt.cycles,
        "timeliness must cost cycles ({} !> {})",
        rl.cycles,
        rt.cycles
    );
}

#[test]
fn tree_plru_tracks_lru_closely() {
    let (app, layout, trace) = setup();
    let lru = simulate(&app.program, &layout, &trace, &small_cfg());
    let plru = simulate(
        &app.program,
        &layout,
        &trace,
        &small_cfg().with_policy(PolicyKind::TREE_PLRU),
    );
    // 2-way sets: tree-PLRU is exact LRU.
    assert_eq!(lru.demand_misses, plru.demand_misses);
}
