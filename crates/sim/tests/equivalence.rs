//! Byte-identical equivalence between the interned fast path and the
//! retained reference frontend.
//!
//! The dense `LineId` representation is an internal optimization: for any
//! (app, prefetcher, policy) combination, [`LinePath::Interned`] and
//! [`LinePath::Reference`] must produce identical [`SimStats`] *and* an
//! identical eviction-event stream — same victims, same positions, same
//! `by_prefetch` flags, in the same order.

use ripple_program::{rewrite, BlockId, CodeLoc, Injection, InjectionPlan, Layout, LayoutConfig};
use ripple_sim::{
    CacheGeometry, EvictionMechanism, LinePath, PolicyKind, PrefetcherKind, SimConfig, SimSession,
    Temperature, TemperatureMap, VecSink,
};
use ripple_workloads::{execute, generate, AppSpec, InputConfig};

fn small_cfg(prefetcher: PrefetcherKind) -> SimConfig {
    let mut cfg = SimConfig::default();
    // Shrink the L1I so the tiny apps actually miss after warmup.
    cfg.l1i = CacheGeometry::new(1024, 2);
    cfg.prefetcher = prefetcher;
    cfg
}

#[test]
fn interned_and_reference_paths_are_byte_identical() {
    for seed in [11, 29] {
        let app = generate(&AppSpec::tiny(seed));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(
            &app.program,
            &app.model,
            InputConfig::training(seed),
            30_000,
        );
        for prefetcher in [PrefetcherKind::NextLine, PrefetcherKind::Fdip] {
            for policy in [PolicyKind::LRU, PolicyKind::SRRIP, PolicyKind::DEMAND_MIN] {
                let mut outputs = Vec::new();
                for path in [LinePath::Interned, LinePath::Reference] {
                    let cfg = small_cfg(prefetcher).with_line_path(path);
                    let session = SimSession::new(&app.program, &layout, &trace, cfg);
                    let mut sink = VecSink::new();
                    let stats = session.run_with_sink(policy, &mut sink);
                    outputs.push((stats, sink.into_events()));
                }
                let (fast, reference) = (&outputs[0], &outputs[1]);
                assert_eq!(
                    fast.0,
                    reference.0,
                    "stats diverged: seed {seed}, {}, {}",
                    prefetcher.name(),
                    policy.name()
                );
                assert_eq!(
                    fast.1,
                    reference.1,
                    "eviction stream diverged: seed {seed}, {}, {}",
                    prefetcher.name(),
                    policy.name()
                );
                assert!(
                    !fast.1.is_empty(),
                    "equivalence must be over a non-trivial run"
                );
            }
        }
    }
}

#[test]
fn trrip_paths_are_byte_identical_under_a_profile() {
    // TRRIP is the only policy whose decisions read the profiled
    // temperature map, so its hint path crosses the interned/reference
    // boundary nowhere else in this file. Cycle every line through
    // hot/warm/cold (plus unprofiled gaps) and demand identical stats and
    // eviction streams on both frontends.
    for seed in [13, 41] {
        let app = generate(&AppSpec::tiny(seed));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(
            &app.program,
            &app.model,
            InputConfig::training(seed),
            30_000,
        );
        let (lo, hi) = layout.line_bounds().expect("non-empty layout");
        let mut temps = TemperatureMap::new();
        for (i, line) in (lo.index()..=hi.index()).enumerate() {
            match i % 4 {
                0 => temps.set(ripple_program::LineAddr::new(line), Temperature::Hot),
                1 => temps.set(ripple_program::LineAddr::new(line), Temperature::Cold),
                2 => temps.set(ripple_program::LineAddr::new(line), Temperature::Warm),
                _ => {} // unprofiled: defaults to warm
            }
        }
        let temps = std::sync::Arc::new(temps);
        for prefetcher in [PrefetcherKind::None, PrefetcherKind::Fdip] {
            let mut outputs = Vec::new();
            for path in [LinePath::Interned, LinePath::Reference] {
                let mut cfg = small_cfg(prefetcher).with_line_path(path);
                cfg.temperatures = Some(temps.clone());
                let session = SimSession::new(&app.program, &layout, &trace, cfg);
                let mut sink = VecSink::new();
                let stats = session.run_with_sink(PolicyKind::TRRIP, &mut sink);
                outputs.push((stats, sink.into_events()));
            }
            assert_eq!(
                outputs[0],
                outputs[1],
                "trrip diverged: seed {seed}, {}",
                prefetcher.name()
            );
            assert!(
                !outputs[0].1.is_empty(),
                "equivalence must be over a non-trivial run"
            );
        }
    }
}

#[test]
fn scripted_invalidations_are_path_independent() {
    // The scripted-oracle configuration exercises the invalidation lookup
    // (including unmapped-address fallbacks) on both paths.
    let app = generate(&AppSpec::tiny(7));
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let trace = execute(&app.program, &app.model, InputConfig::training(7), 30_000);

    // Record the OPT eviction schedule once, then script it.
    let opt_cfg = small_cfg(PrefetcherKind::None).with_policy(PolicyKind::OPT);
    let mut sink = VecSink::new();
    let session = SimSession::new(&app.program, &layout, &trace, opt_cfg);
    session.run_with_sink(PolicyKind::OPT, &mut sink);
    let mut script: Vec<(u64, ripple_program::LineAddr)> = sink
        .events()
        .iter()
        .map(|e| (e.evict_pos, e.victim))
        .collect();
    // An out-of-span line: both paths must treat it as never resident.
    script.push((0, ripple_program::LineAddr::new(3)));
    script.sort_unstable_by_key(|&(p, _)| p);

    let mut results = Vec::new();
    for path in [LinePath::Interned, LinePath::Reference] {
        let mut cfg = small_cfg(PrefetcherKind::None).with_line_path(path);
        cfg.scripted_invalidations = Some(std::sync::Arc::new(script.clone()));
        let session = SimSession::new(&app.program, &layout, &trace, cfg);
        let mut sink = VecSink::new();
        let stats = session.run_with_sink(PolicyKind::LRU, &mut sink);
        results.push((stats, sink.into_events()));
    }
    assert_eq!(results[0], results[1]);
    assert!(results[0].0.invalidate_hits > 0);
}

#[test]
fn scripted_invalidations_with_warmup_are_path_independent() {
    // Scripted invalidations combined with a nonzero warmup exercise the
    // stats gate on the script path in both frontends; the gate must be
    // identical (fixing it in one path only would fail here).
    let app = generate(&AppSpec::tiny(7));
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let trace = execute(&app.program, &app.model, InputConfig::training(7), 30_000);

    let opt_cfg = small_cfg(PrefetcherKind::None).with_policy(PolicyKind::OPT);
    let mut sink = VecSink::new();
    let session = SimSession::new(&app.program, &layout, &trace, opt_cfg);
    session.run_with_sink(PolicyKind::OPT, &mut sink);
    let mut script: Vec<(u64, ripple_program::LineAddr)> = sink
        .events()
        .iter()
        .map(|e| (e.evict_pos, e.victim))
        .collect();
    script.sort_unstable_by_key(|&(p, _)| p);
    let script = std::sync::Arc::new(script);

    let mut results = Vec::new();
    for path in [LinePath::Interned, LinePath::Reference] {
        let mut cfg = small_cfg(PrefetcherKind::NextLine).with_line_path(path);
        cfg.warmup_fraction = 0.4;
        cfg.scripted_invalidations = Some(script.clone());
        let session = SimSession::new(&app.program, &layout, &trace, cfg);
        let mut sink = VecSink::new();
        let stats = session.run_with_sink(PolicyKind::LRU, &mut sink);
        results.push((stats, sink.into_events()));
    }
    assert_eq!(results[0], results[1]);
    // The warmup prefix contains script entries, so the counted hits are a
    // strict subset of the schedule.
    assert!(results[0].0.invalidate_hits > 0);
    assert!((results[0].0.invalidate_hits as usize) < script.len());
}

#[test]
fn replayed_policies_match_fresh_single_pass_runs() {
    // Once a session holds a captured stream, online policies replay it
    // through the columnar fast path instead of re-running the frontend.
    // The replay must be byte-identical to a fresh single-pass run for
    // every registered policy; the PC-indexed ones (GHRP, Hawkeye) only
    // pass if the replay reproduces the exact demand and prefetch PCs,
    // including FDIP prefetches issued from *predicted* blocks.
    let app = generate(&AppSpec::tiny(17));
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let trace = execute(&app.program, &app.model, InputConfig::training(17), 30_000);
    for prefetcher in [PrefetcherKind::NextLine, PrefetcherKind::Fdip] {
        let cfg = small_cfg(prefetcher);
        let recorded = SimSession::new(&app.program, &layout, &trace, cfg.clone());
        recorded.ensure_recorded();
        for policy in PolicyKind::all() {
            let mut replay_sink = VecSink::new();
            let replay_stats = recorded.run_with_sink(policy, &mut replay_sink);

            let fresh = SimSession::new(&app.program, &layout, &trace, cfg.clone());
            let mut fresh_sink = VecSink::new();
            let fresh_stats = fresh.run_with_sink(policy, &mut fresh_sink);

            assert_eq!(
                replay_stats,
                fresh_stats,
                "stats diverged: {}, {}",
                prefetcher.name(),
                policy.name()
            );
            assert_eq!(
                replay_sink.into_events(),
                fresh_sink.into_events(),
                "eviction stream diverged: {}, {}",
                prefetcher.name(),
                policy.name()
            );
        }
        assert_eq!(
            recorded.recording_passes(),
            1,
            "all replays must share the one capture"
        );
    }
}

#[test]
fn spliced_fetch_plans_match_full_builds_after_rewrite() {
    // Incremental relinking reuses a previous round's per-function line
    // lists for functions whose block-size signature is unchanged. The
    // spliced plan must equal a from-scratch build on the rewritten
    // layout, and a session constructed from the cache must be
    // byte-identical to one built fresh.
    use ripple_sim::{FetchPlan, LineTable};

    let app = generate(&AppSpec::tiny(23));
    let base_layout = Layout::new(&app.program, &LayoutConfig::default());
    let trace = execute(&app.program, &app.model, InputConfig::training(23), 30_000);
    let cfg = small_cfg(PrefetcherKind::NextLine);

    let base_session = SimSession::new(&app.program, &base_layout, &trace, cfg.clone());
    let cache = base_session.plan_cache();

    // Dirty a handful of functions with injected invalidate prefixes; the
    // rest must be spliced, shifted by each function's start-line delta.
    let n = app.program.num_blocks() as u32;
    let mut plan = InjectionPlan::new();
    for i in 0..n.min(5) {
        plan.push(Injection {
            cue: BlockId::new((i * 2) % n),
            victim: CodeLoc::new(BlockId::new((i + 3) % n), 0),
        });
    }
    let rewritten = rewrite(&app.program, &base_layout, &plan);

    let table = LineTable::build(&rewritten.layout);
    let full = FetchPlan::build(&rewritten.program, &rewritten.layout, &table);
    let spliced =
        FetchPlan::build_cached(&rewritten.program, &rewritten.layout, &table, Some(&cache));
    assert_eq!(full, spliced, "spliced plan diverged from full build");

    for policy in [PolicyKind::LRU, PolicyKind::DEMAND_MIN] {
        let fresh = SimSession::new(&rewritten.program, &rewritten.layout, &trace, cfg.clone());
        let cached = SimSession::new_cached(
            &rewritten.program,
            &rewritten.layout,
            &trace,
            cfg.clone(),
            Some(&cache),
        );
        let mut fresh_sink = VecSink::new();
        let mut cached_sink = VecSink::new();
        let fresh_stats = fresh.run_with_sink(policy, &mut fresh_sink);
        let cached_stats = cached.run_with_sink(policy, &mut cached_sink);
        assert_eq!(fresh_stats, cached_stats, "{} diverged", policy.name());
        assert_eq!(fresh_sink.into_events(), cached_sink.into_events());
    }
}

#[test]
fn eviction_mechanisms_are_path_independent_on_injected_programs() {
    // Injected invalidate instructions are the only way the Demote/NoOp
    // mechanisms act; rewrite the program with a manual plan so both paths
    // execute them (previously only the default mechanism crossed the
    // interned/reference boundary in tests).
    let app = generate(&AppSpec::tiny(11));
    let base_layout = Layout::new(&app.program, &LayoutConfig::default());
    let trace = execute(&app.program, &app.model, InputConfig::training(11), 30_000);

    // Cue a handful of blocks to invalidate the first line of their
    // neighbours; rewrite() preserves BlockIds so the trace stays valid.
    let n = app.program.num_blocks() as u32;
    let mut plan = InjectionPlan::new();
    for i in 0..n.min(6) {
        plan.push(Injection {
            cue: BlockId::new(i),
            victim: CodeLoc::new(BlockId::new((i + 1) % n), 0),
        });
    }
    let rewritten = rewrite(&app.program, &base_layout, &plan);

    for mechanism in [
        EvictionMechanism::Invalidate,
        EvictionMechanism::Demote,
        EvictionMechanism::NoOp,
    ] {
        let mut results = Vec::new();
        for path in [LinePath::Interned, LinePath::Reference] {
            let mut cfg = small_cfg(PrefetcherKind::NextLine).with_line_path(path);
            cfg.eviction_mechanism = mechanism;
            let session = SimSession::new(&rewritten.program, &rewritten.layout, &trace, cfg);
            let mut sink = VecSink::new();
            let stats = session.run_with_sink(PolicyKind::LRU, &mut sink);
            results.push((stats, sink.into_events()));
        }
        assert_eq!(results[0], results[1], "{mechanism:?} diverged");
        assert!(results[0].0.invalidate_instructions > 0);
        match mechanism {
            EvictionMechanism::Invalidate | EvictionMechanism::Demote => {
                assert!(results[0].0.invalidate_hits > 0, "{mechanism:?} never hit")
            }
            EvictionMechanism::NoOp => assert_eq!(results[0].0.invalidate_hits, 0),
        }
    }
}
