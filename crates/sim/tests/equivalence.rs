//! Byte-identical equivalence between the interned fast path and the
//! retained reference frontend.
//!
//! The dense `LineId` representation is an internal optimization: for any
//! (app, prefetcher, policy) combination, [`LinePath::Interned`] and
//! [`LinePath::Reference`] must produce identical [`SimStats`] *and* an
//! identical eviction-event stream — same victims, same positions, same
//! `by_prefetch` flags, in the same order.

use ripple_program::{Layout, LayoutConfig};
use ripple_sim::{
    CacheGeometry, LinePath, PolicyKind, PrefetcherKind, SimConfig, SimSession, VecSink,
};
use ripple_workloads::{execute, generate, AppSpec, InputConfig};

fn small_cfg(prefetcher: PrefetcherKind) -> SimConfig {
    let mut cfg = SimConfig::default();
    // Shrink the L1I so the tiny apps actually miss after warmup.
    cfg.l1i = CacheGeometry::new(1024, 2);
    cfg.prefetcher = prefetcher;
    cfg
}

#[test]
fn interned_and_reference_paths_are_byte_identical() {
    for seed in [11, 29] {
        let app = generate(&AppSpec::tiny(seed));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(
            &app.program,
            &app.model,
            InputConfig::training(seed),
            30_000,
        );
        for prefetcher in [PrefetcherKind::NextLine, PrefetcherKind::Fdip] {
            for policy in [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::DemandMin] {
                let mut outputs = Vec::new();
                for path in [LinePath::Interned, LinePath::Reference] {
                    let cfg = small_cfg(prefetcher).with_line_path(path);
                    let session = SimSession::new(&app.program, &layout, &trace, cfg);
                    let mut sink = VecSink::new();
                    let stats = session.run_with_sink(policy, &mut sink);
                    outputs.push((stats, sink.into_events()));
                }
                let (fast, reference) = (&outputs[0], &outputs[1]);
                assert_eq!(
                    fast.0,
                    reference.0,
                    "stats diverged: seed {seed}, {}, {}",
                    prefetcher.name(),
                    policy.name()
                );
                assert_eq!(
                    fast.1,
                    reference.1,
                    "eviction stream diverged: seed {seed}, {}, {}",
                    prefetcher.name(),
                    policy.name()
                );
                assert!(
                    !fast.1.is_empty(),
                    "equivalence must be over a non-trivial run"
                );
            }
        }
    }
}

#[test]
fn scripted_invalidations_are_path_independent() {
    // The scripted-oracle configuration exercises the invalidation lookup
    // (including unmapped-address fallbacks) on both paths.
    let app = generate(&AppSpec::tiny(7));
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let trace = execute(&app.program, &app.model, InputConfig::training(7), 30_000);

    // Record the OPT eviction schedule once, then script it.
    let opt_cfg = small_cfg(PrefetcherKind::None).with_policy(PolicyKind::Opt);
    let mut sink = VecSink::new();
    let session = SimSession::new(&app.program, &layout, &trace, opt_cfg);
    session.run_with_sink(PolicyKind::Opt, &mut sink);
    let mut script: Vec<(u64, ripple_program::LineAddr)> = sink
        .events()
        .iter()
        .map(|e| (e.evict_pos, e.victim))
        .collect();
    // An out-of-span line: both paths must treat it as never resident.
    script.push((0, ripple_program::LineAddr::new(3)));
    script.sort_unstable_by_key(|&(p, _)| p);

    let mut results = Vec::new();
    for path in [LinePath::Interned, LinePath::Reference] {
        let mut cfg = small_cfg(PrefetcherKind::None).with_line_path(path);
        cfg.scripted_invalidations = Some(std::sync::Arc::new(script.clone()));
        let session = SimSession::new(&app.program, &layout, &trace, cfg);
        let mut sink = VecSink::new();
        let stats = session.run_with_sink(PolicyKind::Lru, &mut sink);
        results.push((stats, sink.into_events()));
    }
    assert_eq!(results[0], results[1]);
    assert!(results[0].0.invalidate_hits > 0);
}
