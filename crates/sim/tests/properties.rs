//! Property tests for the cache and replacement policies.

use proptest::prelude::*;
use ripple_program::{Addr, LineAddr};
use ripple_sim::{
    Cache, CacheGeometry, DrripPolicy, FutureIndex, GhrpPolicy, HawkeyePolicy, LineId, LruPolicy,
    OptPolicy, RandomPolicy, ReplacementPolicy, SrripPolicy, StreamRecord,
};

/// Identity interning for raw test line indexes.
fn lid(line: u64) -> LineId {
    LineId::new(u32::try_from(line).expect("test lines fit u32"))
}

fn arb_stream() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..40, proptest::bool::weighted(0.25)), 1..800)
}

fn geom() -> CacheGeometry {
    CacheGeometry::new(8 * 64, 2) // 4 sets × 2 ways
}

fn policies(g: CacheGeometry) -> Vec<Box<dyn ReplacementPolicy>> {
    vec![
        Box::new(LruPolicy::new(g)),
        Box::new(RandomPolicy::new(g, 7)),
        Box::new(SrripPolicy::new(g)),
        Box::new(DrripPolicy::new(g)),
        Box::new(GhrpPolicy::new(g)),
        Box::new(HawkeyePolicy::new(g, false)),
        Box::new(HawkeyePolicy::new(g, true)),
    ]
}

fn run(
    g: CacheGeometry,
    policy: Box<dyn ReplacementPolicy>,
    stream: &[(u64, bool)],
) -> (u64, usize) {
    let mut cache: Cache<dyn ReplacementPolicy> = Cache::new(g, policy);
    let mut demand_misses = 0;
    for (seq, &(line, pf)) in stream.iter().enumerate() {
        let pc = LineAddr::new(line).base_addr();
        let out = cache.access(lid(line), pc, pf, seq as u64);
        if !pf && !out.is_hit() {
            demand_misses += 1;
        }
    }
    (demand_misses, cache.occupancy())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No policy can make the cache exceed its capacity, every accessed
    /// line is present immediately after its access, and demand misses
    /// never exceed demand accesses.
    #[test]
    fn cache_invariants_hold_for_every_policy(stream in arb_stream()) {
        let g = geom();
        for policy in policies(g) {
            let name = policy.name();
            let mut cache: Cache<dyn ReplacementPolicy> = Cache::new(g, policy);
            let mut demand = 0u64;
            let mut misses = 0u64;
            for (seq, &(line, pf)) in stream.iter().enumerate() {
                let out = cache.access(lid(line), Addr::new(line * 64), pf, seq as u64);
                prop_assert!(cache.contains(lid(line)), "{name}: line absent after access");
                prop_assert!(cache.occupancy() <= 8, "{name}: over capacity");
                if !pf {
                    demand += 1;
                    if !out.is_hit() {
                        misses += 1;
                    }
                }
            }
            prop_assert!(misses <= demand, "{name}");
        }
    }

    /// Belady-OPT lower-bounds every online policy's demand misses on
    /// demand-only streams.
    #[test]
    fn opt_is_optimal(stream in arb_stream()) {
        let g = geom();
        let demand_only: Vec<(u64, bool)> =
            stream.iter().map(|&(l, _)| (l, false)).collect();
        let records: Vec<StreamRecord> = demand_only
            .iter()
            .map(|&(l, p)| StreamRecord { line: LineAddr::new(l), is_prefetch: p })
            .collect();
        let future = FutureIndex::build(&records);
        let (opt_misses, _) = run(g, Box::new(OptPolicy::new(g, future)), &demand_only);
        for policy in policies(g) {
            let name = policy.name();
            let (misses, _) = run(g, policy, &demand_only);
            prop_assert!(
                opt_misses <= misses,
                "opt {opt_misses} > {name} {misses}"
            );
        }
    }

    /// Invalidation after every access leaves the cache empty and never
    /// panics any policy.
    #[test]
    fn invalidate_everything(stream in arb_stream()) {
        let g = geom();
        for policy in policies(g) {
            let mut cache: Cache<dyn ReplacementPolicy> = Cache::new(g, policy);
            for (seq, &(line, pf)) in stream.iter().enumerate() {
                let pc = LineAddr::new(line).base_addr();
                cache.access(lid(line), pc, pf, seq as u64);
                prop_assert!(cache.invalidate(lid(line)));
                prop_assert!(!cache.contains(lid(line)));
            }
            prop_assert_eq!(cache.occupancy(), 0);
        }
    }

    /// Demoting a line never changes cache contents, only ordering: the
    /// line stays resident until the next fill in its set.
    #[test]
    fn demote_keeps_contents(stream in arb_stream()) {
        let g = geom();
        let mut cache: Cache<dyn ReplacementPolicy> = Cache::new(g, Box::new(LruPolicy::new(g)));
        for (seq, &(line, pf)) in stream.iter().enumerate() {
            let pc = LineAddr::new(line).base_addr();
            cache.access(lid(line), pc, pf, seq as u64);
            let occ = cache.occupancy();
            cache.demote(lid(line));
            prop_assert!(cache.contains(lid(line)));
            prop_assert_eq!(cache.occupancy(), occ);
        }
    }

    /// The future index is consistent: the recorded next occurrence of a
    /// line really is the next occurrence.
    #[test]
    fn future_index_is_consistent(stream in arb_stream()) {
        let records: Vec<StreamRecord> = stream
            .iter()
            .map(|&(l, p)| StreamRecord { line: LineAddr::new(l), is_prefetch: p })
            .collect();
        let future = FutureIndex::build(&records);
        for (i, r) in records.iter().enumerate() {
            let nd = future.next_demand(i as u64);
            if nd != ripple_sim::NEVER {
                let j = nd as usize;
                prop_assert!(j > i);
                prop_assert_eq!(records[j].line, r.line);
                prop_assert!(!records[j].is_prefetch);
                // No earlier demand occurrence in between.
                for rec in &records[i + 1..j] {
                    prop_assert!(rec.line != r.line || rec.is_prefetch);
                }
            }
        }
    }
}
