//! Trace-driven CPU frontend and I-cache simulator for the Ripple
//! reproduction (the paper's modified-ZSim substrate, rebuilt in Rust).
//!
//! The crate provides:
//!
//! * a set-associative [`Cache`] with a pluggable [`ReplacementPolicy`];
//! * every policy from the paper's §II-D ([`LruPolicy`], [`RandomPolicy`],
//!   [`SrripPolicy`], [`DrripPolicy`], [`GhrpPolicy`], [`HawkeyePolicy`] /
//!   Harmony) plus the offline ideals [`OptPolicy`] and
//!   [`DemandMinPolicy`];
//! * instruction prefetchers (next-line and FDIP with a gshare/BTB/RAS
//!   [`BranchPredictor`] and a fetch target queue);
//! * a frontend timing model charging demand-miss stalls through a
//!   simulated L2/L3 (Table II latencies);
//! * the `invalidate` instruction Ripple injects (invalidate or
//!   LRU-demote semantics);
//! * a dense per-layout line interner ([`LineTable`] / [`LineId`]) and
//!   precomputed block→lines [`FetchPlan`] — the fast path through the
//!   simulator's hot loops. The pre-interning frontend is retained behind
//!   [`LinePath::Reference`] as an equivalence oracle and perf baseline.
//!
//! Entry points: [`simulate`], [`simulate_with_sink`],
//! [`simulate_ideal_cache`], [`baseline_and_ideal`], and — for policy
//! matrices sharing one recording pass — [`SimSession`]. Evictions stream
//! into an [`EvictionSink`] instead of being materialized by the engine.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_debug_implementations)]

mod batch;
mod bpred;
mod cache;
mod config;
mod engine;
mod frontend;
mod intern;
pub mod policy;
mod reference;
mod replay;
mod sink;
mod stats;

pub use bpred::{BranchPredictor, Prediction};
pub use cache::{AccessOutcome, Cache};
pub use config::{
    CacheGeometry, EvictionMechanism, LinePath, PrefetcherKind, SimConfig, SimConfigBuilder,
    SimConfigError,
};
pub use engine::{
    baseline_and_ideal, ideal_policy_for, simulate, simulate_ideal_cache, simulate_with_sink,
    SimSession,
};
pub use intern::{FetchPlan, LineId, LineTable, PlanCache};
pub use policy::registry::PolicyKind;
pub use policy::{
    build_ideal_policy, build_policy, AccessInfo, DemandMinPolicy, DrripPolicy, FutureIndex,
    GhrpPolicy, HawkeyePolicy, LruPolicy, OptPolicy, PolicyConstructor, PolicyDescriptor,
    PolicyFamily, PolicyId, PolicyRegistry, RandomPolicy, RegistryError, ReplacementPolicy,
    SrripPolicy, StreamRecord, Temperature, TemperatureMap, TreePlruPolicy, TrripPolicy, WayView,
    NEVER,
};
pub use replay::{StreamLimitError, MAX_STREAM_RECORDS};
pub use sink::{EvictionSink, FnSink, NullSink, VecSink};
pub use stats::{EvictionEvent, SimStats};
