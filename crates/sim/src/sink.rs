//! Streaming observation of L1I evictions.
//!
//! Ripple's offline analysis consumes the simulator's eviction log. Instead
//! of materializing an `Option<Vec<EvictionEvent>>` inside the engine (and
//! making "log requested but absent" a representable state), the engine
//! pushes every eviction into an [`EvictionSink`] as it happens. Consumers
//! that can process events online (window construction, accuracy scoring)
//! never buffer the log; consumers that do need it materialized use
//! [`VecSink`].

use crate::stats::EvictionEvent;

/// Observer of L1I evictions, called synchronously from the simulation.
///
/// Events arrive in trace order (`evict_pos` is non-decreasing) and include
/// evictions during cache warmup — the analysis wants those even though the
/// stat counters exclude them.
pub trait EvictionSink {
    /// Called once per valid-line eviction.
    fn record(&mut self, event: EvictionEvent);
}

/// Discards every event; the default for runs that only need [`SimStats`]
/// (../stats.rs).
///
/// [`SimStats`]: crate::SimStats
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EvictionSink for NullSink {
    fn record(&mut self, _event: EvictionEvent) {}
}

/// Collects the full eviction log in memory, for tests and consumers that
/// genuinely need random access to the whole log.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    events: Vec<EvictionEvent>,
}

impl VecSink {
    /// Creates an empty collecting sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The events recorded so far.
    pub fn events(&self) -> &[EvictionEvent] {
        &self.events
    }

    /// Consumes the sink, returning the collected log.
    pub fn into_events(self) -> Vec<EvictionEvent> {
        self.events
    }
}

impl EvictionSink for VecSink {
    fn record(&mut self, event: EvictionEvent) {
        self.events.push(event);
    }
}

impl EvictionSink for Vec<EvictionEvent> {
    fn record(&mut self, event: EvictionEvent) {
        self.push(event);
    }
}

/// Adapts a closure into a sink.
pub struct FnSink<F: FnMut(EvictionEvent)>(pub F);

impl<F: FnMut(EvictionEvent)> EvictionSink for FnSink<F> {
    fn record(&mut self, event: EvictionEvent) {
        (self.0)(event)
    }
}

impl<F: FnMut(EvictionEvent)> std::fmt::Debug for FnSink<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSink").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_program::LineAddr;

    fn event(pos: u64) -> EvictionEvent {
        EvictionEvent {
            victim: LineAddr::new(7),
            evict_pos: pos,
            last_access_pos: pos.saturating_sub(1),
            by_prefetch: false,
        }
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecSink::new();
        sink.record(event(1));
        sink.record(event(2));
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.into_events()[1], event(2));
    }

    #[test]
    fn fn_sink_streams() {
        let mut n = 0u64;
        let mut sink = FnSink(|e: EvictionEvent| n += e.evict_pos);
        sink.record(event(3));
        sink.record(event(4));
        let FnSink(_) = sink; // release the borrow of `n`
        assert_eq!(n, 7);
    }

    #[test]
    fn null_sink_ignores() {
        NullSink.record(event(9));
    }
}
