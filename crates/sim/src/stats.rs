//! Simulation statistics.

use ripple_program::LineAddr;

/// An eviction observed in the L1I, recorded for Ripple's offline
/// analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionEvent {
    /// The evicted (victim) line.
    pub victim: LineAddr,
    /// Index into the block trace when the eviction happened.
    pub evict_pos: u64,
    /// Index into the block trace of the victim's last demand access
    /// before the eviction (`u64::MAX` when the line was never demand
    /// accessed, e.g. an unused prefetch).
    pub last_access_pos: u64,
    /// Whether the fill that triggered the eviction was a prefetch.
    pub by_prefetch: bool,
}

/// Counters produced by one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Executed blocks.
    pub blocks: u64,
    /// Executed original (non-injected) instructions.
    pub instructions: u64,
    /// Executed injected `invalidate` instructions.
    pub invalidate_instructions: u64,
    /// Estimated cycles (timing model of §IV).
    pub cycles: f64,
    /// L1I demand accesses.
    pub demand_accesses: u64,
    /// L1I demand misses.
    pub demand_misses: u64,
    /// Demand misses to lines never seen before (compulsory).
    pub compulsory_misses: u64,
    /// Demand misses served by the L2.
    pub served_l2: u64,
    /// Demand misses served by the L3.
    pub served_l3: u64,
    /// Demand misses served by memory.
    pub served_mem: u64,
    /// Prefetch requests issued.
    pub prefetches_issued: u64,
    /// Prefetch requests that filled the L1I (missed there).
    pub prefetch_fills: u64,
    /// Valid-line evictions in the L1I.
    pub evictions: u64,
    /// Evictions whose victim was an unused prefetch.
    pub prefetch_pollution_evictions: u64,
    /// `invalidate` executions that found their line present.
    pub invalidate_hits: u64,
    /// Mispredicted block transitions (squashes the FDIP runahead).
    pub mispredictions: u64,
    /// Trace packets dropped during lossy decoding of the input trace
    /// (zero when the trace decoded losslessly; see
    /// `ripple_trace::TraceHealth`).
    pub dropped_packets: u64,
    /// Times the lossy decoder re-joined the stream at a sync point after
    /// skipping a corrupt span.
    pub resync_events: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        let total = self.instructions + self.invalidate_instructions;
        if self.cycles == 0.0 {
            0.0
        } else {
            total as f64 / self.cycles
        }
    }

    /// Demand misses per kilo-instruction (counting every executed
    /// instruction, injected ones included, as the paper does).
    pub fn mpki(&self) -> f64 {
        let total = self.instructions + self.invalidate_instructions;
        if total == 0 {
            0.0
        } else {
            self.demand_misses as f64 * 1000.0 / total as f64
        }
    }

    /// Compulsory misses per kilo-instruction (§II-D's scan test).
    pub fn compulsory_mpki(&self) -> f64 {
        let total = self.instructions + self.invalidate_instructions;
        if total == 0 {
            0.0
        } else {
            self.compulsory_misses as f64 * 1000.0 / total as f64
        }
    }

    /// Speedup of this run over `baseline`, in percent.
    ///
    /// Both runs must execute the same original workload (the same block
    /// trace); the comparison is on total cycles, so a run that injects
    /// extra instructions pays for them rather than inflating its IPC.
    ///
    /// Degenerate runs (zero or negative cycles on either side — e.g. a
    /// warmup-dominated trace that counted no instructions) report 0.0
    /// rather than dividing by zero; the result is always finite.
    pub fn speedup_pct_over(&self, baseline: &SimStats) -> f64 {
        if self.cycles <= 0.0 || baseline.cycles <= 0.0 {
            return 0.0;
        }
        (baseline.cycles / self.cycles - 1.0) * 100.0
    }

    /// Miss reduction relative to `baseline`, in percent.
    pub fn miss_reduction_pct_over(&self, baseline: &SimStats) -> f64 {
        if baseline.demand_misses == 0 {
            0.0
        } else {
            (1.0 - self.demand_misses as f64 / baseline.demand_misses as f64) * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            instructions: 10_000,
            invalidate_instructions: 0,
            cycles: 5_000.0,
            demand_misses: 50,
            compulsory_misses: 5,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.mpki() - 5.0).abs() < 1e-12);
        assert!((s.compulsory_mpki() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_miss_reduction() {
        let base = SimStats {
            instructions: 1000,
            cycles: 1000.0,
            demand_misses: 100,
            ..SimStats::default()
        };
        let better = SimStats {
            instructions: 1000,
            cycles: 800.0,
            demand_misses: 80,
            ..SimStats::default()
        };
        assert!((better.speedup_pct_over(&base) - 25.0).abs() < 1e-9);
        assert_eq!(base.speedup_pct_over(&base), 0.0);
        assert!((better.miss_reduction_pct_over(&base) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn injected_instructions_count_toward_rates() {
        let s = SimStats {
            instructions: 900,
            invalidate_instructions: 100,
            cycles: 1000.0,
            demand_misses: 10,
            ..SimStats::default()
        };
        assert!((s.ipc() - 1.0).abs() < 1e-12);
        assert!((s.mpki() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mpki(), 0.0);
        assert_eq!(s.miss_reduction_pct_over(&s), 0.0);
    }

    #[test]
    fn speedup_is_finite_on_degenerate_runs() {
        // Warmup-dominated traces can produce zero counted cycles on
        // either side of the comparison; all four combinations must stay
        // finite (and, by convention, report "no speedup").
        let zero = SimStats::default();
        let real = SimStats {
            instructions: 100,
            cycles: 100.0,
            ..SimStats::default()
        };
        for (a, b) in [(&zero, &zero), (&zero, &real), (&real, &zero)] {
            let pct = a.speedup_pct_over(b);
            assert!(pct.is_finite(), "{a:?} over {b:?} -> {pct}");
            assert_eq!(pct, 0.0);
        }
        assert!(real.speedup_pct_over(&real).is_finite());
    }
}
