//! Dense per-layout interning of cache lines.
//!
//! The simulator's hot loops — frontend bookkeeping, cache tag matching,
//! policy metadata, the ideal policies' future index — all key state by
//! cache line. Keying by [`LineAddr`] forces a 64-bit hash per touch; this
//! module instead assigns every line reachable from one [`Layout`] a dense
//! [`LineId`] so that state becomes plain `Vec` indexing.
//!
//! The text segment is laid out contiguously from a single base, so
//! interning is pure arithmetic: `id = line_index - first_line_index`. The
//! [`LineTable`] spans one line past the end of the text segment so the
//! next-line prefetch target of the last code line interns too.
//!
//! Interning is **per-layout**: a rewritten or injected program gets a new
//! layout and must get a fresh `LineTable`/[`FetchPlan`]. Ids from
//! different tables are not comparable; [`LineAddr`] remains the boundary
//! type everywhere results leave the simulator (sinks, stats, analysis).

use ripple_program::{BlockId, Layout, LineAddr, Program, CACHE_LINE_BYTES};

/// Dense index of a cache line within one layout's [`LineTable`].
///
/// `LineId`s are only meaningful relative to the table that produced them;
/// convert back with [`LineTable::line`] before crossing an API boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineId(u32);

impl LineId {
    /// Sentinel used by cache ways for "no line" (never a valid id:
    /// [`LineTable::build`] rejects layouts spanning `u32::MAX` lines).
    pub const INVALID: LineId = LineId(u32::MAX);

    /// Creates an id from a raw dense index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        LineId(raw)
    }

    /// The raw dense index.
    #[inline]
    pub const fn get(self) -> u32 {
        self.0
    }

    /// The raw index as a `usize`, for `Vec` indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The id of the line immediately following this one in the address
    /// space (next-line prefetch target).
    #[inline]
    pub const fn next(self) -> Self {
        LineId(self.0 + 1)
    }
}

impl std::fmt::Display for LineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Bidirectional map between the [`LineAddr`]s of one layout's text segment
/// and dense [`LineId`]s.
///
/// # Examples
///
/// ```
/// use ripple_program::{CodeKind, Instruction, Layout, LayoutConfig, ProgramBuilder};
/// use ripple_sim::LineTable;
///
/// let mut b = ProgramBuilder::new();
/// let main = b.add_function("main", CodeKind::Static);
/// let bb = b.add_block(main);
/// b.push_inst(bb, Instruction::other(100));
/// b.push_inst(bb, Instruction::ret());
/// let program = b.finish(main)?;
/// let layout = Layout::new(&program, &LayoutConfig::default());
///
/// let table = LineTable::build(&layout);
/// let line = layout.lines_of_block(bb).next().unwrap();
/// let id = table.lookup(line).unwrap();
/// assert_eq!(table.line(id), line);
/// # Ok::<(), ripple_program::ValidateProgramError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineTable {
    /// Raw line index interned as `LineId(0)`.
    first: u64,
    /// Number of interned lines (text span plus one margin line).
    len: u32,
}

impl LineTable {
    /// Interns every line of `layout`'s text segment, plus one margin line
    /// past the end so next-line prefetches off the last code line resolve.
    ///
    /// # Panics
    ///
    /// Panics if the text segment spans 2^32 − 1 lines or more (a 256 GiB
    /// text section — far beyond anything the workloads generate).
    pub fn build(layout: &Layout) -> Self {
        match layout.line_bounds() {
            Some((first, last)) => {
                let span = last.index() - first.index() + 2;
                assert!(
                    span < u64::from(u32::MAX),
                    "text segment too large to intern"
                );
                LineTable {
                    first: first.index(),
                    len: span as u32,
                }
            }
            None => LineTable { first: 0, len: 0 },
        }
    }

    /// A table interning line indexes `0..len` as themselves, for tests and
    /// the slow-path reference (where ids must equal raw line indexes).
    pub fn identity(len: u32) -> Self {
        LineTable { first: 0, len }
    }

    /// Number of interned lines (including the one-line prefetch margin).
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the table interns no lines (layout without code bytes).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw line index of `LineId(0)`; cache set mapping adds this base back
    /// so `set_of(line(id))` is preserved under interning.
    pub fn line_base(&self) -> u64 {
        self.first
    }

    /// The dense id of `line`, or `None` when the line lies outside the
    /// layout's text segment.
    ///
    /// Out-of-segment lines can never be fetched, so callers treat them as
    /// never-resident (e.g. a scripted invalidation of one is a miss).
    #[inline]
    pub fn lookup(&self, line: LineAddr) -> Option<LineId> {
        let off = line.index().wrapping_sub(self.first);
        if off < u64::from(self.len) {
            Some(LineId(off as u32))
        } else {
            None
        }
    }

    /// The address interned as `id`.
    #[inline]
    pub fn line(&self, id: LineId) -> LineAddr {
        debug_assert!(id.0 < self.len, "id {id} outside table");
        LineAddr::new(self.first + u64::from(id.0))
    }
}

/// Precomputed demand-fetch footprint of every block: `BlockId → &[LineId]`,
/// resolved once per session instead of via [`Layout::lines_of_block`] on
/// every trace step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchPlan {
    /// Concatenated per-block line lists, in fetch order.
    ids: Vec<LineId>,
    /// `num_blocks + 1` offsets into `ids`.
    bounds: Vec<u32>,
}

impl FetchPlan {
    /// Resolves every block of `program` under `layout` against `table`.
    ///
    /// # Panics
    ///
    /// Panics if a block touches a line outside `table` (the table was
    /// built from a different layout).
    // The panics are the documented contract for a table built from a
    // different layout; `LineTable::build` over the same layout covers
    // every block line, and a >4 GiB-entry plan is out of scope by far.
    #[allow(clippy::expect_used)]
    pub fn build(program: &Program, layout: &Layout, table: &LineTable) -> Self {
        let n = program.num_blocks();
        let mut ids = Vec::new();
        let mut bounds = Vec::with_capacity(n + 1);
        bounds.push(0u32);
        for i in 0..n {
            let block = BlockId::new(i as u32);
            for line in layout.lines_of_block(block) {
                let id = table
                    .lookup(line)
                    .expect("every block line is interned by its layout's table");
                ids.push(id);
            }
            let end = u32::try_from(ids.len()).expect("fetch plan exceeds u32 entries");
            bounds.push(end);
        }
        FetchPlan { ids, bounds }
    }

    /// [`FetchPlan::build`] with per-function splicing from a previous
    /// layout's [`PlanCache`].
    ///
    /// Functions whose layout signature (the sequence of block sizes)
    /// matches the cached one occupy the same lines *relative to their
    /// 64-byte-aligned start*, so their cached id lists are copied with a
    /// constant delta instead of re-walking [`Layout::lines_of_block`].
    /// Functions that changed — and everything when the layouts' function
    /// alignment is not a whole number of cache lines — fall back to the
    /// fresh walk. The result is always identical to [`FetchPlan::build`].
    #[allow(clippy::expect_used)] // same capacity/coverage contract as `build`
    pub fn build_cached(
        program: &Program,
        layout: &Layout,
        table: &LineTable,
        prev: Option<&PlanCache>,
    ) -> Self {
        let align = layout.config().function_align;
        let splicable = prev.is_some_and(|p| {
            align != 0 && align.is_multiple_of(CACHE_LINE_BYTES) && p.align == align
        });
        let Some(prev) = splicable.then_some(prev).flatten() else {
            return FetchPlan::build(program, layout, table);
        };
        // Per-function id delta, for functions whose cached span splices.
        let mut delta: Vec<Option<u32>> = vec![None; program.num_functions()];
        for func in program.functions() {
            let f = func.id().index();
            let Some(&first) = func.blocks().first() else {
                continue;
            };
            if prev.func_sig.get(f) != Some(&function_signature(layout, func.blocks()))
                || prev.func_start[f] == LineId::INVALID.get()
            {
                continue;
            }
            let new_start = table
                .lookup(layout.block_addr(first).line())
                .expect("every block line is interned by its layout's table")
                .get();
            delta[f] = Some(new_start.wrapping_sub(prev.func_start[f]));
        }
        let n = program.num_blocks();
        let mut ids = Vec::with_capacity(prev.plan.ids.len());
        let mut bounds = Vec::with_capacity(n + 1);
        bounds.push(0u32);
        for block in program.blocks() {
            match delta[block.func().index()] {
                Some(d) => {
                    for &id in prev.plan.lines_of(block.id()) {
                        ids.push(LineId(id.get().wrapping_add(d)));
                    }
                }
                None => {
                    for line in layout.lines_of_block(block.id()) {
                        let id = table
                            .lookup(line)
                            .expect("every block line is interned by its layout's table");
                        ids.push(id);
                    }
                }
            }
            let end = u32::try_from(ids.len()).expect("fetch plan exceeds u32 entries");
            bounds.push(end);
        }
        FetchPlan { ids, bounds }
    }

    /// The interned lines of `block`, in fetch order.
    #[inline]
    pub fn lines_of(&self, block: BlockId) -> &[LineId] {
        let i = block.index();
        &self.ids[self.bounds[i] as usize..self.bounds[i + 1] as usize]
    }
}

/// FNV-1a over a function's block-size sequence under one layout. Two
/// functions with equal signatures (and cache-line-multiple alignment)
/// occupy identical lines relative to their aligned start addresses.
fn function_signature(layout: &Layout, blocks: &[BlockId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in blocks {
        let mut v = layout.block_size(b);
        for _ in 0..4 {
            h ^= u64::from(v & 0xff);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
            v >>= 8;
        }
    }
    h
}

/// Reusable per-layout interning artifacts, extracted from one session and
/// fed to the next (see [`SimSession::plan_cache`](crate::SimSession)):
/// the [`LineTable`], the [`FetchPlan`], and a per-function layout hash
/// keying which functions' id spans can be spliced instead of rebuilt.
///
/// The fixpoint loop of Ripple's evaluation re-links the program every
/// round; between rounds only the functions whose injected prefixes
/// changed move lines relative to their starts, so successive sessions
/// rebuild only those.
#[derive(Debug, Clone)]
pub struct PlanCache {
    plan: FetchPlan,
    /// FNV-1a of each function's block-size sequence.
    func_sig: Vec<u64>,
    /// Raw id of the line holding each function's first block
    /// ([`LineId::INVALID`] for functions without blocks).
    func_start: Vec<u32>,
    /// `function_align` of the layout this cache was built from.
    align: u64,
}

impl PlanCache {
    /// Captures the reusable artifacts of `(program, layout, table, plan)`.
    pub(crate) fn capture(
        program: &Program,
        layout: &Layout,
        table: &LineTable,
        plan: &FetchPlan,
    ) -> Self {
        let nf = program.num_functions();
        let mut func_sig = Vec::with_capacity(nf);
        let mut func_start = Vec::with_capacity(nf);
        for func in program.functions() {
            func_sig.push(function_signature(layout, func.blocks()));
            let start = func
                .blocks()
                .first()
                .and_then(|&b| table.lookup(layout.block_addr(b).line()))
                .map_or(LineId::INVALID.get(), LineId::get);
            func_start.push(start);
        }
        PlanCache {
            plan: plan.clone(),
            func_sig,
            func_start,
            align: layout.config().function_align,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_program::{CodeKind, Instruction, LayoutConfig, ProgramBuilder};

    fn sample() -> (Program, Layout) {
        let mut b = ProgramBuilder::new();
        let f0 = b.add_function("f0", CodeKind::Static);
        let bb0 = b.add_block(f0);
        b.push_inst(bb0, Instruction::other(100));
        b.push_inst(bb0, Instruction::ret());
        let f1 = b.add_function("f1", CodeKind::Static);
        let bb1 = b.add_block(f1);
        b.push_inst(bb1, Instruction::other(30));
        b.push_inst(bb1, Instruction::ret());
        let p = b.finish(f0).unwrap();
        let l = Layout::new(&p, &LayoutConfig::default());
        (p, l)
    }

    #[test]
    fn roundtrips_every_block_line() {
        let (p, l) = sample();
        let table = LineTable::build(&l);
        for i in 0..p.num_blocks() {
            for line in l.lines_of_block(BlockId::new(i as u32)) {
                let id = table.lookup(line).expect("block line interned");
                assert_eq!(table.line(id), line);
            }
        }
    }

    #[test]
    fn unmapped_addresses_fall_back_to_none() {
        let (_, l) = sample();
        let table = LineTable::build(&l);
        // Below the text segment (the zero page) and far above it: both are
        // unmapped and must intern to nothing rather than alias a real id.
        assert_eq!(table.lookup(LineAddr::new(0)), None);
        assert_eq!(table.lookup(LineAddr::new(u64::MAX / 64)), None);
        let (first, last) = l.line_bounds().unwrap();
        assert_eq!(table.lookup(LineAddr::new(first.index() - 1)), None);
        // One line past the end is the prefetch margin and *is* mapped;
        // two lines past is not.
        assert!(table.lookup(last.next()).is_some());
        assert_eq!(table.lookup(last.next().next()), None);
    }

    #[test]
    fn next_line_prefetch_targets_stay_in_table() {
        let (p, l) = sample();
        let table = LineTable::build(&l);
        for i in 0..p.num_blocks() {
            for line in l.lines_of_block(BlockId::new(i as u32)) {
                let id = table.lookup(line).unwrap();
                assert!(id.next().get() < table.len(), "margin line missing");
                assert_eq!(table.line(id.next()), line.next());
            }
        }
    }

    #[test]
    fn fetch_plan_matches_layout_enumeration() {
        let (p, l) = sample();
        let table = LineTable::build(&l);
        let plan = FetchPlan::build(&p, &l, &table);
        for i in 0..p.num_blocks() {
            let block = BlockId::new(i as u32);
            let from_plan: Vec<LineAddr> = plan
                .lines_of(block)
                .iter()
                .map(|&id| table.line(id))
                .collect();
            let from_layout: Vec<LineAddr> = l.lines_of_block(block).collect();
            assert_eq!(from_plan, from_layout);
        }
    }

    #[test]
    fn identity_table_is_the_identity() {
        let table = LineTable::identity(16);
        assert_eq!(table.line_base(), 0);
        let id = table.lookup(LineAddr::new(5)).unwrap();
        assert_eq!(id, LineId::new(5));
        assert_eq!(table.line(id), LineAddr::new(5));
        assert_eq!(table.lookup(LineAddr::new(16)), None);
    }

    #[test]
    fn empty_layout_interns_nothing() {
        let table = LineTable { first: 0, len: 0 };
        assert!(table.is_empty());
        assert_eq!(table.lookup(LineAddr::new(0)), None);
    }
}
