//! GHRP: global-history reuse prediction for the instruction cache
//! (Ajorpaz et al., ISCA 2018), with the confidence fix from the Ripple
//! paper's §II-D.

use crate::config::CacheGeometry;
use crate::intern::LineId;
use crate::policy::{AccessInfo, ReplacementPolicy, WayView};

const TABLES: usize = 3;
const TABLE_ENTRIES: usize = 4096;
const CTR_MAX: i8 = 3;
const CTR_MIN: i8 = -4;
/// A line is predicted dead if the summed counter vote reaches this.
const DEAD_THRESHOLD: i16 = 3;
/// Recently-evicted victim buffer used by the confidence fix.
const VICTIM_BUFFER: usize = 64;

/// GHRP predicts whether a cached line is *dead* (will not be re-accessed
/// before eviction) from a hashed global history of fetch addresses, and
/// preferentially evicts predicted-dead lines.
///
/// The original proposal reinforces its prediction tables after every
/// eviction, even when the eviction later turns out to be premature. The
/// Ripple paper modifies GHRP to *decrease* confidence after evictions
/// that prove wrong; this implementation includes that fix (a small victim
/// buffer detects quick re-fetches of evicted lines and untrains the
/// tables), which is the variant the paper reports as "+0.1 % over LRU".
#[derive(Debug)]
pub struct GhrpPolicy {
    assoc: usize,
    tables: Vec<[i8; TABLE_ENTRIES]>,
    /// Global history register of recent fetch addresses.
    history: u16,
    /// Per-line stored signature and recency stamp.
    signatures: Vec<u16>,
    stamps: Vec<u64>,
    clock: u64,
    /// Recently evicted (line, signature) pairs for the confidence fix.
    victims: std::collections::VecDeque<(LineId, u16)>,
}

impl GhrpPolicy {
    /// Creates a GHRP policy for `geom`.
    pub fn new(geom: CacheGeometry) -> Self {
        GhrpPolicy {
            assoc: usize::from(geom.assoc),
            tables: vec![[0; TABLE_ENTRIES]; TABLES],
            history: 0,
            signatures: vec![0; geom.num_lines() as usize],
            stamps: vec![0; geom.num_lines() as usize],
            clock: 0,
            victims: std::collections::VecDeque::with_capacity(VICTIM_BUFFER),
        }
    }

    #[inline]
    fn idx(&self, set: u32, way: usize) -> usize {
        set as usize * self.assoc + way
    }

    /// Signature: fetch address folded with the global history.
    fn signature(&self, info: &AccessInfo) -> u16 {
        let pc = info.pc.get();
        (pc ^ (pc >> 13) ^ u64::from(self.history)) as u16
    }

    fn table_index(table: usize, sig: u16) -> usize {
        // Three skewed hashes of the signature.
        let s = usize::from(sig);
        match table {
            0 => s % TABLE_ENTRIES,
            1 => (s.wrapping_mul(0x9e37) >> 3) % TABLE_ENTRIES,
            _ => (s.wrapping_mul(0x85eb) >> 5) % TABLE_ENTRIES,
        }
    }

    fn vote(&self, sig: u16) -> i16 {
        (0..TABLES)
            .map(|t| i16::from(self.tables[t][Self::table_index(t, sig)]))
            .sum()
    }

    fn train(&mut self, sig: u16, dead: bool) {
        for t in 0..TABLES {
            let e = &mut self.tables[t][Self::table_index(t, sig)];
            *e = if dead {
                (*e + 1).min(CTR_MAX)
            } else {
                (*e - 1).max(CTR_MIN)
            };
        }
    }

    fn push_history(&mut self, info: &AccessInfo) {
        self.history = (self.history << 4) ^ (info.pc.get() as u16);
    }
}

impl ReplacementPolicy for GhrpPolicy {
    fn name(&self) -> &'static str {
        "ghrp"
    }

    fn metadata_bytes(&self, geom: &CacheGeometry) -> u64 {
        // Table I: 3 KB prediction tables + 64 B prediction bits
        // + 1 KB signatures + 2 B history register = 4.13 KB.
        let tables = (TABLES * TABLE_ENTRIES * 2) as u64 / 8; // 2-bit-class ctrs
        let pred_bits = geom.num_lines() / 8;
        let sigs = geom.num_lines() * 2;
        tables + pred_bits + sigs + 2
    }

    fn on_fill(&mut self, info: &AccessInfo, way: usize) {
        let sig = self.signature(info);
        let i = self.idx(info.set, way);
        self.signatures[i] = sig;
        self.clock += 1;
        self.stamps[i] = self.clock;
        // Confidence fix: a fill whose line sits in the victim buffer means
        // the earlier eviction was premature — untrain its signature.
        if !info.is_prefetch {
            if let Some(pos) = self.victims.iter().position(|&(l, _)| l == info.line) {
                if let Some((_, old_sig)) = self.victims.remove(pos) {
                    self.train(old_sig, false);
                }
            }
        }
        self.push_history(info);
    }

    fn on_hit(&mut self, info: &AccessInfo, way: usize) {
        let i = self.idx(info.set, way);
        // The stored signature led to a live line: train alive.
        let old = self.signatures[i];
        self.train(old, false);
        self.signatures[i] = self.signature(info);
        self.clock += 1;
        self.stamps[i] = self.clock;
        self.push_history(info);
    }

    fn victim(&mut self, info: &AccessInfo, ways: &[WayView]) -> usize {
        let base = self.idx(info.set, 0);
        // Prefer the most-confidently-dead line; fall back to LRU.
        let mut best: Option<(i16, usize)> = None;
        for w in 0..ways.len() {
            let vote = self.vote(self.signatures[base + w]);
            if vote >= DEAD_THRESHOLD && best.is_none_or(|(bv, _)| vote > bv) {
                best = Some((vote, w));
            }
        }
        if let Some((_, w)) = best {
            return w;
        }
        (0..ways.len())
            .min_by_key(|&w| self.stamps[base + w])
            .unwrap_or(0)
    }

    fn on_evict(&mut self, set: u32, way: usize, line: LineId) {
        let i = self.idx(set, way);
        let sig = self.signatures[i];
        // Original GHRP: reinforce "dead" for the evicted signature.
        self.train(sig, true);
        if self.victims.len() == VICTIM_BUFFER {
            self.victims.pop_front();
        }
        self.victims.push_back((line, sig));
    }

    fn on_invalidate(&mut self, set: u32, way: usize) {
        let i = self.idx(set, way);
        self.stamps[i] = 0;
    }

    fn on_demote(&mut self, set: u32, way: usize) {
        let i = self.idx(set, way);
        self.stamps[i] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::{demand_misses, tiny_geom};

    #[test]
    fn metadata_is_about_4k() {
        let geom = CacheGeometry::new(32 * 1024, 8);
        let bytes = GhrpPolicy::new(geom).metadata_bytes(&geom);
        // Table I reports 4.13 KB.
        assert!((4000..4500).contains(&bytes), "{bytes}");
    }

    #[test]
    fn falls_back_to_lru_when_untrained() {
        let geom = tiny_geom();
        // Untrained tables vote 0 < threshold => LRU behaviour.
        let stream = [(0u64, false), (2, false), (0, false), (4, false)];
        let ghrp = demand_misses(geom, Box::new(GhrpPolicy::new(geom)), &stream);
        let lru = demand_misses(geom, Box::new(crate::policy::LruPolicy::new(geom)), &stream);
        assert_eq!(ghrp, lru);
    }

    #[test]
    fn training_saturates() {
        let geom = tiny_geom();
        let mut p = GhrpPolicy::new(geom);
        for _ in 0..100 {
            p.train(0x1234, true);
        }
        assert_eq!(p.vote(0x1234), i16::from(CTR_MAX) * TABLES as i16);
        for _ in 0..100 {
            p.train(0x1234, false);
        }
        assert_eq!(p.vote(0x1234), i16::from(CTR_MIN) * TABLES as i16);
    }

    #[test]
    fn victim_buffer_untrains_premature_evictions() {
        let geom = tiny_geom();
        let mut p = GhrpPolicy::new(geom);
        let info = AccessInfo {
            line: LineId::new(0),
            set: 0,
            pc: ripple_program::Addr::new(0x100),
            is_prefetch: false,
            seq: 0,
        };
        // Fill, evict (training dead), then refill the same line: the
        // confidence fix must untrain back toward zero.
        p.on_fill(&info, 0);
        let sig = p.signatures[0];
        p.on_evict(0, 0, LineId::new(0));
        let after_evict = p.vote(sig);
        p.on_fill(&info, 0);
        assert!(p.vote(sig) < after_evict);
    }

    #[test]
    fn deterministic() {
        let geom = tiny_geom();
        let stream: Vec<(u64, bool)> = (0..400).map(|i| ((i * 5) % 14 * 2, false)).collect();
        let a = demand_misses(geom, Box::new(GhrpPolicy::new(geom)), &stream);
        let b = demand_misses(geom, Box::new(GhrpPolicy::new(geom)), &stream);
        assert_eq!(a, b);
    }
}
