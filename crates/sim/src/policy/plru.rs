//! Tree pseudo-LRU: the policy real hardware ships when Table I says
//! "LRU, 1 bit per line".
//!
//! True LRU needs `log2(assoc!)` bits per set; hardware approximates it
//! with a binary tree of direction bits (assoc − 1 bits per set ≈ 1 bit
//! per line). Included both for fidelity and as an ablation: Ripple is
//! policy-agnostic, so Ripple-PLRU should behave like Ripple-LRU.

use crate::config::CacheGeometry;
use crate::policy::{AccessInfo, ReplacementPolicy, WayView};

/// Tree-PLRU replacement for power-of-two associativities.
#[derive(Debug)]
pub struct TreePlruPolicy {
    assoc: usize,
    /// Per set: assoc − 1 direction bits, heap-ordered (node 0 is the
    /// root; children of `i` are `2i + 1` and `2i + 2`). A bit of 0 means
    /// "the LRU side is the left subtree".
    bits: Vec<bool>,
}

impl TreePlruPolicy {
    /// Creates a tree-PLRU policy for `geom`.
    ///
    /// # Panics
    ///
    /// Panics if the associativity is not a power of two (the tree needs
    /// a complete binary shape).
    pub fn new(geom: CacheGeometry) -> Self {
        let assoc = usize::from(geom.assoc);
        assert!(assoc.is_power_of_two(), "tree-PLRU needs power-of-two ways");
        TreePlruPolicy {
            assoc,
            bits: vec![false; geom.num_sets() as usize * (assoc - 1)],
        }
    }

    fn levels(&self) -> usize {
        self.assoc.trailing_zeros() as usize
    }

    fn set_bits(&mut self, set: u32) -> &mut [bool] {
        let n = self.assoc - 1;
        let start = set as usize * n;
        &mut self.bits[start..start + n]
    }

    /// Walks from the root to `way`, pointing every node *away* from it
    /// (a touch makes the way most-recently used).
    fn touch(&mut self, set: u32, way: usize) {
        let levels = self.levels();
        let bits = self.set_bits(set);
        let mut node = 0usize;
        for level in 0..levels {
            let went_right = (way >> (levels - 1 - level)) & 1 == 1;
            // Point the LRU hint at the *other* subtree.
            bits[node] = !went_right;
            node = 2 * node + if went_right { 2 } else { 1 };
        }
    }

    /// Walks the LRU hints from the root to the victim way.
    fn find_victim(&mut self, set: u32) -> usize {
        let levels = self.levels();
        let bits = self.set_bits(set);
        let mut node = 0usize;
        let mut way = 0usize;
        for _ in 0..levels {
            // Bit convention: 0 = the left subtree is the LRU side.
            let go_right = bits[node];
            way = (way << 1) | usize::from(go_right);
            node = 2 * node + if go_right { 2 } else { 1 };
        }
        way
    }

    /// Points the tree path *at* `way`, making it the next victim.
    fn demote_way(&mut self, set: u32, way: usize) {
        let levels = self.levels();
        let bits = self.set_bits(set);
        let mut node = 0usize;
        for level in 0..levels {
            let goes_right = (way >> (levels - 1 - level)) & 1 == 1;
            bits[node] = goes_right;
            node = 2 * node + if goes_right { 2 } else { 1 };
        }
    }
}

impl ReplacementPolicy for TreePlruPolicy {
    fn name(&self) -> &'static str {
        "tree-plru"
    }

    // Direction bits are per-set; no cross-set state at all.
    fn replay_set_local(&self) -> bool {
        true
    }

    fn metadata_bytes(&self, geom: &CacheGeometry) -> u64 {
        // assoc - 1 bits per set ≈ 1 bit per line: Table I's LRU row.
        (geom.num_sets() * (u64::from(geom.assoc) - 1)).div_ceil(8)
    }

    fn on_fill(&mut self, info: &AccessInfo, way: usize) {
        self.touch(info.set, way);
    }

    fn on_hit(&mut self, info: &AccessInfo, way: usize) {
        self.touch(info.set, way);
    }

    fn victim(&mut self, info: &AccessInfo, _ways: &[WayView]) -> usize {
        self.find_victim(info.set)
    }

    fn on_demote(&mut self, set: u32, way: usize) {
        self.demote_way(set, way);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::LineId;
    use crate::policy::test_util::{demand_misses, tiny_geom};
    use crate::policy::LruPolicy;
    use ripple_program::Addr;

    fn info(set: u32) -> AccessInfo {
        AccessInfo {
            line: LineId::new(0),
            set,
            pc: Addr::new(0),
            is_prefetch: false,
            seq: 0,
        }
    }

    #[test]
    fn metadata_matches_table_i() {
        let geom = CacheGeometry::new(32 * 1024, 8);
        let p = TreePlruPolicy::new(geom);
        // 64 sets × 7 bits = 56 B (Table I rounds to 64 B with valid bits).
        assert_eq!(p.metadata_bytes(&geom), 56);
    }

    #[test]
    fn two_way_plru_is_exact_lru() {
        // With two ways, tree-PLRU degenerates to true LRU: identical
        // misses on any stream.
        let geom = tiny_geom();
        let stream: Vec<(u64, bool)> = (0..400).map(|i| ((i * 7) % 10 * 2, false)).collect();
        let plru = demand_misses(geom, Box::new(TreePlruPolicy::new(geom)), &stream);
        let lru = demand_misses(geom, Box::new(LruPolicy::new(geom)), &stream);
        assert_eq!(plru, lru);
    }

    #[test]
    fn victim_is_never_the_most_recent() {
        let geom = CacheGeometry::new(8 * 64 * 8, 8); // 8 sets x 8 ways
        let mut p = TreePlruPolicy::new(geom);
        for way in 0..8 {
            p.touch(0, way);
            assert_ne!(p.find_victim(0), way, "just-touched way chosen");
        }
    }

    #[test]
    fn touch_all_then_first_touched_is_victimish() {
        let geom = CacheGeometry::new(8 * 64 * 8, 8);
        let mut p = TreePlruPolicy::new(geom);
        // Touch 0..8 in order; the victim must be in the "older" half.
        for way in 0..8 {
            p.touch(0, way);
        }
        let v = p.find_victim(0);
        assert!(
            v < 4,
            "victim {v} should come from the earlier-touched half"
        );
    }

    #[test]
    fn demote_makes_way_the_victim() {
        let geom = CacheGeometry::new(8 * 64 * 8, 8);
        let mut p = TreePlruPolicy::new(geom);
        for way in 0..8 {
            p.touch(0, way);
        }
        p.demote_way(0, 5);
        assert_eq!(p.find_victim(0), 5);
        let _ = info(0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        // 3-way geometry: 192 B per set over 1 set.
        let geom = CacheGeometry::new(3 * 64, 3);
        let _ = TreePlruPolicy::new(geom);
    }
}
