//! Re-reference interval prediction policies: SRRIP and DRRIP
//! (Jaleel et al., ISCA 2010), plus the shared RRIP machinery
//! ([`rrip_victim`], [`SetDuel`]) reused by TRRIP.

use crate::config::CacheGeometry;
use crate::policy::{AccessInfo, ReplacementPolicy, WayView};

pub(crate) const RRPV_BITS: u8 = 2;
pub(crate) const RRPV_MAX: u8 = (1 << RRPV_BITS) - 1; // 3 = distant future
pub(crate) const RRPV_LONG: u8 = RRPV_MAX - 1; // 2 = long re-reference interval

const PSEL_MAX: i16 = 511;
const PSEL_MIN: i16 = -512;

/// Static RRIP: every fill is presumed cache-averse (a scan) until a
/// second access promotes it.
///
/// SRRIP targets scanning access patterns that are rare in instruction
/// streams, which is exactly why the paper finds it cannot beat LRU on the
/// I-cache (§II-D).
#[derive(Debug)]
pub struct SrripPolicy {
    assoc: usize,
    rrpv: Vec<u8>,
}

impl SrripPolicy {
    /// Creates an SRRIP policy for `geom`.
    pub fn new(geom: CacheGeometry) -> Self {
        SrripPolicy {
            assoc: usize::from(geom.assoc),
            rrpv: vec![RRPV_MAX; geom.num_lines() as usize],
        }
    }

    #[inline]
    fn idx(&self, set: u32, way: usize) -> usize {
        set as usize * self.assoc + way
    }
}

/// Shared SRRIP victim scan: find an `RRPV_MAX` way, aging the set until
/// one exists.
pub(crate) fn rrip_victim(rrpv: &mut [u8], set: u32, assoc: usize, ways: usize) -> usize {
    let base = set as usize * assoc;
    loop {
        for w in 0..ways {
            if rrpv[base + w] >= RRPV_MAX {
                return w;
            }
        }
        for w in 0..ways {
            rrpv[base + w] += 1;
        }
    }
}

/// Role of one set in a set-dueling scheme: the baseline leader always
/// runs the incumbent insertion policy, the challenger leader always runs
/// the contender, and followers obey the PSEL counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DuelRole {
    /// Dedicated to the incumbent policy (SRRIP insertion).
    BaselineLeader,
    /// Dedicated to the challenger (BRRIP for DRRIP, temperature hints
    /// for TRRIP).
    ChallengerLeader,
    /// Follows the PSEL counter's current winner.
    Follower,
}

/// Set-dueling machinery shared by DRRIP and TRRIP: leader-set selection
/// plus the saturating PSEL counter trained on leader-set misses.
#[derive(Debug)]
pub(crate) struct SetDuel {
    num_sets: u32,
    /// 10-bit policy selector: high means the challenger is winning.
    psel: i16,
}

impl SetDuel {
    pub(crate) fn new(num_sets: u32) -> Self {
        SetDuel { num_sets, psel: 0 }
    }

    /// Leader-set classification via the standard complement-select
    /// scheme: low bits pattern picks baseline leaders, its complement
    /// picks challenger leaders, the rest follow PSEL.
    ///
    /// Geometries of 32 sets or fewer cannot host the complement-select
    /// pattern (it would dedicate leaders to one side only, training PSEL
    /// one-sided), so dueling degrades symmetrically: one leader per
    /// policy at the two ends of the set index space, and below two sets
    /// dueling is disabled entirely (every set follows a neutral PSEL,
    /// i.e. pure baseline).
    pub(crate) fn role(&self, set: u32) -> DuelRole {
        if self.num_sets <= 32 {
            if self.num_sets < 2 {
                return DuelRole::Follower;
            }
            return if set == 0 {
                DuelRole::BaselineLeader
            } else if set == self.num_sets - 1 {
                DuelRole::ChallengerLeader
            } else {
                DuelRole::Follower
            };
        }
        let sel = set & 0x1f;
        let region = (set >> 5) & 0x1f;
        if sel == region {
            DuelRole::BaselineLeader
        } else if sel == (!region & 0x1f) {
            DuelRole::ChallengerLeader
        } else {
            DuelRole::Follower
        }
    }

    /// Called on a fill: trains PSEL if `set` is a leader, and returns
    /// whether this fill should use the challenger insertion policy.
    pub(crate) fn train_and_select(&mut self, set: u32) -> bool {
        match self.role(set) {
            DuelRole::BaselineLeader => {
                self.psel = (self.psel + 1).min(PSEL_MAX);
                false
            }
            DuelRole::ChallengerLeader => {
                self.psel = (self.psel - 1).max(PSEL_MIN);
                true
            }
            DuelRole::Follower => self.psel > 0,
        }
    }

    /// Whether `set` currently runs the challenger policy (no training).
    pub(crate) fn prefers_challenger(&self, set: u32) -> bool {
        match self.role(set) {
            DuelRole::BaselineLeader => false,
            DuelRole::ChallengerLeader => true,
            DuelRole::Follower => self.psel > 0,
        }
    }
}

impl ReplacementPolicy for SrripPolicy {
    fn name(&self) -> &'static str {
        "srrip"
    }

    // RRPVs are per-line and victim aging touches one set; DRRIP's global
    // PSEL duel is what makes the *dynamic* variants order-sensitive.
    fn replay_set_local(&self) -> bool {
        true
    }

    fn metadata_bytes(&self, geom: &CacheGeometry) -> u64 {
        // 2 bits per line (Table I: 128 B for 32 KB / 8-way).
        geom.num_lines() * u64::from(RRPV_BITS) / 8
    }

    fn on_fill(&mut self, info: &AccessInfo, way: usize) {
        let i = self.idx(info.set, way);
        self.rrpv[i] = RRPV_LONG;
    }

    fn on_hit(&mut self, info: &AccessInfo, way: usize) {
        let i = self.idx(info.set, way);
        self.rrpv[i] = 0;
    }

    fn victim(&mut self, info: &AccessInfo, ways: &[WayView]) -> usize {
        rrip_victim(&mut self.rrpv, info.set, self.assoc, ways.len())
    }

    fn on_invalidate(&mut self, set: u32, way: usize) {
        let i = self.idx(set, way);
        self.rrpv[i] = RRPV_MAX;
    }

    fn on_demote(&mut self, set: u32, way: usize) {
        let i = self.idx(set, way);
        self.rrpv[i] = RRPV_MAX;
    }
}

/// Dynamic RRIP: set-dueling between SRRIP and bimodal insertion (BRRIP)
/// to also handle thrashing patterns.
#[derive(Debug)]
pub struct DrripPolicy {
    assoc: usize,
    rrpv: Vec<u8>,
    duel: SetDuel,
    brrip_ctr: u32,
}

impl DrripPolicy {
    /// Creates a DRRIP policy for `geom`.
    pub fn new(geom: CacheGeometry) -> Self {
        DrripPolicy {
            assoc: usize::from(geom.assoc),
            rrpv: vec![RRPV_MAX; geom.num_lines() as usize],
            duel: SetDuel::new(geom.num_sets() as u32),
            brrip_ctr: 0,
        }
    }

    #[inline]
    fn idx(&self, set: u32, way: usize) -> usize {
        set as usize * self.assoc + way
    }
}

impl ReplacementPolicy for DrripPolicy {
    fn name(&self) -> &'static str {
        "drrip"
    }

    fn metadata_bytes(&self, geom: &CacheGeometry) -> u64 {
        // 2 bits per line + PSEL (Table I reports 128 B; PSEL rounds away).
        geom.num_lines() * u64::from(RRPV_BITS) / 8
    }

    fn on_fill(&mut self, info: &AccessInfo, way: usize) {
        // A miss in a leader set trains PSEL toward the other policy.
        let brrip = self.duel.train_and_select(info.set);
        let i = self.idx(info.set, way);
        self.rrpv[i] = if brrip {
            // Bimodal: distant except 1/32 of fills.
            self.brrip_ctr = self.brrip_ctr.wrapping_add(1);
            if self.brrip_ctr.is_multiple_of(32) {
                RRPV_LONG
            } else {
                RRPV_MAX
            }
        } else {
            RRPV_LONG
        };
    }

    fn on_hit(&mut self, info: &AccessInfo, way: usize) {
        let i = self.idx(info.set, way);
        self.rrpv[i] = 0;
    }

    fn victim(&mut self, info: &AccessInfo, ways: &[WayView]) -> usize {
        rrip_victim(&mut self.rrpv, info.set, self.assoc, ways.len())
    }

    fn on_invalidate(&mut self, set: u32, way: usize) {
        let i = self.idx(set, way);
        self.rrpv[i] = RRPV_MAX;
    }

    fn on_demote(&mut self, set: u32, way: usize) {
        let i = self.idx(set, way);
        self.rrpv[i] = RRPV_MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::{demand_misses, tiny_geom};

    #[test]
    fn metadata_matches_table_i() {
        let geom = CacheGeometry::new(32 * 1024, 8);
        assert_eq!(SrripPolicy::new(geom).metadata_bytes(&geom), 128);
        assert_eq!(DrripPolicy::new(geom).metadata_bytes(&geom), 128);
    }

    #[test]
    fn srrip_protects_reused_line_from_scan() {
        // Set 0 of a 2-way cache. A is hot; X, Y, Z are a one-shot scan.
        // Stream: A A X A Y A Z A. SRRIP keeps A resident throughout
        // (scan lines insert at long/distant and never promote).
        let geom = tiny_geom();
        let a = 0u64;
        let stream = [
            (a, false),
            (a, false),
            (2, false),
            (a, false),
            (4, false),
            (a, false),
            (6, false),
            (a, false),
        ];
        let misses = demand_misses(geom, Box::new(SrripPolicy::new(geom)), &stream);
        // Misses: A, X, Y, Z = 4; every later A access hits.
        assert_eq!(misses, 4);
    }

    #[test]
    fn lru_loses_to_srrip_on_scans() {
        let geom = tiny_geom();
        let a = 0u64;
        let stream = [
            (a, false),
            (a, false),
            (2, false),
            (4, false),
            (a, false),
            (6, false),
            (8, false),
            (a, false),
        ];
        let srrip = demand_misses(geom, Box::new(SrripPolicy::new(geom)), &stream);
        let lru = demand_misses(geom, Box::new(crate::policy::LruPolicy::new(geom)), &stream);
        assert!(srrip < lru, "srrip {srrip} !< lru {lru}");
    }

    #[test]
    fn rrip_victim_ages_until_found() {
        let mut rrpv = vec![0u8, 1];
        let v = rrip_victim(&mut rrpv, 0, 2, 2);
        assert_eq!(v, 1); // way 1 reaches 3 first (2 increments)
        assert_eq!(rrpv, vec![2, 3]);
    }

    #[test]
    fn duel_leader_sets_exist_and_differ() {
        let geom = CacheGeometry::new(32 * 1024, 8);
        let duel = SetDuel::new(geom.num_sets() as u32);
        let mut baseline_leaders = 0;
        let mut challenger_leaders = 0;
        for set in 0..geom.num_sets() as u32 {
            match duel.role(set) {
                DuelRole::BaselineLeader => baseline_leaders += 1,
                DuelRole::ChallengerLeader => challenger_leaders += 1,
                DuelRole::Follower => {}
            }
        }
        assert!(baseline_leaders > 0);
        assert!(challenger_leaders > 0);
        assert!(baseline_leaders + challenger_leaders < geom.num_sets() as u32);
    }

    #[test]
    fn duel_small_geometries_are_symmetric() {
        // Every geometry with at least 2 sets must dedicate the same
        // number of leader sets to each policy; a 1-set cache disables
        // dueling (all followers, neutral PSEL → baseline).
        for (size, assoc) in [
            (128u64, 2u16), // 1 set
            (256, 2),       // 2 sets
            (512, 2),       // 4 sets
            (1024, 2),      // 8 sets
            (2048, 2),      // 16 sets
            (4096, 2),      // 32 sets
            (8192, 2),      // 64 sets (complement-select path)
            (32 * 1024, 8), // default geometry
        ] {
            let geom = CacheGeometry::new(size, assoc);
            let duel = SetDuel::new(geom.num_sets() as u32);
            let mut baseline_leaders = 0u32;
            let mut challenger_leaders = 0u32;
            for set in 0..geom.num_sets() as u32 {
                match duel.role(set) {
                    DuelRole::BaselineLeader => baseline_leaders += 1,
                    DuelRole::ChallengerLeader => challenger_leaders += 1,
                    DuelRole::Follower => {}
                }
            }
            assert_eq!(
                baseline_leaders,
                challenger_leaders,
                "asymmetric dueling at {} sets",
                geom.num_sets()
            );
            if geom.num_sets() >= 2 {
                assert!(
                    baseline_leaders > 0,
                    "no leaders at {} sets",
                    geom.num_sets()
                );
            } else {
                assert_eq!(baseline_leaders, 0);
            }
        }
    }

    #[test]
    fn duel_psel_saturates_and_selects() {
        // A miss in a leader set is a vote *against* that leader's policy:
        // baseline-leader misses push PSEL up (toward the challenger),
        // challenger-leader misses push it back down. Followers obey the
        // sign. Training runs far past the 10-bit range to check
        // saturation.
        let mut duel = SetDuel::new(64);
        let follower = (0..64u32)
            .find(|&s| duel.role(s) == DuelRole::Follower)
            .unwrap();
        let baseline = (0..64u32)
            .find(|&s| duel.role(s) == DuelRole::BaselineLeader)
            .unwrap();
        let challenger = (0..64u32)
            .find(|&s| duel.role(s) == DuelRole::ChallengerLeader)
            .unwrap();
        assert!(!duel.prefers_challenger(follower)); // psel = 0 → baseline
        for _ in 0..2000 {
            // Leader sets always run their own policy regardless of PSEL.
            assert!(!duel.train_and_select(baseline));
        }
        assert!(duel.prefers_challenger(follower));
        for _ in 0..4000 {
            assert!(duel.train_and_select(challenger));
        }
        assert!(!duel.prefers_challenger(follower));
    }

    #[test]
    fn drrip_runs_thrash_pattern() {
        // 3 lines round-robin in every set; DRRIP must stay functional and
        // deterministic (exact miss count depends on dueling state).
        let geom = tiny_geom();
        let stream: Vec<(u64, bool)> = (0..600).map(|i| ((i % 3) * 2, false)).collect();
        let a = demand_misses(geom, Box::new(DrripPolicy::new(geom)), &stream);
        let b = demand_misses(geom, Box::new(DrripPolicy::new(geom)), &stream);
        assert_eq!(a, b);
        assert!(a <= 600);
    }
}
