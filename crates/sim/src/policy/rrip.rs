//! Re-reference interval prediction policies: SRRIP and DRRIP
//! (Jaleel et al., ISCA 2010).

use crate::config::CacheGeometry;
use crate::policy::{AccessInfo, ReplacementPolicy, WayView};

const RRPV_BITS: u8 = 2;
const RRPV_MAX: u8 = (1 << RRPV_BITS) - 1; // 3 = distant future
const RRPV_LONG: u8 = RRPV_MAX - 1; // 2 = long re-reference interval

/// Static RRIP: every fill is presumed cache-averse (a scan) until a
/// second access promotes it.
///
/// SRRIP targets scanning access patterns that are rare in instruction
/// streams, which is exactly why the paper finds it cannot beat LRU on the
/// I-cache (§II-D).
#[derive(Debug)]
pub struct SrripPolicy {
    assoc: usize,
    rrpv: Vec<u8>,
}

impl SrripPolicy {
    /// Creates an SRRIP policy for `geom`.
    pub fn new(geom: CacheGeometry) -> Self {
        SrripPolicy {
            assoc: usize::from(geom.assoc),
            rrpv: vec![RRPV_MAX; geom.num_lines() as usize],
        }
    }

    #[inline]
    fn idx(&self, set: u32, way: usize) -> usize {
        set as usize * self.assoc + way
    }
}

/// Shared SRRIP victim scan: find an `RRPV_MAX` way, aging the set until
/// one exists.
fn rrip_victim(rrpv: &mut [u8], set: u32, assoc: usize, ways: usize) -> usize {
    let base = set as usize * assoc;
    loop {
        for w in 0..ways {
            if rrpv[base + w] >= RRPV_MAX {
                return w;
            }
        }
        for w in 0..ways {
            rrpv[base + w] += 1;
        }
    }
}

impl ReplacementPolicy for SrripPolicy {
    fn name(&self) -> &'static str {
        "srrip"
    }

    fn metadata_bytes(&self, geom: &CacheGeometry) -> u64 {
        // 2 bits per line (Table I: 128 B for 32 KB / 8-way).
        geom.num_lines() * u64::from(RRPV_BITS) / 8
    }

    fn on_fill(&mut self, info: &AccessInfo, way: usize) {
        let i = self.idx(info.set, way);
        self.rrpv[i] = RRPV_LONG;
    }

    fn on_hit(&mut self, info: &AccessInfo, way: usize) {
        let i = self.idx(info.set, way);
        self.rrpv[i] = 0;
    }

    fn victim(&mut self, info: &AccessInfo, ways: &[WayView]) -> usize {
        rrip_victim(&mut self.rrpv, info.set, self.assoc, ways.len())
    }

    fn on_invalidate(&mut self, set: u32, way: usize) {
        let i = self.idx(set, way);
        self.rrpv[i] = RRPV_MAX;
    }

    fn on_demote(&mut self, set: u32, way: usize) {
        let i = self.idx(set, way);
        self.rrpv[i] = RRPV_MAX;
    }
}

/// Dynamic RRIP: set-dueling between SRRIP and bimodal insertion (BRRIP)
/// to also handle thrashing patterns.
#[derive(Debug)]
pub struct DrripPolicy {
    assoc: usize,
    num_sets: u32,
    rrpv: Vec<u8>,
    /// 10-bit policy selector: high means BRRIP is winning.
    psel: i16,
    brrip_ctr: u32,
}

const PSEL_MAX: i16 = 511;
const PSEL_MIN: i16 = -512;

impl DrripPolicy {
    /// Creates a DRRIP policy for `geom`.
    pub fn new(geom: CacheGeometry) -> Self {
        DrripPolicy {
            assoc: usize::from(geom.assoc),
            num_sets: geom.num_sets() as u32,
            rrpv: vec![RRPV_MAX; geom.num_lines() as usize],
            psel: 0,
            brrip_ctr: 0,
        }
    }

    #[inline]
    fn idx(&self, set: u32, way: usize) -> usize {
        set as usize * self.assoc + way
    }

    /// Leader-set classification via the standard complement-select
    /// scheme: low bits pattern picks SRRIP leaders, its complement picks
    /// BRRIP leaders, the rest follow PSEL.
    ///
    /// Geometries of 32 sets or fewer cannot host the complement-select
    /// pattern (it would dedicate leaders to one side only, training PSEL
    /// one-sided), so dueling degrades symmetrically: one leader per
    /// policy at the two ends of the set index space, and below two sets
    /// dueling is disabled entirely (every set follows a neutral PSEL,
    /// i.e. pure SRRIP).
    fn set_role(&self, set: u32) -> SetRole {
        if self.num_sets <= 32 {
            if self.num_sets < 2 {
                return SetRole::Follower;
            }
            return if set == 0 {
                SetRole::SrripLeader
            } else if set == self.num_sets - 1 {
                SetRole::BrripLeader
            } else {
                SetRole::Follower
            };
        }
        let sel = set & 0x1f;
        let region = (set >> 5) & 0x1f;
        if sel == region {
            SetRole::SrripLeader
        } else if sel == (!region & 0x1f) {
            SetRole::BrripLeader
        } else {
            SetRole::Follower
        }
    }

    fn use_brrip(&self, set: u32) -> bool {
        match self.set_role(set) {
            SetRole::SrripLeader => false,
            SetRole::BrripLeader => true,
            SetRole::Follower => self.psel > 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetRole {
    SrripLeader,
    BrripLeader,
    Follower,
}

impl ReplacementPolicy for DrripPolicy {
    fn name(&self) -> &'static str {
        "drrip"
    }

    fn metadata_bytes(&self, geom: &CacheGeometry) -> u64 {
        // 2 bits per line + PSEL (Table I reports 128 B; PSEL rounds away).
        geom.num_lines() * u64::from(RRPV_BITS) / 8
    }

    fn on_fill(&mut self, info: &AccessInfo, way: usize) {
        // A miss in a leader set trains PSEL toward the other policy.
        match self.set_role(info.set) {
            SetRole::SrripLeader => self.psel = (self.psel + 1).min(PSEL_MAX),
            SetRole::BrripLeader => self.psel = (self.psel - 1).max(PSEL_MIN),
            SetRole::Follower => {}
        }
        let brrip = self.use_brrip(info.set);
        let i = self.idx(info.set, way);
        self.rrpv[i] = if brrip {
            // Bimodal: distant except 1/32 of fills.
            self.brrip_ctr = self.brrip_ctr.wrapping_add(1);
            if self.brrip_ctr.is_multiple_of(32) {
                RRPV_LONG
            } else {
                RRPV_MAX
            }
        } else {
            RRPV_LONG
        };
    }

    fn on_hit(&mut self, info: &AccessInfo, way: usize) {
        let i = self.idx(info.set, way);
        self.rrpv[i] = 0;
    }

    fn victim(&mut self, info: &AccessInfo, ways: &[WayView]) -> usize {
        rrip_victim(&mut self.rrpv, info.set, self.assoc, ways.len())
    }

    fn on_invalidate(&mut self, set: u32, way: usize) {
        let i = self.idx(set, way);
        self.rrpv[i] = RRPV_MAX;
    }

    fn on_demote(&mut self, set: u32, way: usize) {
        let i = self.idx(set, way);
        self.rrpv[i] = RRPV_MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::{demand_misses, tiny_geom};

    #[test]
    fn metadata_matches_table_i() {
        let geom = CacheGeometry::new(32 * 1024, 8);
        assert_eq!(SrripPolicy::new(geom).metadata_bytes(&geom), 128);
        assert_eq!(DrripPolicy::new(geom).metadata_bytes(&geom), 128);
    }

    #[test]
    fn srrip_protects_reused_line_from_scan() {
        // Set 0 of a 2-way cache. A is hot; X, Y, Z are a one-shot scan.
        // Stream: A A X A Y A Z A. SRRIP keeps A resident throughout
        // (scan lines insert at long/distant and never promote).
        let geom = tiny_geom();
        let a = 0u64;
        let stream = [
            (a, false),
            (a, false),
            (2, false),
            (a, false),
            (4, false),
            (a, false),
            (6, false),
            (a, false),
        ];
        let misses = demand_misses(geom, Box::new(SrripPolicy::new(geom)), &stream);
        // Misses: A, X, Y, Z = 4; every later A access hits.
        assert_eq!(misses, 4);
    }

    #[test]
    fn lru_loses_to_srrip_on_scans() {
        let geom = tiny_geom();
        let a = 0u64;
        let stream = [
            (a, false),
            (a, false),
            (2, false),
            (4, false),
            (a, false),
            (6, false),
            (8, false),
            (a, false),
        ];
        let srrip = demand_misses(geom, Box::new(SrripPolicy::new(geom)), &stream);
        let lru = demand_misses(geom, Box::new(crate::policy::LruPolicy::new(geom)), &stream);
        assert!(srrip < lru, "srrip {srrip} !< lru {lru}");
    }

    #[test]
    fn rrip_victim_ages_until_found() {
        let mut rrpv = vec![0u8, 1];
        let v = rrip_victim(&mut rrpv, 0, 2, 2);
        assert_eq!(v, 1); // way 1 reaches 3 first (2 increments)
        assert_eq!(rrpv, vec![2, 3]);
    }

    #[test]
    fn drrip_leader_sets_exist_and_differ() {
        let geom = CacheGeometry::new(32 * 1024, 8);
        let p = DrripPolicy::new(geom);
        let mut srrip_leaders = 0;
        let mut brrip_leaders = 0;
        for set in 0..geom.num_sets() as u32 {
            match p.set_role(set) {
                SetRole::SrripLeader => srrip_leaders += 1,
                SetRole::BrripLeader => brrip_leaders += 1,
                SetRole::Follower => {}
            }
        }
        assert!(srrip_leaders > 0);
        assert!(brrip_leaders > 0);
        assert!(srrip_leaders + brrip_leaders < geom.num_sets() as u32);
    }

    #[test]
    fn drrip_small_geometries_duel_symmetrically() {
        // Every geometry with at least 2 sets must dedicate the same
        // number of leader sets to each policy; a 1-set cache disables
        // dueling (all followers, neutral PSEL → SRRIP).
        for (size, assoc) in [
            (128u64, 2u16), // 1 set
            (256, 2),       // 2 sets
            (512, 2),       // 4 sets
            (1024, 2),      // 8 sets
            (2048, 2),      // 16 sets
            (4096, 2),      // 32 sets
            (8192, 2),      // 64 sets (complement-select path)
            (32 * 1024, 8), // default geometry
        ] {
            let geom = CacheGeometry::new(size, assoc);
            let p = DrripPolicy::new(geom);
            let mut srrip_leaders = 0u32;
            let mut brrip_leaders = 0u32;
            for set in 0..geom.num_sets() as u32 {
                match p.set_role(set) {
                    SetRole::SrripLeader => srrip_leaders += 1,
                    SetRole::BrripLeader => brrip_leaders += 1,
                    SetRole::Follower => {}
                }
            }
            assert_eq!(
                srrip_leaders,
                brrip_leaders,
                "asymmetric dueling at {} sets",
                geom.num_sets()
            );
            if geom.num_sets() >= 2 {
                assert!(srrip_leaders > 0, "no leaders at {} sets", geom.num_sets());
            } else {
                assert_eq!(srrip_leaders, 0);
            }
        }
    }

    #[test]
    fn drrip_runs_thrash_pattern() {
        // 3 lines round-robin in every set; DRRIP must stay functional and
        // deterministic (exact miss count depends on dueling state).
        let geom = tiny_geom();
        let stream: Vec<(u64, bool)> = (0..600).map(|i| ((i % 3) * 2, false)).collect();
        let a = demand_misses(geom, Box::new(DrripPolicy::new(geom)), &stream);
        let b = demand_misses(geom, Box::new(DrripPolicy::new(geom)), &stream);
        assert_eq!(a, b);
        assert!(a <= 600);
    }
}
