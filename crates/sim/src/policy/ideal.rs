//! Offline ideal replacement: Belady's OPT and the paper's revised,
//! prefetch-aware Demand-MIN.
//!
//! Both need the *future* of the access stream, which an online policy
//! cannot have. The engine therefore runs twice: a recording pass captures
//! the cache request stream (which is replacement-policy-independent —
//! prefetcher and branch-predictor state never read the cache), a
//! [`FutureIndex`] annotates every position with the next demand and next
//! prefetch to the same line, and the replay pass consults it.

use std::collections::HashMap;
use std::sync::Arc;

use ripple_program::LineAddr;

use crate::config::CacheGeometry;
use crate::intern::LineTable;
use crate::policy::{AccessInfo, ReplacementPolicy, WayView};

/// Position value meaning "never again".
pub const NEVER: u64 = u64::MAX;

/// Internal `u32` sentinel for [`NEVER`]: stream positions fit `u32` (the
/// packed capture indexes records with `u32`), so the index stores half-
/// width positions and widens on read. `u32::MAX` widens to `NEVER`.
const NEVER_32: u32 = u32::MAX;

/// Widens a stored position, mapping the sentinel to [`NEVER`].
#[inline]
fn widen(pos: u32) -> u64 {
    if pos == NEVER_32 {
        NEVER
    } else {
        u64::from(pos)
    }
}

/// One request in the recorded stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamRecord {
    /// The requested line.
    pub line: LineAddr,
    /// Whether the request was a prefetch.
    pub is_prefetch: bool,
}

/// For every position in a recorded request stream, the position of the
/// next demand access and the next prefetch to the same line.
#[derive(Debug)]
pub struct FutureIndex {
    next_demand: Vec<u32>,
    next_prefetch: Vec<u32>,
    len: u64,
}

impl FutureIndex {
    /// Builds the index with a single backward scan.
    ///
    /// # Panics
    ///
    /// Panics if the stream has `u32::MAX` or more records (the same
    /// capacity contract as the packed capture).
    pub fn build(stream: &[StreamRecord]) -> Arc<Self> {
        let n = stream.len();
        assert!(n < NEVER_32 as usize, "stream exceeds u32 records");
        let mut next_demand = vec![NEVER_32; n];
        let mut next_prefetch = vec![NEVER_32; n];
        let mut last_demand: HashMap<LineAddr, u32> = HashMap::new();
        let mut last_prefetch: HashMap<LineAddr, u32> = HashMap::new();
        for i in (0..n).rev() {
            let r = stream[i];
            next_demand[i] = last_demand.get(&r.line).copied().unwrap_or(NEVER_32);
            next_prefetch[i] = last_prefetch.get(&r.line).copied().unwrap_or(NEVER_32);
            if r.is_prefetch {
                last_prefetch.insert(r.line, i as u32);
            } else {
                last_demand.insert(r.line, i as u32);
            }
        }
        Arc::new(FutureIndex {
            next_demand,
            next_prefetch,
            len: n as u64,
        })
    }

    /// [`FutureIndex::build`] over interned lines: the per-line chain heads
    /// live in two flat arrays indexed by [`LineId`](crate::LineId) instead
    /// of hash maps. Produces exactly the same index as `build`.
    ///
    /// # Panics
    ///
    /// Panics if the stream contains a line outside `table`.
    // The panic is the documented contract for a table/stream mismatch,
    // which `SimSession` (building both from one layout) rules out.
    #[allow(clippy::expect_used)]
    pub fn build_dense(stream: &[StreamRecord], table: &LineTable) -> Arc<Self> {
        let n = stream.len();
        assert!(n < NEVER_32 as usize, "stream exceeds u32 records");
        let mut next_demand = vec![NEVER_32; n];
        let mut next_prefetch = vec![NEVER_32; n];
        let mut last_demand = vec![NEVER_32; table.len() as usize];
        let mut last_prefetch = vec![NEVER_32; table.len() as usize];
        for i in (0..n).rev() {
            let r = stream[i];
            let id = table
                .lookup(r.line)
                .expect("recorded lines are interned")
                .index();
            next_demand[i] = last_demand[id];
            next_prefetch[i] = last_prefetch[id];
            if r.is_prefetch {
                last_prefetch[id] = i as u32;
            } else {
                last_demand[id] = i as u32;
            }
        }
        Arc::new(FutureIndex {
            next_demand,
            next_prefetch,
            len: n as u64,
        })
    }

    /// [`FutureIndex::build_dense`] over a bit-packed columnar stream
    /// (`bit 31` = prefetch, low bits = raw [`LineId`](crate::LineId)):
    /// the records *are* already interned, so the build touches nothing
    /// but flat arrays. Produces exactly the same index as `build` over
    /// the equivalent [`StreamRecord`] stream.
    pub(crate) fn build_packed(packed: &[u32], num_lines: u32) -> Arc<Self> {
        use crate::replay::{LINE_MASK, PREFETCH_BIT};
        let n = packed.len();
        assert!(n < NEVER_32 as usize, "stream exceeds u32 records");
        let mut next_demand = vec![NEVER_32; n];
        let mut next_prefetch = vec![NEVER_32; n];
        let mut last_demand = vec![NEVER_32; num_lines as usize];
        let mut last_prefetch = vec![NEVER_32; num_lines as usize];
        for i in (0..n).rev() {
            let raw = packed[i];
            let id = (raw & LINE_MASK) as usize;
            next_demand[i] = last_demand[id];
            next_prefetch[i] = last_prefetch[id];
            if raw & PREFETCH_BIT != 0 {
                last_prefetch[id] = i as u32;
            } else {
                last_demand[id] = i as u32;
            }
        }
        Arc::new(FutureIndex {
            next_demand,
            next_prefetch,
            len: n as u64,
        })
    }

    /// Stream length.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the stream was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Next demand access to the same line strictly after position `seq`.
    #[inline]
    pub fn next_demand(&self, seq: u64) -> u64 {
        widen(self.next_demand[seq as usize])
    }

    /// Next prefetch of the same line strictly after position `seq`.
    #[inline]
    pub fn next_prefetch(&self, seq: u64) -> u64 {
        widen(self.next_prefetch[seq as usize])
    }

    /// A copy of this index re-ordered by a replay permutation: entry `j`
    /// of the result is entry `seq_of[j]` of `self` (`u32::MAX` marks a
    /// non-record slot and yields [`NEVER`] distances).
    ///
    /// The stored *values* are untouched — they remain original-stream
    /// positions, and set-local policies only compare them — so a
    /// set-major replay that passes bucket positions as `seq` reads the
    /// future arrays sequentially instead of randomly.
    pub(crate) fn permute(&self, seq_of: impl ExactSizeIterator<Item = u32>) -> Arc<Self> {
        let n = seq_of.len();
        let mut next_demand = Vec::with_capacity(n);
        let mut next_prefetch = Vec::with_capacity(n);
        for s in seq_of {
            if s == NEVER_32 {
                next_demand.push(NEVER_32);
                next_prefetch.push(NEVER_32);
            } else {
                next_demand.push(self.next_demand[s as usize]);
                next_prefetch.push(self.next_prefetch[s as usize]);
            }
        }
        Arc::new(FutureIndex {
            next_demand,
            next_prefetch,
            len: n as u64,
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct WayFuture {
    next_demand: u64,
    next_prefetch: u64,
}

impl Default for WayFuture {
    fn default() -> Self {
        WayFuture {
            next_demand: NEVER,
            next_prefetch: NEVER,
        }
    }
}

/// Belady's OPT: evict the line whose next demand access is farthest in
/// the future. Prefetch requests refresh a line's future like any access
/// but OPT's victim choice considers demand distance only.
#[derive(Debug)]
pub struct OptPolicy {
    assoc: usize,
    future: Arc<FutureIndex>,
    ways: Vec<WayFuture>,
}

impl OptPolicy {
    /// Creates an OPT policy over a recorded future.
    pub fn new(geom: CacheGeometry, future: Arc<FutureIndex>) -> Self {
        OptPolicy {
            assoc: usize::from(geom.assoc),
            future,
            ways: vec![WayFuture::default(); geom.num_lines() as usize],
        }
    }

    #[inline]
    fn idx(&self, set: u32, way: usize) -> usize {
        set as usize * self.assoc + way
    }

    fn update(&mut self, info: &AccessInfo, way: usize) {
        let i = self.idx(info.set, way);
        self.ways[i] = WayFuture {
            next_demand: self.future.next_demand(info.seq),
            next_prefetch: self.future.next_prefetch(info.seq),
        };
    }
}

impl ReplacementPolicy for OptPolicy {
    fn name(&self) -> &'static str {
        "opt"
    }

    // Per-(set, way) future distances plus a read-only shared index;
    // victim choice only compares distances within one set.
    fn replay_set_local(&self) -> bool {
        true
    }

    fn metadata_bytes(&self, _geom: &CacheGeometry) -> u64 {
        // An oracle: not implementable in hardware.
        0
    }

    fn on_fill(&mut self, info: &AccessInfo, way: usize) {
        self.update(info, way);
    }

    fn on_hit(&mut self, info: &AccessInfo, way: usize) {
        self.update(info, way);
    }

    fn victim(&mut self, info: &AccessInfo, ways: &[WayView]) -> usize {
        let base = self.idx(info.set, 0);
        (0..ways.len())
            .max_by_key(|&w| self.ways[base + w].next_demand)
            .unwrap_or(0)
    }
}

/// The paper's revised Demand-MIN: if some cached line will be *prefetched*
/// again before any demand access to it, evicting it is free — pick the
/// one whose covering prefetch is farthest away. Otherwise fall back to
/// OPT on demand distances.
#[derive(Debug)]
pub struct DemandMinPolicy {
    assoc: usize,
    future: Arc<FutureIndex>,
    ways: Vec<WayFuture>,
}

impl DemandMinPolicy {
    /// Creates a Demand-MIN policy over a recorded future.
    pub fn new(geom: CacheGeometry, future: Arc<FutureIndex>) -> Self {
        DemandMinPolicy {
            assoc: usize::from(geom.assoc),
            future,
            ways: vec![WayFuture::default(); geom.num_lines() as usize],
        }
    }

    #[inline]
    fn idx(&self, set: u32, way: usize) -> usize {
        set as usize * self.assoc + way
    }

    fn update(&mut self, info: &AccessInfo, way: usize) {
        let i = self.idx(info.set, way);
        self.ways[i] = WayFuture {
            next_demand: self.future.next_demand(info.seq),
            next_prefetch: self.future.next_prefetch(info.seq),
        };
    }
}

impl ReplacementPolicy for DemandMinPolicy {
    fn name(&self) -> &'static str {
        "demand-min"
    }

    // Same argument as OPT: per-(set, way) state, read-only future index.
    fn replay_set_local(&self) -> bool {
        true
    }

    fn metadata_bytes(&self, _geom: &CacheGeometry) -> u64 {
        0
    }

    fn on_fill(&mut self, info: &AccessInfo, way: usize) {
        self.update(info, way);
    }

    fn on_hit(&mut self, info: &AccessInfo, way: usize) {
        self.update(info, way);
    }

    fn victim(&mut self, info: &AccessInfo, ways: &[WayView]) -> usize {
        let base = self.idx(info.set, 0);
        // Lines whose next use is a prefetch (prefetch strictly earlier
        // than any demand): evicting them cannot add a demand miss.
        let mut best_covered: Option<(u64, usize)> = None;
        for w in 0..ways.len() {
            let f = self.ways[base + w];
            if f.next_prefetch < f.next_demand {
                let key = f.next_prefetch;
                if best_covered.is_none_or(|(k, _)| key > k) {
                    best_covered = Some((key, w));
                }
            }
        }
        if let Some((_, w)) = best_covered {
            return w;
        }
        (0..ways.len())
            .max_by_key(|&w| self.ways[base + w].next_demand)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::policy::test_util::tiny_geom;
    use crate::policy::{LruPolicy, RandomPolicy, SrripPolicy};

    fn stream_of(lines: &[(u64, bool)]) -> Vec<StreamRecord> {
        lines
            .iter()
            .map(|&(l, p)| StreamRecord {
                line: LineAddr::new(l),
                is_prefetch: p,
            })
            .collect()
    }

    fn run_policy(
        geom: CacheGeometry,
        policy: Box<dyn ReplacementPolicy>,
        stream: &[StreamRecord],
    ) -> u64 {
        let mut cache: Cache<dyn ReplacementPolicy> = Cache::new(geom, policy);
        let mut misses = 0;
        for (seq, r) in stream.iter().enumerate() {
            let id = crate::LineId::new(r.line.index() as u32);
            let out = cache.access(id, r.line.base_addr(), r.is_prefetch, seq as u64);
            if !r.is_prefetch && !out.is_hit() {
                misses += 1;
            }
        }
        misses
    }

    #[test]
    fn future_index_basics() {
        let s = stream_of(&[(0, false), (2, true), (0, false), (2, false)]);
        let f = FutureIndex::build(&s);
        assert_eq!(f.next_demand(0), 2);
        assert_eq!(f.next_prefetch(0), NEVER);
        assert_eq!(f.next_demand(1), 3);
        assert_eq!(f.next_demand(2), NEVER);
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn dense_build_matches_hash_build() {
        let s = stream_of(&[
            (0, false),
            (2, true),
            (0, false),
            (2, false),
            (4, true),
            (0, true),
            (4, false),
        ]);
        let table = LineTable::identity(8);
        let hash = FutureIndex::build(&s);
        let dense = FutureIndex::build_dense(&s, &table);
        assert_eq!(hash.len(), dense.len());
        for i in 0..s.len() as u64 {
            assert_eq!(hash.next_demand(i), dense.next_demand(i), "demand @{i}");
            assert_eq!(
                hash.next_prefetch(i),
                dense.next_prefetch(i),
                "prefetch @{i}"
            );
        }
    }

    #[test]
    fn opt_beats_lru_on_belady_counterexample() {
        // 2-way set, lines 0,2,4 (set 0). Classic pattern where LRU
        // thrashes but OPT keeps the reused line pinned.
        let pattern: Vec<(u64, bool)> = (0..60).map(|i| (((i % 3) * 2) as u64, false)).collect();
        let geom = tiny_geom();
        let s = stream_of(&pattern);
        let f = FutureIndex::build(&s);
        let opt = run_policy(geom, Box::new(OptPolicy::new(geom, f)), &s);
        let lru = run_policy(geom, Box::new(LruPolicy::new(geom)), &s);
        assert!(opt < lru, "opt {opt} !< lru {lru}");
        // OPT on a k=2, N=3 cyclic pattern alternates hit/miss after the
        // three compulsory misses: ~1.5 misses per 3 accesses.
        assert!(opt <= 3 + 60 / 2, "opt {opt}");
        assert_eq!(lru, 60, "lru thrashes every access");
    }

    #[test]
    fn opt_never_worse_than_online_policies() {
        // Property: on randomish streams OPT's demand misses lower-bound
        // every online policy we implement.
        let geom = tiny_geom();
        let mut lines = Vec::new();
        let mut x: u64 = 0x12345;
        for i in 0..800u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = (x % 12) * 2 + (i % 2); // both sets
            lines.push((line, false));
        }
        let s = stream_of(&lines);
        let f = FutureIndex::build(&s);
        let opt = run_policy(geom, Box::new(OptPolicy::new(geom, f)), &s);
        for policy in [
            Box::new(LruPolicy::new(geom)) as Box<dyn ReplacementPolicy>,
            Box::new(RandomPolicy::new(geom, 3)),
            Box::new(SrripPolicy::new(geom)),
        ] {
            let name = policy.name();
            let misses = run_policy(geom, policy, &s);
            assert!(opt <= misses, "opt {opt} > {name} {misses}");
        }
    }

    #[test]
    fn demand_min_prefers_evicting_prefetch_covered_lines() {
        let geom = tiny_geom();
        // Set 0, 2 ways. Fill A(0) and B(2). Then C(4) must evict one.
        // A will be prefetched again before its demand access; B will be
        // demanded soon. Demand-MIN must evict A (covered by prefetch),
        // turning A's future access into a hit via the prefetch.
        let s = stream_of(&[
            (0, false), // A
            (2, false), // B
            (4, false), // C -> evict?
            (2, false), // B demand (soon)
            (0, true),  // A prefetched back
            (0, false), // A demand -> hit thanks to prefetch
        ]);
        let f = FutureIndex::build(&s);
        let dm = run_policy(
            geom,
            Box::new(DemandMinPolicy::new(geom, Arc::clone(&f))),
            &s,
        );
        let opt = run_policy(geom, Box::new(OptPolicy::new(geom, f)), &s);
        // Demand misses: A, B, C only. OPT (demand distances: A's demand is
        // farthest) also evicts A here, so both achieve 3.
        assert_eq!(dm, 3);
        assert!(dm <= opt);
    }

    #[test]
    fn demand_min_not_worse_than_opt_with_prefetching() {
        // With prefetches in the stream, Demand-MIN's demand-miss count
        // must never exceed OPT's on these randomized streams.
        let geom = tiny_geom();
        let mut x: u64 = 0xdead;
        let mut lines = Vec::new();
        for i in 0..1500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = (x % 10) * 2;
            let is_prefetch = i % 3 == 0;
            lines.push((line, is_prefetch));
        }
        let s = stream_of(&lines);
        let f = FutureIndex::build(&s);
        let dm = run_policy(
            geom,
            Box::new(DemandMinPolicy::new(geom, Arc::clone(&f))),
            &s,
        );
        let opt = run_policy(geom, Box::new(OptPolicy::new(geom, f)), &s);
        assert!(dm <= opt, "demand-min {dm} > opt {opt}");
    }
}
