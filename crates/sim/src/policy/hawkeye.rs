//! Hawkeye (Jain & Lin, ISCA 2016) and its prefetch-aware Harmony variant
//! (Jain & Lin, ISCA 2018), applied to the instruction cache.

use crate::config::CacheGeometry;
use crate::intern::LineId;
use crate::policy::{AccessInfo, ReplacementPolicy, WayView};

/// Sample one in this many sets for OPTgen training.
const SAMPLE_STRIDE: u32 = 8;
/// OPTgen history window, in multiples of the associativity.
const WINDOW_FACTOR: usize = 8;
/// PC predictor: 3-bit saturating counters, friendly when >= 4.
const PRED_ENTRIES: usize = 2048;
const PRED_MAX: u8 = 7;
const PRED_FRIENDLY: u8 = 4;
/// Per-line RRPV: 3 bits; 7 marks cache-averse lines.
const RRPV_MAX: u8 = 7;

#[derive(Debug, Clone, Copy)]
struct SampleEntry {
    line: LineId,
    pc_hash: u16,
    /// Position of the access in the sampled set's local time.
    time: u64,
}

/// OPTgen sampler state for one sampled set.
#[derive(Debug, Default)]
struct Sampler {
    history: Vec<SampleEntry>,
    /// Occupancy of the ideal cache per local time slot (ring over the
    /// window).
    occupancy: Vec<u8>,
    clock: u64,
}

/// Hawkeye classifies the PCs (here: fetch addresses) whose accesses an
/// ideal cache would hit as *cache-friendly* and the rest as
/// *cache-averse*, inserting averse lines at eviction priority.
///
/// With `prefetch_aware` (Harmony), OPTgen is replaced by Demand-MIN-gen:
/// reuse intervals that end in a prefetch train the opening PC as averse
/// (the prefetch will re-fetch the line anyway), and intervals opened by
/// prefetches are only credited if they fit like demand intervals.
///
/// On the I-cache the predictor degenerates: each fetch PC touches exactly
/// one line, so per-PC state cannot separate the friendly accesses of a
/// line from its averse ones — the pathology §II-D describes. The
/// [`friendly_fraction`](HawkeyePolicy::friendly_fraction) accessor
/// exposes the resulting ">99 % predicted friendly" statistic.
#[derive(Debug)]
pub struct HawkeyePolicy {
    assoc: usize,
    prefetch_aware: bool,
    window: usize,
    rrpv: Vec<u8>,
    line_friendly: Vec<bool>,
    line_pc_hash: Vec<u16>,
    predictor: Vec<u8>,
    samplers: std::collections::HashMap<u32, Sampler>,
    friendly_decisions: u64,
    total_decisions: u64,
}

impl HawkeyePolicy {
    /// Creates a Hawkeye (`prefetch_aware = false`) or Harmony
    /// (`prefetch_aware = true`) policy for `geom`.
    pub fn new(geom: CacheGeometry, prefetch_aware: bool) -> Self {
        HawkeyePolicy {
            assoc: usize::from(geom.assoc),
            prefetch_aware,
            window: WINDOW_FACTOR * usize::from(geom.assoc),
            rrpv: vec![RRPV_MAX; geom.num_lines() as usize],
            line_friendly: vec![false; geom.num_lines() as usize],
            line_pc_hash: vec![0; geom.num_lines() as usize],
            predictor: vec![PRED_FRIENDLY; PRED_ENTRIES],
            samplers: std::collections::HashMap::new(),
            friendly_decisions: 0,
            total_decisions: 0,
        }
    }

    /// Fraction of insertion decisions predicted cache-friendly so far.
    pub fn friendly_fraction(&self) -> f64 {
        if self.total_decisions == 0 {
            return 0.0;
        }
        self.friendly_decisions as f64 / self.total_decisions as f64
    }

    #[inline]
    fn idx(&self, set: u32, way: usize) -> usize {
        set as usize * self.assoc + way
    }

    fn pc_hash(info: &AccessInfo) -> u16 {
        let pc = info.pc.get();
        ((pc >> 2) ^ (pc >> 13)) as u16
    }

    fn pred_index(hash: u16) -> usize {
        usize::from(hash) % PRED_ENTRIES
    }

    fn predict_friendly(&mut self, hash: u16) -> bool {
        let friendly = self.predictor[Self::pred_index(hash)] >= PRED_FRIENDLY;
        self.total_decisions += 1;
        if friendly {
            self.friendly_decisions += 1;
        }
        friendly
    }

    fn train(&mut self, hash: u16, friendly: bool) {
        let e = &mut self.predictor[Self::pred_index(hash)];
        *e = if friendly {
            (*e + 1).min(PRED_MAX)
        } else {
            e.saturating_sub(1)
        };
    }

    /// OPTgen / Demand-MIN-gen update for a sampled set. Returns the
    /// training events to apply: (pc_hash, friendly).
    fn sample(&mut self, info: &AccessInfo) -> Vec<(u16, bool)> {
        let assoc = self.assoc;
        let window = self.window;
        let prefetch_aware = self.prefetch_aware;
        let sampler = self.samplers.entry(info.set).or_default();
        if sampler.occupancy.is_empty() {
            sampler.occupancy = vec![0; window];
        }
        let now = sampler.clock;
        sampler.clock += 1;

        let mut trainings = Vec::new();
        // Find the previous access to this line within the window.
        let prev = sampler
            .history
            .iter()
            .rev()
            .find(|e| e.line == info.line && now - e.time < window as u64)
            .copied();
        if let Some(prev) = prev {
            let interval_end_is_prefetch = info.is_prefetch;
            if prefetch_aware && interval_end_is_prefetch {
                // Demand-MIN: an interval ending in a prefetch need not be
                // cached — train the opener averse, charge no occupancy.
                trainings.push((prev.pc_hash, false));
            } else {
                // Would OPT have hit? Check occupancy over [prev, now).
                let fits = (prev.time..now)
                    .all(|t| sampler.occupancy[(t % window as u64) as usize] < assoc as u8);
                trainings.push((prev.pc_hash, fits));
                if fits {
                    for t in prev.time..now {
                        sampler.occupancy[(t % window as u64) as usize] += 1;
                    }
                }
            }
        }
        // Record this access; clear the occupancy slot we are reusing.
        sampler.occupancy[(now % window as u64) as usize] = 0;
        sampler.history.push(SampleEntry {
            line: info.line,
            pc_hash: Self::pc_hash(info),
            time: now,
        });
        let horizon = window as u64;
        sampler.history.retain(|e| now - e.time < horizon);
        trainings
    }

    fn observe(&mut self, info: &AccessInfo) {
        if info.set.is_multiple_of(SAMPLE_STRIDE) {
            for (hash, friendly) in self.sample(info) {
                self.train(hash, friendly);
            }
        }
    }

    fn insert(&mut self, info: &AccessInfo, way: usize) {
        let hash = Self::pc_hash(info);
        let friendly = self.predict_friendly(hash);
        let i = self.idx(info.set, way);
        self.line_friendly[i] = friendly;
        self.line_pc_hash[i] = hash;
        if friendly {
            self.rrpv[i] = 0;
            // Age other friendly lines so older friendlies are preferred
            // victims among friendlies.
            for w in 0..self.assoc {
                if w != way {
                    let j = self.idx(info.set, w);
                    if self.line_friendly[j] && self.rrpv[j] < RRPV_MAX - 1 {
                        self.rrpv[j] += 1;
                    }
                }
            }
        } else {
            self.rrpv[i] = RRPV_MAX;
        }
    }
}

impl ReplacementPolicy for HawkeyePolicy {
    fn name(&self) -> &'static str {
        if self.prefetch_aware {
            "harmony"
        } else {
            "hawkeye"
        }
    }

    fn metadata_bytes(&self, geom: &CacheGeometry) -> u64 {
        // Table I: 1 KB sampler + 1 KB occupancy vectors + 3 KB predictor
        // + 192 B RRIP counters = 5.1875 KB for 32 KB / 8-way.
        let sampler = 1024;
        let occupancy = 1024;
        let predictor = 3 * 1024;
        let rrip = geom.num_lines() * 3 / 8;
        sampler + occupancy + predictor + rrip
    }

    fn on_fill(&mut self, info: &AccessInfo, way: usize) {
        self.observe(info);
        self.insert(info, way);
    }

    fn on_hit(&mut self, info: &AccessInfo, way: usize) {
        self.observe(info);
        let i = self.idx(info.set, way);
        if !info.is_prefetch {
            self.rrpv[i] = 0;
        }
    }

    fn victim(&mut self, info: &AccessInfo, ways: &[WayView]) -> usize {
        let base = self.idx(info.set, 0);
        // Evict the line with the highest RRPV (averse lines carry 7);
        // ties break toward lower way.
        let mut victim = 0;
        let mut best = 0u8;
        for w in 0..ways.len() {
            let r = self.rrpv[base + w];
            if r >= best {
                // `>=` keeps the last max; prefer aversion, then age.
                if r > best {
                    victim = w;
                    best = r;
                }
            }
        }
        if best < RRPV_MAX {
            // No averse line: evicting a friendly line means the predictor
            // was too optimistic — detrain it (Hawkeye's feedback path).
            let hash = self.line_pc_hash[base + victim];
            self.train(hash, false);
        }
        victim
    }

    fn on_invalidate(&mut self, set: u32, way: usize) {
        let i = self.idx(set, way);
        self.rrpv[i] = RRPV_MAX;
        self.line_friendly[i] = false;
    }

    fn on_demote(&mut self, set: u32, way: usize) {
        let i = self.idx(set, way);
        self.rrpv[i] = RRPV_MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::{demand_misses, tiny_geom};
    use ripple_program::Addr;

    #[test]
    fn metadata_is_about_5k() {
        let geom = CacheGeometry::new(32 * 1024, 8);
        let bytes = HawkeyePolicy::new(geom, false).metadata_bytes(&geom);
        // Table I reports 5.1875 KB = 5312 B.
        assert_eq!(bytes, 5312);
    }

    #[test]
    fn names_differ() {
        let geom = tiny_geom();
        assert_eq!(HawkeyePolicy::new(geom, false).name(), "hawkeye");
        assert_eq!(HawkeyePolicy::new(geom, true).name(), "harmony");
    }

    #[test]
    fn averse_insertions_get_evicted_first() {
        let geom = tiny_geom();
        let mut p = HawkeyePolicy::new(geom, false);
        // Force predictor entries: pc 0x40 averse, pc 0x80 friendly.
        let averse_info = AccessInfo {
            line: LineId::new(0),
            set: 0,
            pc: Addr::new(0x40),
            is_prefetch: false,
            seq: 0,
        };
        let friendly_info = AccessInfo {
            line: LineId::new(2),
            set: 0,
            pc: Addr::new(0x80),
            is_prefetch: false,
            seq: 1,
        };
        let averse_hash = HawkeyePolicy::pc_hash(&averse_info);
        for _ in 0..8 {
            p.train(averse_hash, false);
        }
        p.on_fill(&averse_info, 0);
        p.on_fill(&friendly_info, 1);
        let ways = [
            WayView {
                line: LineId::new(0),
                prefetched: false,
            },
            WayView {
                line: LineId::new(2),
                prefetched: false,
            },
        ];
        assert_eq!(p.victim(&friendly_info, &ways), 0);
    }

    #[test]
    fn predicts_mostly_friendly_on_reuse_heavy_streams() {
        // The I-cache pathology: heavy reuse trains everything friendly.
        let geom = tiny_geom();
        let mut cache: crate::cache::Cache<dyn ReplacementPolicy> =
            crate::cache::Cache::new(geom, Box::new(HawkeyePolicy::new(geom, false)));
        for seq in 0..4000u64 {
            let line = ripple_program::LineAddr::new(seq % 3); // heavy short-distance reuse
            cache.access(LineId::new((seq % 3) as u32), line.base_addr(), false, seq);
        }
        // Inspect via a downcast-free route: run a second mirrored policy.
        let mut p = HawkeyePolicy::new(geom, false);
        for seq in 0..4000u64 {
            let line = ripple_program::LineAddr::new(seq % 3);
            let info = AccessInfo {
                line: LineId::new((seq % 3) as u32),
                set: geom.set_of(line),
                pc: line.base_addr(),
                is_prefetch: false,
                seq,
            };
            p.observe(&info);
            p.insert(&info, (seq % 2) as usize);
        }
        assert!(p.friendly_fraction() > 0.9, "{}", p.friendly_fraction());
    }

    #[test]
    fn harmony_trains_averse_on_prefetch_terminated_intervals() {
        let geom = tiny_geom();
        let mut p = HawkeyePolicy::new(geom, true);
        let mk = |seq: u64, is_prefetch: bool| AccessInfo {
            line: LineId::new(0),
            set: 0,
            pc: Addr::new(0x40),
            is_prefetch,
            seq,
        };
        let hash = HawkeyePolicy::pc_hash(&mk(0, false));
        let before = p.predictor[HawkeyePolicy::pred_index(hash)];
        // Demand access opens the interval, prefetch closes it => averse.
        p.observe(&mk(0, false));
        p.observe(&mk(1, true));
        let after = p.predictor[HawkeyePolicy::pred_index(hash)];
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn deterministic() {
        let geom = tiny_geom();
        let stream: Vec<(u64, bool)> = (0..500).map(|i| ((i * 3) % 10 * 2, i % 7 == 0)).collect();
        let a = demand_misses(geom, Box::new(HawkeyePolicy::new(geom, true)), &stream);
        let b = demand_misses(geom, Box::new(HawkeyePolicy::new(geom, true)), &stream);
        assert_eq!(a, b);
    }
}
