//! Replacement policies for the simulated L1 instruction cache.
//!
//! Every policy from the paper's §II-D is implemented: [`LruPolicy`],
//! [`RandomPolicy`], [`SrripPolicy`], [`DrripPolicy`], [`GhrpPolicy`],
//! [`HawkeyePolicy`] (with its prefetch-aware Harmony variant) and the
//! offline ideals [`OptPolicy`] / [`DemandMinPolicy`] driven by a
//! [`FutureIndex`].

mod ghrp;
mod hawkeye;
mod ideal;
mod lru;
mod plru;
mod random;
pub mod registry;
mod rrip;
mod trrip;

pub use ghrp::GhrpPolicy;
pub use hawkeye::HawkeyePolicy;
pub use ideal::{DemandMinPolicy, FutureIndex, OptPolicy, StreamRecord, NEVER};
pub use lru::LruPolicy;
pub use plru::TreePlruPolicy;
pub use random::RandomPolicy;
pub use registry::{
    PolicyConstructor, PolicyDescriptor, PolicyFamily, PolicyId, PolicyRegistry, RegistryError,
};
pub use rrip::{DrripPolicy, SrripPolicy};
pub use trrip::{Temperature, TemperatureMap, TrripPolicy};

use ripple_program::Addr;

use crate::config::{CacheGeometry, SimConfig};
use crate::intern::LineId;
use crate::policy::registry::PolicyKind;

/// Context handed to a policy on every cache event.
///
/// Lines are named by dense [`LineId`]s; policies only ever compare them
/// for equality (history matching, victim buffers), so any injective
/// mapping from addresses to ids yields identical decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessInfo {
    /// The accessed line.
    pub line: LineId,
    /// The set it maps to.
    pub set: u32,
    /// The fetch address responsible for the access (block start).
    pub pc: Addr,
    /// Whether this is a prefetch rather than a demand fetch.
    pub is_prefetch: bool,
    /// Global position of this access in the request stream.
    pub seq: u64,
}

/// A policy's read-only view of one way during victim selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WayView {
    /// The valid line in this way.
    pub line: LineId,
    /// Whether the line was installed by a prefetch and has not yet been
    /// demand-accessed.
    pub prefetched: bool,
}

/// A cache replacement policy.
///
/// The cache calls [`on_fill`](Self::on_fill) / [`on_hit`](Self::on_hit)
/// for bookkeeping and [`victim`](Self::victim) only when the target set is
/// full. The `invalidate` / `demote` hooks support Ripple's injected
/// instruction.
///
/// This trait is not sealed: downstream users may implement their own
/// policies and run them through the engine.
pub trait ReplacementPolicy: std::fmt::Debug {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// On-chip metadata this policy requires for `geom`, in bytes
    /// (reproduces the paper's Table I).
    fn metadata_bytes(&self, geom: &CacheGeometry) -> u64;

    /// A line was filled into `way` of `info.set`.
    fn on_fill(&mut self, info: &AccessInfo, way: usize);

    /// An access hit `way` of `info.set`.
    fn on_hit(&mut self, info: &AccessInfo, way: usize);

    /// Chooses the way to evict from a full set. `ways.len()` equals the
    /// associativity; the return value must index into it.
    fn victim(&mut self, info: &AccessInfo, ways: &[WayView]) -> usize;

    /// A valid line was evicted from `way` of `set`.
    fn on_evict(&mut self, set: u32, way: usize, line: LineId) {
        let _ = (set, way, line);
    }

    /// A line was invalidated in `way` of `set` (Ripple's instruction).
    fn on_invalidate(&mut self, set: u32, way: usize) {
        let _ = (set, way);
    }

    /// A line was demoted to the bottom of the replacement order in `way`
    /// of `set` (Ripple's LRU-demote mechanism). Defaults to a no-op for
    /// policies without a recency order.
    fn on_demote(&mut self, set: u32, way: usize) {
        let _ = (set, way);
    }

    /// Whether this policy's decisions depend only on the *per-set order*
    /// of the events it observes (plus, for offline ideals, the relative
    /// order of [`FutureIndex`] distances).
    ///
    /// Set-local policies may be replayed set-major: the engine buckets
    /// the recorded request stream by set and replays each set's requests
    /// contiguously (and possibly on different threads), preserving order
    /// *within* every set but not across sets. A policy must return `false`
    /// (the default) if any decision reads state shared across sets — a
    /// global PSEL duel counter, an RNG advanced per event, a global
    /// history register — because cross-set replay order would then leak
    /// into victim choices. Absolute `seq` values must not matter beyond
    /// comparison: batched replay passes bucket-order positions whose
    /// relative order within a set matches the sequential run.
    fn replay_set_local(&self) -> bool {
        false
    }
}

/// Builds the policy named by `config.policy` via its registry
/// descriptor.
///
/// # Panics
///
/// Panics for offline ideals ([`PolicyId::OPT`] / [`PolicyId::DEMAND_MIN`]),
/// which require a recorded [`FutureIndex`]; use [`build_ideal_policy`]
/// for those.
pub fn build_policy(config: &SimConfig) -> Box<dyn ReplacementPolicy> {
    match config.policy.descriptor().constructor {
        PolicyConstructor::Online(build) => build(config),
        PolicyConstructor::Offline(_) => panic!(
            "offline ideal policy {} needs a FutureIndex; use build_ideal_policy",
            config.policy.name()
        ),
    }
}

/// Builds an offline-ideal policy over a recorded future index, via the
/// registry descriptor.
///
/// # Panics
///
/// Panics if `kind` is not an offline ideal
/// (`kind.needs_future_index()` is false).
pub fn build_ideal_policy(
    kind: PolicyKind,
    geom: CacheGeometry,
    future: std::sync::Arc<FutureIndex>,
) -> Box<dyn ReplacementPolicy> {
    match kind.descriptor().constructor {
        PolicyConstructor::Offline(build) => build(geom, future),
        PolicyConstructor::Online(_) => {
            panic!("{} is not an offline ideal policy", kind.name())
        }
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use crate::cache::Cache;

    /// Runs `stream` of (line, is_prefetch) through a fresh cache with
    /// `policy`, returning the number of demand misses.
    pub fn demand_misses(
        geom: CacheGeometry,
        policy: Box<dyn ReplacementPolicy>,
        stream: &[(u64, bool)],
    ) -> u64 {
        let mut cache: Cache<dyn ReplacementPolicy> = Cache::new(geom, policy);
        let mut misses = 0;
        for (seq, &(line, pf)) in stream.iter().enumerate() {
            let pc = ripple_program::LineAddr::new(line).base_addr();
            let line = LineId::new(u32::try_from(line).expect("test line index fits u32"));
            let out = cache.access(line, pc, pf, seq as u64);
            if !pf && !out.is_hit() {
                misses += 1;
            }
        }
        misses
    }

    /// A tiny 2-set × 2-way geometry for policy unit tests.
    pub fn tiny_geom() -> CacheGeometry {
        CacheGeometry::new(4 * 64, 2)
    }
}
