//! Uniform-random replacement (zero metadata).

use crate::config::CacheGeometry;
use crate::policy::{AccessInfo, ReplacementPolicy, WayView};

/// Random victim selection with a deterministic xorshift generator.
///
/// Random replacement needs *no* per-line metadata at all, which is why
/// the paper pairs it with Ripple ("Ripple-Random") to eliminate every
/// replacement-metadata overhead in hardware.
#[derive(Debug)]
pub struct RandomPolicy {
    state: u64,
}

impl RandomPolicy {
    /// Creates a random policy seeded by `seed`.
    pub fn new(_geom: CacheGeometry, seed: u64) -> Self {
        RandomPolicy {
            state: seed | 1, // xorshift must not start at zero
        }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn metadata_bytes(&self, _geom: &CacheGeometry) -> u64 {
        0
    }

    fn on_fill(&mut self, _info: &AccessInfo, _way: usize) {}

    fn on_hit(&mut self, _info: &AccessInfo, _way: usize) {}

    fn victim(&mut self, _info: &AccessInfo, ways: &[WayView]) -> usize {
        (self.next() % ways.len() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::LineId;
    use crate::policy::test_util::{demand_misses, tiny_geom};
    use ripple_program::Addr;

    fn info() -> AccessInfo {
        AccessInfo {
            line: LineId::new(0),
            set: 0,
            pc: Addr::new(0),
            is_prefetch: false,
            seq: 0,
        }
    }

    #[test]
    fn zero_metadata() {
        let geom = CacheGeometry::new(32 * 1024, 8);
        assert_eq!(RandomPolicy::new(geom, 1).metadata_bytes(&geom), 0);
    }

    #[test]
    fn victims_are_in_range_and_varied() {
        let geom = tiny_geom();
        let mut p = RandomPolicy::new(geom, 42);
        let ways = vec![
            WayView {
                line: LineId::new(0),
                prefetched: false
            };
            8
        ];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            let v = p.victim(&info(), &ways);
            assert!(v < 8);
            seen.insert(v);
        }
        assert!(seen.len() >= 6, "rng barely varies: {seen:?}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let geom = tiny_geom();
        let stream: Vec<(u64, bool)> = (0..200).map(|i| ((i * 7) % 12 * 2, false)).collect();
        let a = demand_misses(geom, Box::new(RandomPolicy::new(geom, 5)), &stream);
        let b = demand_misses(geom, Box::new(RandomPolicy::new(geom, 5)), &stream);
        assert_eq!(a, b);
    }
}
