//! TRRIP: temperature-based re-reference interval prediction for
//! instruction caching (Kao et al., "A TRRIP Down Memory Lane").
//!
//! TRRIP is a software/hardware co-design directly comparable to Ripple:
//! an offline profile classifies code into *temperature* classes — hot
//! (frequently re-referenced), warm, cold (streaming, touch-once) — and
//! the hardware maps the class of each fetch PC onto RRIP insertion and
//! promotion decisions. Hot code inserts at near-immediate re-reference,
//! warm at long, cold at distant; on a hit, cold code is only promoted to
//! long instead of zero so it cannot displace hot working-set lines.
//!
//! Because software hints can mislead (stale profile, input drift), the
//! hint path duels against plain SRRIP insertion using the same
//! complement-select set-dueling scheme as DRRIP: leader sets train a
//! PSEL counter and follower sets obey the winner. With no temperature
//! map configured every line is warm and both duel sides insert at long,
//! so TRRIP degrades gracefully to SRRIP.

use std::sync::Arc;

use ripple_program::{Addr, LineAddr};

use crate::config::CacheGeometry;
use crate::policy::rrip::{rrip_victim, SetDuel, RRPV_BITS, RRPV_LONG, RRPV_MAX};
use crate::policy::{AccessInfo, ReplacementPolicy, WayView};

/// Profile-derived temperature class of a code line.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Temperature {
    /// Frequently re-referenced; insert at immediate re-reference.
    Hot,
    /// Moderately reused; insert at long re-reference (SRRIP default).
    /// Unprofiled code defaults to warm.
    #[default]
    Warm,
    /// Streaming / touch-once; insert at distant and never promote past
    /// long.
    Cold,
}

impl Temperature {
    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Temperature::Hot => "hot",
            Temperature::Warm => "warm",
            Temperature::Cold => "cold",
        }
    }
}

/// Profile output consumed by [`TrripPolicy`]: a map from code lines to
/// temperature classes.
///
/// Keys are *address-space* line indices (the line of the fetch PC), not
/// interned cache line ids, so one map serves both simulator frontends
/// identically. Lines absent from the map are [`Temperature::Warm`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TemperatureMap {
    by_line: std::collections::HashMap<u64, Temperature>,
}

impl TemperatureMap {
    /// Creates an empty map (every line warm).
    pub fn new() -> Self {
        TemperatureMap::default()
    }

    /// Sets the class of one code line.
    pub fn set(&mut self, line: LineAddr, temp: Temperature) {
        self.by_line.insert(line.index(), temp);
    }

    /// The class of a code line (warm when unprofiled).
    pub fn of_line(&self, line: LineAddr) -> Temperature {
        self.by_line
            .get(&line.index())
            .copied()
            .unwrap_or(Temperature::Warm)
    }

    /// The class of the line containing a fetch PC.
    pub fn of_pc(&self, pc: Addr) -> Temperature {
        self.of_line(pc.line())
    }

    /// Number of explicitly classified lines.
    pub fn len(&self) -> usize {
        self.by_line.len()
    }

    /// Whether any line is explicitly classified.
    pub fn is_empty(&self) -> bool {
        self.by_line.is_empty()
    }
}

impl FromIterator<(LineAddr, Temperature)> for TemperatureMap {
    fn from_iter<I: IntoIterator<Item = (LineAddr, Temperature)>>(iter: I) -> Self {
        let mut map = TemperatureMap::new();
        for (line, temp) in iter {
            map.set(line, temp);
        }
        map
    }
}

/// TRRIP replacement: an SRRIP backbone whose insertion/promotion RRPVs
/// are steered by profile-derived temperatures, gated by set dueling.
#[derive(Debug)]
pub struct TrripPolicy {
    assoc: usize,
    rrpv: Vec<u8>,
    duel: SetDuel,
    temps: Option<Arc<TemperatureMap>>,
}

impl TrripPolicy {
    /// Creates a TRRIP policy for `geom` with an optional temperature
    /// profile (absent profile = all warm = SRRIP behavior).
    pub fn new(geom: CacheGeometry, temps: Option<Arc<TemperatureMap>>) -> Self {
        TrripPolicy {
            assoc: usize::from(geom.assoc),
            rrpv: vec![RRPV_MAX; geom.num_lines() as usize],
            duel: SetDuel::new(geom.num_sets() as u32),
            temps,
        }
    }

    #[inline]
    fn idx(&self, set: u32, way: usize) -> usize {
        set as usize * self.assoc + way
    }

    #[inline]
    fn temp_of(&self, pc: Addr) -> Temperature {
        self.temps
            .as_deref()
            .map_or(Temperature::Warm, |t| t.of_pc(pc))
    }
}

impl ReplacementPolicy for TrripPolicy {
    fn name(&self) -> &'static str {
        "trrip"
    }

    fn metadata_bytes(&self, geom: &CacheGeometry) -> u64 {
        // 2 bits per line, like SRRIP: the temperature table lives in
        // software (the profile), mirroring how Ripple's own hints cost no
        // cache metadata.
        geom.num_lines() * u64::from(RRPV_BITS) / 8
    }

    fn on_fill(&mut self, info: &AccessInfo, way: usize) {
        // A miss in a leader set trains PSEL toward the other side.
        let use_hint = self.duel.train_and_select(info.set);
        let i = self.idx(info.set, way);
        self.rrpv[i] = if use_hint {
            match self.temp_of(info.pc) {
                Temperature::Hot => 0,
                Temperature::Warm => RRPV_LONG,
                Temperature::Cold => RRPV_MAX,
            }
        } else {
            RRPV_LONG
        };
    }

    fn on_hit(&mut self, info: &AccessInfo, way: usize) {
        let i = self.idx(info.set, way);
        // Cold code never earns immediate re-reference on the hint side.
        self.rrpv[i] = if self.duel.prefers_challenger(info.set)
            && self.temp_of(info.pc) == Temperature::Cold
        {
            RRPV_LONG
        } else {
            0
        };
    }

    fn victim(&mut self, info: &AccessInfo, ways: &[WayView]) -> usize {
        rrip_victim(&mut self.rrpv, info.set, self.assoc, ways.len())
    }

    fn on_invalidate(&mut self, set: u32, way: usize) {
        let i = self.idx(set, way);
        self.rrpv[i] = RRPV_MAX;
    }

    fn on_demote(&mut self, set: u32, way: usize) {
        let i = self.idx(set, way);
        self.rrpv[i] = RRPV_MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::{demand_misses, tiny_geom};
    use crate::policy::SrripPolicy;

    fn temps(entries: &[(u64, Temperature)]) -> Arc<TemperatureMap> {
        Arc::new(
            entries
                .iter()
                .map(|&(line, t)| (LineAddr::new(line), t))
                .collect(),
        )
    }

    #[test]
    fn unprofiled_trrip_matches_srrip() {
        // No temperature map: every line is warm, both duel sides insert
        // at long — TRRIP must be miss-for-miss identical to SRRIP.
        let geom = tiny_geom();
        for seed in 0..8u64 {
            let stream: Vec<(u64, bool)> = (0..200)
                .map(|i| ((seed.wrapping_mul(31).wrapping_add(i * 7)) % 10, false))
                .collect();
            let t = demand_misses(geom, Box::new(TrripPolicy::new(geom, None)), &stream);
            let s = demand_misses(geom, Box::new(SrripPolicy::new(geom)), &stream);
            assert_eq!(t, s, "seed {seed}");
        }
    }

    #[test]
    fn hot_hint_protects_against_scan() {
        // A 1-set × 2-way cache (all-follower, neutral PSEL → hint side
        // since psel starts at 0... actually psel=0 means baseline).
        // Use a 2-set geometry so set 0 is the baseline leader and set 1
        // the hint leader; run the workload in set 1 (odd lines).
        let geom = CacheGeometry::new(4 * 64, 2); // 2 sets × 2 ways
        let a = 1u64; // maps to set 1 = hint leader
        let map = temps(&[(a, Temperature::Hot)]);
        // A, then a scan of cold lines X Y Z (also set 1), then A again.
        let scan = [3u64, 5, 7];
        let mut stream = vec![(a, false)];
        for &x in &scan {
            stream.push((x, false));
        }
        stream.push((a, false));
        let map_cold: Arc<TemperatureMap> = {
            let mut m = (*map).clone();
            for &x in &scan {
                m.set(LineAddr::new(x), Temperature::Cold);
            }
            Arc::new(m)
        };
        let hinted = demand_misses(
            geom,
            Box::new(TrripPolicy::new(geom, Some(map_cold))),
            &stream,
        );
        // Hinted: A inserts at 0, cold scan inserts at distant and evicts
        // itself; final A access hits. Misses = 1 (A) + 3 (scan) = 4.
        assert_eq!(hinted, 4);
    }

    #[test]
    fn cold_hit_promotion_is_capped() {
        // In the hint-leader set, a cold line that hits is promoted only
        // to long, so a subsequent warm fill finds it evictable before a
        // hot line that hit.
        let geom = CacheGeometry::new(4 * 64, 2); // 2 sets × 2 ways
        let hot = 1u64;
        let cold = 3u64;
        let other = 5u64;
        let map = temps(&[(hot, Temperature::Hot), (cold, Temperature::Cold)]);
        let stream = [
            (hot, false),
            (cold, false),
            (cold, false),  // cold hit: promoted to long only
            (hot, false),   // hot hit: promoted to 0
            (other, false), // fill must victimize cold, not hot
            (hot, false),   // still resident
        ];
        let misses = demand_misses(geom, Box::new(TrripPolicy::new(geom, Some(map))), &stream);
        // Misses: hot, cold, other = 3. If hot were evicted instead the
        // final access would miss (4).
        assert_eq!(misses, 3);
    }

    #[test]
    fn trrip_is_deterministic() {
        let geom = tiny_geom();
        let map = temps(&[(0, Temperature::Hot), (2, Temperature::Cold)]);
        let stream: Vec<(u64, bool)> = (0..600).map(|i| ((i % 5) * 2, i % 7 == 0)).collect();
        let a = demand_misses(
            geom,
            Box::new(TrripPolicy::new(geom, Some(map.clone()))),
            &stream,
        );
        let b = demand_misses(geom, Box::new(TrripPolicy::new(geom, Some(map))), &stream);
        assert_eq!(a, b);
    }

    #[test]
    fn metadata_matches_srrip() {
        let geom = CacheGeometry::new(32 * 1024, 8);
        let p = TrripPolicy::new(geom, None);
        assert_eq!(p.metadata_bytes(&geom), 128);
    }

    #[test]
    fn temperature_map_defaults_warm() {
        let mut m = TemperatureMap::new();
        assert!(m.is_empty());
        assert_eq!(m.of_line(LineAddr::new(7)), Temperature::Warm);
        m.set(LineAddr::new(7), Temperature::Cold);
        assert_eq!(m.len(), 1);
        assert_eq!(m.of_line(LineAddr::new(7)), Temperature::Cold);
        assert_eq!(m.of_pc(LineAddr::new(7).base_addr()), Temperature::Cold);
        assert_eq!(m.of_line(LineAddr::new(8)), Temperature::Warm);
        assert_eq!(Temperature::Hot.name(), "hot");
    }
}
