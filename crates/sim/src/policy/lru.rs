//! Least-recently-used replacement.

use crate::intern::LineId;

use crate::config::CacheGeometry;
use crate::policy::{AccessInfo, ReplacementPolicy, WayView};

/// True LRU: evicts the way with the oldest access stamp.
///
/// Reported metadata matches the paper's Table I (64 B for a 32 KB / 8-way
/// cache, i.e. one recency bit per line as implemented by tree pseudo-LRU
/// in real hardware).
#[derive(Debug, Clone)]
pub struct LruPolicy {
    assoc: usize,
    stamps: Vec<u64>, // sets × assoc
    clock: u64,
}

impl LruPolicy {
    /// Creates an LRU policy for `geom`.
    pub fn new(geom: CacheGeometry) -> Self {
        LruPolicy {
            assoc: usize::from(geom.assoc),
            stamps: vec![0; geom.num_lines() as usize],
            clock: 0,
        }
    }

    #[inline]
    fn idx(&self, set: u32, way: usize) -> usize {
        set as usize * self.assoc + way
    }

    fn touch(&mut self, set: u32, way: usize) {
        self.clock += 1;
        let i = self.idx(set, way);
        self.stamps[i] = self.clock;
    }
}

impl ReplacementPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    // The clock is global but victim selection only *compares* stamps
    // within one set, and set-major replay preserves per-set stamp order.
    fn replay_set_local(&self) -> bool {
        true
    }

    fn metadata_bytes(&self, geom: &CacheGeometry) -> u64 {
        // One bit per line (tree pseudo-LRU), as in Table I.
        geom.num_lines() / 8
    }

    fn on_fill(&mut self, info: &AccessInfo, way: usize) {
        self.touch(info.set, way);
    }

    fn on_hit(&mut self, info: &AccessInfo, way: usize) {
        self.touch(info.set, way);
    }

    fn victim(&mut self, info: &AccessInfo, ways: &[WayView]) -> usize {
        let base = self.idx(info.set, 0);
        (0..ways.len())
            .min_by_key(|&w| self.stamps[base + w])
            .unwrap_or(0)
    }

    fn on_evict(&mut self, _set: u32, _way: usize, _line: LineId) {}

    fn on_invalidate(&mut self, set: u32, way: usize) {
        let i = self.idx(set, way);
        self.stamps[i] = 0;
    }

    fn on_demote(&mut self, set: u32, way: usize) {
        let i = self.idx(set, way);
        self.stamps[i] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_util::{demand_misses, tiny_geom};

    #[test]
    fn metadata_matches_table_i() {
        let geom = CacheGeometry::new(32 * 1024, 8);
        let p = LruPolicy::new(geom);
        assert_eq!(p.metadata_bytes(&geom), 64);
    }

    #[test]
    fn lru_stack_property() {
        // With a 2-way set, accessing A B A C must evict B, not A.
        let geom = tiny_geom();
        // Lines 0,2,4 in set 0: A=0 B=2 C=4. Stream: A B A C A.
        // LRU: C evicts B, final A access hits => 3 misses.
        let misses = demand_misses(
            geom,
            Box::new(LruPolicy::new(geom)),
            &[(0, false), (2, false), (0, false), (4, false), (0, false)],
        );
        assert_eq!(misses, 3);
    }

    #[test]
    fn sequential_thrash_misses_everything() {
        // 3 distinct lines round-robin through a 2-way set always miss
        // under LRU (the classic thrash pattern).
        let geom = tiny_geom();
        let stream: Vec<(u64, bool)> = (0..30).map(|i| ((i % 3) * 2, false)).collect();
        let misses = demand_misses(geom, Box::new(LruPolicy::new(geom)), &stream);
        assert_eq!(misses, 30);
    }

    #[test]
    fn demote_makes_line_next_victim() {
        let geom = tiny_geom();
        let mut p = LruPolicy::new(geom);
        let info0 = AccessInfo {
            line: LineId::new(0),
            set: 0,
            pc: ripple_program::Addr::new(0),
            is_prefetch: false,
            seq: 0,
        };
        p.on_fill(&info0, 0);
        p.on_fill(
            &AccessInfo {
                line: LineId::new(2),
                ..info0
            },
            1,
        );
        p.on_demote(0, 1);
        let ways = [
            WayView {
                line: LineId::new(0),
                prefetched: false,
            },
            WayView {
                line: LineId::new(2),
                prefetched: false,
            },
        ];
        assert_eq!(p.victim(&info0, &ways), 1);
    }
}
