//! The policy registry: single source of truth mapping policy names to
//! descriptors and constructors.
//!
//! Every layer that needs to enumerate, parse or construct replacement
//! policies (the engine, the CLI, the differential checker, the bench
//! grids) goes through [`PolicyRegistry`] instead of hard-coding lists.
//! Adding a policy is one new module plus one [`PolicyDescriptor`] entry
//! in [`builtin_descriptors`]; everything downstream picks it up.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::config::{CacheGeometry, SimConfig};
use crate::policy::{
    DemandMinPolicy, DrripPolicy, FutureIndex, GhrpPolicy, HawkeyePolicy, LruPolicy, OptPolicy,
    RandomPolicy, ReplacementPolicy, SrripPolicy, TreePlruPolicy, TrripPolicy,
};

/// Identifies a registered replacement policy.
///
/// The id is an index into the global registry's descriptor table; the
/// associated constants name the builtin policies. `PolicyId` replaces the
/// old closed `PolicyKind` enum — the [`PolicyKind`] alias keeps existing
/// call sites compiling.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PolicyId(u16);

/// Compatibility alias for the pre-registry enum name.
pub type PolicyKind = PolicyId;

impl PolicyId {
    /// Least-recently-used (true LRU ordering).
    pub const LRU: PolicyId = PolicyId(0);
    /// Tree pseudo-LRU (1 bit per line).
    pub const TREE_PLRU: PolicyId = PolicyId(1);
    /// Uniform random victim.
    pub const RANDOM: PolicyId = PolicyId(2);
    /// Static re-reference interval prediction.
    pub const SRRIP: PolicyId = PolicyId(3);
    /// Dynamic RRIP with set dueling.
    pub const DRRIP: PolicyId = PolicyId(4);
    /// Global-history reuse predictor.
    pub const GHRP: PolicyId = PolicyId(5);
    /// Hawkeye (PC classification against simulated Belady-OPT).
    pub const HAWKEYE: PolicyId = PolicyId(6);
    /// Harmony (prefetch-aware Hawkeye).
    pub const HARMONY: PolicyId = PolicyId(7);
    /// TRRIP (temperature-based RRIP, Kao et al.).
    pub const TRRIP: PolicyId = PolicyId(8);
    /// Offline Belady-OPT ideal.
    pub const OPT: PolicyId = PolicyId(9);
    /// Offline revised Demand-MIN ideal.
    pub const DEMAND_MIN: PolicyId = PolicyId(10);

    /// This policy's descriptor in the global registry.
    pub fn descriptor(self) -> &'static PolicyDescriptor {
        PolicyRegistry::global().descriptor(self)
    }

    /// Display name as used in figure captions and the CLI.
    pub fn name(self) -> &'static str {
        self.descriptor().name
    }

    /// Whether the policy requires offline future knowledge (two-pass
    /// simulation over a recorded [`FutureIndex`]).
    pub fn needs_future_index(self) -> bool {
        self.descriptor().needs_future_index
    }

    /// Whether the policy's decisions are per-set-order-local, making it
    /// eligible for set-batched and sharded replay (see
    /// [`ReplacementPolicy::replay_set_local`]).
    pub fn replay_set_local(self) -> bool {
        self.descriptor().set_local
    }

    /// Whether the policy requires offline future knowledge (two-pass
    /// simulation). Alias of [`PolicyId::needs_future_index`], kept for
    /// pre-registry call sites.
    pub fn is_offline_ideal(self) -> bool {
        self.needs_future_index()
    }

    /// Resolves a name or alias against the global registry.
    pub fn parse(name: &str) -> Option<PolicyId> {
        PolicyRegistry::global().parse(name)
    }

    /// Every policy in the global registry, in registration order.
    pub fn all() -> Vec<PolicyId> {
        PolicyRegistry::global().all().collect()
    }

    /// The id's index into the registry's descriptor table.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl Default for PolicyId {
    fn default() -> Self {
        PolicyId::LRU
    }
}

impl fmt::Debug for PolicyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for PolicyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Broad family a policy belongs to, for grouping in reports and for
/// family-based bench filters (e.g. the underlying-policy ablation only
/// sweeps recency/random policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyFamily {
    /// Recency-ordered policies (LRU and its approximations).
    Recency,
    /// Random victim selection.
    Random,
    /// Re-reference interval prediction backbones (SRRIP/DRRIP/TRRIP).
    Rrip,
    /// Predictive reuse policies (GHRP, Hawkeye, Harmony).
    PredictiveReuse,
    /// Offline ideals replaying a recorded future.
    OfflineIdeal,
}

impl PolicyFamily {
    /// Display name for the `ripple policies` table.
    pub fn name(self) -> &'static str {
        match self {
            PolicyFamily::Recency => "recency",
            PolicyFamily::Random => "random",
            PolicyFamily::Rrip => "rrip",
            PolicyFamily::PredictiveReuse => "predictive-reuse",
            PolicyFamily::OfflineIdeal => "offline-ideal",
        }
    }
}

/// How a policy is constructed.
///
/// Online policies build from the [`SimConfig`] alone; offline ideals
/// additionally need the [`FutureIndex`] recorded by a first pass.
#[derive(Clone, Copy)]
pub enum PolicyConstructor {
    /// Single-pass policy built from the configuration.
    Online(fn(&SimConfig) -> Box<dyn ReplacementPolicy>),
    /// Two-pass ideal built over a recorded future index.
    Offline(fn(CacheGeometry, Arc<FutureIndex>) -> Box<dyn ReplacementPolicy>),
}

impl fmt::Debug for PolicyConstructor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PolicyConstructor::Online(_) => "Online(..)",
            PolicyConstructor::Offline(_) => "Offline(..)",
        })
    }
}

/// Everything the rest of the system needs to know about one policy.
#[derive(Debug, Clone, Copy)]
pub struct PolicyDescriptor {
    /// Canonical name (CLI flag value, figure captions, JSON keys).
    pub name: &'static str,
    /// Alternative names accepted by [`PolicyRegistry::parse`].
    pub aliases: &'static [&'static str],
    /// Broad family, for grouping and bench filters.
    pub family: PolicyFamily,
    /// Whether construction needs a recorded [`FutureIndex`] (two-pass
    /// simulation). Must agree with the constructor variant; the registry
    /// rejects descriptors where the two disagree.
    pub needs_future_index: bool,
    /// Whether the policy's decisions depend only on per-set event order
    /// ([`ReplacementPolicy::replay_set_local`]), making it eligible for
    /// set-batched/sharded replay. Must agree with what constructed
    /// instances report; the registry tests assert it.
    pub set_local: bool,
    /// One-line description for `ripple policies`.
    pub description: &'static str,
    /// How to build the policy.
    pub constructor: PolicyConstructor,
}

/// Why a descriptor table was rejected by
/// [`PolicyRegistry::from_descriptors`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Two descriptors claim the same name or alias.
    DuplicateName {
        /// The contested name.
        name: &'static str,
    },
    /// A descriptor's `needs_future_index` flag disagrees with its
    /// constructor variant.
    InconsistentFutureIndex {
        /// The offending policy.
        name: &'static str,
        /// The declared (wrong) flag value.
        needs_future_index: bool,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateName { name } => {
                write!(f, "policy name or alias `{name}` registered twice")
            }
            RegistryError::InconsistentFutureIndex {
                name,
                needs_future_index,
            } => write!(
                f,
                "policy `{name}` declares needs_future_index = {needs_future_index} \
                 but its constructor variant says otherwise"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A validated table of policy descriptors with name/alias lookup.
///
/// The process-wide instance over the builtin table is
/// [`PolicyRegistry::global`]; [`PolicyRegistry::from_descriptors`] exists
/// so tests can exercise the validation paths on synthetic tables.
#[derive(Debug)]
pub struct PolicyRegistry {
    descriptors: &'static [PolicyDescriptor],
    by_name: HashMap<&'static str, PolicyId>,
}

impl PolicyRegistry {
    /// Validates `descriptors` and builds the lookup table.
    ///
    /// Rejects duplicate names/aliases and descriptors whose
    /// `needs_future_index` flag disagrees with the constructor variant.
    pub fn from_descriptors(
        descriptors: &'static [PolicyDescriptor],
    ) -> Result<PolicyRegistry, RegistryError> {
        let mut by_name = HashMap::new();
        for (i, d) in descriptors.iter().enumerate() {
            let offline = matches!(d.constructor, PolicyConstructor::Offline(_));
            if d.needs_future_index != offline {
                return Err(RegistryError::InconsistentFutureIndex {
                    name: d.name,
                    needs_future_index: d.needs_future_index,
                });
            }
            let id = PolicyId(i as u16);
            for name in std::iter::once(d.name).chain(d.aliases.iter().copied()) {
                if by_name.insert(name, id).is_some() {
                    return Err(RegistryError::DuplicateName { name });
                }
            }
        }
        Ok(PolicyRegistry {
            descriptors,
            by_name,
        })
    }

    /// The process-wide registry over the builtin descriptor table.
    ///
    /// # Panics
    ///
    /// Panics if the builtin table is invalid — a bug caught by the
    /// registry unit tests, never by users.
    pub fn global() -> &'static PolicyRegistry {
        static GLOBAL: OnceLock<PolicyRegistry> = OnceLock::new();
        GLOBAL.get_or_init(
            || match PolicyRegistry::from_descriptors(builtin_descriptors()) {
                Ok(r) => r,
                Err(e) => panic!("builtin policy table invalid: {e}"),
            },
        )
    }

    /// Resolves a canonical name or alias.
    pub fn parse(&self, name: &str) -> Option<PolicyId> {
        self.by_name.get(name).copied()
    }

    /// The descriptor for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was minted by a different registry with more
    /// entries.
    pub fn descriptor(&self, id: PolicyId) -> &'static PolicyDescriptor {
        &self.descriptors[id.index()]
    }

    /// Number of registered policies.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// Whether the registry is empty (it never is for the builtin table).
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Every registered policy, in registration order.
    pub fn all(&self) -> impl Iterator<Item = PolicyId> + '_ {
        (0..self.descriptors.len()).map(|i| PolicyId(i as u16))
    }

    /// Canonical names in registration order (no aliases).
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.descriptors.iter().map(|d| d.name)
    }

    /// Policies that run in a single pass (no recorded future needed).
    pub fn online(&self) -> impl Iterator<Item = PolicyId> + '_ {
        self.all()
            .filter(|id| !self.descriptor(*id).needs_future_index)
    }

    /// Offline ideals (need a recorded [`FutureIndex`]).
    pub fn offline(&self) -> impl Iterator<Item = PolicyId> + '_ {
        self.all()
            .filter(|id| self.descriptor(*id).needs_future_index)
    }
}

/// The builtin descriptor table.
///
/// Order matters: each entry's position is its [`PolicyId`] value, so new
/// policies append (the associated constants on [`PolicyId`] assert the
/// mapping in the registry tests).
pub fn builtin_descriptors() -> &'static [PolicyDescriptor] {
    static DESCRIPTORS: &[PolicyDescriptor] = &[
        PolicyDescriptor {
            name: "lru",
            aliases: &[],
            family: PolicyFamily::Recency,
            needs_future_index: false,
            set_local: true,
            description: "least-recently-used (true recency order)",
            constructor: PolicyConstructor::Online(|cfg| Box::new(LruPolicy::new(cfg.l1i))),
        },
        PolicyDescriptor {
            name: "tree-plru",
            aliases: &["plru"],
            family: PolicyFamily::Recency,
            needs_future_index: false,
            set_local: true,
            description: "tree pseudo-LRU (1 bit per line)",
            constructor: PolicyConstructor::Online(|cfg| Box::new(TreePlruPolicy::new(cfg.l1i))),
        },
        PolicyDescriptor {
            name: "random",
            aliases: &[],
            family: PolicyFamily::Random,
            needs_future_index: false,
            set_local: false,
            description: "uniform random victim (zero metadata)",
            constructor: PolicyConstructor::Online(|cfg| {
                Box::new(RandomPolicy::new(cfg.l1i, cfg.random_seed))
            }),
        },
        PolicyDescriptor {
            name: "srrip",
            aliases: &[],
            family: PolicyFamily::Rrip,
            needs_future_index: false,
            set_local: true,
            description: "static re-reference interval prediction",
            constructor: PolicyConstructor::Online(|cfg| Box::new(SrripPolicy::new(cfg.l1i))),
        },
        PolicyDescriptor {
            name: "drrip",
            aliases: &[],
            family: PolicyFamily::Rrip,
            needs_future_index: false,
            set_local: false,
            description: "dynamic RRIP with SRRIP/BRRIP set dueling",
            constructor: PolicyConstructor::Online(|cfg| Box::new(DrripPolicy::new(cfg.l1i))),
        },
        PolicyDescriptor {
            name: "ghrp",
            aliases: &[],
            family: PolicyFamily::PredictiveReuse,
            needs_future_index: false,
            set_local: false,
            description: "global-history reuse predictor (I-cache specific)",
            constructor: PolicyConstructor::Online(|cfg| Box::new(GhrpPolicy::new(cfg.l1i))),
        },
        PolicyDescriptor {
            name: "hawkeye",
            aliases: &[],
            family: PolicyFamily::PredictiveReuse,
            needs_future_index: false,
            set_local: false,
            description: "PC classification against simulated Belady-OPT",
            constructor: PolicyConstructor::Online(|cfg| {
                Box::new(HawkeyePolicy::new(cfg.l1i, false))
            }),
        },
        PolicyDescriptor {
            name: "harmony",
            aliases: &[],
            family: PolicyFamily::PredictiveReuse,
            needs_future_index: false,
            set_local: false,
            description: "prefetch-aware Hawkeye (Demand-MIN training)",
            constructor: PolicyConstructor::Online(|cfg| {
                Box::new(HawkeyePolicy::new(cfg.l1i, true))
            }),
        },
        PolicyDescriptor {
            name: "trrip",
            aliases: &[],
            family: PolicyFamily::Rrip,
            needs_future_index: false,
            set_local: false,
            description: "temperature-based RRIP with profile-derived hot/warm/cold hints",
            constructor: PolicyConstructor::Online(|cfg| {
                Box::new(TrripPolicy::new(cfg.l1i, cfg.temperatures.clone()))
            }),
        },
        PolicyDescriptor {
            name: "opt",
            aliases: &[],
            family: PolicyFamily::OfflineIdeal,
            needs_future_index: true,
            set_local: true,
            description: "offline Belady-OPT ideal (demand-only)",
            constructor: PolicyConstructor::Offline(|geom, future| {
                Box::new(OptPolicy::new(geom, future))
            }),
        },
        PolicyDescriptor {
            name: "demand-min",
            aliases: &[],
            family: PolicyFamily::OfflineIdeal,
            needs_future_index: true,
            set_local: true,
            description: "offline revised Demand-MIN ideal (prefetch-aware)",
            constructor: PolicyConstructor::Offline(|geom, future| {
                Box::new(DemandMinPolicy::new(geom, future))
            }),
        },
    ];
    DESCRIPTORS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn associated_consts_match_table_order() {
        let expect = [
            (PolicyId::LRU, "lru"),
            (PolicyId::TREE_PLRU, "tree-plru"),
            (PolicyId::RANDOM, "random"),
            (PolicyId::SRRIP, "srrip"),
            (PolicyId::DRRIP, "drrip"),
            (PolicyId::GHRP, "ghrp"),
            (PolicyId::HAWKEYE, "hawkeye"),
            (PolicyId::HARMONY, "harmony"),
            (PolicyId::TRRIP, "trrip"),
            (PolicyId::OPT, "opt"),
            (PolicyId::DEMAND_MIN, "demand-min"),
        ];
        assert_eq!(expect.len(), PolicyRegistry::global().len());
        for (id, name) in expect {
            assert_eq!(id.name(), name);
            assert_eq!(PolicyId::parse(name), Some(id));
        }
    }

    #[test]
    fn round_trip_every_policy_through_its_constructor() {
        // name → descriptor → constructor → built policy → name, for every
        // registered policy. The built policy must report the registered
        // name (the registry is the single source of truth).
        let geom = CacheGeometry::new(4 * 64, 2);
        let cfg = SimConfig {
            l1i: geom,
            ..SimConfig::default()
        };
        let future = FutureIndex::build(&[]);
        for id in PolicyId::all() {
            let d = id.descriptor();
            let built = match d.constructor {
                PolicyConstructor::Online(build) => build(&cfg),
                PolicyConstructor::Offline(build) => build(geom, future.clone()),
            };
            assert_eq!(built.name(), d.name, "constructor/name mismatch");
            assert_eq!(PolicyId::parse(built.name()), Some(id));
        }
    }

    #[test]
    fn alias_resolution() {
        assert_eq!(PolicyId::parse("plru"), Some(PolicyId::TREE_PLRU));
        assert_eq!(PolicyId::parse("tree-plru"), Some(PolicyId::TREE_PLRU));
        assert_eq!(PolicyId::parse("mru"), None);
        assert_eq!(PolicyId::parse(""), None);
    }

    #[test]
    fn duplicate_registration_rejected() {
        static DUP: &[PolicyDescriptor] = &[
            PolicyDescriptor {
                name: "lru",
                aliases: &[],
                family: PolicyFamily::Recency,
                needs_future_index: false,
                set_local: true,
                description: "a",
                constructor: PolicyConstructor::Online(|cfg| Box::new(LruPolicy::new(cfg.l1i))),
            },
            PolicyDescriptor {
                name: "fancy",
                aliases: &["lru"],
                family: PolicyFamily::Recency,
                needs_future_index: false,
                set_local: false,
                description: "b",
                constructor: PolicyConstructor::Online(|cfg| Box::new(LruPolicy::new(cfg.l1i))),
            },
        ];
        assert_eq!(
            PolicyRegistry::from_descriptors(DUP).err(),
            Some(RegistryError::DuplicateName { name: "lru" })
        );
    }

    #[test]
    fn inconsistent_future_index_flag_rejected() {
        static BAD: &[PolicyDescriptor] = &[PolicyDescriptor {
            name: "confused",
            aliases: &[],
            family: PolicyFamily::OfflineIdeal,
            needs_future_index: true,
            set_local: false,
            description: "claims offline but constructs online",
            constructor: PolicyConstructor::Online(|cfg| Box::new(LruPolicy::new(cfg.l1i))),
        }];
        assert_eq!(
            PolicyRegistry::from_descriptors(BAD).err(),
            Some(RegistryError::InconsistentFutureIndex {
                name: "confused",
                needs_future_index: true,
            })
        );
    }

    #[test]
    fn online_offline_partition() {
        let r = PolicyRegistry::global();
        let online: Vec<_> = r.online().collect();
        let offline: Vec<_> = r.offline().collect();
        assert_eq!(online.len() + offline.len(), r.len());
        assert!(offline.contains(&PolicyId::OPT));
        assert!(offline.contains(&PolicyId::DEMAND_MIN));
        assert!(online.contains(&PolicyId::TRRIP));
        for id in online {
            assert!(!id.is_offline_ideal());
        }
    }

    #[test]
    fn set_local_flag_agrees_with_constructed_instances() {
        // The descriptor's `set_local` is what the engine consults before
        // building a policy; it must match what the instance itself
        // reports, for every registered policy.
        let geom = CacheGeometry::new(4 * 64, 2);
        let cfg = SimConfig {
            l1i: geom,
            ..SimConfig::default()
        };
        let future = FutureIndex::build(&[]);
        for id in PolicyId::all() {
            let d = id.descriptor();
            let built = match d.constructor {
                PolicyConstructor::Online(build) => build(&cfg),
                PolicyConstructor::Offline(build) => build(geom, future.clone()),
            };
            assert_eq!(
                built.replay_set_local(),
                d.set_local,
                "{}: descriptor set_local disagrees with instance",
                d.name
            );
            assert_eq!(id.replay_set_local(), d.set_local);
        }
        // Spot-check the intent: recency/RRIP statics and the offline
        // ideals are set-local; global-state policies are not.
        assert!(PolicyId::LRU.replay_set_local());
        assert!(PolicyId::OPT.replay_set_local());
        assert!(PolicyId::DEMAND_MIN.replay_set_local());
        assert!(!PolicyId::DRRIP.replay_set_local(), "global PSEL duel");
        assert!(!PolicyId::RANDOM.replay_set_local(), "global RNG stream");
        assert!(!PolicyId::GHRP.replay_set_local(), "global history");
    }

    #[test]
    fn display_and_default() {
        assert_eq!(PolicyId::default(), PolicyId::LRU);
        assert_eq!(format!("{}", PolicyId::TRRIP), "trrip");
        assert_eq!(format!("{:?}", PolicyId::DEMAND_MIN), "demand-min");
    }
}
