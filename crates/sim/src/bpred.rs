//! Branch prediction: gshare direction predictor, branch target buffer and
//! return address stack. FDIP's runahead frontend is steered by this unit,
//! so its accuracy determines which lines are easy or hard to prefetch —
//! the distinction at the heart of the paper's Observation #2.

use ripple_program::{Addr, BlockId, Layout, Program, Successors};

const GSHARE_BITS: u32 = 14;
const GSHARE_ENTRIES: usize = 1 << GSHARE_BITS;
const BTB_ENTRIES: usize = 512;
const RAS_DEPTH: usize = 32;

/// What the predictor believes the next block is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prediction {
    /// Confident prediction of the next block.
    Block(BlockId),
    /// No prediction possible (BTB miss / empty RAS); the runahead
    /// frontend stalls until execution catches up.
    Unknown,
}

/// A gshare + BTB + RAS predictor operating at basic-block granularity.
#[derive(Debug)]
pub struct BranchPredictor {
    gshare: Vec<u8>, // 2-bit counters
    ghr: u64,
    btb_tags: Vec<u64>,
    btb_targets: Vec<BlockId>,
    ras: Vec<BlockId>,
}

impl Default for BranchPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchPredictor {
    /// Creates an untrained predictor.
    pub fn new() -> Self {
        BranchPredictor {
            gshare: vec![1; GSHARE_ENTRIES], // weakly not-taken
            ghr: 0,
            btb_tags: vec![u64::MAX; BTB_ENTRIES],
            btb_targets: vec![BlockId::new(0); BTB_ENTRIES],
            ras: Vec::with_capacity(RAS_DEPTH),
        }
    }

    fn gshare_index(&self, pc: Addr) -> usize {
        (((pc.get() >> 2) ^ self.ghr) as usize) & (GSHARE_ENTRIES - 1)
    }

    fn btb_index(pc: Addr) -> usize {
        ((pc.get() >> 2) as usize) ^ ((pc.get() >> 17) as usize) & (BTB_ENTRIES - 1)
    }

    fn btb_lookup(&self, pc: Addr) -> Option<BlockId> {
        let i = Self::btb_index(pc) % BTB_ENTRIES;
        if self.btb_tags[i] == pc.get() {
            Some(self.btb_targets[i])
        } else {
            None
        }
    }

    fn btb_insert(&mut self, pc: Addr, target: BlockId) {
        let i = Self::btb_index(pc) % BTB_ENTRIES;
        self.btb_tags[i] = pc.get();
        self.btb_targets[i] = target;
    }

    /// Predicts the block following `block`, without updating any state
    /// other than the speculative RAS.
    ///
    /// The RAS is speculatively pushed/popped along the predicted path;
    /// [`BranchPredictor::train`] repairs it on mispredictions (a real
    /// core checkpoints the RAS; full repair is a close, simple model).
    pub fn predict(&mut self, program: &Program, layout: &Layout, block: BlockId) -> Prediction {
        let pc = layout.block_addr(block);
        match program.successors(block) {
            Successors::Cond { taken, not_taken } => {
                let taken_pred = self.gshare[self.gshare_index(pc)] >= 2;
                if taken_pred {
                    match self.btb_lookup(pc) {
                        Some(t) => Prediction::Block(t),
                        None => Prediction::Unknown,
                    }
                    .or_known(taken, false)
                } else {
                    Prediction::Block(not_taken)
                }
            }
            Successors::Jump(target) => match self.btb_lookup(pc) {
                Some(t) => Prediction::Block(t),
                None => Prediction::Unknown,
            }
            .or_known(target, false),
            Successors::Fallthrough(next) => Prediction::Block(next),
            Successors::Call { callee, return_to } => {
                let p = match self.btb_lookup(pc) {
                    Some(t) => Prediction::Block(t),
                    None => Prediction::Unknown,
                }
                .or_known(callee, false);
                if matches!(p, Prediction::Block(_)) {
                    self.ras_push(return_to);
                }
                p
            }
            Successors::IndirectCall { return_to } => {
                let p = match self.btb_lookup(pc) {
                    Some(t) => Prediction::Block(t),
                    None => Prediction::Unknown,
                };
                if matches!(p, Prediction::Block(_)) {
                    self.ras_push(return_to);
                }
                p
            }
            Successors::Indirect => match self.btb_lookup(pc) {
                Some(t) => Prediction::Block(t),
                None => Prediction::Unknown,
            },
            Successors::Return => match self.ras.pop() {
                Some(t) => Prediction::Block(t),
                None => Prediction::Unknown,
            },
        }
    }

    fn ras_push(&mut self, return_to: BlockId) {
        if self.ras.len() == RAS_DEPTH {
            self.ras.remove(0);
        }
        self.ras.push(return_to);
    }

    /// Trains the predictor with an observed transition `block -> actual`
    /// and returns whether the (fresh, non-speculative) prediction would
    /// have been correct.
    pub fn train(
        &mut self,
        program: &Program,
        layout: &Layout,
        block: BlockId,
        actual: BlockId,
    ) -> bool {
        let pc = layout.block_addr(block);
        match program.successors(block) {
            Successors::Cond { taken, not_taken } => {
                let was_taken = actual == taken;
                let idx = self.gshare_index(pc);
                let predicted_taken = self.gshare[idx] >= 2;
                let ctr = &mut self.gshare[idx];
                *ctr = if was_taken {
                    (*ctr + 1).min(3)
                } else {
                    ctr.saturating_sub(1)
                };
                self.ghr = (self.ghr << 1) | u64::from(was_taken);
                let btb_ok = self.btb_lookup(pc) == Some(taken);
                if was_taken {
                    self.btb_insert(pc, taken);
                }
                let correct = predicted_taken == was_taken && (!was_taken || btb_ok);
                debug_assert!(was_taken || actual == not_taken);
                correct
            }
            Successors::Jump(target) => {
                let ok = self.btb_lookup(pc) == Some(target);
                self.btb_insert(pc, target);
                ok
            }
            Successors::Fallthrough(_) => true,
            Successors::Call { callee, return_to } => {
                let ok = self.btb_lookup(pc) == Some(callee);
                self.btb_insert(pc, callee);
                self.ras_sync_push(return_to);
                ok
            }
            Successors::IndirectCall { return_to } => {
                let ok = self.btb_lookup(pc) == Some(actual);
                self.btb_insert(pc, actual);
                self.ras_sync_push(return_to);
                ok
            }
            Successors::Indirect => {
                let ok = self.btb_lookup(pc) == Some(actual);
                self.btb_insert(pc, actual);
                ok
            }
            Successors::Return => {
                // Repair the RAS to reflect the committed return.
                let ok = match self.ras.last() {
                    Some(&t) => t == actual,
                    None => false,
                };
                self.ras.pop();
                ok
            }
        }
    }

    /// Non-speculative RAS push used at commit time; replaces whatever the
    /// speculative path left behind when it diverged.
    fn ras_sync_push(&mut self, return_to: BlockId) {
        // Keep it simple: committed pushes overwrite speculative noise.
        if self.ras.last() != Some(&return_to) {
            self.ras_push(return_to);
        }
    }

    /// Clears speculative RAS state (used when the runahead path is
    /// squashed).
    pub fn reset_speculation(&mut self) {
        // The RAS doubles as committed state in this model; nothing to do.
    }
}

trait PredictionExt {
    fn or_known(self, known: BlockId, prefer_btb: bool) -> Prediction;
}

impl PredictionExt for Prediction {
    /// Direct branches encode their target in the instruction bytes; the
    /// front end can decode-assist, so a BTB miss on a *direct* target
    /// still yields the right block (with `prefer_btb = false`). We model
    /// decode-assisted BTB fill, which FDIP implementations rely on.
    fn or_known(self, known: BlockId, prefer_btb: bool) -> Prediction {
        match self {
            Prediction::Block(b) if prefer_btb => Prediction::Block(b),
            Prediction::Block(_) => Prediction::Block(known),
            Prediction::Unknown => Prediction::Block(known),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_program::{CodeKind, Instruction, LayoutConfig, ProgramBuilder};

    fn loop_program() -> (Program, Layout, Vec<BlockId>) {
        let mut b = ProgramBuilder::new();
        let main = b.add_function("main", CodeKind::Static);
        let b0 = b.add_block(main);
        let b1 = b.add_block(main);
        b.push_inst(b0, Instruction::other(4));
        b.push_inst(b0, Instruction::cond_branch(b0));
        b.push_inst(b1, Instruction::ret());
        let p = b.finish(main).unwrap();
        let l = Layout::new(&p, &LayoutConfig::default());
        (p, l, vec![b0, b1])
    }

    #[test]
    fn gshare_learns_a_biased_branch() {
        let (p, l, ids) = loop_program();
        let mut bp = BranchPredictor::new();
        // Train taken (self-loop) until the global history saturates with
        // taken bits and the gshare index stabilizes.
        for _ in 0..24 {
            bp.train(&p, &l, ids[0], ids[0]);
        }
        assert_eq!(bp.predict(&p, &l, ids[0]), Prediction::Block(ids[0]));
        // Now train not-taken repeatedly; prediction must flip.
        for _ in 0..24 {
            bp.train(&p, &l, ids[0], ids[1]);
        }
        assert_eq!(bp.predict(&p, &l, ids[0]), Prediction::Block(ids[1]));
    }

    #[test]
    fn returns_use_the_ras() {
        let mut b = ProgramBuilder::new();
        let main = b.add_function("main", CodeKind::Static);
        let callee = b.add_function("callee", CodeKind::Static);
        let m0 = b.add_block(main);
        let m1 = b.add_block(main);
        let c0 = b.add_block(callee);
        b.push_inst(m0, Instruction::call(callee));
        b.push_inst(m1, Instruction::ret());
        b.push_inst(c0, Instruction::ret());
        let p = b.finish(main).unwrap();
        let l = Layout::new(&p, &LayoutConfig::default());

        let mut bp = BranchPredictor::new();
        // Commit the call; the RAS now holds m1.
        bp.train(&p, &l, m0, c0);
        assert_eq!(bp.predict(&p, &l, c0), Prediction::Block(m1));
    }

    #[test]
    fn indirect_without_btb_is_unknown() {
        let mut b = ProgramBuilder::new();
        let main = b.add_function("main", CodeKind::Static);
        let m0 = b.add_block(main);
        let m1 = b.add_block(main);
        let m2 = b.add_block(main);
        b.push_inst(m0, Instruction::indirect_jump());
        b.push_inst(m1, Instruction::other(4));
        b.push_inst(m2, Instruction::ret());
        let p = b.finish(main).unwrap();
        let l = Layout::new(&p, &LayoutConfig::default());

        let mut bp = BranchPredictor::new();
        assert_eq!(bp.predict(&p, &l, m0), Prediction::Unknown);
        bp.train(&p, &l, m0, m2);
        assert_eq!(bp.predict(&p, &l, m0), Prediction::Block(m2));
        // Retargeting retrains the BTB.
        bp.train(&p, &l, m0, m1);
        assert_eq!(bp.predict(&p, &l, m0), Prediction::Block(m1));
    }

    #[test]
    fn train_reports_correctness() {
        let (p, l, ids) = loop_program();
        let mut bp = BranchPredictor::new();
        // Counters start weakly not-taken: the first taken outcome counts
        // as a misprediction; once the history-indexed counters warm up,
        // taken predictions are correct.
        assert!(!bp.train(&p, &l, ids[0], ids[0]));
        for _ in 0..24 {
            bp.train(&p, &l, ids[0], ids[0]);
        }
        assert!(bp.train(&p, &l, ids[0], ids[0]));
    }
}
