//! Columnar capture and replay of the L1I request stream.
//!
//! The request stream is replacement-policy-independent: the prefetcher,
//! its dedup filter and the branch predictor never observe cache contents
//! (the invariant [`engine`](crate::engine) documents). The capture pass
//! exploits that fully — it runs **no cache model at all**, walking the
//! trace once through the branch predictor and prefetch filter and
//! bit-packing every request into a [`ColumnarStream`]: one `u32` per
//! request (bit 31 = prefetch, low bits = [`LineId`]), per-trace-step
//! bounds, and the policy-independent post-warmup counters.
//!
//! Policy runs then replay the packed stream through the cache hierarchy
//! via [`ReplayFrontend`], reproducing the full frontend byte-for-byte —
//! identical [`SimStats`] and identical eviction events — without
//! re-deriving the stream (no fetch-plan walks, no predictor, no filter).
//! One capture serves every policy replay and every fixpoint-round oracle
//! replay of a session.

use std::collections::VecDeque;
use std::time::Instant;

use ripple_obs::Recorder;
use ripple_program::{BlockId, InstKind, Layout, LineAddr, Program};

use crate::bpred::{BranchPredictor, Prediction};
use crate::cache::Cache;
use crate::config::{EvictionMechanism, PrefetcherKind, SimConfig};
use crate::frontend::{NO_POS, PREFETCH_FILTER};
use crate::intern::{FetchPlan, LineId, LineTable};
use crate::policy::{LruPolicy, ReplacementPolicy};
use crate::sink::EvictionSink;
use crate::stats::{EvictionEvent, SimStats};

/// Bit 31 of a packed record: set when the request is a prefetch.
pub(crate) const PREFETCH_BIT: u32 = 1 << 31;

/// Low 31 bits of a packed record: the raw [`LineId`].
pub(crate) const LINE_MASK: u32 = PREFETCH_BIT - 1;

/// Maximum number of records a capture may hold: positions are stored as
/// `u32` throughout the columnar machinery (`step_bounds`, the
/// [`FutureIndex`](crate::FutureIndex)'s half-width next-use arrays with
/// `u32::MAX` reserved as the "never again" sentinel), so the stream must
/// stay strictly below `u32::MAX` records.
pub const MAX_STREAM_RECORDS: u64 = u32::MAX as u64;

/// A trace produced more cache requests than the columnar capture can
/// index: record positions are `u32` (see [`MAX_STREAM_RECORDS`]), and a
/// longer stream would silently wrap instead of simulating correctly.
///
/// Returned at *record* time — before any replay consumes a truncated
/// position — by the fallible session entry points
/// ([`SimSession::try_ensure_recorded`](crate::SimSession::try_ensure_recorded),
/// [`SimSession::try_run`](crate::SimSession::try_run)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamLimitError {
    /// How many records the capture had produced when it hit the limit.
    pub records: u64,
}

impl std::fmt::Display for StreamLimitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "captured request stream reached {} records; the columnar \
             capture indexes positions with u32 and supports at most {} \
             records per trace",
            self.records,
            MAX_STREAM_RECORDS - 1
        )
    }
}

impl std::error::Error for StreamLimitError {}

/// The record-time capacity guard: `records` is the stream length after
/// the latest trace step. Kept as a standalone function so the bound is
/// unit-testable without materializing a 4-billion-request trace.
#[inline]
pub(crate) fn check_stream_capacity(records: u64) -> Result<u32, StreamLimitError> {
    if records >= MAX_STREAM_RECORDS {
        return Err(StreamLimitError { records });
    }
    Ok(records as u32)
}

/// The post-warmup counters that do not depend on the replacement policy,
/// captured once and stamped onto every replay's [`SimStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BaseStats {
    pub(crate) blocks: u64,
    pub(crate) instructions: u64,
    pub(crate) invalidate_instructions: u64,
    pub(crate) demand_accesses: u64,
    pub(crate) prefetches_issued: u64,
    pub(crate) mispredictions: u64,
}

/// The bit-packed, policy-independent record of one session's request
/// stream, captured once per [`SimSession`](crate::SimSession).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ColumnarStream {
    /// One `u32` per request: `PREFETCH_BIT | LineId` for prefetches,
    /// the bare raw [`LineId`] for demand fetches. The index of a record
    /// is its global `seq` (what [`FutureIndex`](crate::FutureIndex)
    /// positions refer to).
    pub(crate) packed: Vec<u32>,
    /// `trace_len + 1` offsets into `packed`: the requests issued while
    /// trace step `i` executed are `packed[step_bounds[i]..step_bounds[i+1]]`.
    pub(crate) step_bounds: Vec<u32>,
    /// Raw [`BlockId`] whose address is the `pc` of each prefetch request,
    /// in issue order (FDIP prefetches are issued on behalf of *predicted*
    /// blocks, so the issuer is not derivable from the trace step).
    pub(crate) prefetch_pc: Vec<u32>,
    /// Interned operand of every injected `invalidate` instruction, in
    /// block-id-then-prefix order; `LineId::INVALID` marks an operand
    /// outside the text segment (never resident, executes as a miss).
    pub(crate) inval_ids: Vec<u32>,
    /// `num_blocks + 1` offsets into `inval_ids`.
    pub(crate) inval_bounds: Vec<u32>,
    /// Policy-independent post-warmup counters.
    pub(crate) base: BaseStats,
}

impl ColumnarStream {
    /// The injected-invalidate operands of `block` (raw ids).
    #[inline]
    pub(crate) fn inval_ops(&self, block: BlockId) -> &[u32] {
        let i = block.index();
        &self.inval_ids[self.inval_bounds[i] as usize..self.inval_bounds[i + 1] as usize]
    }
}

/// The capture pass: derives the [`ColumnarStream`] from the trace without
/// simulating any cache. Mirrors [`Frontend`](crate::frontend::Frontend)
/// step for step, minus everything that reads or writes cache state.
pub(crate) struct CaptureFrontend<'a> {
    program: &'a Program,
    layout: &'a Layout,
    config: &'a SimConfig,
    table: &'a LineTable,
    plan: &'a FetchPlan,
    bpred: BranchPredictor,
    ftq: VecDeque<BlockId>,
    frontier: Option<BlockId>,
    filter_fifo: VecDeque<LineId>,
    in_filter: Vec<bool>,
    /// Per-block original-instruction counts, flattened so the hot loop
    /// never dereferences a `Block` (the plan already holds the lines).
    instr_counts: Vec<u32>,
    /// Per-block injected-invalidate prefix lengths, flattened likewise.
    inval_counts: Vec<u32>,
    packed: Vec<u32>,
    step_bounds: Vec<u32>,
    prefetch_pc: Vec<u32>,
    base: BaseStats,
    recorder: &'a dyn Recorder,
    prev_block: Option<BlockId>,
    trace_pos: u64,
    warmup_until: u64,
}

impl<'a> CaptureFrontend<'a> {
    pub(crate) fn new(
        program: &'a Program,
        layout: &'a Layout,
        config: &'a SimConfig,
        table: &'a LineTable,
        plan: &'a FetchPlan,
        recorder: &'a dyn Recorder,
    ) -> Self {
        assert!(
            table.len() < PREFETCH_BIT,
            "text segment too large for packed stream records"
        );
        let mut instr_counts = Vec::with_capacity(program.num_blocks());
        let mut inval_counts = Vec::with_capacity(program.num_blocks());
        for block in program.blocks() {
            instr_counts.push(block.original_instructions().len() as u32);
            inval_counts.push(block.injected_prefix_len());
        }
        CaptureFrontend {
            program,
            layout,
            config,
            table,
            plan,
            bpred: BranchPredictor::new(),
            ftq: VecDeque::new(),
            frontier: None,
            filter_fifo: VecDeque::with_capacity(PREFETCH_FILTER),
            in_filter: vec![false; table.len() as usize],
            instr_counts,
            inval_counts,
            packed: Vec::new(),
            step_bounds: vec![0],
            prefetch_pc: Vec::new(),
            base: BaseStats::default(),
            recorder,
            prev_block: None,
            trace_pos: 0,
            warmup_until: 0,
        }
    }

    /// Walks the whole trace and returns the packed stream, or a typed
    /// [`StreamLimitError`] if the trace produces more requests than `u32`
    /// positions can index (checked per step, before anything wraps).
    pub(crate) fn run(
        mut self,
        trace: impl ExactSizeIterator<Item = BlockId>,
    ) -> Result<ColumnarStream, StreamLimitError> {
        let len = trace.len() as u64;
        self.step_bounds.reserve(trace.len());
        // Heuristic: ~1-2 demand lines per block plus up to one filtered
        // prefetch each; overshoot is returned at the end of the capture.
        self.packed.reserve(trace.len() * 3);
        self.warmup_until = (len as f64 * self.config.warmup_fraction.clamp(0.0, 0.9)) as u64;
        let timing = self.recorder.enabled();
        let run_start = timing.then(Instant::now);
        let mut measure_start: Option<Instant> = None;
        for block in trace {
            self.step(block);
            let end = check_stream_capacity(self.packed.len() as u64)?;
            self.step_bounds.push(end);
            if self.trace_pos >= self.warmup_until {
                if timing && self.base.blocks == 0 {
                    measure_start = Some(Instant::now());
                }
                self.base.blocks += 1;
            }
            self.trace_pos += 1;
        }
        if let Some(run_start) = run_start {
            let end = Instant::now();
            let measured_at = measure_start.unwrap_or(end);
            self.recorder.phase(
                "frontend.warmup",
                (measured_at - run_start).as_nanos() as u64,
            );
            if let Some(m) = measure_start {
                self.recorder
                    .phase("frontend.measure", (end - m).as_nanos() as u64);
            }
        }
        let (inval_ids, inval_bounds) = invalidate_ops(self.program, self.table);
        Ok(ColumnarStream {
            packed: self.packed,
            step_bounds: self.step_bounds,
            prefetch_pc: self.prefetch_pc,
            inval_ids,
            inval_bounds,
            base: self.base,
        })
    }

    #[inline]
    fn counting(&self) -> bool {
        self.trace_pos >= self.warmup_until
    }

    fn step(&mut self, block: BlockId) {
        // Scripted invalidations (frontend step 0) only touch the L1I:
        // neither the stream nor any policy-independent counter depends on
        // them, so capture skips them; replays apply them.

        // 1. FDIP bookkeeping — identical to the frontend.
        if self.config.prefetcher == PrefetcherKind::Fdip {
            if let Some(prev) = self.prev_block {
                let correct = self.bpred.train(self.program, self.layout, prev, block);
                if !correct && self.counting() {
                    self.base.mispredictions += 1;
                }
            }
            match self.ftq.front() {
                Some(&head) if head == block => {
                    self.ftq.pop_front();
                }
                Some(_) => {
                    self.ftq.clear();
                    self.frontier = None;
                    self.bpred.reset_speculation();
                }
                None => {}
            }
        }
        self.prev_block = Some(block);

        // 2. Demand fetches: pack the block's plan lines.
        let plan = self.plan;
        let ids = plan.lines_of(block);
        if self.counting() {
            self.base.instructions += u64::from(self.instr_counts[block.index()]);
            self.base.invalidate_instructions += u64::from(self.inval_counts[block.index()]);
            self.base.demand_accesses += ids.len() as u64;
        }
        for &id in ids {
            self.packed.push(id.get());
        }

        // 3. Prefetching (stream-visible; the filter is cache-independent).
        match self.config.prefetcher {
            PrefetcherKind::None => {}
            PrefetcherKind::NextLine => {
                for &id in ids {
                    self.issue_prefetch(id.next(), block);
                }
            }
            PrefetcherKind::Fdip => self.extend_runahead(block),
        }

        // 4. Injected invalidations only touch the L1I: replays apply them
        // from the precomputed per-block operand table.
    }

    fn issue_prefetch(&mut self, id: LineId, issuer: BlockId) {
        if self.in_filter[id.index()] {
            return;
        }
        if self.filter_fifo.len() == PREFETCH_FILTER {
            if let Some(oldest) = self.filter_fifo.pop_front() {
                self.in_filter[oldest.index()] = false;
            }
        }
        self.filter_fifo.push_back(id);
        self.in_filter[id.index()] = true;
        self.packed.push(id.get() | PREFETCH_BIT);
        self.prefetch_pc.push(issuer.get());
        if self.counting() {
            self.base.prefetches_issued += 1;
        }
    }

    fn extend_runahead(&mut self, current: BlockId) {
        if self.ftq.is_empty() && self.frontier.is_none() {
            self.frontier = Some(current);
        }
        while self.ftq.len() < self.config.ftq_depth {
            let from = match self.frontier {
                Some(f) => f,
                None => break,
            };
            match self.bpred.predict(self.program, self.layout, from) {
                Prediction::Block(next) => {
                    self.ftq.push_back(next);
                    self.frontier = Some(next);
                    let plan = self.plan;
                    for &id in plan.lines_of(next) {
                        self.issue_prefetch(id, next);
                    }
                }
                Prediction::Unknown => break,
            }
        }
    }
}

/// Per-block injected-invalidate operands, interned once per capture.
// The expect is the same > 4 Gi capacity backstop as `FetchPlan::build`.
#[allow(clippy::expect_used)]
fn invalidate_ops(program: &Program, table: &LineTable) -> (Vec<u32>, Vec<u32>) {
    let mut ids = Vec::new();
    let mut bounds = Vec::with_capacity(program.num_blocks() + 1);
    bounds.push(0u32);
    for block in program.blocks() {
        for inst in &block.instructions()[..block.injected_prefix_len() as usize] {
            if let InstKind::Invalidate { line } = inst.kind() {
                ids.push(
                    table
                        .lookup(line)
                        .map_or(LineId::INVALID.get(), LineId::get),
                );
            }
        }
        bounds.push(u32::try_from(ids.len()).expect("invalidate plan exceeds u32 entries"));
    }
    (ids, bounds)
}

/// Replays a [`ColumnarStream`] through the cache hierarchy under one
/// replacement policy, reproducing the full frontend's [`SimStats`] and
/// eviction events byte for byte.
pub(crate) struct ReplayFrontend<'a, P: ?Sized + ReplacementPolicy = dyn ReplacementPolicy> {
    layout: &'a Layout,
    config: &'a SimConfig,
    table: &'a LineTable,
    stream: &'a ColumnarStream,
    l1i: Cache<P>,
    l2: Cache<LruPolicy>,
    l3: Cache<LruPolicy>,
    stats: SimStats,
    stall_cycles: f64,
    sink: &'a mut dyn EvictionSink,
    recorder: &'a dyn Recorder,
    last_demand_pos: Vec<u64>,
    prefetch_issue_pos: Vec<u64>,
    seen_lines: Vec<bool>,
    /// Cursor into `stream.prefetch_pc`, advanced per prefetch record.
    prefetch_cursor: usize,
    trace_pos: u64,
    script: Option<&'a [(u64, LineAddr)]>,
    script_cursor: usize,
    warmup_until: u64,
}

/// The steady-state L3 pre-warm every replay starts from: identical to
/// `Frontend::new`'s (all plan lines filled in block order). It depends
/// only on session-level state, so [`SimSession`](crate::SimSession)
/// builds it once per capture and clones it per replay instead of
/// re-running the O(blocks × lines) fill loop.
pub(crate) fn prewarm_l3(
    program: &Program,
    table: &LineTable,
    plan: &FetchPlan,
    config: &SimConfig,
) -> Cache<LruPolicy> {
    let base = table.line_base();
    let mut l3: Cache<LruPolicy> =
        Cache::with_line_base(config.l3, Box::new(LruPolicy::new(config.l3)), base);
    for block in program.blocks() {
        for &id in plan.lines_of(block.id()) {
            l3.access(id, table.line(id).base_addr(), false, 0);
        }
    }
    l3
}

impl<'a, P: ?Sized + ReplacementPolicy> ReplayFrontend<'a, P> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        layout: &'a Layout,
        config: &'a SimConfig,
        table: &'a LineTable,
        stream: &'a ColumnarStream,
        l3: Cache<LruPolicy>,
        l1i_policy: Box<P>,
        sink: &'a mut dyn EvictionSink,
        recorder: &'a dyn Recorder,
    ) -> Self {
        let base = table.line_base();
        let lines = table.len() as usize;
        ReplayFrontend {
            layout,
            config,
            table,
            stream,
            l1i: Cache::with_line_base(config.l1i, l1i_policy, base),
            l2: Cache::with_line_base(config.l2, Box::new(LruPolicy::new(config.l2)), base),
            l3,
            stats: SimStats::default(),
            stall_cycles: 0.0,
            sink,
            recorder,
            last_demand_pos: vec![NO_POS; lines],
            prefetch_issue_pos: vec![NO_POS; lines],
            seen_lines: vec![false; lines],
            prefetch_cursor: 0,
            trace_pos: 0,
            script: config.scripted_invalidations.as_ref().map(|s| s.as_slice()),
            script_cursor: 0,
            warmup_until: 0,
        }
    }

    /// Replays the whole trace; returns statistics identical to a fresh
    /// frontend pass under the same policy.
    pub(crate) fn run(mut self, trace: impl ExactSizeIterator<Item = BlockId>) -> SimStats {
        let len = trace.len() as u64;
        debug_assert_eq!(
            self.stream.step_bounds.len() as u64,
            len + 1,
            "stream captured over a different trace"
        );
        self.warmup_until = (len as f64 * self.config.warmup_fraction.clamp(0.0, 0.9)) as u64;
        let timing = self.recorder.enabled();
        let run_start = timing.then(Instant::now);
        let mut measure_start: Option<Instant> = None;
        let mut counted_blocks = 0u64;
        for block in trace {
            self.step(block);
            if self.trace_pos >= self.warmup_until {
                if timing && counted_blocks == 0 {
                    measure_start = Some(Instant::now());
                }
                counted_blocks += 1;
            }
            self.trace_pos += 1;
        }
        if let Some(run_start) = run_start {
            let end = Instant::now();
            let measured_at = measure_start.unwrap_or(end);
            self.recorder.phase(
                "frontend.warmup",
                (measured_at - run_start).as_nanos() as u64,
            );
            if let Some(m) = measure_start {
                self.recorder
                    .phase("frontend.measure", (end - m).as_nanos() as u64);
            }
        }
        let base = self.stream.base;
        debug_assert_eq!(counted_blocks, base.blocks);
        self.stats.blocks = base.blocks;
        self.stats.instructions = base.instructions;
        self.stats.invalidate_instructions = base.invalidate_instructions;
        self.stats.demand_accesses = base.demand_accesses;
        self.stats.prefetches_issued = base.prefetches_issued;
        self.stats.mispredictions = base.mispredictions;
        let total_instr = self.stats.instructions + self.stats.invalidate_instructions;
        self.stats.cycles = total_instr as f64 * self.config.base_cpi + self.stall_cycles;
        self.stats
    }

    #[inline]
    fn counting(&self) -> bool {
        self.trace_pos >= self.warmup_until
    }

    fn step(&mut self, block: BlockId) {
        // 0. Scripted (oracle) invalidations — identical to the frontend.
        if let Some(script) = self.script {
            while let Some(&(pos, line)) = script.get(self.script_cursor) {
                if pos > self.trace_pos {
                    break;
                }
                self.script_cursor += 1;
                if pos == self.trace_pos {
                    let hit = self
                        .table
                        .lookup(line)
                        .is_some_and(|id| self.l1i.invalidate(id));
                    if hit && self.counting() {
                        self.stats.invalidate_hits += 1;
                    }
                }
            }
        }

        // 1. Replay the step's recorded requests. Within a step the capture
        // order (demands, then prefetches) is preserved by construction;
        // the record index is the request's global `seq`.
        let i = self.trace_pos as usize;
        let start = self.stream.step_bounds[i] as usize;
        let end = self.stream.step_bounds[i + 1] as usize;
        let pc = self.layout.block_addr(block);
        for k in start..end {
            let raw = self.stream.packed[k];
            let id = LineId::new(raw & LINE_MASK);
            if raw & PREFETCH_BIT == 0 {
                self.demand_access(id, pc, k as u64);
            } else {
                let issuer = BlockId::new(self.stream.prefetch_pc[self.prefetch_cursor]);
                self.prefetch_cursor += 1;
                let issuer_pc = self.layout.block_addr(issuer);
                self.prefetch_fill(id, issuer_pc, k as u64);
            }
        }

        // 2. Injected invalidations at the block head, from the interned
        // operand table (frontend step 4).
        let stream = self.stream;
        for &raw in stream.inval_ops(block) {
            let id = (raw != LineId::INVALID.get()).then(|| LineId::new(raw));
            let present = match (self.config.eviction_mechanism, id) {
                (EvictionMechanism::Invalidate, Some(id)) => self.l1i.invalidate(id),
                (EvictionMechanism::Demote, Some(id)) => self.l1i.demote(id),
                _ => false,
            };
            if present && self.counting() {
                self.stats.invalidate_hits += 1;
            }
        }
    }

    fn demand_access(&mut self, id: LineId, pc: ripple_program::Addr, seq: u64) {
        let counting = self.counting();
        let out = self.l1i.access(id, pc, false, seq);
        let issue_pos = self.prefetch_issue_pos[id.index()];
        if issue_pos != NO_POS {
            self.prefetch_issue_pos[id.index()] = NO_POS;
            if out.is_hit() && counting {
                let window = u64::from(self.config.prefetch_timeliness_blocks);
                let elapsed = self.trace_pos.saturating_sub(issue_pos);
                if elapsed < window && window > 0 {
                    let remaining = (window - elapsed) as f64 / window as f64;
                    self.stall_cycles +=
                        f64::from(self.config.l2_latency) * remaining * self.config.stall_exposure;
                }
            }
        }
        match out {
            crate::cache::AccessOutcome::Hit => {}
            crate::cache::AccessOutcome::Miss { evicted } => {
                let first_touch = !self.seen_lines[id.index()];
                self.seen_lines[id.index()] = true;
                let latency = self.lower_levels(id);
                if counting {
                    self.stats.demand_misses += 1;
                    if first_touch {
                        self.stats.compulsory_misses += 1;
                    }
                    self.stall_cycles += f64::from(latency) * self.config.stall_exposure;
                }
                self.note_eviction(evicted, false);
            }
        }
        self.last_demand_pos[id.index()] = self.trace_pos;
    }

    fn prefetch_fill(&mut self, id: LineId, pc: ripple_program::Addr, seq: u64) {
        if self.prefetch_issue_pos[id.index()] == NO_POS {
            self.prefetch_issue_pos[id.index()] = self.trace_pos;
        }
        let out = self.l1i.access(id, pc, true, seq);
        if let crate::cache::AccessOutcome::Miss { evicted } = out {
            if self.counting() {
                self.stats.prefetch_fills += 1;
            }
            self.seen_lines[id.index()] = true;
            let _ = self.lower_levels(id);
            self.note_eviction(evicted, true);
        }
    }

    fn note_eviction(&mut self, evicted: Option<LineId>, by_prefetch: bool) {
        let Some(victim) = evicted else { return };
        let last = self.last_demand_pos[victim.index()];
        if self.counting() {
            self.stats.evictions += 1;
            if last == NO_POS {
                self.stats.prefetch_pollution_evictions += 1;
            }
        }
        self.sink.record(EvictionEvent {
            victim: self.table.line(victim),
            evict_pos: self.trace_pos,
            last_access_pos: last,
            by_prefetch,
        });
    }

    fn lower_levels(&mut self, id: LineId) -> u32 {
        let pc = self.table.line(id).base_addr();
        let counting = self.counting();
        let l2_hit = self.l2.access(id, pc, false, 0).is_hit();
        if l2_hit {
            if counting {
                self.stats.served_l2 += 1;
            }
            return self.config.l2_latency;
        }
        let l3_hit = self.l3.access(id, pc, false, 0).is_hit();
        if l3_hit {
            if counting {
                self.stats.served_l3 += 1;
            }
            self.config.l3_latency
        } else {
            if counting {
                self.stats.served_mem += 1;
            }
            self.config.mem_latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_capacity_guard_bounds() {
        // Synthetic bound check: the guard, not a 4-billion-request trace.
        assert_eq!(check_stream_capacity(0), Ok(0));
        assert_eq!(
            check_stream_capacity(MAX_STREAM_RECORDS - 1),
            Ok(u32::MAX - 1)
        );
        assert_eq!(
            check_stream_capacity(MAX_STREAM_RECORDS),
            Err(StreamLimitError {
                records: MAX_STREAM_RECORDS
            })
        );
        assert_eq!(
            check_stream_capacity((1 << 32) + 5),
            Err(StreamLimitError {
                records: (1 << 32) + 5
            })
        );
    }

    #[test]
    fn stream_limit_error_display_names_the_limit() {
        let e = StreamLimitError {
            records: MAX_STREAM_RECORDS,
        };
        let s = e.to_string();
        assert!(s.contains("4294967295"), "{s}");
        assert!(s.contains("u32"), "{s}");
    }
}
