//! The trace-driven simulation engine.
//!
//! Online policies run in a single pass. Offline-ideal policies (OPT,
//! Demand-MIN) run in two: a recording pass captures the L1I request
//! stream — which is replacement-policy-independent, because prefetcher
//! and branch-predictor state never observe cache contents — a
//! [`FutureIndex`] is built from it, and the replay pass re-runs the
//! frontend with the oracle policy.
//!
//! [`SimSession`] makes that recording pass *shared*: it captures the
//! request stream and its [`FutureIndex`] at most once per
//! (program, layout, trace, config) and replays arbitrary policies against
//! it, so a policy matrix pays for recording once instead of once per
//! oracle run. Sessions are `Sync`; one session can serve replays from many
//! threads concurrently.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

use ripple_obs::{time_phase, FieldValue, NullRecorder, PhaseTimer, Recorder};
use ripple_program::{Layout, Program};
use ripple_trace::{BbTrace, TraceHealth};

use crate::batch::BucketedStream;
use crate::config::{LinePath, PolicyKind, SimConfig};
use crate::frontend::Frontend;
use crate::intern::{FetchPlan, LineTable, PlanCache};
use crate::policy::{
    build_ideal_policy, build_policy, DemandMinPolicy, FutureIndex, LruPolicy, OptPolicy,
    ReplacementPolicy, StreamRecord,
};
use crate::reference::ReferenceFrontend;
use crate::replay::{CaptureFrontend, ColumnarStream, ReplayFrontend, StreamLimitError};
use crate::sink::{EvictionSink, NullSink};
use crate::stats::SimStats;

/// The policy-independent artifacts of a recording pass.
enum RecordedStream {
    /// Interned path: the bit-packed columnar capture. Every policy —
    /// oracle or online — replays it through [`ReplayFrontend`].
    Columnar {
        stream: ColumnarStream,
        future: Arc<FutureIndex>,
    },
    /// Reference path: the legacy materialized stream, kept verbatim as
    /// the equivalence oracle (replays re-derive the stream and verify
    /// against it).
    Reference {
        stream: Vec<StreamRecord>,
        future: Arc<FutureIndex>,
    },
}

/// A reusable simulation context over one (program, layout, trace, config).
///
/// The session replays any [`PolicyKind`] against the same inputs. For
/// offline-ideal policies it records the L1I request stream lazily, exactly
/// once, and shares the resulting [`FutureIndex`] across replays — including
/// concurrent replays from multiple threads, since `&self` suffices to run.
///
/// The per-run policy overrides `config.policy`; everything else in the
/// config (geometry, prefetcher, eviction mechanism, scripted
/// invalidations) is fixed for the session's lifetime. The recorded stream
/// is valid for every policy because the request stream only depends on the
/// trace, the layout and the prefetcher — never on cache contents.
///
/// # Examples
///
/// ```
/// use ripple_program::{Layout, LayoutConfig};
/// use ripple_sim::{PolicyKind, SimConfig, SimSession};
/// use ripple_workloads::{execute, generate, AppSpec, InputConfig};
///
/// let app = generate(&AppSpec::tiny(1));
/// let layout = Layout::new(&app.program, &LayoutConfig::default());
/// let trace = execute(&app.program, &app.model, InputConfig::training(1), 20_000);
///
/// let session = SimSession::new(&app.program, &layout, &trace, SimConfig::default());
/// let lru = session.run(PolicyKind::LRU);
/// let opt = session.run(PolicyKind::OPT);
/// let demand_min = session.run(PolicyKind::DEMAND_MIN);
/// assert!(opt.demand_misses <= lru.demand_misses);
/// assert!(demand_min.demand_misses <= lru.demand_misses);
/// // Both oracle replays shared one recording pass.
/// assert_eq!(session.recording_passes(), 1);
/// ```
pub struct SimSession<'a> {
    program: &'a Program,
    layout: &'a Layout,
    trace: &'a BbTrace,
    config: SimConfig,
    /// Dense interning of this layout's reachable lines, built once per
    /// session and shared by every run (plain data, so the session stays
    /// `Sync`).
    table: LineTable,
    /// Precomputed block → interned-lines fetch plan over `table`.
    plan: FetchPlan,
    recorded: OnceLock<Result<RecordedStream, StreamLimitError>>,
    /// The recorded stream bucketed by L1I set for set-major (and sharded)
    /// replay, built lazily on the first eligible replay; `None` when the
    /// session's shape rules batching out (see
    /// [`crate::batch::bucket_stream`]).
    bucketed: OnceLock<Option<BucketedStream>>,
    /// The steady-state L3 pre-warm every columnar replay starts from,
    /// built lazily on the first replay and cloned into each run.
    l3_seed: OnceLock<crate::cache::Cache<LruPolicy>>,
    recording_passes: AtomicU32,
    /// Set once the session has warned on stderr that a `replay_shards`
    /// request was downgraded to sequential replay, so a policy matrix
    /// over one session prints the note once, not once per run.
    shard_note_emitted: AtomicBool,
    /// Observability sink; [`NullRecorder`] (the default) keeps every
    /// instrumented seam on its free path.
    recorder: Arc<dyn Recorder>,
    /// Decode-health of the input trace when it came through the lossy
    /// decoder; stamped onto every run's stats and gauges.
    trace_health: Option<TraceHealth>,
}

impl std::fmt::Debug for SimSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSession")
            .field("trace_len", &self.trace.len())
            .field("config", &self.config)
            .field("recording_passes", &self.recording_passes())
            .finish_non_exhaustive()
    }
}

impl<'a> SimSession<'a> {
    /// Creates a session; no simulation happens until a run is requested.
    pub fn new(
        program: &'a Program,
        layout: &'a Layout,
        trace: &'a BbTrace,
        config: SimConfig,
    ) -> Self {
        Self::new_cached(program, layout, trace, config, None)
    }

    /// [`SimSession::new`], splicing the fetch plan from a previous
    /// session's [`PlanCache`] where per-function layout hashes match
    /// (identical plans either way; see [`FetchPlan::build_cached`]).
    pub fn new_cached(
        program: &'a Program,
        layout: &'a Layout,
        trace: &'a BbTrace,
        config: SimConfig,
        prev: Option<&PlanCache>,
    ) -> Self {
        let table = LineTable::build(layout);
        let plan = FetchPlan::build_cached(program, layout, &table, prev);
        SimSession {
            program,
            layout,
            trace,
            config,
            table,
            plan,
            recorded: OnceLock::new(),
            bucketed: OnceLock::new(),
            l3_seed: OnceLock::new(),
            recording_passes: AtomicU32::new(0),
            shard_note_emitted: AtomicBool::new(false),
            recorder: Arc::new(NullRecorder),
            trace_health: None,
        }
    }

    /// Attaches the decode-health of the session's trace (as produced by
    /// `reconstruct_trace_lossy`). Every run stamps
    /// [`SimStats::dropped_packets`] / [`SimStats::resync_events`] from it
    /// and, when a recorder is attached, reports the
    /// `trace.dropped_packets` / `trace.resync_events` gauges — so a run
    /// over a degraded trace is visibly degraded in its outputs.
    pub fn with_trace_health(mut self, health: TraceHealth) -> Self {
        self.trace_health = Some(health);
        self
    }

    /// The attached trace decode-health, if any.
    pub fn trace_health(&self) -> Option<TraceHealth> {
        self.trace_health
    }

    /// Attaches an observability recorder; subsequent runs report
    /// `session.*` and `frontend.*` phases into it. Recorders observe
    /// only — simulation outputs stay byte-identical (the determinism
    /// suite asserts this).
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// The attached observability recorder ([`NullRecorder`] by default).
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// The session's configuration (its `policy` field is the default for
    /// [`SimSession::run`] calls and is otherwise inert).
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The program being simulated.
    pub fn program(&self) -> &'a Program {
        self.program
    }

    /// The layout being simulated.
    pub fn layout(&self) -> &'a Layout {
        self.layout
    }

    /// The trace being simulated.
    pub fn trace(&self) -> &'a BbTrace {
        self.trace
    }

    /// Extracts this session's reusable interning artifacts, to seed a
    /// later session over a re-linked layout via
    /// [`SimSession::new_cached`].
    pub fn plan_cache(&self) -> PlanCache {
        PlanCache::capture(self.program, self.layout, &self.table, &self.plan)
    }

    /// Simulates under `policy`, discarding evictions.
    ///
    /// # Panics
    ///
    /// Panics if the trace produces more cache requests than the columnar
    /// capture can index (≥ `u32::MAX` records); use
    /// [`SimSession::try_run`] to handle that as a typed error.
    pub fn run(&self, policy: PolicyKind) -> SimStats {
        self.run_with_sink(policy, &mut NullSink)
    }

    /// Simulates under `policy`, streaming every L1I eviction into `sink`.
    ///
    /// # Panics
    ///
    /// Panics if the trace produces more cache requests than the columnar
    /// capture can index (≥ `u32::MAX` records); use
    /// [`SimSession::try_run_with_sink`] to handle that as a typed error.
    pub fn run_with_sink(&self, policy: PolicyKind, sink: &mut dyn EvictionSink) -> SimStats {
        // The panic is the documented contract; the try_* entry points
        // exist for callers that want the typed error instead.
        #[allow(clippy::expect_used)]
        self.try_run_with_sink(policy, sink)
            .expect("request stream exceeds the columnar capture's u32 capacity")
    }

    /// [`SimSession::run`], returning a typed [`StreamLimitError`] instead
    /// of panicking when the trace produces more cache requests than the
    /// columnar capture can index.
    pub fn try_run(&self, policy: PolicyKind) -> Result<SimStats, StreamLimitError> {
        self.try_run_with_sink(policy, &mut NullSink)
    }

    /// [`SimSession::run_with_sink`], returning a typed
    /// [`StreamLimitError`] instead of panicking when the trace produces
    /// more cache requests than the columnar capture can index.
    pub fn try_run_with_sink(
        &self,
        policy: PolicyKind,
        sink: &mut dyn EvictionSink,
    ) -> Result<SimStats, StreamLimitError> {
        let timer = PhaseTimer::start(&*self.recorder);
        let cfg = self.config.clone().with_policy(policy);
        let mut used_batched = false;
        let mut stats = if policy.is_offline_ideal() {
            match self.recorded()? {
                RecordedStream::Columnar { stream, future } => {
                    let batched = if policy.replay_set_local() {
                        self.bucketed(stream, future)
                    } else {
                        None
                    };
                    if let Some(b) = batched {
                        // Set-major (and, when configured, sharded) replay;
                        // monomorphized factories for the two known oracles
                        // so the policy callbacks inline into the hot loop.
                        used_batched = true;
                        let geom = cfg.l1i;
                        let fut = b.future.clone();
                        if policy == PolicyKind::OPT {
                            let make = move || Box::new(OptPolicy::new(geom, fut.clone()));
                            self.run_batched(&cfg, stream, b, &make, sink)
                        } else if policy == PolicyKind::DEMAND_MIN {
                            let make = move || Box::new(DemandMinPolicy::new(geom, fut.clone()));
                            self.run_batched(&cfg, stream, b, &make, sink)
                        } else {
                            let make = move || build_ideal_policy(policy, geom, fut.clone());
                            self.run_batched(&cfg, stream, b, &make, sink)
                        }
                    } else if policy == PolicyKind::OPT {
                        // Sequential replay fallback, monomorphized as
                        // above.
                        let oracle = Box::new(OptPolicy::new(cfg.l1i, future.clone()));
                        self.run_replay(&cfg, oracle, stream, sink)
                    } else if policy == PolicyKind::DEMAND_MIN {
                        let oracle = Box::new(DemandMinPolicy::new(cfg.l1i, future.clone()));
                        self.run_replay(&cfg, oracle, stream, sink)
                    } else {
                        let oracle = build_ideal_policy(policy, cfg.l1i, future.clone());
                        self.run_replay(&cfg, oracle, stream, sink)
                    }
                }
                RecordedStream::Reference { stream, future } => {
                    let oracle = build_ideal_policy(policy, cfg.l1i, future.clone());
                    self.run_frontend(&cfg, oracle, false, Some(stream), sink).0
                }
            }
        } else {
            // Online policy. Replay the capture when one is already in
            // hand (byte-identical to a fresh frontend pass, minus the
            // fetch plan, predictor and filter); additionally *force* a
            // capture when sharded replay was requested and the policy
            // permits it, since sharding only exists on the replay path.
            let capture_ready = matches!(
                self.recorded.get(),
                Some(Ok(RecordedStream::Columnar { .. }))
            );
            let want_batched = cfg.replay_shards > 1
                && cfg.line_path == LinePath::Interned
                && policy.replay_set_local();
            if capture_ready || want_batched {
                match self.recorded() {
                    Ok(RecordedStream::Columnar { stream, future }) => {
                        let batched = if policy.replay_set_local() {
                            self.bucketed(stream, future)
                        } else {
                            None
                        };
                        if let Some(b) = batched {
                            used_batched = true;
                            let make = || build_policy(&cfg);
                            self.run_batched(&cfg, stream, b, &make, sink)
                        } else {
                            self.run_replay(&cfg, build_policy(&cfg), stream, sink)
                        }
                    }
                    // Reference recordings don't replay online policies;
                    // a failed capture falls back to the single-pass
                    // frontend, which has no u32 position limit.
                    Ok(RecordedStream::Reference { .. }) | Err(_) => {
                        self.run_frontend(&cfg, build_policy(&cfg), false, None, sink)
                            .0
                    }
                }
            } else {
                let policy = build_policy(&cfg);
                self.run_frontend(&cfg, policy, false, None, sink).0
            }
        };
        if cfg.replay_shards > 1 && !used_batched {
            // The shard request was silently unusable for this run; say so
            // once (stderr) and always (gauge) instead of quietly running
            // the sequential path.
            let reason = if !policy.replay_set_local() {
                "the policy has no set-local replay state"
            } else if cfg.line_path != LinePath::Interned {
                "the reference line path has no sharded replay"
            } else {
                "the trace or cache geometry is ineligible for set-batched replay \
                 (set divisibility, line-id width, or stream-size limits)"
            };
            if self.recorder.enabled() {
                self.recorder
                    .gauge("session.replay_shards_downgraded", cfg.replay_shards as f64);
            }
            if !self.shard_note_emitted.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "ripple-sim: --replay-shards {} downgraded to sequential replay for {}: {reason}",
                    cfg.replay_shards,
                    policy.name()
                );
            }
        }
        if let Some(health) = self.trace_health {
            stats.dropped_packets = health.dropped_packets;
            stats.resync_events = health.resync_events;
        }
        if self.recorder.enabled() {
            if let Some(health) = self.trace_health {
                self.recorder
                    .gauge("trace.dropped_packets", health.dropped_packets as f64);
                self.recorder
                    .gauge("trace.resync_events", health.resync_events as f64);
            }
            self.recorder.add("session.runs", 1);
            self.recorder.event(
                "session.run",
                &[
                    ("policy", FieldValue::Str(policy.name())),
                    ("blocks", FieldValue::U64(stats.blocks)),
                ],
            );
            timer.finish(&*self.recorder, "session.run");
        }
        Ok(stats)
    }

    /// Runs one frontend pass, dispatching on the configured
    /// [`LinePath`]. Both paths are byte-identical in their outputs; the
    /// reference path exists as the equivalence oracle and performance
    /// baseline.
    fn run_frontend(
        &self,
        cfg: &SimConfig,
        l1i_policy: Box<dyn ReplacementPolicy>,
        record: bool,
        verify: Option<&[StreamRecord]>,
        sink: &mut dyn EvictionSink,
    ) -> (SimStats, Option<Vec<StreamRecord>>) {
        match cfg.line_path {
            LinePath::Interned => Frontend::new(
                self.program,
                self.layout,
                cfg,
                &self.table,
                &self.plan,
                l1i_policy,
                record,
                verify,
                sink,
                &*self.recorder,
            )
            .run(self.trace.iter()),
            LinePath::Reference => ReferenceFrontend::new(
                self.program,
                self.layout,
                cfg,
                l1i_policy,
                record,
                verify,
                sink,
                &*self.recorder,
            )
            .run(self.trace.iter()),
        }
    }

    /// Statistics for the paper's *ideal I-cache* (no misses at all).
    pub fn run_ideal_cache(&self) -> SimStats {
        simulate_ideal_cache(self.program, self.trace, &self.config)
    }

    /// How many frontend recording passes this session has performed
    /// (0 before any oracle replay, never more than 1 after).
    pub fn recording_passes(&self) -> u32 {
        self.recording_passes.load(Ordering::Acquire)
    }

    /// Forces the shared recording pass (and its [`FutureIndex`]) to run
    /// now; it otherwise happens lazily on the first offline-ideal
    /// replay. Lets callers pay the pass up front — before spawning
    /// replay threads, or to time recording and replay separately.
    ///
    /// # Panics
    ///
    /// Panics if the trace produces more cache requests than the columnar
    /// capture can index; use [`SimSession::try_ensure_recorded`] to
    /// handle that as a typed error.
    pub fn ensure_recorded(&self) {
        // The panic is the documented contract; try_ensure_recorded is the
        // fallible variant.
        #[allow(clippy::expect_used)]
        self.try_ensure_recorded()
            .expect("request stream exceeds the columnar capture's u32 capacity")
    }

    /// [`SimSession::ensure_recorded`], returning a typed
    /// [`StreamLimitError`] instead of panicking when the trace produces
    /// more cache requests than the capture's `u32` positions can index.
    pub fn try_ensure_recorded(&self) -> Result<(), StreamLimitError> {
        self.recorded().map(|_| ())
    }

    fn recorded(&self) -> Result<&RecordedStream, StreamLimitError> {
        self.recorded
            .get_or_init(|| {
                self.recording_passes.fetch_add(1, Ordering::AcqRel);
                self.recorder.add("session.recording_passes", 1);
                match self.config.line_path {
                    LinePath::Interned => {
                        // The request stream never reads cache contents, so
                        // the capture pass runs no cache model at all: one
                        // walk through the predictor and prefetch filter,
                        // bit-packed as it goes. A trace beyond the u32
                        // record capacity surfaces here, at record time,
                        // and the error is cached like a successful pass.
                        let stream = time_phase(&*self.recorder, "session.record", || {
                            CaptureFrontend::new(
                                self.program,
                                self.layout,
                                &self.config,
                                &self.table,
                                &self.plan,
                                &*self.recorder,
                            )
                            .run(self.trace.iter())
                        })?;
                        let future = time_phase(&*self.recorder, "session.future_index", || {
                            FutureIndex::build_packed(&stream.packed, self.table.len())
                        });
                        Ok(RecordedStream::Columnar { stream, future })
                    }
                    LinePath::Reference => {
                        // The recording policy is irrelevant to the captured
                        // stream; LRU is the cheapest throwaway.
                        let cfg = self.config.clone().with_policy(PolicyKind::LRU);
                        let mut sink = NullSink;
                        let (_, stream) = time_phase(&*self.recorder, "session.record", || {
                            self.run_frontend(
                                &cfg,
                                Box::new(LruPolicy::new(cfg.l1i)),
                                true,
                                None,
                                &mut sink,
                            )
                        });
                        // `run_frontend` with `record = true` always returns a
                        // stream.
                        #[allow(clippy::expect_used)]
                        let stream = stream.expect("recording pass returns a stream");
                        let future = time_phase(&*self.recorder, "session.future_index", || {
                            FutureIndex::build(&stream)
                        });
                        Ok(RecordedStream::Reference { stream, future })
                    }
                }
            })
            .as_ref()
            .map_err(|&e| e)
    }

    /// The recorded stream bucketed by L1I set, built once per session;
    /// `None` when the session's shape rules set-batched replay out.
    fn bucketed(
        &self,
        stream: &ColumnarStream,
        future: &std::sync::Arc<FutureIndex>,
    ) -> Option<&BucketedStream> {
        self.bucketed
            .get_or_init(|| {
                time_phase(&*self.recorder, "session.bucket", || {
                    crate::batch::bucket_stream(
                        self.trace,
                        stream,
                        &self.config,
                        &self.table,
                        future,
                    )
                })
            })
            .as_ref()
    }

    /// Replays the bucketed stream set-major under fresh policies from
    /// `make_policy`, sharded per `cfg.replay_shards`; byte-identical to
    /// [`SimSession::run_replay`] (the `ripple-check` shards dimension
    /// asserts this).
    fn run_batched<P: ?Sized + ReplacementPolicy>(
        &self,
        cfg: &SimConfig,
        stream: &ColumnarStream,
        bucketed: &BucketedStream,
        make_policy: &(dyn Fn() -> Box<P> + Sync),
        sink: &mut dyn EvictionSink,
    ) -> SimStats {
        let l3_seed = self.l3_seed.get_or_init(|| {
            crate::replay::prewarm_l3(self.program, &self.table, &self.plan, &self.config)
        });
        crate::batch::run_batched(
            self.layout,
            cfg,
            &self.table,
            bucketed,
            stream,
            l3_seed,
            make_policy,
            sink,
            &*self.recorder,
        )
    }

    /// Replays the captured columnar stream under `l1i_policy`.
    fn run_replay<P: ?Sized + ReplacementPolicy>(
        &self,
        cfg: &SimConfig,
        l1i_policy: Box<P>,
        stream: &ColumnarStream,
        sink: &mut dyn EvictionSink,
    ) -> SimStats {
        // The steady-state L3 pre-warm only depends on session-level state
        // (program, plan, geometry — never the policy), so it is built on
        // the first replay and cloned into later ones instead of re-running
        // the O(blocks × lines) fill loop per run.
        let l3_seed = self.l3_seed.get_or_init(|| {
            crate::replay::prewarm_l3(self.program, &self.table, &self.plan, &self.config)
        });
        if self.recorder.enabled() {
            // The sequential replay clones the shared L3 seed exactly once.
            self.recorder.add("session.l3_seed_clones", 1);
        }
        ReplayFrontend::new(
            self.layout,
            cfg,
            &self.table,
            stream,
            l3_seed.clone(),
            l1i_policy,
            sink,
            &*self.recorder,
        )
        .run(self.trace.iter())
    }
}

/// Simulates `trace` of `program` under `config`, discarding evictions.
///
/// One-shot convenience over [`SimSession`]; when running several policies
/// on the same inputs, build a session instead so oracle replays share the
/// recording pass.
///
/// # Examples
///
/// ```
/// use ripple_program::{Layout, LayoutConfig};
/// use ripple_sim::{simulate, PolicyKind, SimConfig};
/// use ripple_workloads::{execute, generate, AppSpec, InputConfig};
///
/// let app = generate(&AppSpec::tiny(1));
/// let layout = Layout::new(&app.program, &LayoutConfig::default());
/// let trace = execute(&app.program, &app.model, InputConfig::training(1), 20_000);
///
/// let lru = simulate(&app.program, &layout, &trace, &SimConfig::default());
/// let opt = simulate(
///     &app.program,
///     &layout,
///     &trace,
///     &SimConfig::default().with_policy(PolicyKind::OPT),
/// );
/// assert!(opt.demand_misses <= lru.demand_misses);
/// ```
pub fn simulate(
    program: &Program,
    layout: &Layout,
    trace: &BbTrace,
    config: &SimConfig,
) -> SimStats {
    simulate_with_sink(program, layout, trace, config, &mut NullSink)
}

/// Simulates `trace` of `program` under `config`, streaming every L1I
/// eviction into `sink`.
pub fn simulate_with_sink(
    program: &Program,
    layout: &Layout,
    trace: &BbTrace,
    config: &SimConfig,
    sink: &mut dyn EvictionSink,
) -> SimStats {
    SimSession::new(program, layout, trace, config.clone()).run_with_sink(config.policy, sink)
}

/// Statistics for the paper's *ideal I-cache* (no misses at all): every
/// fetch hits, so cycles are purely `instructions × base_cpi`. This is
/// the Fig. 1 upper bound.
pub fn simulate_ideal_cache(program: &Program, trace: &BbTrace, config: &SimConfig) -> SimStats {
    let warmup = (trace.len() as f64 * config.warmup_fraction.clamp(0.0, 0.9)) as usize;
    let mut stats = SimStats {
        blocks: (trace.len() - warmup) as u64,
        ..SimStats::default()
    };
    for block in trace.iter().skip(warmup) {
        let bb = program.block(block);
        stats.instructions += bb.original_instructions().len() as u64;
        stats.invalidate_instructions += u64::from(bb.injected_prefix_len());
    }
    let total = stats.instructions + stats.invalidate_instructions;
    stats.cycles = total as f64 * config.base_cpi;
    stats
}

/// Convenience: run the baseline configuration (LRU, chosen prefetcher)
/// and an ideal-replacement configuration, returning `(baseline, ideal)`.
///
/// The ideal oracle is prefetch-aware ([`PolicyKind::DEMAND_MIN`]) whenever
/// a prefetcher is active, matching §II-C, and plain OPT otherwise.
pub fn baseline_and_ideal(
    program: &Program,
    layout: &Layout,
    trace: &BbTrace,
    config: &SimConfig,
) -> (SimStats, SimStats) {
    let session = SimSession::new(program, layout, trace, config.clone());
    (
        session.run(PolicyKind::LRU),
        session.run(ideal_policy_for(config.prefetcher)),
    )
}

/// The ideal oracle matching a prefetcher configuration: prefetch-aware
/// Demand-MIN when prefetching is active, plain OPT otherwise (§II-C).
pub fn ideal_policy_for(prefetcher: crate::config::PrefetcherKind) -> PolicyKind {
    if prefetcher == crate::config::PrefetcherKind::None {
        PolicyKind::OPT
    } else {
        PolicyKind::DEMAND_MIN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetcherKind;
    use crate::sink::VecSink;
    use ripple_program::LayoutConfig;
    use ripple_workloads::{execute, generate, AppSpec, InputConfig};

    fn small_setup() -> (ripple_program::Program, Layout, BbTrace) {
        let app = generate(&AppSpec::tiny(5));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(&app.program, &app.model, InputConfig::training(5), 40_000);
        (app.program, layout, trace)
    }

    /// The tiny app fits in a 32 KB L1I; shrink it so misses happen after
    /// warmup.
    fn small_cfg() -> SimConfig {
        let mut cfg = SimConfig::default();
        cfg.l1i = crate::config::CacheGeometry::new(1024, 2);
        cfg
    }

    #[test]
    fn lru_simulation_produces_sane_stats() {
        let (p, l, t) = small_setup();
        let stats = simulate(&p, &l, &t, &SimConfig::default());
        // Statistics only accumulate after the warmup fraction.
        let warmup = (t.len() as f64 * SimConfig::default().warmup_fraction) as u64;
        assert_eq!(stats.blocks, t.len() as u64 - warmup);
        assert!(stats.instructions >= 40_000 / 2);
        assert!(stats.demand_accesses > 0);
        assert!(stats.demand_misses <= stats.demand_accesses);
        assert!(stats.cycles > 0.0);
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    fn opt_never_loses_to_lru() {
        let (p, l, t) = small_setup();
        let lru = simulate(&p, &l, &t, &small_cfg());
        let opt = simulate(&p, &l, &t, &small_cfg().with_policy(PolicyKind::OPT));
        assert!(opt.demand_misses <= lru.demand_misses);
        assert!(lru.demand_misses > 0, "workload must miss");
    }

    #[test]
    fn prefetching_reduces_misses() {
        let (p, l, t) = small_setup();
        let none = simulate(&p, &l, &t, &small_cfg());
        let nlp = simulate(
            &p,
            &l,
            &t,
            &small_cfg().with_prefetcher(PrefetcherKind::NextLine),
        );
        let fdip = simulate(
            &p,
            &l,
            &t,
            &small_cfg().with_prefetcher(PrefetcherKind::Fdip),
        );
        assert!(nlp.demand_misses < none.demand_misses);
        assert!(fdip.demand_misses < none.demand_misses);
        assert!(nlp.prefetches_issued > 0);
        assert!(fdip.prefetches_issued > 0);
    }

    #[test]
    fn demand_min_never_loses_to_lru_under_prefetching() {
        let (p, l, t) = small_setup();
        for pf in [PrefetcherKind::NextLine, PrefetcherKind::Fdip] {
            let cfg = small_cfg().with_prefetcher(pf);
            let lru = simulate(&p, &l, &t, &cfg);
            let dm = simulate(&p, &l, &t, &cfg.clone().with_policy(PolicyKind::DEMAND_MIN));
            assert!(
                dm.demand_misses <= lru.demand_misses,
                "{}: {} > {}",
                pf.name(),
                dm.demand_misses,
                lru.demand_misses
            );
        }
    }

    #[test]
    fn ideal_cache_bounds_everything() {
        let (p, l, t) = small_setup();
        let cfg = small_cfg();
        let ideal = simulate_ideal_cache(&p, &t, &cfg);
        let lru = simulate(&p, &l, &t, &cfg);
        assert!(ideal.cycles < lru.cycles);
        assert_eq!(ideal.demand_misses, 0);
        assert_eq!(ideal.instructions, lru.instructions);
    }

    #[test]
    fn eviction_sink_receives_ordered_log() {
        let (p, l, t) = small_setup();
        let cfg = small_cfg();
        let mut sink = VecSink::new();
        let stats = simulate_with_sink(&p, &l, &t, &cfg, &mut sink);
        let log = sink.into_events();
        // The log records warmup evictions too (the analysis wants them);
        // the counter only accumulates post-warmup.
        assert!(log.len() as u64 >= stats.evictions);
        assert!(!log.is_empty());
        for w in log.windows(2) {
            assert!(w[0].evict_pos <= w[1].evict_pos, "log must be ordered");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (p, l, t) = small_setup();
        let cfg = small_cfg().with_prefetcher(PrefetcherKind::Fdip);
        let a = simulate(&p, &l, &t, &cfg);
        let b = simulate(&p, &l, &t, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn baseline_and_ideal_picks_demand_min_under_prefetching() {
        let (p, l, t) = small_setup();
        let cfg = small_cfg().with_prefetcher(PrefetcherKind::Fdip);
        let (base, ideal) = baseline_and_ideal(&p, &l, &t, &cfg);
        assert!(ideal.demand_misses <= base.demand_misses);
    }

    #[test]
    fn session_shares_one_recording_pass() {
        let (p, l, t) = small_setup();
        let session = SimSession::new(&p, &l, &t, small_cfg());
        assert_eq!(session.recording_passes(), 0);
        let opt = session.run(PolicyKind::OPT);
        assert_eq!(session.recording_passes(), 1);
        let dm = session.run(PolicyKind::DEMAND_MIN);
        let opt_again = session.run(PolicyKind::OPT);
        // Replaying a second (and third) oracle performed no new recording.
        assert_eq!(session.recording_passes(), 1);
        assert_eq!(opt, opt_again);
        assert!(dm.demand_accesses > 0);
    }

    #[test]
    fn session_matches_one_shot_simulate() {
        let (p, l, t) = small_setup();
        let cfg = small_cfg().with_prefetcher(PrefetcherKind::Fdip);
        let session = SimSession::new(&p, &l, &t, cfg.clone());
        for kind in [
            PolicyKind::LRU,
            PolicyKind::SRRIP,
            PolicyKind::OPT,
            PolicyKind::DEMAND_MIN,
        ] {
            let one_shot = simulate(&p, &l, &t, &cfg.clone().with_policy(kind));
            assert_eq!(session.run(kind), one_shot, "{}", kind.name());
        }
    }

    #[test]
    fn trace_health_is_stamped_onto_stats_and_gauges() {
        let (p, l, t) = small_setup();
        let health = TraceHealth {
            total_bytes: 1000,
            dropped_bytes: 40,
            dropped_packets: 7,
            resync_events: 2,
        };
        let metrics = Arc::new(ripple_obs::MetricsRecorder::new());
        let session = SimSession::new(&p, &l, &t, small_cfg())
            .with_trace_health(health)
            .with_recorder(metrics.clone());
        let stats = session.run(PolicyKind::LRU);
        assert_eq!(stats.dropped_packets, 7);
        assert_eq!(stats.resync_events, 2);
        let snap = metrics.snapshot();
        assert_eq!(snap.gauge("trace.dropped_packets"), Some(7.0));
        assert_eq!(snap.gauge("trace.resync_events"), Some(2.0));

        // Without attached health, the fields stay zero (lossless runs are
        // indistinguishable from pre-lossy behaviour).
        let plain = SimSession::new(&p, &l, &t, small_cfg()).run(PolicyKind::LRU);
        assert_eq!(plain.dropped_packets, 0);
        assert_eq!(plain.resync_events, 0);
        // Health stamping never perturbs the simulation itself.
        assert_eq!(
            SimStats {
                dropped_packets: 0,
                resync_events: 0,
                ..stats
            },
            plain
        );
    }

    /// A scripted-invalidation plan over real interned lines, exercising
    /// the inval-op bucketing path.
    fn small_script(layout: &Layout, trace: &BbTrace) -> Vec<(u64, ripple_program::LineAddr)> {
        let table = crate::intern::LineTable::build(layout);
        let mut script: Vec<(u64, ripple_program::LineAddr)> = (0..200u64)
            .map(|i| {
                let pos = (i * 37) % trace.len() as u64;
                let id = crate::LineId::new((i % u64::from(table.len())) as u32);
                (pos, table.line(id))
            })
            .collect();
        script.sort_by_key(|&(pos, _)| pos);
        script
    }

    #[test]
    fn batched_replay_is_byte_identical_to_fresh_frontend() {
        // An online set-local policy runs the single-pass frontend when no
        // capture exists, and the set-batched replay once one does. Both
        // must produce identical stats and identical eviction streams.
        let (p, l, t) = small_setup();
        for pf in [PrefetcherKind::NextLine, PrefetcherKind::Fdip] {
            let mut cfg = small_cfg().with_prefetcher(pf);
            cfg.scripted_invalidations = Some(Arc::new(small_script(&l, &t)));
            for kind in [PolicyKind::LRU, PolicyKind::TREE_PLRU, PolicyKind::SRRIP] {
                let mut frontend_sink = VecSink::new();
                let frontend = SimSession::new(&p, &l, &t, cfg.clone())
                    .run_with_sink(kind, &mut frontend_sink);
                let session = SimSession::new(&p, &l, &t, cfg.clone());
                session.ensure_recorded();
                let mut batched_sink = VecSink::new();
                let batched = session.run_with_sink(kind, &mut batched_sink);
                assert_eq!(frontend, batched, "{} under {}", kind.name(), pf.name());
                assert_eq!(
                    frontend_sink.into_events(),
                    batched_sink.into_events(),
                    "{} under {}: eviction streams diverge",
                    kind.name(),
                    pf.name()
                );
            }
        }
    }

    #[test]
    fn sharded_replay_is_byte_identical_across_shard_counts() {
        let (p, l, t) = small_setup();
        let script = small_script(&l, &t);
        // small_cfg's L1I has 8 sets; 7 shards exercises a ragged
        // round-robin partition.
        for kind in [
            PolicyKind::LRU,
            PolicyKind::SRRIP,
            PolicyKind::OPT,
            PolicyKind::DEMAND_MIN,
        ] {
            let run = |shards: usize| {
                let mut cfg = small_cfg().with_prefetcher(PrefetcherKind::Fdip);
                cfg.replay_shards = shards;
                cfg.scripted_invalidations = Some(Arc::new(script.clone()));
                let session = SimSession::new(&p, &l, &t, cfg);
                session.ensure_recorded();
                let mut sink = VecSink::new();
                let stats = session.run_with_sink(kind, &mut sink);
                (stats, sink.into_events())
            };
            let single = run(1);
            for shards in [2, 4, 7] {
                assert_eq!(
                    run(shards),
                    single,
                    "{} diverges at {} shards",
                    kind.name(),
                    shards
                );
            }
        }
    }

    #[test]
    fn non_set_local_policies_fall_back_to_sequential_replay() {
        // DRRIP's global PSEL duel rules set-major order out; with a
        // capture in hand (and even with shards configured) it must still
        // match the fresh frontend pass — via the sequential replay.
        let (p, l, t) = small_setup();
        let mut cfg = small_cfg().with_prefetcher(PrefetcherKind::NextLine);
        cfg.replay_shards = 4;
        for kind in [PolicyKind::DRRIP, PolicyKind::RANDOM] {
            let frontend = SimSession::new(
                &p,
                &l,
                &t,
                SimConfig {
                    replay_shards: 1,
                    ..cfg.clone()
                },
            )
            .run(kind);
            let session = SimSession::new(&p, &l, &t, cfg.clone());
            session.ensure_recorded();
            assert_eq!(session.run(kind), frontend, "{}", kind.name());
        }
    }

    #[test]
    fn l3_seed_cloned_once_per_shard() {
        let (p, l, t) = small_setup();
        let metrics = Arc::new(ripple_obs::MetricsRecorder::new());
        let mut cfg = small_cfg();
        cfg.replay_shards = 3;
        let session = SimSession::new(&p, &l, &t, cfg).with_recorder(metrics.clone());
        session.run(PolicyKind::OPT);
        assert_eq!(
            metrics.snapshot().counter("session.l3_seed_clones"),
            Some(3),
            "batched replay must clone the L3 seed once per shard"
        );
        session.run(PolicyKind::DEMAND_MIN);
        assert_eq!(
            metrics.snapshot().counter("session.l3_seed_clones"),
            Some(6)
        );
        // The sequential replay fallback (non-set-local policy) clones
        // exactly once per run.
        session.run(PolicyKind::DRRIP);
        assert_eq!(
            metrics.snapshot().counter("session.l3_seed_clones"),
            Some(7)
        );
    }

    #[test]
    fn shard_downgrade_is_reported_for_non_set_local_policy() {
        // DRRIP cannot shard (global PSEL duel); requesting shards must
        // surface the downgrade as a gauge instead of silently running the
        // sequential path.
        let (p, l, t) = small_setup();
        let metrics = Arc::new(ripple_obs::MetricsRecorder::new());
        let mut cfg = small_cfg();
        cfg.replay_shards = 4;
        let session = SimSession::new(&p, &l, &t, cfg).with_recorder(metrics.clone());
        session.run(PolicyKind::DRRIP);
        assert_eq!(
            metrics.snapshot().gauge("session.replay_shards_downgraded"),
            Some(4.0),
            "a non-set-local policy must report the shard downgrade"
        );
    }

    #[test]
    fn shard_downgrade_is_reported_when_set_divisibility_fails() {
        // A set-local policy with an L2 whose set count is not a multiple
        // of the L1I's (12 % 8 != 0) rules set-batched replay out; the
        // downgrade must be reported even though the policy could shard.
        let (p, l, t) = small_setup();
        let metrics = Arc::new(ripple_obs::MetricsRecorder::new());
        let mut cfg = small_cfg();
        cfg.replay_shards = 4;
        cfg.l2 = crate::config::CacheGeometry::new(12 * 64, 1);
        assert!(!cfg.l2.num_sets().is_multiple_of(cfg.l1i.num_sets()));
        let session = SimSession::new(&p, &l, &t, cfg).with_recorder(metrics.clone());
        session.run(PolicyKind::LRU);
        assert_eq!(
            metrics.snapshot().gauge("session.replay_shards_downgraded"),
            Some(4.0),
            "an ineligible geometry must report the shard downgrade"
        );
    }

    #[test]
    fn no_downgrade_gauge_when_sharding_applies() {
        let (p, l, t) = small_setup();
        let metrics = Arc::new(ripple_obs::MetricsRecorder::new());
        let mut cfg = small_cfg();
        cfg.replay_shards = 2;
        let session = SimSession::new(&p, &l, &t, cfg).with_recorder(metrics.clone());
        session.run(PolicyKind::LRU);
        session.run(PolicyKind::OPT);
        assert_eq!(
            metrics.snapshot().gauge("session.replay_shards_downgraded"),
            None,
            "an honoured shard request must not report a downgrade"
        );
    }

    #[test]
    fn try_run_succeeds_within_stream_capacity() {
        let (p, l, t) = small_setup();
        let session = SimSession::new(&p, &l, &t, small_cfg());
        assert!(session.try_ensure_recorded().is_ok());
        let stats = session.try_run(PolicyKind::OPT).unwrap();
        assert_eq!(stats, session.run(PolicyKind::OPT));
        let mut sink = VecSink::new();
        assert!(session
            .try_run_with_sink(PolicyKind::LRU, &mut sink)
            .is_ok());
    }

    #[test]
    fn concurrent_session_replays_are_deterministic() {
        let (p, l, t) = small_setup();
        let session = SimSession::new(&p, &l, &t, small_cfg());
        let sequential: Vec<SimStats> = [PolicyKind::OPT, PolicyKind::DEMAND_MIN, PolicyKind::LRU]
            .into_iter()
            .map(|k| session.run(k))
            .collect();
        let fresh = SimSession::new(&p, &l, &t, small_cfg());
        let fresh = &fresh;
        let parallel: Vec<SimStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = [PolicyKind::OPT, PolicyKind::DEMAND_MIN, PolicyKind::LRU]
                .into_iter()
                .map(|k| scope.spawn(move || fresh.run(k)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(sequential, parallel);
        assert_eq!(fresh.recording_passes(), 1);
    }
}
