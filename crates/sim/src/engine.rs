//! The trace-driven simulation engine.
//!
//! Online policies run in a single pass. Offline-ideal policies (OPT,
//! Demand-MIN) run in two: a recording pass captures the L1I request
//! stream — which is replacement-policy-independent, because prefetcher
//! and branch-predictor state never observe cache contents — a
//! [`FutureIndex`] is built from it, and the replay pass re-runs the
//! frontend with the oracle policy.

use ripple_program::{Layout, Program};
use ripple_trace::BbTrace;

use crate::config::{PolicyKind, SimConfig};
use crate::frontend::Frontend;
use crate::policy::{build_ideal_policy, build_policy, FutureIndex, LruPolicy};
use crate::stats::{EvictionEvent, SimStats};

/// Result of one simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Aggregate counters and timing.
    pub stats: SimStats,
    /// L1I eviction log (present when `config.record_evictions`).
    pub evictions: Option<Vec<EvictionEvent>>,
}

/// Simulates `trace` of `program` under `config`.
///
/// # Examples
///
/// ```
/// use ripple_program::{Layout, LayoutConfig};
/// use ripple_sim::{simulate, PolicyKind, SimConfig};
/// use ripple_workloads::{execute, generate, AppSpec, InputConfig};
///
/// let app = generate(&AppSpec::tiny(1));
/// let layout = Layout::new(&app.program, &LayoutConfig::default());
/// let trace = execute(&app.program, &app.model, InputConfig::training(1), 20_000);
///
/// let lru = simulate(&app.program, &layout, &trace, &SimConfig::default());
/// let opt = simulate(
///     &app.program,
///     &layout,
///     &trace,
///     &SimConfig::default().with_policy(PolicyKind::Opt),
/// );
/// assert!(opt.stats.demand_misses <= lru.stats.demand_misses);
/// ```
pub fn simulate(
    program: &Program,
    layout: &Layout,
    trace: &BbTrace,
    config: &SimConfig,
) -> SimResult {
    if config.policy.is_offline_ideal() {
        return simulate_ideal(program, layout, trace, config);
    }
    let policy = build_policy(config);
    let fe = Frontend::new(program, layout, config, policy, false, None);
    let (stats, evictions, _) = fe.run(trace.iter());
    SimResult { stats, evictions }
}

fn simulate_ideal(
    program: &Program,
    layout: &Layout,
    trace: &BbTrace,
    config: &SimConfig,
) -> SimResult {
    // Pass 1: record the request stream under a throwaway LRU.
    let recorder = Frontend::new(
        program,
        layout,
        config,
        Box::new(LruPolicy::new(config.l1i)),
        true,
        None,
    );
    let (_, _, stream) = recorder.run(trace.iter());
    let stream = stream.expect("recording pass returns a stream");
    let future = FutureIndex::build(&stream);

    // Pass 2: replay with the oracle.
    let policy = build_ideal_policy(config.policy, config.l1i, future);
    let fe = Frontend::new(program, layout, config, policy, false, Some(&stream));
    let (stats, evictions, _) = fe.run(trace.iter());
    SimResult { stats, evictions }
}

/// Statistics for the paper's *ideal I-cache* (no misses at all): every
/// fetch hits, so cycles are purely `instructions × base_cpi`. This is
/// the Fig. 1 upper bound.
pub fn simulate_ideal_cache(program: &Program, trace: &BbTrace, config: &SimConfig) -> SimStats {
    let warmup = (trace.len() as f64 * config.warmup_fraction.clamp(0.0, 0.9)) as usize;
    let mut stats = SimStats {
        blocks: (trace.len() - warmup) as u64,
        ..SimStats::default()
    };
    for block in trace.iter().skip(warmup) {
        let bb = program.block(block);
        stats.instructions += bb.original_instructions().len() as u64;
        stats.invalidate_instructions += u64::from(bb.injected_prefix_len());
    }
    let total = stats.instructions + stats.invalidate_instructions;
    stats.cycles = total as f64 * config.base_cpi;
    stats
}

/// Convenience: run the baseline configuration (LRU, chosen prefetcher)
/// and an ideal-replacement configuration, returning `(baseline, ideal)`.
///
/// The ideal oracle is prefetch-aware ([`PolicyKind::DemandMin`]) whenever
/// a prefetcher is active, matching §II-C, and plain OPT otherwise.
pub fn baseline_and_ideal(
    program: &Program,
    layout: &Layout,
    trace: &BbTrace,
    config: &SimConfig,
) -> (SimResult, SimResult) {
    let base_cfg = config.clone().with_policy(PolicyKind::Lru);
    let ideal_kind = if config.prefetcher == crate::config::PrefetcherKind::None {
        PolicyKind::Opt
    } else {
        PolicyKind::DemandMin
    };
    let ideal_cfg = config.clone().with_policy(ideal_kind);
    (
        simulate(program, layout, trace, &base_cfg),
        simulate(program, layout, trace, &ideal_cfg),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetcherKind;
    use ripple_program::LayoutConfig;
    use ripple_workloads::{execute, generate, AppSpec, InputConfig};

    fn small_setup() -> (ripple_program::Program, Layout, BbTrace) {
        let app = generate(&AppSpec::tiny(5));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(&app.program, &app.model, InputConfig::training(5), 40_000);
        (app.program, layout, trace)
    }

    /// The tiny app fits in a 32 KB L1I; shrink it so misses happen after
    /// warmup.
    fn small_cfg() -> SimConfig {
        let mut cfg = SimConfig::default();
        cfg.l1i = crate::config::CacheGeometry::new(1024, 2);
        cfg
    }

    #[test]
    fn lru_simulation_produces_sane_stats() {
        let (p, l, t) = small_setup();
        let r = simulate(&p, &l, &t, &SimConfig::default());
        // Statistics only accumulate after the warmup fraction.
        let warmup = (t.len() as f64 * SimConfig::default().warmup_fraction) as u64;
        assert_eq!(r.stats.blocks, t.len() as u64 - warmup);
        assert!(r.stats.instructions >= 40_000 / 2);
        assert!(r.stats.demand_accesses > 0);
        assert!(r.stats.demand_misses <= r.stats.demand_accesses);
        assert!(r.stats.cycles > 0.0);
        assert!(r.stats.ipc() > 0.0);
    }

    #[test]
    fn opt_never_loses_to_lru() {
        let (p, l, t) = small_setup();
        let lru = simulate(&p, &l, &t, &small_cfg());
        let opt = simulate(&p, &l, &t, &small_cfg().with_policy(PolicyKind::Opt));
        assert!(opt.stats.demand_misses <= lru.stats.demand_misses);
        assert!(lru.stats.demand_misses > 0, "workload must miss");
    }

    #[test]
    fn prefetching_reduces_misses() {
        let (p, l, t) = small_setup();
        let none = simulate(&p, &l, &t, &small_cfg());
        let nlp = simulate(
            &p,
            &l,
            &t,
            &small_cfg().with_prefetcher(PrefetcherKind::NextLine),
        );
        let fdip = simulate(
            &p,
            &l,
            &t,
            &small_cfg().with_prefetcher(PrefetcherKind::Fdip),
        );
        assert!(nlp.stats.demand_misses < none.stats.demand_misses);
        assert!(fdip.stats.demand_misses < none.stats.demand_misses);
        assert!(nlp.stats.prefetches_issued > 0);
        assert!(fdip.stats.prefetches_issued > 0);
    }

    #[test]
    fn demand_min_never_loses_to_lru_under_prefetching(){
        let (p, l, t) = small_setup();
        for pf in [PrefetcherKind::NextLine, PrefetcherKind::Fdip] {
            let cfg = small_cfg().with_prefetcher(pf);
            let lru = simulate(&p, &l, &t, &cfg);
            let dm = simulate(&p, &l, &t, &cfg.clone().with_policy(PolicyKind::DemandMin));
            assert!(
                dm.stats.demand_misses <= lru.stats.demand_misses,
                "{}: {} > {}",
                pf.name(),
                dm.stats.demand_misses,
                lru.stats.demand_misses
            );
        }
    }

    #[test]
    fn ideal_cache_bounds_everything() {
        let (p, l, t) = small_setup();
        let cfg = small_cfg();
        let ideal = simulate_ideal_cache(&p, &t, &cfg);
        let lru = simulate(&p, &l, &t, &cfg);
        assert!(ideal.cycles < lru.stats.cycles);
        assert_eq!(ideal.demand_misses, 0);
        assert_eq!(ideal.instructions, lru.stats.instructions);
    }

    #[test]
    fn eviction_log_is_recorded_when_asked() {
        let (p, l, t) = small_setup();
        let mut cfg = SimConfig::default();
        // The tiny app fits in a 32 KB L1I; shrink it so evictions happen.
        cfg.l1i = crate::config::CacheGeometry::new(1024, 2);
        cfg.record_evictions = true;
        let r = simulate(&p, &l, &t, &cfg);
        let log = r.evictions.expect("eviction log");
        // The log records warmup evictions too (the analysis wants them);
        // the counter only accumulates post-warmup.
        assert!(log.len() as u64 >= r.stats.evictions);
        assert!(!log.is_empty());
        for w in log.windows(2) {
            assert!(w[0].evict_pos <= w[1].evict_pos, "log must be ordered");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (p, l, t) = small_setup();
        let cfg = small_cfg().with_prefetcher(PrefetcherKind::Fdip);
        let a = simulate(&p, &l, &t, &cfg);
        let b = simulate(&p, &l, &t, &cfg);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn baseline_and_ideal_picks_demand_min_under_prefetching() {
        let (p, l, t) = small_setup();
        let cfg = small_cfg().with_prefetcher(PrefetcherKind::Fdip);
        let (base, ideal) = baseline_and_ideal(&p, &l, &t, &cfg);
        assert!(ideal.stats.demand_misses <= base.stats.demand_misses);
    }
}
