//! Simulation configuration (the paper's Table II plus model knobs).

use ripple_program::CACHE_LINE_BYTES;

/// Geometry of one set-associative cache with 64-byte lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u16,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact multiple of
    /// `assoc * CACHE_LINE_BYTES`.
    pub fn new(size_bytes: u64, assoc: u16) -> Self {
        let g = CacheGeometry { size_bytes, assoc };
        assert!(
            g.num_sets() >= 1
                && g.size_bytes
                    .is_multiple_of(u64::from(assoc) * CACHE_LINE_BYTES)
        );
        g
    }

    /// Number of sets.
    #[inline]
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / CACHE_LINE_BYTES / u64::from(self.assoc)
    }

    /// Total number of lines.
    #[inline]
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / CACHE_LINE_BYTES
    }

    /// The set index a line maps to.
    #[inline]
    pub fn set_of(&self, line: ripple_program::LineAddr) -> u32 {
        (line.index() % self.num_sets()) as u32
    }
}

/// Which hardware instruction prefetcher runs alongside the L1I (§II-C).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// No prefetching (the paper's baseline configuration).
    #[default]
    None,
    /// Next-line prefetcher (NLP): on a demand access to line `X`,
    /// prefetch `X + 1`.
    NextLine,
    /// Fetch-directed instruction prefetching: a decoupled, branch-
    /// predictor-guided runahead frontend with a fetch target queue.
    Fdip,
}

impl PrefetcherKind {
    /// Display name as used in figure captions.
    pub fn name(self) -> &'static str {
        match self {
            PrefetcherKind::None => "no-prefetch",
            PrefetcherKind::NextLine => "nlp",
            PrefetcherKind::Fdip => "fdip",
        }
    }
}

/// Which replacement policy manages the L1I (§II-D).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least-recently-used (true LRU ordering).
    #[default]
    Lru,
    /// Tree pseudo-LRU (the 1-bit-per-line hardware approximation of
    /// Table I's LRU row).
    TreePlru,
    /// Uniform random victim (zero metadata).
    Random,
    /// Static re-reference interval prediction.
    Srrip,
    /// Dynamic RRIP with set dueling.
    Drrip,
    /// Global-history reuse predictor (the only prior I-cache-specific
    /// policy), with the confidence fix described in §II-D.
    Ghrp,
    /// Hawkeye: PC classification against simulated Belady-OPT.
    Hawkeye,
    /// Harmony: prefetch-aware Hawkeye (Demand-MIN-based training).
    Harmony,
    /// Offline Belady-OPT (ideal, demand-only): upper bound without
    /// prefetch awareness.
    Opt,
    /// Offline revised Demand-MIN (ideal, prefetch-aware): the paper's
    /// "ideal replacement policy".
    DemandMin,
}

impl PolicyKind {
    /// Display name as used in figure captions.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::TreePlru => "tree-plru",
            PolicyKind::Random => "random",
            PolicyKind::Srrip => "srrip",
            PolicyKind::Drrip => "drrip",
            PolicyKind::Ghrp => "ghrp",
            PolicyKind::Hawkeye => "hawkeye",
            PolicyKind::Harmony => "harmony",
            PolicyKind::Opt => "opt",
            PolicyKind::DemandMin => "demand-min",
        }
    }

    /// Whether the policy requires offline future knowledge (two-pass
    /// simulation).
    pub fn is_offline_ideal(self) -> bool {
        matches!(self, PolicyKind::Opt | PolicyKind::DemandMin)
    }
}

/// How an executed `invalidate` instruction acts on the L1I (§IV,
/// "Invalidation vs. reducing LRU priority").
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictionMechanism {
    /// Invalidate the line outright (works with any underlying policy).
    #[default]
    Invalidate,
    /// Demote the line to the bottom of the replacement order, letting the
    /// next fill evict it (LRU-specific optimization).
    Demote,
    /// Execute injected instructions as no-ops: isolates the code-bloat
    /// cost of injection from the replacement benefit (ablation).
    NoOp,
}

/// Which frontend implementation drives the simulation.
///
/// Both paths produce byte-identical results (the equivalence suite
/// asserts it); [`LinePath::Reference`] exists as the oracle for that
/// suite and as the pre-interning performance baseline.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinePath {
    /// Dense interned path: per-layout `LineId`s, a precomputed fetch
    /// plan, and `Vec`-indexed frontend/policy state.
    #[default]
    Interned,
    /// Pre-interning reference: per-step block→line enumeration and
    /// hash-keyed bookkeeping, kept verbatim for equivalence checking.
    Reference,
}

/// Full simulator configuration.
///
/// Defaults reproduce the paper's Table II: Haswell-class latencies, a
/// 32 KiB / 8-way L1I, 1 MB / 16-way L2 and 10 MiB / 20-way L3.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheGeometry,
    /// Unified L2 geometry.
    pub l2: CacheGeometry,
    /// Shared L3 geometry.
    pub l3: CacheGeometry,
    /// L1I hit latency in cycles.
    pub l1i_latency: u32,
    /// L2 hit latency in cycles.
    pub l2_latency: u32,
    /// L3 hit latency in cycles.
    pub l3_latency: u32,
    /// Memory latency in cycles.
    pub mem_latency: u32,
    /// Base cycles per instruction with a perfect frontend (models the
    /// backend of the out-of-order core).
    pub base_cpi: f64,
    /// Fraction of a demand-miss latency exposed as pipeline stall (the
    /// out-of-order window hides the rest).
    pub stall_exposure: f64,
    /// Instruction prefetcher.
    pub prefetcher: PrefetcherKind,
    /// L1I replacement policy.
    pub policy: PolicyKind,
    /// Seed for the random replacement policy.
    pub random_seed: u64,
    /// Fetch target queue depth (blocks of runahead) for FDIP.
    pub ftq_depth: usize,
    /// Prefetch timeliness window, in executed blocks: a demand access to
    /// a line whose prefetch was issued fewer than this many blocks
    /// earlier pays the still-outstanding fraction of the L2 latency (a
    /// prefetch issued one block ahead hides almost nothing).
    pub prefetch_timeliness_blocks: u32,
    /// How executed `invalidate` instructions act on the cache.
    pub eviction_mechanism: EvictionMechanism,
    /// Fraction of the trace treated as cache warmup: the simulation runs
    /// normally but statistics only accumulate afterwards. The paper
    /// traces 100 M steady-state instructions where compulsory misses are
    /// negligible (§II-D measures 0.16 compulsory MPKI); warmup removes
    /// the first-touch bias of our shorter traces.
    pub warmup_fraction: f64,
    /// Scripted invalidations: `(trace_pos, line)` pairs, sorted by
    /// position, applied *before* the block at that position executes.
    /// This models a perfect software-eviction oracle with zero code
    /// bloat — the upper bound of Ripple's mechanism — and is used by the
    /// ablation benches and tests.
    pub scripted_invalidations: Option<std::sync::Arc<Vec<(u64, ripple_program::LineAddr)>>>,
    /// Which frontend implementation to run (identical results either
    /// way; `Reference` is the equivalence oracle).
    pub line_path: LinePath,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            l1i: CacheGeometry::new(32 * 1024, 8),
            l2: CacheGeometry::new(1024 * 1024, 16),
            l3: CacheGeometry::new(10 * 1024 * 1024, 20),
            l1i_latency: 3,
            l2_latency: 12,
            l3_latency: 36,
            mem_latency: 260,
            base_cpi: 0.5,
            stall_exposure: 0.6,
            prefetcher: PrefetcherKind::None,
            policy: PolicyKind::Lru,
            random_seed: 0x9e37_79b9,
            ftq_depth: 12,
            prefetch_timeliness_blocks: 2,
            eviction_mechanism: EvictionMechanism::Invalidate,
            warmup_fraction: 0.25,
            scripted_invalidations: None,
            line_path: LinePath::default(),
        }
    }
}

impl SimConfig {
    /// Convenience: this configuration with a different policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Convenience: this configuration with a different prefetcher.
    pub fn with_prefetcher(mut self, prefetcher: PrefetcherKind) -> Self {
        self.prefetcher = prefetcher;
        self
    }

    /// Convenience: this configuration with a different frontend path.
    pub fn with_line_path(mut self, line_path: LinePath) -> Self {
        self.line_path = line_path;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_program::LineAddr;

    #[test]
    fn table_ii_geometries() {
        let c = SimConfig::default();
        assert_eq!(c.l1i.num_sets(), 64);
        assert_eq!(c.l1i.num_lines(), 512);
        assert_eq!(c.l2.num_sets(), 1024);
        assert_eq!(c.l3.num_sets(), 8192);
    }

    #[test]
    fn set_mapping_wraps() {
        let g = CacheGeometry::new(32 * 1024, 8);
        assert_eq!(g.set_of(LineAddr::new(0)), 0);
        assert_eq!(g.set_of(LineAddr::new(63)), 63);
        assert_eq!(g.set_of(LineAddr::new(64)), 0);
    }

    #[test]
    #[should_panic]
    fn bad_geometry_rejected() {
        let _ = CacheGeometry::new(1000, 8);
    }

    #[test]
    fn names() {
        assert_eq!(PolicyKind::DemandMin.name(), "demand-min");
        assert_eq!(PrefetcherKind::Fdip.name(), "fdip");
        assert!(PolicyKind::Opt.is_offline_ideal());
        assert!(!PolicyKind::Lru.is_offline_ideal());
    }
}
