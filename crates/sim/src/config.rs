//! Simulation configuration (the paper's Table II plus model knobs).

use ripple_program::CACHE_LINE_BYTES;

/// Why a [`SimConfig`] (or one of its [`CacheGeometry`] fields) was
/// rejected by validation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimConfigError {
    /// A floating-point knob was NaN or infinite.
    NotFinite {
        /// The offending field.
        field: &'static str,
    },
    /// A knob fell outside its documented range.
    OutOfRange {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// A cache geometry is degenerate: zero capacity/associativity, or a
    /// capacity that is not an exact multiple of `assoc * 64` bytes.
    BadGeometry {
        /// Which cache level ("l1i", "l2", "l3", or "cache" for a
        /// free-standing geometry).
        cache: &'static str,
        /// The rejected capacity.
        size_bytes: u64,
        /// The rejected associativity.
        assoc: u16,
    },
    /// Scripted invalidations must be sorted by trace position.
    UnsortedInvalidations {
        /// Index of the first out-of-order entry.
        index: usize,
    },
}

impl std::fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimConfigError::NotFinite { field } => {
                write!(f, "config field `{field}` must be finite")
            }
            SimConfigError::OutOfRange {
                field,
                value,
                min,
                max,
            } => write!(f, "config field `{field}` = {value} outside [{min}, {max}]"),
            SimConfigError::BadGeometry {
                cache,
                size_bytes,
                assoc,
            } => write!(
                f,
                "{cache} geometry {size_bytes} B / {assoc}-way is not a \
                 whole number of sets of 64-byte lines"
            ),
            SimConfigError::UnsortedInvalidations { index } => write!(
                f,
                "scripted invalidations must be sorted by position \
                 (entry {index} is out of order)"
            ),
        }
    }
}

impl std::error::Error for SimConfigError {}

/// Geometry of one set-associative cache with 64-byte lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u16,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact multiple of
    /// `assoc * CACHE_LINE_BYTES`. Use [`CacheGeometry::checked`] to get a
    /// typed error instead.
    pub fn new(size_bytes: u64, assoc: u16) -> Self {
        match Self::checked(size_bytes, assoc) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a geometry, rejecting degenerate shapes with a typed error
    /// instead of panicking.
    pub fn checked(size_bytes: u64, assoc: u16) -> Result<Self, SimConfigError> {
        let g = CacheGeometry { size_bytes, assoc };
        if assoc == 0
            || size_bytes == 0
            || g.num_sets() < 1
            || !size_bytes.is_multiple_of(u64::from(assoc) * CACHE_LINE_BYTES)
        {
            return Err(SimConfigError::BadGeometry {
                cache: "cache",
                size_bytes,
                assoc,
            });
        }
        Ok(g)
    }

    /// Number of sets.
    #[inline]
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / CACHE_LINE_BYTES / u64::from(self.assoc)
    }

    /// Total number of lines.
    #[inline]
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / CACHE_LINE_BYTES
    }

    /// The set index a line maps to.
    #[inline]
    pub fn set_of(&self, line: ripple_program::LineAddr) -> u32 {
        (line.index() % self.num_sets()) as u32
    }
}

/// Which hardware instruction prefetcher runs alongside the L1I (§II-C).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// No prefetching (the paper's baseline configuration).
    #[default]
    None,
    /// Next-line prefetcher (NLP): on a demand access to line `X`,
    /// prefetch `X + 1`.
    NextLine,
    /// Fetch-directed instruction prefetching: a decoupled, branch-
    /// predictor-guided runahead frontend with a fetch target queue.
    Fdip,
}

impl PrefetcherKind {
    /// Display name as used in figure captions.
    pub fn name(self) -> &'static str {
        match self {
            PrefetcherKind::None => "no-prefetch",
            PrefetcherKind::NextLine => "nlp",
            PrefetcherKind::Fdip => "fdip",
        }
    }
}

// Which replacement policy manages the L1I (§II-D) is now named by a
// `PolicyId` from the policy registry — the single source of truth for
// policy names, families and constructors.
pub use crate::policy::registry::PolicyKind;
use crate::policy::TemperatureMap;

/// How an executed `invalidate` instruction acts on the L1I (§IV,
/// "Invalidation vs. reducing LRU priority").
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictionMechanism {
    /// Invalidate the line outright (works with any underlying policy).
    #[default]
    Invalidate,
    /// Demote the line to the bottom of the replacement order, letting the
    /// next fill evict it (LRU-specific optimization).
    Demote,
    /// Execute injected instructions as no-ops: isolates the code-bloat
    /// cost of injection from the replacement benefit (ablation).
    NoOp,
}

/// Which frontend implementation drives the simulation.
///
/// Both paths produce byte-identical results (the equivalence suite
/// asserts it); [`LinePath::Reference`] exists as the oracle for that
/// suite and as the pre-interning performance baseline.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinePath {
    /// Dense interned path: per-layout `LineId`s, a precomputed fetch
    /// plan, and `Vec`-indexed frontend/policy state.
    #[default]
    Interned,
    /// Pre-interning reference: per-step block→line enumeration and
    /// hash-keyed bookkeeping, kept verbatim for equivalence checking.
    Reference,
}

/// Full simulator configuration.
///
/// Defaults reproduce the paper's Table II: Haswell-class latencies, a
/// 32 KiB / 8-way L1I, 1 MB / 16-way L2 and 10 MiB / 20-way L3.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheGeometry,
    /// Unified L2 geometry.
    pub l2: CacheGeometry,
    /// Shared L3 geometry.
    pub l3: CacheGeometry,
    /// L1I hit latency in cycles.
    pub l1i_latency: u32,
    /// L2 hit latency in cycles.
    pub l2_latency: u32,
    /// L3 hit latency in cycles.
    pub l3_latency: u32,
    /// Memory latency in cycles.
    pub mem_latency: u32,
    /// Base cycles per instruction with a perfect frontend (models the
    /// backend of the out-of-order core).
    pub base_cpi: f64,
    /// Fraction of a demand-miss latency exposed as pipeline stall (the
    /// out-of-order window hides the rest).
    pub stall_exposure: f64,
    /// Instruction prefetcher.
    pub prefetcher: PrefetcherKind,
    /// L1I replacement policy.
    pub policy: PolicyKind,
    /// Seed for the random replacement policy.
    pub random_seed: u64,
    /// Fetch target queue depth (blocks of runahead) for FDIP.
    pub ftq_depth: usize,
    /// Prefetch timeliness window, in executed blocks: a demand access to
    /// a line whose prefetch was issued fewer than this many blocks
    /// earlier pays the still-outstanding fraction of the L2 latency (a
    /// prefetch issued one block ahead hides almost nothing).
    pub prefetch_timeliness_blocks: u32,
    /// How executed `invalidate` instructions act on the cache.
    pub eviction_mechanism: EvictionMechanism,
    /// Fraction of the trace treated as cache warmup: the simulation runs
    /// normally but statistics only accumulate afterwards. The paper
    /// traces 100 M steady-state instructions where compulsory misses are
    /// negligible (§II-D measures 0.16 compulsory MPKI); warmup removes
    /// the first-touch bias of our shorter traces.
    pub warmup_fraction: f64,
    /// Scripted invalidations: `(trace_pos, line)` pairs, sorted by
    /// position, applied *before* the block at that position executes.
    /// This models a perfect software-eviction oracle with zero code
    /// bloat — the upper bound of Ripple's mechanism — and is used by the
    /// ablation benches and tests.
    pub scripted_invalidations: Option<std::sync::Arc<Vec<(u64, ripple_program::LineAddr)>>>,
    /// Which frontend implementation to run (identical results either
    /// way; `Reference` is the equivalence oracle).
    pub line_path: LinePath,
    /// Profile-derived code-temperature classes consumed by hint-guided
    /// policies (currently TRRIP). `None` means every line is warm and
    /// such policies degrade to their unhinted backbone.
    pub temperatures: Option<std::sync::Arc<TemperatureMap>>,
    /// How many threads replay the captured request stream, partitioning
    /// L1I sets across them (1 = single-threaded). Results are
    /// byte-identical for any value: sharding only applies where the
    /// policy is set-local and the geometry permits, and falls back to
    /// sequential replay otherwise. A perf knob, not a semantic one.
    pub replay_shards: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            l1i: CacheGeometry::new(32 * 1024, 8),
            l2: CacheGeometry::new(1024 * 1024, 16),
            l3: CacheGeometry::new(10 * 1024 * 1024, 20),
            l1i_latency: 3,
            l2_latency: 12,
            l3_latency: 36,
            mem_latency: 260,
            base_cpi: 0.5,
            stall_exposure: 0.6,
            prefetcher: PrefetcherKind::None,
            policy: PolicyKind::LRU,
            random_seed: 0x9e37_79b9,
            ftq_depth: 12,
            prefetch_timeliness_blocks: 2,
            eviction_mechanism: EvictionMechanism::Invalidate,
            warmup_fraction: 0.25,
            scripted_invalidations: None,
            line_path: LinePath::default(),
            temperatures: None,
            replay_shards: 1,
        }
    }
}

impl SimConfig {
    /// Convenience: this configuration with a different policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Convenience: this configuration with a different prefetcher.
    pub fn with_prefetcher(mut self, prefetcher: PrefetcherKind) -> Self {
        self.prefetcher = prefetcher;
        self
    }

    /// Convenience: this configuration with a different frontend path.
    pub fn with_line_path(mut self, line_path: LinePath) -> Self {
        self.line_path = line_path;
        self
    }

    /// Convenience: this configuration with a different replay shard
    /// count.
    pub fn with_replay_shards(mut self, replay_shards: usize) -> Self {
        self.replay_shards = replay_shards;
        self
    }

    /// Starts a validating builder seeded with this configuration.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig::default(),
        }
    }

    /// Checks every knob against its documented range, returning the
    /// first violation.
    ///
    /// Construction via struct literal stays open for tests and ablations;
    /// the public entry points ([`SimConfigBuilder::build`], the CLI)
    /// funnel through this.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        fn finite_in(
            field: &'static str,
            value: f64,
            min: f64,
            max: f64,
        ) -> Result<(), SimConfigError> {
            if !value.is_finite() {
                return Err(SimConfigError::NotFinite { field });
            }
            if value < min || value > max {
                return Err(SimConfigError::OutOfRange {
                    field,
                    value,
                    min,
                    max,
                });
            }
            Ok(())
        }
        for (cache, g) in [("l1i", self.l1i), ("l2", self.l2), ("l3", self.l3)] {
            CacheGeometry::checked(g.size_bytes, g.assoc).map_err(|_| {
                SimConfigError::BadGeometry {
                    cache,
                    size_bytes: g.size_bytes,
                    assoc: g.assoc,
                }
            })?;
        }
        finite_in("base_cpi", self.base_cpi, f64::MIN_POSITIVE, 1000.0)?;
        finite_in("stall_exposure", self.stall_exposure, 0.0, 1.0)?;
        finite_in("warmup_fraction", self.warmup_fraction, 0.0, 0.9)?;
        if self.replay_shards == 0 || self.replay_shards > 1024 {
            return Err(SimConfigError::OutOfRange {
                field: "replay_shards",
                value: self.replay_shards as f64,
                min: 1.0,
                max: 1024.0,
            });
        }
        if let Some(script) = &self.scripted_invalidations {
            for (i, w) in script.windows(2).enumerate() {
                if w[0].0 > w[1].0 {
                    return Err(SimConfigError::UnsortedInvalidations { index: i + 1 });
                }
            }
        }
        Ok(())
    }
}

/// Validating builder for [`SimConfig`].
///
/// Starts from [`SimConfig::default`] (the paper's Table II), lets callers
/// override individual knobs, and checks every range in
/// [`SimConfigBuilder::build`] — NaN thresholds, zero geometries and
/// inconsistent warmup fractions come back as [`SimConfigError`]s instead
/// of panics deep inside the engine.
///
/// # Examples
///
/// ```
/// use ripple_sim::{PolicyKind, SimConfig, SimConfigError};
///
/// let cfg = SimConfig::builder()
///     .policy(PolicyKind::SRRIP)
///     .warmup_fraction(0.1)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.policy, PolicyKind::SRRIP);
///
/// let err = SimConfig::builder().warmup_fraction(f64::NAN).build();
/// assert!(matches!(err, Err(SimConfigError::NotFinite { .. })));
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the L1I geometry.
    pub fn l1i(mut self, size_bytes: u64, assoc: u16) -> Self {
        self.config.l1i = CacheGeometry { size_bytes, assoc };
        self
    }

    /// Sets the L2 geometry.
    pub fn l2(mut self, size_bytes: u64, assoc: u16) -> Self {
        self.config.l2 = CacheGeometry { size_bytes, assoc };
        self
    }

    /// Sets the L3 geometry.
    pub fn l3(mut self, size_bytes: u64, assoc: u16) -> Self {
        self.config.l3 = CacheGeometry { size_bytes, assoc };
        self
    }

    /// Sets the base CPI of the modelled backend.
    pub fn base_cpi(mut self, base_cpi: f64) -> Self {
        self.config.base_cpi = base_cpi;
        self
    }

    /// Sets the exposed fraction of demand-miss latency.
    pub fn stall_exposure(mut self, stall_exposure: f64) -> Self {
        self.config.stall_exposure = stall_exposure;
        self
    }

    /// Sets the warmup fraction (statistics accumulate after it).
    pub fn warmup_fraction(mut self, warmup_fraction: f64) -> Self {
        self.config.warmup_fraction = warmup_fraction;
        self
    }

    /// Sets the instruction prefetcher.
    pub fn prefetcher(mut self, prefetcher: PrefetcherKind) -> Self {
        self.config.prefetcher = prefetcher;
        self
    }

    /// Sets the L1I replacement policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the eviction mechanism for executed `invalidate`s.
    pub fn eviction_mechanism(mut self, mechanism: EvictionMechanism) -> Self {
        self.config.eviction_mechanism = mechanism;
        self
    }

    /// Sets the scripted invalidation schedule (must be sorted by
    /// position; [`SimConfigBuilder::build`] checks).
    pub fn scripted_invalidations(mut self, script: Vec<(u64, ripple_program::LineAddr)>) -> Self {
        self.config.scripted_invalidations = Some(std::sync::Arc::new(script));
        self
    }

    /// Sets the frontend line path.
    pub fn line_path(mut self, line_path: LinePath) -> Self {
        self.config.line_path = line_path;
        self
    }

    /// Sets the profile-derived temperature map for hint-guided policies.
    pub fn temperatures(mut self, temperatures: TemperatureMap) -> Self {
        self.config.temperatures = Some(std::sync::Arc::new(temperatures));
        self
    }

    /// Sets the replay shard count (threads partitioning L1I sets during
    /// captured-stream replay; results stay byte-identical).
    pub fn replay_shards(mut self, replay_shards: usize) -> Self {
        self.config.replay_shards = replay_shards;
        self
    }

    /// Validates every knob and returns the configuration.
    pub fn build(self) -> Result<SimConfig, SimConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_program::LineAddr;

    #[test]
    fn table_ii_geometries() {
        let c = SimConfig::default();
        assert_eq!(c.l1i.num_sets(), 64);
        assert_eq!(c.l1i.num_lines(), 512);
        assert_eq!(c.l2.num_sets(), 1024);
        assert_eq!(c.l3.num_sets(), 8192);
    }

    #[test]
    fn set_mapping_wraps() {
        let g = CacheGeometry::new(32 * 1024, 8);
        assert_eq!(g.set_of(LineAddr::new(0)), 0);
        assert_eq!(g.set_of(LineAddr::new(63)), 63);
        assert_eq!(g.set_of(LineAddr::new(64)), 0);
    }

    #[test]
    #[should_panic]
    fn bad_geometry_rejected() {
        let _ = CacheGeometry::new(1000, 8);
    }

    #[test]
    fn checked_geometry_reports_typed_errors() {
        assert!(CacheGeometry::checked(32 * 1024, 8).is_ok());
        for (size, assoc) in [(1000, 8), (0, 8), (32 * 1024, 0), (64, 8)] {
            match CacheGeometry::checked(size, assoc) {
                Err(SimConfigError::BadGeometry {
                    size_bytes,
                    assoc: a,
                    ..
                }) => {
                    assert_eq!((size_bytes, a), (size, assoc));
                }
                other => panic!("({size}, {assoc}) -> {other:?}"),
            }
        }
    }

    #[test]
    fn builder_accepts_defaults_and_overrides() {
        let cfg = SimConfig::builder().build().unwrap();
        assert_eq!(cfg, SimConfig::default());
        let cfg = SimConfig::builder()
            .l1i(1024, 2)
            .policy(PolicyKind::GHRP)
            .prefetcher(PrefetcherKind::Fdip)
            .warmup_fraction(0.0)
            .build()
            .unwrap();
        assert_eq!(cfg.l1i.num_sets(), 8);
        assert_eq!(cfg.policy, PolicyKind::GHRP);
    }

    #[test]
    fn builder_rejects_bad_knobs() {
        use SimConfigError::*;
        assert!(matches!(
            SimConfig::builder().base_cpi(f64::NAN).build(),
            Err(NotFinite { field: "base_cpi" })
        ));
        assert!(matches!(
            SimConfig::builder().base_cpi(0.0).build(),
            Err(OutOfRange {
                field: "base_cpi",
                ..
            })
        ));
        assert!(matches!(
            SimConfig::builder().stall_exposure(1.5).build(),
            Err(OutOfRange {
                field: "stall_exposure",
                ..
            })
        ));
        assert!(matches!(
            SimConfig::builder().warmup_fraction(0.95).build(),
            Err(OutOfRange {
                field: "warmup_fraction",
                ..
            })
        ));
        assert!(matches!(
            SimConfig::builder().l1i(1000, 8).build(),
            Err(BadGeometry { cache: "l1i", .. })
        ));
        assert!(matches!(
            SimConfig::builder().l3(0, 20).build(),
            Err(BadGeometry { cache: "l3", .. })
        ));
    }

    #[test]
    fn replay_shards_validated() {
        assert_eq!(SimConfig::default().replay_shards, 1);
        let cfg = SimConfig::builder().replay_shards(4).build().unwrap();
        assert_eq!(cfg.replay_shards, 4);
        assert!(matches!(
            SimConfig::builder().replay_shards(0).build(),
            Err(SimConfigError::OutOfRange {
                field: "replay_shards",
                ..
            })
        ));
        assert!(matches!(
            SimConfig::builder().replay_shards(4096).build(),
            Err(SimConfigError::OutOfRange {
                field: "replay_shards",
                ..
            })
        ));
    }

    #[test]
    fn builder_rejects_unsorted_invalidations() {
        let script = vec![(10, LineAddr::new(1)), (5, LineAddr::new(2))];
        assert!(matches!(
            SimConfig::builder().scripted_invalidations(script).build(),
            Err(SimConfigError::UnsortedInvalidations { index: 1 })
        ));
        let sorted = vec![(5, LineAddr::new(2)), (10, LineAddr::new(1))];
        assert!(SimConfig::builder()
            .scripted_invalidations(sorted)
            .build()
            .is_ok());
    }

    #[test]
    fn config_error_display_is_informative() {
        let e = SimConfigError::OutOfRange {
            field: "warmup_fraction",
            value: 2.0,
            min: 0.0,
            max: 0.9,
        };
        let s = e.to_string();
        assert!(s.contains("warmup_fraction") && s.contains("0.9"), "{s}");
    }

    #[test]
    fn names() {
        assert_eq!(PolicyKind::DEMAND_MIN.name(), "demand-min");
        assert_eq!(PrefetcherKind::Fdip.name(), "fdip");
        assert!(PolicyKind::OPT.is_offline_ideal());
        assert!(!PolicyKind::LRU.is_offline_ideal());
    }
}
