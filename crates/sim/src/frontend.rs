//! The instruction-supply frontend: demand fetch, prefetching, the
//! `invalidate` instruction, and the stall-based timing model.
//!
//! This is the dense fast path: every line is a [`LineId`] from the
//! session's [`LineTable`], block footprints come from a precomputed
//! [`FetchPlan`], and all per-line bookkeeping is flat `Vec` indexing.
//! The retained pre-interning implementation lives in
//! [`reference`](crate::reference) and must produce byte-identical
//! results (the equivalence suite enforces it).

use std::collections::VecDeque;
use std::time::Instant;

use ripple_obs::Recorder;
use ripple_program::{Addr, BlockId, InstKind, Layout, LineAddr, Program};

use crate::bpred::{BranchPredictor, Prediction};
use crate::cache::Cache;
use crate::config::{EvictionMechanism, PrefetcherKind, SimConfig};
use crate::intern::{FetchPlan, LineId, LineTable};
use crate::policy::{LruPolicy, ReplacementPolicy, StreamRecord};
use crate::sink::EvictionSink;
use crate::stats::{EvictionEvent, SimStats};

/// Dedup window for issued prefetches (a real FDIP filters against the
/// in-flight queue; this models that cheaply and, crucially, in a way that
/// does not depend on cache contents so the request stream stays
/// replacement-policy-independent).
pub(crate) const PREFETCH_FILTER: usize = 32;

/// Position sentinel meaning "never" (no demand access / no outstanding
/// prefetch issue for this line yet).
pub(crate) const NO_POS: u64 = u64::MAX;

/// One frontend simulation over a block trace.
pub(crate) struct Frontend<'a> {
    program: &'a Program,
    layout: &'a Layout,
    config: &'a SimConfig,
    table: &'a LineTable,
    plan: &'a FetchPlan,
    l1i: Cache<dyn ReplacementPolicy>,
    // L2 and L3 are always LRU, so they stay concrete: no virtual dispatch
    // on the miss path.
    l2: Cache<LruPolicy>,
    l3: Cache<LruPolicy>,
    bpred: BranchPredictor,
    ftq: VecDeque<BlockId>,
    frontier: Option<BlockId>,
    /// FIFO order of the prefetch dedup window...
    filter_fifo: VecDeque<LineId>,
    /// ...and its membership, indexed by line id.
    in_filter: Vec<bool>,
    stats: SimStats,
    stall_cycles: f64,
    seq: u64,
    /// When recording: the captured request stream.
    record: Option<Vec<StreamRecord>>,
    /// When verifying a replay: the previously captured stream.
    verify: Option<&'a [StreamRecord]>,
    /// Observer receiving every eviction as it happens.
    sink: &'a mut dyn EvictionSink,
    /// Observability recorder; disabled recorders cost one boolean check
    /// per run.
    recorder: &'a dyn Recorder,
    /// Trace position of each line's last demand access (`NO_POS` = never).
    last_demand_pos: Vec<u64>,
    /// Trace position of each line's oldest unconsumed prefetch *issue*
    /// (`NO_POS` = none outstanding). Timeliness charges key on the issue
    /// stream, which is replacement-policy-independent, so policy orderings
    /// are preserved: a demand hit may pay at most the partial L2 latency,
    /// which never exceeds the full charge the same access would pay as a
    /// miss.
    prefetch_issue_pos: Vec<u64>,
    /// Whether each line has ever been fetched (compulsory-miss tracking).
    seen_lines: Vec<bool>,
    prev_block: Option<BlockId>,
    trace_pos: u64,
    /// The scripted-invalidation schedule, borrowed once for the whole run.
    script: Option<&'a [(u64, LineAddr)]>,
    script_cursor: usize,
    warmup_until: u64,
}

impl<'a> Frontend<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        program: &'a Program,
        layout: &'a Layout,
        config: &'a SimConfig,
        table: &'a LineTable,
        plan: &'a FetchPlan,
        l1i_policy: Box<dyn ReplacementPolicy>,
        record: bool,
        verify: Option<&'a [StreamRecord]>,
        sink: &'a mut dyn EvictionSink,
        recorder: &'a dyn Recorder,
    ) -> Self {
        let base = table.line_base();
        let lines = table.len() as usize;
        // Steady-state assumption: the application has executed long
        // before the measured window, so its text is resident in the last
        // level cache (the paper's 100 M-instruction steady-state traces
        // imply the same). First touches then cost an L3 hit, not DRAM.
        let mut l3: Cache<LruPolicy> =
            Cache::with_line_base(config.l3, Box::new(LruPolicy::new(config.l3)), base);
        for block in program.blocks() {
            for &id in plan.lines_of(block.id()) {
                l3.access(id, table.line(id).base_addr(), false, 0);
            }
        }
        Frontend {
            program,
            layout,
            config,
            table,
            plan,
            l1i: Cache::with_line_base(config.l1i, l1i_policy, base),
            l2: Cache::with_line_base(config.l2, Box::new(LruPolicy::new(config.l2)), base),
            l3,
            bpred: BranchPredictor::new(),
            ftq: VecDeque::new(),
            frontier: None,
            filter_fifo: VecDeque::with_capacity(PREFETCH_FILTER),
            in_filter: vec![false; lines],
            stats: SimStats::default(),
            stall_cycles: 0.0,
            seq: 0,
            record: record.then(Vec::new),
            verify,
            sink,
            recorder,
            last_demand_pos: vec![NO_POS; lines],
            prefetch_issue_pos: vec![NO_POS; lines],
            seen_lines: vec![false; lines],
            prev_block: None,
            trace_pos: 0,
            script: config.scripted_invalidations.as_ref().map(|s| s.as_slice()),
            script_cursor: 0,
            warmup_until: 0,
        }
    }

    /// Runs the whole trace; returns (stats, request stream if recording).
    ///
    /// The first `warmup_fraction` of the trace updates all architectural
    /// state but accumulates no statistics. Evictions stream into the sink
    /// throughout, warmup included.
    pub(crate) fn run(
        mut self,
        trace: impl ExactSizeIterator<Item = BlockId>,
    ) -> (SimStats, Option<Vec<StreamRecord>>) {
        let len = trace.len() as u64;
        self.warmup_until = (len as f64 * self.config.warmup_fraction.clamp(0.0, 0.9)) as u64;
        // Warmup/measure wall split. One short-circuited boolean per
        // counted block when disabled; clocks read only when a recorder
        // is listening (the overhead contract of ripple-obs).
        let timing = self.recorder.enabled();
        let run_start = timing.then(Instant::now);
        let mut measure_start: Option<Instant> = None;
        let mut counted_blocks = 0u64;
        for block in trace {
            self.step(block);
            if self.trace_pos >= self.warmup_until {
                if timing && counted_blocks == 0 {
                    measure_start = Some(Instant::now());
                }
                counted_blocks += 1;
            }
            self.trace_pos += 1;
        }
        if let Some(run_start) = run_start {
            let end = Instant::now();
            let measured_at = measure_start.unwrap_or(end);
            self.recorder.phase(
                "frontend.warmup",
                (measured_at - run_start).as_nanos() as u64,
            );
            if let Some(m) = measure_start {
                self.recorder
                    .phase("frontend.measure", (end - m).as_nanos() as u64);
            }
        }
        let total_instr = self.stats.instructions + self.stats.invalidate_instructions;
        self.stats.blocks = counted_blocks;
        self.stats.cycles = total_instr as f64 * self.config.base_cpi + self.stall_cycles;
        (self.stats, self.record)
    }

    #[inline]
    fn counting(&self) -> bool {
        self.trace_pos >= self.warmup_until
    }

    fn step(&mut self, block: BlockId) {
        // 0. Scripted (oracle) invalidations scheduled for this position
        // apply before the block executes. Lines outside the interned text
        // segment can never be resident, so they are skipped outright.
        if let Some(script) = self.script {
            while let Some(&(pos, line)) = script.get(self.script_cursor) {
                if pos > self.trace_pos {
                    break;
                }
                self.script_cursor += 1;
                if pos == self.trace_pos {
                    let hit = self
                        .table
                        .lookup(line)
                        .is_some_and(|id| self.l1i.invalidate(id));
                    // Stats-gated like injected invalidations (step 4): the
                    // cache state always updates, the counter only counts
                    // once warmup has elapsed.
                    if hit && self.counting() {
                        self.stats.invalidate_hits += 1;
                    }
                }
            }
        }

        // 1. FDIP bookkeeping: consume or squash the FTQ, train predictor.
        if self.config.prefetcher == PrefetcherKind::Fdip {
            if let Some(prev) = self.prev_block {
                let correct = self.bpred.train(self.program, self.layout, prev, block);
                if !correct && self.counting() {
                    self.stats.mispredictions += 1;
                }
            }
            match self.ftq.front() {
                Some(&head) if head == block => {
                    self.ftq.pop_front();
                }
                Some(_) => {
                    // Runahead went down the wrong path: squash.
                    self.ftq.clear();
                    self.frontier = None;
                    self.bpred.reset_speculation();
                }
                None => {}
            }
        }
        self.prev_block = Some(block);

        // 2. Demand-fetch the block's lines (precomputed fetch plan).
        let bb = self.program.block(block);
        let pc = self.layout.block_addr(block);
        if self.counting() {
            self.stats.instructions += bb.original_instructions().len() as u64;
            self.stats.invalidate_instructions += u64::from(bb.injected_prefix_len());
        }
        let plan = self.plan;
        let ids = plan.lines_of(block);
        for &id in ids {
            self.demand_access(id, pc);
        }

        // 3. Prefetching.
        match self.config.prefetcher {
            PrefetcherKind::None => {}
            PrefetcherKind::NextLine => {
                // The table's margin line keeps `id.next()` in range even
                // for the last code line.
                for &id in ids {
                    self.issue_prefetch(id.next(), pc);
                }
            }
            PrefetcherKind::Fdip => self.extend_runahead(block),
        }

        // 4. Execute injected invalidations (they sit at the block head;
        // cache effects apply once the block is fetched and executed).
        for inst in &bb.instructions()[..bb.injected_prefix_len() as usize] {
            if let InstKind::Invalidate { line } = inst.kind() {
                let id = self.table.lookup(line);
                let present = match (self.config.eviction_mechanism, id) {
                    (EvictionMechanism::Invalidate, Some(id)) => self.l1i.invalidate(id),
                    (EvictionMechanism::Demote, Some(id)) => self.l1i.demote(id),
                    _ => false,
                };
                if present && self.counting() {
                    self.stats.invalidate_hits += 1;
                }
            }
        }
    }

    fn next_seq(&mut self, id: LineId, is_prefetch: bool) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        if let Some(rec) = &mut self.record {
            rec.push(StreamRecord {
                line: self.table.line(id),
                is_prefetch,
            });
        }
        if let Some(stream) = self.verify {
            debug_assert!(
                stream
                    .get(seq as usize)
                    .is_some_and(|r| r.line == self.table.line(id) && r.is_prefetch == is_prefetch),
                "replay diverged from recorded stream at seq {seq}"
            );
        }
        seq
    }

    fn demand_access(&mut self, id: LineId, pc: Addr) {
        let seq = self.next_seq(id, false);
        let counting = self.counting();
        if counting {
            self.stats.demand_accesses += 1;
        }
        let out = self.l1i.access(id, pc, false, seq);
        // Timeliness: the first demand use after a prefetch issue pays the
        // fraction of the fill latency the runahead distance failed to
        // hide (a miss pays the full charge below instead).
        let issue_pos = self.prefetch_issue_pos[id.index()];
        if issue_pos != NO_POS {
            self.prefetch_issue_pos[id.index()] = NO_POS;
            if out.is_hit() && counting {
                let window = u64::from(self.config.prefetch_timeliness_blocks);
                let elapsed = self.trace_pos.saturating_sub(issue_pos);
                if elapsed < window && window > 0 {
                    let remaining = (window - elapsed) as f64 / window as f64;
                    self.stall_cycles +=
                        f64::from(self.config.l2_latency) * remaining * self.config.stall_exposure;
                }
            }
        }
        match out {
            crate::cache::AccessOutcome::Hit => {}
            crate::cache::AccessOutcome::Miss { evicted } => {
                let first_touch = !self.seen_lines[id.index()];
                self.seen_lines[id.index()] = true;
                let latency = self.lower_levels(id);
                if counting {
                    self.stats.demand_misses += 1;
                    if first_touch {
                        self.stats.compulsory_misses += 1;
                    }
                    self.stall_cycles += f64::from(latency) * self.config.stall_exposure;
                }
                self.note_eviction(evicted, false);
            }
        }
        self.last_demand_pos[id.index()] = self.trace_pos;
    }

    fn issue_prefetch(&mut self, id: LineId, pc: Addr) {
        if self.in_filter[id.index()] {
            return;
        }
        if self.filter_fifo.len() == PREFETCH_FILTER {
            if let Some(oldest) = self.filter_fifo.pop_front() {
                self.in_filter[oldest.index()] = false;
            }
        }
        self.filter_fifo.push_back(id);
        self.in_filter[id.index()] = true;

        let seq = self.next_seq(id, true);
        if self.counting() {
            self.stats.prefetches_issued += 1;
        }
        if self.prefetch_issue_pos[id.index()] == NO_POS {
            self.prefetch_issue_pos[id.index()] = self.trace_pos;
        }
        let out = self.l1i.access(id, pc, true, seq);
        if let crate::cache::AccessOutcome::Miss { evicted } = out {
            if self.counting() {
                self.stats.prefetch_fills += 1;
            }
            self.seen_lines[id.index()] = true;
            // Prefetch latency is off the critical path; still warms L2/L3.
            let _ = self.lower_levels(id);
            self.note_eviction(evicted, true);
        }
    }

    fn note_eviction(&mut self, evicted: Option<LineId>, by_prefetch: bool) {
        let Some(victim) = evicted else { return };
        let last = self.last_demand_pos[victim.index()];
        if self.counting() {
            self.stats.evictions += 1;
            if last == NO_POS {
                self.stats.prefetch_pollution_evictions += 1;
            }
        }
        self.sink.record(EvictionEvent {
            victim: self.table.line(victim),
            evict_pos: self.trace_pos,
            last_access_pos: last,
            by_prefetch,
        });
    }

    /// Looks `id` up in L2 then L3, filling on the way; returns the
    /// latency of the serving level.
    fn lower_levels(&mut self, id: LineId) -> u32 {
        let pc = self.table.line(id).base_addr();
        let counting = self.counting();
        let l2_hit = self.l2.access(id, pc, false, 0).is_hit();
        if l2_hit {
            if counting {
                self.stats.served_l2 += 1;
            }
            return self.config.l2_latency;
        }
        let l3_hit = self.l3.access(id, pc, false, 0).is_hit();
        if l3_hit {
            if counting {
                self.stats.served_l3 += 1;
            }
            self.config.l3_latency
        } else {
            if counting {
                self.stats.served_mem += 1;
            }
            self.config.mem_latency
        }
    }

    /// FDIP: follow the predicted path up to the FTQ depth, prefetching
    /// each predicted block's lines.
    fn extend_runahead(&mut self, current: BlockId) {
        if self.ftq.is_empty() && self.frontier.is_none() {
            self.frontier = Some(current);
        }
        while self.ftq.len() < self.config.ftq_depth {
            let from = match self.frontier {
                Some(f) => f,
                None => break,
            };
            match self.bpred.predict(self.program, self.layout, from) {
                Prediction::Block(next) => {
                    self.ftq.push_back(next);
                    self.frontier = Some(next);
                    let pc = self.layout.block_addr(next);
                    let plan = self.plan;
                    for &id in plan.lines_of(next) {
                        self.issue_prefetch(id, pc);
                    }
                }
                Prediction::Unknown => break,
            }
        }
    }
}
