//! The pre-interning frontend, retained verbatim as the equivalence
//! oracle and performance baseline for the dense fast path
//! ([`frontend`](crate::frontend)).
//!
//! Everything here deliberately keeps the original cost profile: the
//! block→line mapping is re-derived from the layout on every step, the
//! per-line bookkeeping is hash-keyed by [`LineAddr`], the prefetch dedup
//! filter is a scanned `VecDeque`, and the scripted-invalidation schedule
//! is re-cloned out of the config each step. Only the cache boundary
//! changed with interning — it now speaks [`LineId`] — so this path maps
//! addresses through the *identity* interning (`id == raw line index`),
//! which preserves set mapping and policy decisions exactly.
//!
//! Select it with [`LinePath::Reference`](crate::LinePath); results must
//! be byte-identical to the fast path (the equivalence suite asserts it).

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

use ripple_obs::Recorder;
use ripple_program::{BlockId, InstKind, Layout, LineAddr, Program};

use crate::bpred::{BranchPredictor, Prediction};
use crate::cache::Cache;
use crate::config::{EvictionMechanism, PrefetcherKind, SimConfig};
use crate::frontend::PREFETCH_FILTER;
use crate::intern::LineId;
use crate::policy::{LruPolicy, ReplacementPolicy, StreamRecord};
use crate::sink::EvictionSink;
use crate::stats::{EvictionEvent, SimStats};

/// Identity interning: the id *is* the raw line index.
#[inline]
fn id_of(line: LineAddr) -> LineId {
    debug_assert!(line.index() < u64::from(u32::MAX), "line index exceeds u32");
    LineId::new(line.index() as u32)
}

/// [`id_of`] for lines of unconstrained origin (invalidate operands such
/// as [`NOOP_LINE`](ripple_program::NOOP_LINE), scripted lines): an index
/// outside `u32` can never be resident, so it converts to `None` and the
/// invalidation is a no-op — the same fallback the interned path gets
/// from `LineTable::lookup`.
#[inline]
fn try_id_of(line: LineAddr) -> Option<LineId> {
    (line.index() < u64::from(u32::MAX)).then(|| LineId::new(line.index() as u32))
}

/// Inverse of [`id_of`].
#[inline]
fn line_of(id: LineId) -> LineAddr {
    LineAddr::new(u64::from(id.get()))
}

/// One reference-path frontend simulation over a block trace.
pub(crate) struct ReferenceFrontend<'a> {
    program: &'a Program,
    layout: &'a Layout,
    config: &'a SimConfig,
    l1i: Cache<dyn ReplacementPolicy>,
    l2: Cache<dyn ReplacementPolicy>,
    l3: Cache<dyn ReplacementPolicy>,
    bpred: BranchPredictor,
    ftq: VecDeque<BlockId>,
    frontier: Option<BlockId>,
    prefetch_filter: VecDeque<LineAddr>,
    stats: SimStats,
    stall_cycles: f64,
    seq: u64,
    record: Option<Vec<StreamRecord>>,
    verify: Option<&'a [StreamRecord]>,
    sink: &'a mut dyn EvictionSink,
    recorder: &'a dyn Recorder,
    last_demand_pos: HashMap<LineAddr, u64>,
    prefetch_issue_pos: HashMap<LineAddr, u64>,
    seen_lines: HashSet<LineAddr>,
    prev_block: Option<BlockId>,
    trace_pos: u64,
    script_cursor: usize,
    warmup_until: u64,
}

impl<'a> ReferenceFrontend<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        program: &'a Program,
        layout: &'a Layout,
        config: &'a SimConfig,
        l1i_policy: Box<dyn ReplacementPolicy>,
        record: bool,
        verify: Option<&'a [StreamRecord]>,
        sink: &'a mut dyn EvictionSink,
        recorder: &'a dyn Recorder,
    ) -> Self {
        let mut l3: Cache<dyn ReplacementPolicy> =
            Cache::new(config.l3, Box::new(LruPolicy::new(config.l3)));
        for block in program.blocks() {
            for line in layout.lines_of_block(block.id()) {
                l3.access(id_of(line), line.base_addr(), false, 0);
            }
        }
        ReferenceFrontend {
            program,
            layout,
            config,
            l1i: Cache::new(config.l1i, l1i_policy),
            l2: Cache::new(config.l2, Box::new(LruPolicy::new(config.l2))),
            l3,
            bpred: BranchPredictor::new(),
            ftq: VecDeque::new(),
            frontier: None,
            prefetch_filter: VecDeque::with_capacity(PREFETCH_FILTER),
            stats: SimStats::default(),
            stall_cycles: 0.0,
            seq: 0,
            record: record.then(Vec::new),
            verify,
            sink,
            recorder,
            last_demand_pos: HashMap::new(),
            prefetch_issue_pos: HashMap::new(),
            seen_lines: HashSet::new(),
            prev_block: None,
            trace_pos: 0,
            script_cursor: 0,
            warmup_until: 0,
        }
    }

    pub(crate) fn run(
        mut self,
        trace: impl ExactSizeIterator<Item = BlockId>,
    ) -> (SimStats, Option<Vec<StreamRecord>>) {
        let len = trace.len() as u64;
        self.warmup_until = (len as f64 * self.config.warmup_fraction.clamp(0.0, 0.9)) as u64;
        // Warmup/measure wall split, mirroring the fast path so both
        // LinePaths report the same phase taxonomy.
        let timing = self.recorder.enabled();
        let run_start = timing.then(Instant::now);
        let mut measure_start: Option<Instant> = None;
        let mut counted_blocks = 0u64;
        for block in trace {
            self.step(block);
            if self.trace_pos >= self.warmup_until {
                if timing && counted_blocks == 0 {
                    measure_start = Some(Instant::now());
                }
                counted_blocks += 1;
            }
            self.trace_pos += 1;
        }
        if let Some(run_start) = run_start {
            let end = Instant::now();
            let measured_at = measure_start.unwrap_or(end);
            self.recorder.phase(
                "frontend.warmup",
                (measured_at - run_start).as_nanos() as u64,
            );
            if let Some(m) = measure_start {
                self.recorder
                    .phase("frontend.measure", (end - m).as_nanos() as u64);
            }
        }
        let total_instr = self.stats.instructions + self.stats.invalidate_instructions;
        self.stats.blocks = counted_blocks;
        self.stats.cycles = total_instr as f64 * self.config.base_cpi + self.stall_cycles;
        (self.stats, self.record)
    }

    #[inline]
    fn counting(&self) -> bool {
        self.trace_pos >= self.warmup_until
    }

    fn step(&mut self, block: BlockId) {
        // 0. Scripted (oracle) invalidations. The per-step Arc clone is the
        // pre-interning behaviour, kept on purpose for the baseline.
        if let Some(script) = self.config.scripted_invalidations.clone() {
            while let Some(&(pos, line)) = script.get(self.script_cursor) {
                if pos > self.trace_pos {
                    break;
                }
                self.script_cursor += 1;
                if pos == self.trace_pos
                    && try_id_of(line).is_some_and(|id| self.l1i.invalidate(id))
                    && self.counting()
                {
                    self.stats.invalidate_hits += 1;
                }
            }
        }

        // 1. FDIP bookkeeping: consume or squash the FTQ, train predictor.
        if self.config.prefetcher == PrefetcherKind::Fdip {
            if let Some(prev) = self.prev_block {
                let correct = self.bpred.train(self.program, self.layout, prev, block);
                if !correct && self.counting() {
                    self.stats.mispredictions += 1;
                }
            }
            match self.ftq.front() {
                Some(&head) if head == block => {
                    self.ftq.pop_front();
                }
                Some(_) => {
                    self.ftq.clear();
                    self.frontier = None;
                    self.bpred.reset_speculation();
                }
                None => {}
            }
        }
        self.prev_block = Some(block);

        // 2. Demand-fetch the block's lines (re-derived per step).
        let bb = self.program.block(block);
        let pc = self.layout.block_addr(block);
        if self.counting() {
            self.stats.instructions += bb.original_instructions().len() as u64;
            self.stats.invalidate_instructions += u64::from(bb.injected_prefix_len());
        }
        let lines: Vec<LineAddr> = self.layout.lines_of_block(block).collect();
        for &line in &lines {
            self.demand_access(line, pc);
        }

        // 3. Prefetching.
        match self.config.prefetcher {
            PrefetcherKind::None => {}
            PrefetcherKind::NextLine => {
                for &line in &lines {
                    self.issue_prefetch(line.next(), pc);
                }
            }
            PrefetcherKind::Fdip => self.extend_runahead(block),
        }

        // 4. Execute injected invalidations.
        for inst in &bb.instructions()[..bb.injected_prefix_len() as usize] {
            if let InstKind::Invalidate { line } = inst.kind() {
                let present = match (self.config.eviction_mechanism, try_id_of(line)) {
                    (EvictionMechanism::Invalidate, Some(id)) => self.l1i.invalidate(id),
                    (EvictionMechanism::Demote, Some(id)) => self.l1i.demote(id),
                    _ => false,
                };
                if present && self.counting() {
                    self.stats.invalidate_hits += 1;
                }
            }
        }
    }

    fn next_seq(&mut self, line: LineAddr, is_prefetch: bool) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        if let Some(rec) = &mut self.record {
            rec.push(StreamRecord { line, is_prefetch });
        }
        if let Some(stream) = self.verify {
            debug_assert!(
                stream
                    .get(seq as usize)
                    .is_some_and(|r| r.line == line && r.is_prefetch == is_prefetch),
                "replay diverged from recorded stream at seq {seq}"
            );
        }
        seq
    }

    fn demand_access(&mut self, line: LineAddr, pc: ripple_program::Addr) {
        let seq = self.next_seq(line, false);
        let counting = self.counting();
        if counting {
            self.stats.demand_accesses += 1;
        }
        let out = self.l1i.access(id_of(line), pc, false, seq);
        if let Some(issue_pos) = self.prefetch_issue_pos.remove(&line) {
            if out.is_hit() && counting {
                let window = u64::from(self.config.prefetch_timeliness_blocks);
                let elapsed = self.trace_pos.saturating_sub(issue_pos);
                if elapsed < window && window > 0 {
                    let remaining = (window - elapsed) as f64 / window as f64;
                    self.stall_cycles +=
                        f64::from(self.config.l2_latency) * remaining * self.config.stall_exposure;
                }
            }
        }
        match out {
            crate::cache::AccessOutcome::Hit => {}
            crate::cache::AccessOutcome::Miss { evicted } => {
                let first_touch = self.seen_lines.insert(line);
                let latency = self.lower_levels(line);
                if counting {
                    self.stats.demand_misses += 1;
                    if first_touch {
                        self.stats.compulsory_misses += 1;
                    }
                    self.stall_cycles += f64::from(latency) * self.config.stall_exposure;
                }
                self.note_eviction(evicted, false);
            }
        }
        self.last_demand_pos.insert(line, self.trace_pos);
    }

    fn issue_prefetch(&mut self, line: LineAddr, pc: ripple_program::Addr) {
        if self.prefetch_filter.contains(&line) {
            return;
        }
        if self.prefetch_filter.len() == PREFETCH_FILTER {
            self.prefetch_filter.pop_front();
        }
        self.prefetch_filter.push_back(line);

        let seq = self.next_seq(line, true);
        if self.counting() {
            self.stats.prefetches_issued += 1;
        }
        self.prefetch_issue_pos
            .entry(line)
            .or_insert(self.trace_pos);
        let out = self.l1i.access(id_of(line), pc, true, seq);
        if let crate::cache::AccessOutcome::Miss { evicted } = out {
            if self.counting() {
                self.stats.prefetch_fills += 1;
            }
            self.seen_lines.insert(line);
            let _ = self.lower_levels(line);
            self.note_eviction(evicted, true);
        }
    }

    fn note_eviction(&mut self, evicted: Option<LineId>, by_prefetch: bool) {
        let Some(victim) = evicted.map(line_of) else {
            return;
        };
        let last = self.last_demand_pos.get(&victim).copied();
        if self.counting() {
            self.stats.evictions += 1;
            if last.is_none() {
                self.stats.prefetch_pollution_evictions += 1;
            }
        }
        self.sink.record(EvictionEvent {
            victim,
            evict_pos: self.trace_pos,
            last_access_pos: last.unwrap_or(u64::MAX),
            by_prefetch,
        });
    }

    fn lower_levels(&mut self, line: LineAddr) -> u32 {
        let pc = line.base_addr();
        let counting = self.counting();
        let l2_hit = self.l2.access(id_of(line), pc, false, 0).is_hit();
        if l2_hit {
            if counting {
                self.stats.served_l2 += 1;
            }
            return self.config.l2_latency;
        }
        let l3_hit = self.l3.access(id_of(line), pc, false, 0).is_hit();
        if l3_hit {
            if counting {
                self.stats.served_l3 += 1;
            }
            self.config.l3_latency
        } else {
            if counting {
                self.stats.served_mem += 1;
            }
            self.config.mem_latency
        }
    }

    fn extend_runahead(&mut self, current: BlockId) {
        if self.ftq.is_empty() && self.frontier.is_none() {
            self.frontier = Some(current);
        }
        while self.ftq.len() < self.config.ftq_depth {
            let from = match self.frontier {
                Some(f) => f,
                None => break,
            };
            match self.bpred.predict(self.program, self.layout, from) {
                Prediction::Block(next) => {
                    self.ftq.push_back(next);
                    self.frontier = Some(next);
                    let pc = self.layout.block_addr(next);
                    let lines: Vec<LineAddr> = self.layout.lines_of_block(next).collect();
                    for line in lines {
                        self.issue_prefetch(line, pc);
                    }
                }
                Prediction::Unknown => break,
            }
        }
    }
}
