//! Set-batched (and optionally sharded) replay of a captured request
//! stream.
//!
//! The sequential [`ReplayFrontend`](crate::replay::ReplayFrontend) walks
//! the packed stream in trace order, so consecutive requests land in
//! unrelated cache sets and every tag probe is a cold cache line. For
//! policies whose decisions depend only on the *per-set order* of events
//! ([`ReplacementPolicy::replay_set_local`]), trace order is overkill:
//! this module buckets the stream's operations by L1I set once per session
//! and replays each set's operations contiguously — the set's tags, the
//! policy's per-set metadata and the (permuted) future index all stay hot.
//!
//! Bucketed replay is also the unit of parallelism: sets are partitioned
//! round-robin across `config.replay_shards` worker threads, each with its
//! own L1I, L2 and pre-warmed L3 clone. Because every L2/L3 set is touched
//! by exactly one L1I set whenever the L1I set count divides the L2 and L3
//! set counts (checked at bucketing time), each shard observes exactly the
//! per-set access orders of the sequential run, and the shard outputs merge
//! deterministically: `u64` counters sum, while the two order-sensitive
//! outputs — `f64` stall-cycle terms and eviction events, of which each
//! stream record produces at most one — are keyed by record position,
//! sorted, and folded/emitted in stream order. The merged result is
//! byte-identical to the sequential replay at any shard count.

use std::sync::Arc;
use std::time::Instant;

use ripple_obs::Recorder;
use ripple_program::{BlockId, Layout};
use ripple_trace::BbTrace;

use crate::cache::{AccessOutcome, Cache};
use crate::config::{EvictionMechanism, SimConfig};
use crate::frontend::NO_POS;
use crate::intern::{LineId, LineTable};
use crate::policy::{FutureIndex, LruPolicy, ReplacementPolicy};
use crate::replay::{ColumnarStream, LINE_MASK, PREFETCH_BIT};
use crate::sink::EvictionSink;
use crate::stats::{EvictionEvent, SimStats};

/// Operation kinds, stored in the top two bits of [`BucketedOp::word`].
const KIND_DEMAND: u32 = 0;
const KIND_PREFETCH: u32 = 1;
const KIND_SCRIPT_INVAL: u32 = 2;
const KIND_INJECTED_INVAL: u32 = 3;

const KIND_SHIFT: u32 = 30;

/// Line ids must fit the low 30 bits of [`BucketedOp::word`].
const ID_MASK: u32 = (1 << KIND_SHIFT) - 1;

/// Sentinel for "no position" in the compact per-line `u32` arrays;
/// widens to [`NO_POS`]. Trace positions fit `u32` by the bucketing
/// eligibility check, so the sentinel is unambiguous.
const NO_POS_32: u32 = u32::MAX;

#[inline]
fn widen_pos(pos: u32) -> u64 {
    if pos == NO_POS_32 {
        NO_POS
    } else {
        u64::from(pos)
    }
}

/// One replayable operation, 16 bytes, self-contained so a set's
/// operations can execute without consulting the trace.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct BucketedOp {
    /// `kind << 30 | line id`.
    word: u32,
    /// Stream record index for demand/prefetch requests (the merge key and
    /// the original `seq`); `u32::MAX` for invalidations, which produce no
    /// order-sensitive output.
    seq: u32,
    /// Trace step the operation executed at (drives warmup gating,
    /// timeliness windows and eviction positions).
    pos: u32,
    /// Raw [`BlockId`] whose address is the access `pc`: the executing
    /// block for demands, the FDIP issuer for prefetches, unused for
    /// invalidations.
    pc: u32,
}

/// A session's request stream bucketed by L1I set, plus the future index
/// re-ordered to match ([`FutureIndex::permute`]): set `s`'s operations
/// are `ops[bounds[s]..bounds[s + 1]]`, in original stream order.
#[derive(Debug)]
pub(crate) struct BucketedStream {
    pub(crate) ops: Vec<BucketedOp>,
    /// `num_sets + 1` offsets into `ops`.
    pub(crate) bounds: Vec<u32>,
    /// The session future index permuted to bucket order: entry `j` holds
    /// the original next-use positions of `ops[j]`, so oracle replays that
    /// pass the bucket index as `seq` stream through it sequentially.
    pub(crate) future: Arc<FutureIndex>,
    pub(crate) trace_len: u64,
    pub(crate) warmup_until: u64,
}

/// Walks every replayable operation of the session in sequential-replay
/// order, reproducing the [`ReplayFrontend`](crate::replay::ReplayFrontend)
/// step structure exactly: scripted invalidations first (with the same
/// cursor semantics, including consuming out-of-order entries without
/// effect), then the step's recorded requests, then injected invalidations.
///
/// Operations that are no-ops in the sequential replay are dropped here:
/// scripted lines outside the text segment, injected operands interned as
/// [`LineId::INVALID`], and all invalidations under
/// [`EvictionMechanism::NoOp`] — none of them touch the cache or any
/// counter.
fn for_each_op(
    trace: &BbTrace,
    stream: &ColumnarStream,
    config: &SimConfig,
    table: &LineTable,
    mut f: impl FnMut(u32, BucketedOp),
) {
    let num_sets = config.l1i.num_sets();
    let line_base = table.line_base();
    let set_of = |id: u32| ((line_base + u64::from(id)) % num_sets) as u32;
    let script: &[(u64, ripple_program::LineAddr)] = config
        .scripted_invalidations
        .as_ref()
        .map_or(&[], |s| s.as_slice());
    let mut script_cursor = 0usize;
    let mut pf_cursor = 0usize;
    let invals_active = config.eviction_mechanism != EvictionMechanism::NoOp;
    for (t, block) in trace.iter().enumerate() {
        let pos = t as u32;
        while let Some(&(at, line)) = script.get(script_cursor) {
            if at > t as u64 {
                break;
            }
            script_cursor += 1;
            if at == t as u64 {
                if let Some(id) = table.lookup(line) {
                    f(
                        set_of(id.get()),
                        BucketedOp {
                            word: KIND_SCRIPT_INVAL << KIND_SHIFT | id.get(),
                            seq: u32::MAX,
                            pos,
                            pc: 0,
                        },
                    );
                }
            }
        }
        let start = stream.step_bounds[t] as usize;
        let end = stream.step_bounds[t + 1] as usize;
        for k in start..end {
            let raw = stream.packed[k];
            let id = raw & LINE_MASK;
            if raw & PREFETCH_BIT == 0 {
                f(
                    set_of(id),
                    BucketedOp {
                        word: KIND_DEMAND << KIND_SHIFT | id,
                        seq: k as u32,
                        pos,
                        pc: block.get(),
                    },
                );
            } else {
                let issuer = stream.prefetch_pc[pf_cursor];
                pf_cursor += 1;
                f(
                    set_of(id),
                    BucketedOp {
                        word: KIND_PREFETCH << KIND_SHIFT | id,
                        seq: k as u32,
                        pos,
                        pc: issuer,
                    },
                );
            }
        }
        if invals_active {
            for &raw in stream.inval_ops(block) {
                if raw != LineId::INVALID.get() {
                    f(
                        set_of(raw),
                        BucketedOp {
                            word: KIND_INJECTED_INVAL << KIND_SHIFT | raw,
                            seq: u32::MAX,
                            pos,
                            pc: 0,
                        },
                    );
                }
            }
        }
    }
}

/// Buckets the captured stream by L1I set, or `None` when the session's
/// shape rules set-batched replay out:
///
/// - the L1I set count must divide the L2 and L3 set counts, so each
///   lower-level set is driven by exactly one L1I set (per-shard L2/L3
///   clones then see per-set access orders identical to the sequential
///   run's);
/// - line ids must fit 30 bits and trace/operation counts must fit `u32`
///   (the compact [`BucketedOp`] encoding).
///
/// Whether the *policy* permits set-major order is the caller's check
/// ([`ReplacementPolicy::replay_set_local`]); this function only owns the
/// structural conditions.
pub(crate) fn bucket_stream(
    trace: &BbTrace,
    stream: &ColumnarStream,
    config: &SimConfig,
    table: &LineTable,
    future: &Arc<FutureIndex>,
) -> Option<BucketedStream> {
    let s1 = config.l1i.num_sets();
    if !config.l2.num_sets().is_multiple_of(s1) || !config.l3.num_sets().is_multiple_of(s1) {
        return None;
    }
    if u64::from(table.len()) > u64::from(ID_MASK) {
        return None;
    }
    let trace_len = trace.len() as u64;
    if trace_len >= u64::from(u32::MAX) {
        return None;
    }
    let num_sets = s1 as usize;
    let mut counts = vec![0u64; num_sets];
    for_each_op(trace, stream, config, table, |set, _| {
        counts[set as usize] += 1;
    });
    let total: u64 = counts.iter().sum();
    if total >= u64::from(u32::MAX) {
        return None;
    }
    let mut bounds = Vec::with_capacity(num_sets + 1);
    bounds.push(0u32);
    let mut acc = 0u64;
    for &c in &counts {
        acc += c;
        bounds.push(acc as u32);
    }
    let mut cursor: Vec<u32> = bounds[..num_sets].to_vec();
    let mut ops = vec![BucketedOp::default(); total as usize];
    for_each_op(trace, stream, config, table, |set, op| {
        let slot = &mut cursor[set as usize];
        ops[*slot as usize] = op;
        *slot += 1;
    });
    let future = future.permute(ops.iter().map(|op| op.seq));
    let warmup_until = (trace_len as f64 * config.warmup_fraction.clamp(0.0, 0.9)) as u64;
    Some(BucketedStream {
        ops,
        bounds,
        future,
        trace_len,
        warmup_until,
    })
}

/// One shard's partial outputs: summable counters plus the two
/// order-sensitive streams keyed by record position for the merge.
struct ShardOutcome {
    stats: SimStats,
    stall: Vec<(u32, f64)>,
    events: Vec<(u32, EvictionEvent)>,
}

/// Replays the bucketed stream under fresh policies from `make_policy`,
/// partitioned round-robin across `config.replay_shards` threads, and
/// merges the shard outputs into stats byte-identical to the sequential
/// [`ReplayFrontend`](crate::replay::ReplayFrontend) pass.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_batched<P: ?Sized + ReplacementPolicy>(
    layout: &Layout,
    config: &SimConfig,
    table: &LineTable,
    bucketed: &BucketedStream,
    stream: &ColumnarStream,
    l3_seed: &Cache<LruPolicy>,
    make_policy: &(dyn Fn() -> Box<P> + Sync),
    sink: &mut dyn EvictionSink,
    recorder: &dyn Recorder,
) -> SimStats {
    let num_sets = config.l1i.num_sets() as usize;
    let shards = config.replay_shards.clamp(1, num_sets.max(1));
    let timing = recorder.enabled();
    let run_start = timing.then(Instant::now);
    if timing {
        // One L3-seed clone per shard — never per run record.
        recorder.add("session.l3_seed_clones", shards as u64);
    }

    let outcomes: Vec<ShardOutcome> = if shards == 1 {
        vec![run_shard(
            layout,
            config,
            table,
            bucketed,
            l3_seed,
            make_policy(),
            0,
            1,
        )]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|shard| {
                    scope.spawn(move || {
                        run_shard(
                            layout,
                            config,
                            table,
                            bucketed,
                            l3_seed,
                            make_policy(),
                            shard,
                            shards,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    // A panicked shard is already a bug in the replayer;
                    // propagating the panic is the only sound response.
                    #[allow(clippy::expect_used)]
                    h.join().expect("replay shard panicked")
                })
                .collect()
        })
    };

    // Merge. Counters sum; the f64 stall terms and the eviction events are
    // re-ordered by record position, reproducing the sequential pass's
    // accumulation order exactly (each record contributes at most one term
    // and one event, so keys are unique and the sort is total).
    let mut stats = SimStats::default();
    let mut stall: Vec<(u32, f64)> = Vec::new();
    let mut events: Vec<(u32, EvictionEvent)> = Vec::new();
    for o in outcomes {
        stats.demand_misses += o.stats.demand_misses;
        stats.compulsory_misses += o.stats.compulsory_misses;
        stats.served_l2 += o.stats.served_l2;
        stats.served_l3 += o.stats.served_l3;
        stats.served_mem += o.stats.served_mem;
        stats.prefetch_fills += o.stats.prefetch_fills;
        stats.evictions += o.stats.evictions;
        stats.prefetch_pollution_evictions += o.stats.prefetch_pollution_evictions;
        stats.invalidate_hits += o.stats.invalidate_hits;
        stall.extend(o.stall);
        events.extend(o.events);
    }
    stall.sort_unstable_by_key(|&(seq, _)| seq);
    let mut stall_cycles = 0.0f64;
    for &(_, term) in &stall {
        stall_cycles += term;
    }
    events.sort_unstable_by_key(|&(seq, _)| seq);
    for (_, event) in events {
        sink.record(event);
    }

    let base = stream.base;
    stats.blocks = base.blocks;
    stats.instructions = base.instructions;
    stats.invalidate_instructions = base.invalidate_instructions;
    stats.demand_accesses = base.demand_accesses;
    stats.prefetches_issued = base.prefetches_issued;
    stats.mispredictions = base.mispredictions;
    let total_instr = stats.instructions + stats.invalidate_instructions;
    stats.cycles = total_instr as f64 * config.base_cpi + stall_cycles;

    if let Some(run_start) = run_start {
        // Batched replay has no warmup/measure boundary instant (shards
        // cross it independently), so attribute the measured wall time
        // proportionally to the trace's warmup fraction.
        let total_nanos = run_start.elapsed().as_nanos() as u64;
        let warmup_nanos = if bucketed.trace_len == 0 {
            total_nanos
        } else {
            (total_nanos as u128 * u128::from(bucketed.warmup_until)
                / u128::from(bucketed.trace_len)) as u64
        };
        recorder.phase("frontend.warmup", warmup_nanos);
        recorder.phase("frontend.measure", total_nanos - warmup_nanos);
    }
    stats
}

/// Replays every set `s` with `s % shards == shard` through a fresh cache
/// hierarchy, mirroring the sequential replay's per-operation semantics
/// exactly (same counters, same stall-term expressions, same eviction
/// events — only execution order differs, and only across sets).
#[allow(clippy::too_many_arguments)]
fn run_shard<P: ?Sized + ReplacementPolicy>(
    layout: &Layout,
    config: &SimConfig,
    table: &LineTable,
    bucketed: &BucketedStream,
    l3_seed: &Cache<LruPolicy>,
    policy: Box<P>,
    shard: usize,
    shards: usize,
) -> ShardOutcome {
    let line_base = table.line_base();
    let lines = table.len() as usize;
    let mut l1i: Cache<P> = Cache::with_line_base(config.l1i, policy, line_base);
    let mut l2: Cache<LruPolicy> =
        Cache::with_line_base(config.l2, Box::new(LruPolicy::new(config.l2)), line_base);
    let mut l3 = l3_seed.clone();
    let mut stats = SimStats::default();
    let mut stall: Vec<(u32, f64)> = Vec::new();
    let mut events: Vec<(u32, EvictionEvent)> = Vec::new();
    // Per-line replay state; a line belongs to exactly one L1I set, so
    // shards touch disjoint entries and per-line order matches sequential.
    let mut last_demand = vec![NO_POS_32; lines];
    let mut issue = vec![NO_POS_32; lines];
    let mut seen = vec![false; lines];
    let warmup_until = bucketed.warmup_until;
    let window = u64::from(config.prefetch_timeliness_blocks);
    let num_sets = bucketed.bounds.len() - 1;

    let mut note_eviction = |evicted: Option<LineId>,
                             by_prefetch: bool,
                             op: BucketedOp,
                             counting: bool,
                             stats: &mut SimStats,
                             last_demand: &[u32]| {
        let Some(victim) = evicted else { return };
        let last = last_demand[victim.index()];
        if counting {
            stats.evictions += 1;
            if last == NO_POS_32 {
                stats.prefetch_pollution_evictions += 1;
            }
        }
        events.push((
            op.seq,
            EvictionEvent {
                victim: table.line(victim),
                evict_pos: u64::from(op.pos),
                last_access_pos: widen_pos(last),
                by_prefetch,
            },
        ));
    };

    let mut set = shard;
    while set < num_sets {
        let start = bucketed.bounds[set] as usize;
        let end = bucketed.bounds[set + 1] as usize;
        for j in start..end {
            let op = bucketed.ops[j];
            let id = LineId::new(op.word & ID_MASK);
            let counting = u64::from(op.pos) >= warmup_until;
            match op.word >> KIND_SHIFT {
                KIND_DEMAND => {
                    let pc = layout.block_addr(BlockId::new(op.pc));
                    let out = l1i.access(id, pc, false, j as u64);
                    let issued_at = issue[id.index()];
                    if issued_at != NO_POS_32 {
                        issue[id.index()] = NO_POS_32;
                        if out.is_hit() && counting {
                            let elapsed = u64::from(op.pos).saturating_sub(u64::from(issued_at));
                            if elapsed < window && window > 0 {
                                let remaining = (window - elapsed) as f64 / window as f64;
                                stall.push((
                                    op.seq,
                                    f64::from(config.l2_latency)
                                        * remaining
                                        * config.stall_exposure,
                                ));
                            }
                        }
                    }
                    match out {
                        AccessOutcome::Hit => {}
                        AccessOutcome::Miss { evicted } => {
                            let first_touch = !seen[id.index()];
                            seen[id.index()] = true;
                            let latency = lower_levels(
                                &mut l2, &mut l3, &mut stats, config, table, id, counting,
                            );
                            if counting {
                                stats.demand_misses += 1;
                                if first_touch {
                                    stats.compulsory_misses += 1;
                                }
                                stall.push((op.seq, f64::from(latency) * config.stall_exposure));
                            }
                            note_eviction(evicted, false, op, counting, &mut stats, &last_demand);
                        }
                    }
                    last_demand[id.index()] = op.pos;
                }
                KIND_PREFETCH => {
                    if issue[id.index()] == NO_POS_32 {
                        issue[id.index()] = op.pos;
                    }
                    let pc = layout.block_addr(BlockId::new(op.pc));
                    let out = l1i.access(id, pc, true, j as u64);
                    if let AccessOutcome::Miss { evicted } = out {
                        if counting {
                            stats.prefetch_fills += 1;
                        }
                        seen[id.index()] = true;
                        let _ =
                            lower_levels(&mut l2, &mut l3, &mut stats, config, table, id, counting);
                        note_eviction(evicted, true, op, counting, &mut stats, &last_demand);
                    }
                }
                KIND_SCRIPT_INVAL => {
                    if l1i.invalidate(id) && counting {
                        stats.invalidate_hits += 1;
                    }
                }
                _ => {
                    // KIND_INJECTED_INVAL; NoOp operations were dropped at
                    // bucketing time.
                    let present = match config.eviction_mechanism {
                        EvictionMechanism::Invalidate => l1i.invalidate(id),
                        EvictionMechanism::Demote => l1i.demote(id),
                        EvictionMechanism::NoOp => false,
                    };
                    if present && counting {
                        stats.invalidate_hits += 1;
                    }
                }
            }
        }
        set += shards;
    }
    ShardOutcome {
        stats,
        stall,
        events,
    }
}

/// The L2 → L3 → memory fill path, identical to the sequential replay's.
fn lower_levels(
    l2: &mut Cache<LruPolicy>,
    l3: &mut Cache<LruPolicy>,
    stats: &mut SimStats,
    config: &SimConfig,
    table: &LineTable,
    id: LineId,
    counting: bool,
) -> u32 {
    let pc = table.line(id).base_addr();
    if l2.access(id, pc, false, 0).is_hit() {
        if counting {
            stats.served_l2 += 1;
        }
        return config.l2_latency;
    }
    if l3.access(id, pc, false, 0).is_hit() {
        if counting {
            stats.served_l3 += 1;
        }
        config.l3_latency
    } else {
        if counting {
            stats.served_mem += 1;
        }
        config.mem_latency
    }
}
