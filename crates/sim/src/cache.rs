//! Generic set-associative cache with pluggable replacement policy.

use ripple_program::Addr;

use crate::config::CacheGeometry;
use crate::intern::LineId;
use crate::policy::{AccessInfo, ReplacementPolicy, WayView};

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled; `evicted` names the valid
    /// line displaced by the fill, if any.
    Miss {
        /// Line evicted to make room, if the chosen way held one.
        evicted: Option<LineId>,
    },
}

impl AccessOutcome {
    /// Whether this outcome is a hit.
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// Raw-tag sentinel for an empty way: [`LineId::INVALID`]'s repr, kept as
/// a bare `u32` so the hot scans compare machine words directly.
const EMPTY_TAG: u32 = u32::MAX;

/// A set-associative cache of 64-byte lines, parameterized by a
/// [`ReplacementPolicy`].
///
/// The cache owns placement (invalid ways are filled before the policy is
/// asked for a victim) and exposes the `invalidate` / `demote` operations
/// Ripple's injected instruction needs.
///
/// Lines are named by dense [`LineId`]s. Set mapping stays faithful to the
/// underlying addresses: the cache carries the interner's `line_base` so
/// `set_of(id)` equals `CacheGeometry::set_of` of the original
/// [`LineAddr`](ripple_program::LineAddr).
///
/// Tag state is stored structure-of-arrays: `tags` is a dense `u32` array
/// (sets × assoc, row-major, [`EMPTY_TAG`] = empty way) so the per-access
/// tag match is a contiguous word scan the compiler can vectorize, and the
/// rarely-read prefetch bits live in a separate parallel array instead of
/// padding every tag to eight bytes.
#[derive(Debug)]
pub struct Cache<P: ?Sized + ReplacementPolicy> {
    geom: CacheGeometry,
    /// `geom.num_sets()`, cached to keep the two divisions out of the
    /// per-access path.
    num_sets: u64,
    /// `num_sets - 1` when the set count is a power of two, else 0: lets
    /// `set_of` use a mask instead of a 64-bit division on every access.
    /// (0 is unambiguous: a one-set cache maps everything to set 0 under
    /// either formula.)
    set_mask: u64,
    /// Raw line index of `LineId(0)` in the interner that produced the ids
    /// this cache is accessed with (0 for identity interning).
    line_base: u64,
    /// Raw tags, sets × assoc row-major; [`EMPTY_TAG`] marks an empty way.
    tags: Vec<u32>,
    /// Whether each way's last fill was a prefetch (parallel to `tags`).
    prefetched: Vec<bool>,
    policy: Box<P>,
    /// Scratch buffer for victim calls, reused across misses.
    views: Vec<WayView>,
}

impl<P: ReplacementPolicy + Clone> Clone for Cache<P> {
    fn clone(&self) -> Self {
        Cache {
            geom: self.geom,
            num_sets: self.num_sets,
            set_mask: self.set_mask,
            line_base: self.line_base,
            tags: self.tags.clone(),
            prefetched: self.prefetched.clone(),
            policy: self.policy.clone(),
            views: Vec::with_capacity(usize::from(self.geom.assoc)),
        }
    }
}

impl<P: ?Sized + ReplacementPolicy> Cache<P> {
    /// Creates an empty cache whose ids are raw line indexes (identity
    /// interning, `line_base == 0`).
    pub fn new(geom: CacheGeometry, policy: Box<P>) -> Self {
        Cache::with_line_base(geom, policy, 0)
    }

    /// Creates an empty cache accessed with ids from an interner whose
    /// [`line_base`](crate::LineTable::line_base) is `line_base`.
    pub fn with_line_base(geom: CacheGeometry, policy: Box<P>, line_base: u64) -> Self {
        let num_sets = geom.num_sets();
        let total = (num_sets * u64::from(geom.assoc)) as usize;
        let set_mask = if num_sets.is_power_of_two() {
            num_sets - 1
        } else {
            0
        };
        Cache {
            geom,
            num_sets,
            set_mask,
            line_base,
            tags: vec![EMPTY_TAG; total],
            prefetched: vec![false; total],
            policy,
            views: Vec::with_capacity(usize::from(geom.assoc)),
        }
    }

    /// The cache geometry.
    #[inline]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// The replacement policy.
    #[inline]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the replacement policy.
    #[inline]
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// The set `line` maps to; identical to mapping the underlying address.
    #[inline]
    fn set_of(&self, line: LineId) -> u32 {
        let raw = self.line_base + u64::from(line.get());
        if self.set_mask != 0 {
            (raw & self.set_mask) as u32
        } else {
            (raw % self.num_sets) as u32
        }
    }

    #[inline]
    fn set_range(&self, set: u32) -> std::ops::Range<usize> {
        let a = usize::from(self.geom.assoc);
        let start = set as usize * a;
        start..start + a
    }

    /// Whether `line` is currently cached.
    pub fn contains(&self, line: LineId) -> bool {
        let set = self.set_of(line);
        let tag = line.get();
        self.tags[self.set_range(set)].contains(&tag)
    }

    /// Number of valid lines currently cached.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY_TAG).count()
    }

    /// Oracle-visible tag state: every valid way as
    /// `(set, way, line, prefetched)` in set-major way order.
    ///
    /// This is the hook differential checkers (`ripple-check`) compare
    /// against brute-force cache models after every operation. It exposes
    /// placement only — policy metadata stays private, so a model must
    /// reproduce decisions, not peek at them.
    pub fn resident_lines(&self) -> Vec<(u32, usize, LineId, bool)> {
        let assoc = usize::from(self.geom.assoc);
        self.tags
            .iter()
            .enumerate()
            .filter(|(_, &t)| t != EMPTY_TAG)
            .map(|(i, &t)| {
                (
                    (i / assoc) as u32,
                    i % assoc,
                    LineId::new(t),
                    self.prefetched[i],
                )
            })
            .collect()
    }

    /// Accesses `line`; on a miss the line is filled, evicting a victim
    /// chosen by the policy when the set is full.
    ///
    /// `pc` is the fetch address responsible for the access (used by
    /// signature/PC-indexed policies); `seq` is the global position of
    /// this access in the request stream (used by offline-ideal policies).
    pub fn access(&mut self, line: LineId, pc: Addr, is_prefetch: bool, seq: u64) -> AccessOutcome {
        debug_assert!(line != LineId::INVALID);
        let set = self.set_of(line);
        let info = AccessInfo {
            line,
            set,
            pc,
            is_prefetch,
            seq,
        };
        let range = self.set_range(set);
        let tag = line.get();

        // Hit? A contiguous word scan over the set's tags.
        if let Some(off) = self.tags[range.clone()].iter().position(|&t| t == tag) {
            if !is_prefetch {
                self.prefetched[range.start + off] = false;
            }
            self.policy.on_hit(&info, off);
            return AccessOutcome::Hit;
        }

        // Fill an invalid way if one exists.
        if let Some(off) = self.tags[range.clone()]
            .iter()
            .position(|&t| t == EMPTY_TAG)
        {
            self.tags[range.start + off] = tag;
            self.prefetched[range.start + off] = is_prefetch;
            self.policy.on_fill(&info, off);
            return AccessOutcome::Miss { evicted: None };
        }

        // Ask the policy for a victim.
        self.views.clear();
        self.views.extend(
            self.tags[range.clone()]
                .iter()
                .zip(&self.prefetched[range.clone()])
                .map(|(&t, &p)| WayView {
                    line: LineId::new(t),
                    prefetched: p,
                }),
        );
        let off = self.policy.victim(&info, &self.views);
        assert!(
            off < self.views.len(),
            "policy {} returned way {off} of {}",
            self.policy.name(),
            self.views.len()
        );
        let evicted = LineId::new(self.tags[range.start + off]);
        debug_assert!(evicted != LineId::INVALID, "set was full");
        self.policy.on_evict(set, off, evicted);
        self.tags[range.start + off] = tag;
        self.prefetched[range.start + off] = is_prefetch;
        self.policy.on_fill(&info, off);
        AccessOutcome::Miss {
            evicted: Some(evicted),
        }
    }

    /// Invalidates `line` if present; returns whether it was present.
    pub fn invalidate(&mut self, line: LineId) -> bool {
        let set = self.set_of(line);
        let range = self.set_range(set);
        let tag = line.get();
        if let Some(off) = self.tags[range.clone()].iter().position(|&t| t == tag) {
            self.tags[range.start + off] = EMPTY_TAG;
            self.prefetched[range.start + off] = false;
            self.policy.on_invalidate(set, off);
            true
        } else {
            false
        }
    }

    /// Demotes `line` to the bottom of the replacement order if present;
    /// returns whether it was present.
    pub fn demote(&mut self, line: LineId) -> bool {
        let set = self.set_of(line);
        let range = self.set_range(set);
        let tag = line.get();
        if let Some(off) = self.tags[range].iter().position(|&t| t == tag) {
            self.policy.on_demote(set, off);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LruPolicy;

    fn small_cache() -> Cache<LruPolicy> {
        // 2 sets × 2 ways.
        let geom = CacheGeometry::new(4 * 64, 2);
        Cache::new(geom, Box::new(LruPolicy::new(geom)))
    }

    fn l(i: u32) -> LineId {
        LineId::new(i)
    }

    #[test]
    fn fills_then_hits() {
        let mut c = small_cache();
        assert!(!c.access(l(0), Addr::new(0), false, 0).is_hit());
        assert!(c.access(l(0), Addr::new(0), false, 1).is_hit());
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small_cache();
        // Lines 0, 2, 4 map to set 0 (2 sets).
        c.access(l(0), Addr::new(0), false, 0);
        c.access(l(2), Addr::new(0), false, 1);
        c.access(l(0), Addr::new(0), false, 2); // 0 is now MRU
        let out = c.access(l(4), Addr::new(0), false, 3);
        assert_eq!(
            out,
            AccessOutcome::Miss {
                evicted: Some(l(2))
            }
        );
        assert!(c.contains(l(0)));
        assert!(!c.contains(l(2)));
    }

    #[test]
    fn invalidate_frees_way() {
        let mut c = small_cache();
        c.access(l(0), Addr::new(0), false, 0);
        c.access(l(2), Addr::new(0), false, 1);
        assert!(c.invalidate(l(0)));
        assert!(!c.contains(l(0)));
        // The next fill in set 0 must not evict line 2.
        let out = c.access(l(4), Addr::new(0), false, 2);
        assert_eq!(out, AccessOutcome::Miss { evicted: None });
        assert!(c.contains(l(2)));
    }

    #[test]
    fn invalidate_absent_line_is_noop() {
        let mut c = small_cache();
        assert!(!c.invalidate(l(9)));
    }

    #[test]
    fn demote_changes_victim_order() {
        let mut c = small_cache();
        c.access(l(0), Addr::new(0), false, 0);
        c.access(l(2), Addr::new(0), false, 1);
        // MRU is 2; demote it so it becomes the next victim.
        assert!(c.demote(l(2)));
        let out = c.access(l(4), Addr::new(0), false, 2);
        assert_eq!(
            out,
            AccessOutcome::Miss {
                evicted: Some(l(2))
            }
        );
    }

    #[test]
    fn prefetch_bit_tracks_last_filler() {
        let mut c = small_cache();
        c.access(l(0), Addr::new(0), true, 0);
        // A demand hit clears the prefetched bit (observable via policy
        // views on the next victim call; here just exercise the path).
        assert!(c.access(l(0), Addr::new(0), false, 1).is_hit());
    }

    #[test]
    fn sets_are_independent() {
        let mut c = small_cache();
        c.access(l(0), Addr::new(0), false, 0); // set 0
        c.access(l(1), Addr::new(0), false, 1); // set 1
        c.access(l(2), Addr::new(0), false, 2); // set 0
        c.access(l(3), Addr::new(0), false, 3); // set 1
        assert_eq!(c.occupancy(), 4);
        // Filling set 0 again cannot evict set-1 lines.
        c.access(l(4), Addr::new(0), false, 4);
        assert!(c.contains(l(1)));
        assert!(c.contains(l(3)));
    }

    #[test]
    fn resident_lines_reports_placement() {
        let mut c = small_cache();
        c.access(l(0), Addr::new(0), false, 0); // set 0, way 0
        c.access(l(3), Addr::new(0), true, 1); // set 1, way 0, prefetched
        let mut resident = c.resident_lines();
        resident.sort_unstable();
        assert_eq!(resident, vec![(0, 0, l(0), false), (1, 0, l(3), true)]);
        c.invalidate(l(0));
        assert_eq!(c.resident_lines(), vec![(1, 0, l(3), true)]);
    }

    #[test]
    fn line_base_preserves_set_mapping() {
        // A cache with line_base B accessed with id X behaves like a
        // base-0 cache accessed with raw index B + X.
        let geom = CacheGeometry::new(4 * 64, 2);
        let mut shifted: Cache<LruPolicy> =
            Cache::with_line_base(geom, Box::new(LruPolicy::new(geom)), 101);
        // id 0 → raw line 101 → set 1; id 1 → set 0.
        shifted.access(l(0), Addr::new(0), false, 0);
        shifted.access(l(1), Addr::new(0), false, 1);
        shifted.access(l(2), Addr::new(0), false, 2); // raw 103 → set 1
        shifted.access(l(3), Addr::new(0), false, 3); // raw 104 → set 0
        assert_eq!(shifted.occupancy(), 4);
        // Set 1 holds ids {0, 2}; a third set-1 line evicts the LRU (id 0).
        let out = shifted.access(l(4), Addr::new(0), false, 4);
        assert_eq!(
            out,
            AccessOutcome::Miss {
                evicted: Some(l(0))
            }
        );
        assert!(shifted.contains(l(2)));
    }
}
