//! Generic set-associative cache with pluggable replacement policy.

use ripple_program::{Addr, LineAddr};

use crate::config::CacheGeometry;
use crate::policy::{AccessInfo, ReplacementPolicy, WayView};

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled; `evicted` names the valid
    /// line displaced by the fill, if any.
    Miss {
        /// Line evicted to make room, if the chosen way held one.
        evicted: Option<LineAddr>,
    },
}

impl AccessOutcome {
    /// Whether this outcome is a hit.
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    line: Option<LineAddr>,
    prefetched: bool,
}

/// A set-associative cache of 64-byte lines, parameterized by a
/// [`ReplacementPolicy`].
///
/// The cache owns placement (invalid ways are filled before the policy is
/// asked for a victim) and exposes the `invalidate` / `demote` operations
/// Ripple's injected instruction needs.
#[derive(Debug)]
pub struct Cache<P: ?Sized + ReplacementPolicy> {
    geom: CacheGeometry,
    ways: Vec<Way>, // sets × assoc, row-major
    policy: Box<P>,
}

impl<P: ?Sized + ReplacementPolicy> Cache<P> {
    /// Creates an empty cache.
    pub fn new(geom: CacheGeometry, policy: Box<P>) -> Self {
        let ways = vec![Way::default(); (geom.num_sets() * u64::from(geom.assoc)) as usize];
        Cache { geom, ways, policy }
    }

    /// The cache geometry.
    #[inline]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// The replacement policy.
    #[inline]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the replacement policy.
    #[inline]
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    #[inline]
    fn set_range(&self, set: u32) -> std::ops::Range<usize> {
        let a = usize::from(self.geom.assoc);
        let start = set as usize * a;
        start..start + a
    }

    /// Whether `line` is currently cached.
    pub fn contains(&self, line: LineAddr) -> bool {
        let set = self.geom.set_of(line);
        self.ways[self.set_range(set)]
            .iter()
            .any(|w| w.line == Some(line))
    }

    /// Number of valid lines currently cached.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.line.is_some()).count()
    }

    /// Accesses `line`; on a miss the line is filled, evicting a victim
    /// chosen by the policy when the set is full.
    ///
    /// `pc` is the fetch address responsible for the access (used by
    /// signature/PC-indexed policies); `seq` is the global position of
    /// this access in the request stream (used by offline-ideal policies).
    pub fn access(
        &mut self,
        line: LineAddr,
        pc: Addr,
        is_prefetch: bool,
        seq: u64,
    ) -> AccessOutcome {
        let set = self.geom.set_of(line);
        let info = AccessInfo {
            line,
            set,
            pc,
            is_prefetch,
            seq,
        };
        let range = self.set_range(set);

        // Hit?
        if let Some(off) = self.ways[range.clone()]
            .iter()
            .position(|w| w.line == Some(line))
        {
            let way = &mut self.ways[range.start + off];
            if !is_prefetch {
                way.prefetched = false;
            }
            self.policy.on_hit(&info, off);
            return AccessOutcome::Hit;
        }

        // Fill an invalid way if one exists.
        if let Some(off) = self.ways[range.clone()]
            .iter()
            .position(|w| w.line.is_none())
        {
            self.ways[range.start + off] = Way {
                line: Some(line),
                prefetched: is_prefetch,
            };
            self.policy.on_fill(&info, off);
            return AccessOutcome::Miss { evicted: None };
        }

        // Ask the policy for a victim.
        let views: Vec<WayView> = self.ways[range.clone()]
            .iter()
            .map(|w| WayView {
                line: w.line.expect("set is full"),
                prefetched: w.prefetched,
            })
            .collect();
        let off = self.policy.victim(&info, &views);
        assert!(
            off < views.len(),
            "policy {} returned way {off} of {}",
            self.policy.name(),
            views.len()
        );
        let evicted = self.ways[range.start + off].line;
        if let Some(v) = evicted {
            self.policy.on_evict(set, off, v);
        }
        self.ways[range.start + off] = Way {
            line: Some(line),
            prefetched: is_prefetch,
        };
        self.policy.on_fill(&info, off);
        AccessOutcome::Miss { evicted }
    }

    /// Invalidates `line` if present; returns whether it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let set = self.geom.set_of(line);
        let range = self.set_range(set);
        if let Some(off) = self.ways[range.clone()]
            .iter()
            .position(|w| w.line == Some(line))
        {
            self.ways[range.start + off] = Way::default();
            self.policy.on_invalidate(set, off);
            true
        } else {
            false
        }
    }

    /// Demotes `line` to the bottom of the replacement order if present;
    /// returns whether it was present.
    pub fn demote(&mut self, line: LineAddr) -> bool {
        let set = self.geom.set_of(line);
        let range = self.set_range(set);
        if let Some(off) = self.ways[range].iter().position(|w| w.line == Some(line)) {
            self.policy.on_demote(set, off);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LruPolicy;

    fn small_cache() -> Cache<LruPolicy> {
        // 2 sets × 2 ways.
        let geom = CacheGeometry::new(4 * 64, 2);
        Cache::new(geom, Box::new(LruPolicy::new(geom)))
    }

    fn l(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    #[test]
    fn fills_then_hits() {
        let mut c = small_cache();
        assert!(!c.access(l(0), Addr::new(0), false, 0).is_hit());
        assert!(c.access(l(0), Addr::new(0), false, 1).is_hit());
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small_cache();
        // Lines 0, 2, 4 map to set 0 (2 sets).
        c.access(l(0), Addr::new(0), false, 0);
        c.access(l(2), Addr::new(0), false, 1);
        c.access(l(0), Addr::new(0), false, 2); // 0 is now MRU
        let out = c.access(l(4), Addr::new(0), false, 3);
        assert_eq!(
            out,
            AccessOutcome::Miss {
                evicted: Some(l(2))
            }
        );
        assert!(c.contains(l(0)));
        assert!(!c.contains(l(2)));
    }

    #[test]
    fn invalidate_frees_way() {
        let mut c = small_cache();
        c.access(l(0), Addr::new(0), false, 0);
        c.access(l(2), Addr::new(0), false, 1);
        assert!(c.invalidate(l(0)));
        assert!(!c.contains(l(0)));
        // The next fill in set 0 must not evict line 2.
        let out = c.access(l(4), Addr::new(0), false, 2);
        assert_eq!(out, AccessOutcome::Miss { evicted: None });
        assert!(c.contains(l(2)));
    }

    #[test]
    fn invalidate_absent_line_is_noop() {
        let mut c = small_cache();
        assert!(!c.invalidate(l(9)));
    }

    #[test]
    fn demote_changes_victim_order() {
        let mut c = small_cache();
        c.access(l(0), Addr::new(0), false, 0);
        c.access(l(2), Addr::new(0), false, 1);
        // MRU is 2; demote it so it becomes the next victim.
        assert!(c.demote(l(2)));
        let out = c.access(l(4), Addr::new(0), false, 2);
        assert_eq!(
            out,
            AccessOutcome::Miss {
                evicted: Some(l(2))
            }
        );
    }

    #[test]
    fn prefetch_bit_tracks_last_filler() {
        let mut c = small_cache();
        c.access(l(0), Addr::new(0), true, 0);
        // A demand hit clears the prefetched bit (observable via policy
        // views on the next victim call; here just exercise the path).
        assert!(c.access(l(0), Addr::new(0), false, 1).is_hit());
    }

    #[test]
    fn sets_are_independent() {
        let mut c = small_cache();
        c.access(l(0), Addr::new(0), false, 0); // set 0
        c.access(l(1), Addr::new(0), false, 1); // set 1
        c.access(l(2), Addr::new(0), false, 2); // set 0
        c.access(l(3), Addr::new(0), false, 3); // set 1
        assert_eq!(c.occupancy(), 4);
        // Filling set 0 again cannot evict set-1 lines.
        c.access(l(4), Addr::new(0), false, 4);
        assert!(c.contains(l(1)));
        assert!(c.contains(l(3)));
    }
}
