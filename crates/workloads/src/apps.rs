//! The nine data center application profiles from the paper's evaluation.

use std::fmt;

use crate::spec::{AppSpec, Range};

/// The nine applications studied in the paper (§II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum App {
    /// Apache Cassandra (NoSQL database, DaCapo).
    Cassandra,
    /// Drupal on HHVM (PHP CMS, OSS-performance).
    Drupal,
    /// Twitter Finagle-Chirper (microblogging, Renaissance).
    FinagleChirper,
    /// Twitter Finagle-HTTP (HTTP server, Renaissance).
    FinagleHttp,
    /// Apache Kafka (stream processing, DaCapo).
    Kafka,
    /// MediaWiki on HHVM (wiki engine, OSS-performance).
    Mediawiki,
    /// Apache Tomcat (servlet container, DaCapo).
    Tomcat,
    /// Verilator (hardware simulation).
    Verilator,
    /// WordPress on HHVM (PHP CMS, OSS-performance).
    Wordpress,
}

impl App {
    /// All nine applications, in the paper's (alphabetical) figure order.
    pub const ALL: [App; 9] = [
        App::Cassandra,
        App::Drupal,
        App::FinagleChirper,
        App::FinagleHttp,
        App::Kafka,
        App::Mediawiki,
        App::Tomcat,
        App::Verilator,
        App::Wordpress,
    ];

    /// The application's display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            App::Cassandra => "cassandra",
            App::Drupal => "drupal",
            App::FinagleChirper => "finagle-chirper",
            App::FinagleHttp => "finagle-http",
            App::Kafka => "kafka",
            App::Mediawiki => "mediawiki",
            App::Tomcat => "tomcat",
            App::Verilator => "verilator",
            App::Wordpress => "wordpress",
        }
    }

    /// Whether the application contains JIT-compiled code regions (the
    /// three HHVM applications), which caps Ripple's coverage (§IV).
    pub fn has_jit(self) -> bool {
        matches!(self, App::Drupal | App::Mediawiki | App::Wordpress)
    }

    /// The synthetic workload specification modelling this application.
    ///
    /// Profiles differ in instruction footprint, call-graph depth, branch
    /// predictability, indirect-branch density, phase behaviour and
    /// JIT/kernel code fractions, chosen so the *relative* behaviours the
    /// paper reports emerge from the model:
    ///
    /// * the HHVM trio carries ~45–55 % JIT code and a visible kernel
    ///   component, capping Ripple's replacement coverage below 50 %;
    /// * verilator is a huge, highly predictable, generated code base with
    ///   almost no indirect control flow, where Ripple can cover nearly
    ///   every ideal eviction;
    /// * the JVM/Scala services sit in between, with deep stacks and
    ///   phase-sensitive request mixes.
    pub fn spec(self) -> AppSpec {
        let base = AppSpec {
            name: self.name().to_string(),
            seed: 0xd47a_c347e5 ^ (self as u64) << 8,
            layer_functions: vec![32, 96, 288, 864, 1728],
            blocks_per_fn: Range::new(6, 10),
            instrs_per_block: Range::new(4, 12),
            instr_bytes: Range::new(2, 7),
            call_density: 0.45,
            indirect_call_frac: 0.15,
            indirect_fanout: Range::new(2, 5),
            cond_frac: 0.62,
            loop_frac: 0.12,
            loop_continue_prob: 0.55,
            strong_bias_frac: 0.9,
            phase_sensitive_frac: 0.3,
            indirect_jump_frac: 0.08,
            num_phases: 4,
            requests_per_phase: 24,
            hot_handler_frac: 0.2,
            hot_handler_weight: 20.0,
            jit_frac: 0.0,
            variants_per_handler: 2,
            path_noise: 0.03,
            kernel_funcs: 6,
            kernel_call_prob: 0.04,
        };
        match self {
            App::Cassandra => base,
            App::Drupal => AppSpec {
                layer_functions: vec![36, 108, 320, 960, 1900],
                jit_frac: 0.45,
                kernel_funcs: 14,
                kernel_call_prob: 0.10,
                indirect_call_frac: 0.20,
                path_noise: 0.04,
                num_phases: 5,
                ..base
            },
            App::FinagleChirper => AppSpec {
                layer_functions: vec![28, 84, 252, 756, 1500],
                indirect_call_frac: 0.24,
                phase_sensitive_frac: 0.35,
                path_noise: 0.035,
                num_phases: 5,
                requests_per_phase: 20,
                ..base
            },
            App::FinagleHttp => AppSpec {
                layer_functions: vec![30, 90, 270, 810, 1600],
                indirect_call_frac: 0.22,
                phase_sensitive_frac: 0.33,
                path_noise: 0.035,
                requests_per_phase: 22,
                ..base
            },
            App::Kafka => AppSpec {
                layer_functions: vec![34, 100, 300, 900, 1760],
                loop_frac: 0.18,
                strong_bias_frac: 0.92,
                num_phases: 3,
                requests_per_phase: 28,
                ..base
            },
            App::Mediawiki => AppSpec {
                layer_functions: vec![34, 104, 312, 936, 1850],
                jit_frac: 0.45,
                kernel_funcs: 12,
                kernel_call_prob: 0.10,
                indirect_call_frac: 0.20,
                path_noise: 0.04,
                num_phases: 5,
                ..base
            },
            App::Tomcat => AppSpec {
                layer_functions: vec![28, 84, 240, 720, 1400],
                strong_bias_frac: 0.85,
                phase_sensitive_frac: 0.28,
                path_noise: 0.05,
                requests_per_phase: 22,
                ..base
            },
            App::Verilator => AppSpec {
                // Generated hardware-model code: huge, highly sequential,
                // extremely deterministic (the evaluation loop runs the
                // same basic blocks every cycle), so Ripple can cover and
                // time nearly every ideal eviction (98.7 % coverage,
                // 99.9 % accuracy in the paper).
                layer_functions: vec![36, 120, 360, 1080, 2100],
                blocks_per_fn: Range::new(4, 8),
                instrs_per_block: Range::new(10, 24),
                call_density: 0.5,
                indirect_call_frac: 0.02,
                cond_frac: 0.35,
                loop_frac: 0.05,
                strong_bias_frac: 0.995,
                phase_sensitive_frac: 0.03,
                indirect_jump_frac: 0.01,
                num_phases: 2,
                requests_per_phase: 10,
                hot_handler_frac: 0.12,
                hot_handler_weight: 50.0,
                variants_per_handler: 1,
                path_noise: 0.005,
                kernel_funcs: 2,
                kernel_call_prob: 0.01,
                ..base
            },
            App::Wordpress => AppSpec {
                layer_functions: vec![38, 112, 330, 990, 1950],
                jit_frac: 0.50,
                kernel_funcs: 14,
                kernel_call_prob: 0.11,
                indirect_call_frac: 0.22,
                path_noise: 0.04,
                num_phases: 5,
                requests_per_phase: 26,
                ..base
            },
        }
    }
}

impl fmt::Display for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;

    #[test]
    fn all_specs_validate() {
        for app in App::ALL {
            app.spec().validate();
        }
    }

    #[test]
    fn names_match_paper_order() {
        let names: Vec<_> = App::ALL.iter().map(|a| a.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "figure order is alphabetical");
    }

    #[test]
    fn jit_flags() {
        assert!(App::Drupal.has_jit());
        assert!(App::Mediawiki.has_jit());
        assert!(App::Wordpress.has_jit());
        assert!(!App::Verilator.has_jit());
        assert!(!App::Cassandra.has_jit());
    }

    #[test]
    fn hhvm_apps_generate_jit_functions() {
        let app = generate(&App::Drupal.spec());
        let jit = app
            .program
            .functions()
            .iter()
            .filter(|f| f.kind() == ripple_program::CodeKind::Jit)
            .count();
        assert!(jit > 0, "drupal must contain jit functions");
    }

    #[test]
    fn verilator_is_largest() {
        // Compare static instruction bytes without generating full
        // programs for all apps (cheap proxy: layer sizes × block sizes).
        let weight = |a: App| {
            let s = a.spec();
            let fns: u32 = s.layer_functions.iter().sum();
            let avg_block = (s.instrs_per_block.min + s.instrs_per_block.max) as u64 / 2;
            u64::from(fns) * avg_block * u64::from(s.blocks_per_fn.max)
        };
        for app in App::ALL {
            if app != App::Verilator {
                assert!(weight(App::Verilator) > weight(app), "{app}");
            }
        }
    }
}
