//! Synthetic data center applications for the Ripple reproduction.
//!
//! The paper evaluates Ripple on nine real data center applications
//! (HHVM/PHP sites, JVM services, Verilator). Those cannot be executed or
//! traced here, so this crate generates *synthetic* applications whose
//! instruction-supply behaviour mirrors what the paper relies on:
//! multi-megabyte instruction footprints, deep layered call graphs,
//! request-driven execution with phase-shifting working sets, biased and
//! phase-sensitive branches, indirect calls, JIT code regions (for the
//! HHVM trio) and kernel helpers.
//!
//! * [`AppSpec`] — the generative knobs;
//! * [`App`] — the nine paper applications as presets;
//! * [`generate`] — deterministic program + [`ExecModel`] construction;
//! * [`Executor`] / [`execute`] — request-driven execution producing a
//!   [`BbTrace`](ripple_trace::BbTrace);
//! * [`InputConfig`] — load-generator inputs #0–#3 for the Fig. 13 study.
//!
//! # Examples
//!
//! ```
//! use ripple_workloads::{execute, generate, AppSpec, InputConfig};
//!
//! let app = generate(&AppSpec::tiny(42));
//! let trace = execute(&app.program, &app.model, InputConfig::training(42), 10_000);
//! assert!(trace.dynamic_instruction_count(&app.program) >= 10_000);
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_debug_implementations)]

mod apps;
mod exec;
mod generate;
mod input;
mod model;
mod spec;

pub use apps::App;
pub use exec::{execute, Executor};
pub use generate::{generate, Application};
pub use input::InputConfig;
pub use model::{BranchSite, ExecModel, IndirectSite};
pub use spec::{AppSpec, Range};
