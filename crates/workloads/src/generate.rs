//! Deterministic generation of a synthetic application from an [`AppSpec`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ripple_program::{
    BlockId, CodeKind, FuncId, Instruction, Program, ProgramBuilder, ValidateProgramError,
};

use crate::model::{BranchSite, ExecModel, IndirectSite};
use crate::spec::{AppSpec, Range};

/// A generated application: its static program plus the dynamic execution
/// model driving branch outcomes, indirect targets and request dispatch.
#[derive(Debug, Clone)]
pub struct Application {
    /// The application's name (from the spec).
    pub name: String,
    /// The static program.
    pub program: Program,
    /// The dynamic execution model.
    pub model: ExecModel,
}

fn sample(rng: &mut StdRng, r: Range) -> u32 {
    rng.gen_range(r.min..=r.max)
}

/// Generates an application from `spec`, deterministically in `spec.seed`.
///
/// The static shape is a layered call graph: layer 0 functions are request
/// handlers dispatched from a synthetic event loop; call sites in layer
/// `i` target a locality window of functions in layer `i + 1` (or kernel
/// helpers). Within a function, blocks form a forward CFG with occasional
/// backward (loop) branches and indirect jumps.
///
/// # Panics
///
/// Panics if `spec` fails [`AppSpec::validate`] or generation produces an
/// invalid program (a bug, guarded by [`Program::validate`]).
// The panic is the documented contract: a generation bug, not an input
// error (`AppSpec::validate` has already vetted the spec).
#[allow(clippy::expect_used)]
pub fn generate(spec: &AppSpec) -> Application {
    try_generate(spec).expect("generated program must validate")
}

fn try_generate(spec: &AppSpec) -> Result<Application, ValidateProgramError> {
    spec.validate();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5eed_0000_0001);
    let mut b = ProgramBuilder::new();

    // Event loop: d0 dispatches a request via indirect call, d1 loops back.
    let event_loop = b.add_function("event_loop", CodeKind::Static);
    let d0 = b.add_block(event_loop);
    let d1 = b.add_block(event_loop);
    b.push_inst(d0, Instruction::other(4));
    b.push_inst(d0, Instruction::indirect_call());
    b.push_inst(d1, Instruction::jump(d0));

    // Kernel helpers: flat leaf functions.
    let mut kernel_fns: Vec<FuncId> = Vec::new();
    for k in 0..spec.kernel_funcs {
        let f = b.add_function(format!("kernel_{k}"), CodeKind::Kernel);
        let blocks = sample(&mut rng, spec.blocks_per_fn).max(1);
        build_leaf_body(&mut b, f, blocks, spec, &mut rng);
        kernel_fns.push(f);
    }

    // Layered application functions.
    let num_layers = spec.layer_functions.len();
    let mut layers: Vec<Vec<FuncId>> = Vec::with_capacity(num_layers);
    for (li, &count) in spec.layer_functions.iter().enumerate() {
        let mut fns = Vec::with_capacity(count as usize);
        for fi in 0..count {
            let jit = li > 0 && rng.gen_bool(spec.jit_frac);
            let kind = if jit { CodeKind::Jit } else { CodeKind::Static };
            let f = b.add_function(format!("l{li}_f{fi}"), kind);
            fns.push(f);
        }
        layers.push(fns);
    }

    // Bodies. Built after all functions exist so call sites can reference
    // any later-layer function id.
    let mut branch: Vec<Option<BranchSite>> = Vec::new();
    let mut indirect: Vec<Option<IndirectSite>> = Vec::new();
    // Resize lazily at the end; remember (block, site) pairs meanwhile.
    let mut branch_sites: Vec<(BlockId, BranchSite)> = Vec::new();
    let mut indirect_sites: Vec<(BlockId, Vec<FuncIdOrBlock>)> = Vec::new();

    enum FuncIdOrBlock {
        Func(FuncId),
        Block(BlockId),
    }

    for (li, fns) in layers.iter().enumerate() {
        let next_layer: Option<&[FuncId]> = layers.get(li + 1).map(|v| v.as_slice());
        for (fi, &f) in fns.iter().enumerate() {
            let nblocks = sample(&mut rng, spec.blocks_per_fn).max(2) as usize;
            let blocks: Vec<BlockId> = (0..nblocks).map(|_| b.add_block(f)).collect();

            // Locality window of callees in the next layer: each function
            // owns a mostly-disjoint contiguous slice (tiled with ~25 %
            // overlap with its neighbour). Disjoint subtrees make the
            // per-phase hot working set scale with the number of hot
            // handlers, which is what overwhelms the L1I in real data
            // center services.
            let window: Vec<FuncId> = match next_layer {
                Some(next) => {
                    let base_w = next.len() / fns.len().max(1);
                    let w = base_w.clamp(2, 40).min(next.len());
                    let start = (fi * next.len() / fns.len().max(1)).min(next.len() - w);
                    next[start..start + w].to_vec()
                }
                None => Vec::new(),
            };

            for (bi, &blk) in blocks.iter().enumerate() {
                let is_last = bi + 1 == nblocks;
                // Body instructions.
                let count = sample(&mut rng, spec.instrs_per_block).max(1);
                for _ in 0..count {
                    let sz = sample(&mut rng, spec.instr_bytes).clamp(1, 15) as u8;
                    b.push_inst(blk, Instruction::other(sz));
                }
                if is_last {
                    b.push_inst(blk, Instruction::ret());
                    continue;
                }
                // Terminator selection.
                let can_call = !window.is_empty() || !kernel_fns.is_empty();
                if can_call && rng.gen_bool(spec.call_density) {
                    let use_kernel = !kernel_fns.is_empty()
                        && (window.is_empty() || rng.gen_bool(spec.kernel_call_prob));
                    if use_kernel {
                        let callee = kernel_fns[rng.gen_range(0..kernel_fns.len())];
                        b.push_inst(blk, Instruction::call(callee));
                    } else if rng.gen_bool(spec.indirect_call_frac) {
                        let fanout = (sample(&mut rng, spec.indirect_fanout) as usize)
                            .clamp(2, window.len().max(2));
                        let mut targets = Vec::with_capacity(fanout);
                        for _ in 0..fanout.min(window.len()) {
                            targets
                                .push(FuncIdOrBlock::Func(window[rng.gen_range(0..window.len())]));
                        }
                        if targets.is_empty() {
                            // No next layer: degrade to a direct kernel call
                            // or plain fall-through.
                            b.push_inst(blk, Instruction::other(2));
                        } else {
                            b.push_inst(blk, Instruction::indirect_call());
                            indirect_sites.push((blk, targets));
                        }
                    } else {
                        let callee = window[rng.gen_range(0..window.len())];
                        b.push_inst(blk, Instruction::call(callee));
                    }
                } else if rng.gen_bool(spec.cond_frac) {
                    // Conditional branch: backward (loop) or forward (skip).
                    // Loops are confined to leaf functions: a loop around a
                    // call site would re-execute the whole callee subtree,
                    // collapsing the instruction working set into a few
                    // lines (real service stacks loop in leaf parsing/
                    // serialization code, not around RPC layers).
                    let is_leaf_layer = li + 1 == num_layers;
                    let backward = bi > 0 && is_leaf_layer && rng.gen_bool(spec.loop_frac);
                    let (target, site) = if backward {
                        let t = blocks[rng.gen_range(0..bi)];
                        (
                            t,
                            BranchSite {
                                bias: spec.loop_continue_prob,
                                phase_sensitive: false,
                                backward: true,
                            },
                        )
                    } else {
                        let hi = nblocks - 1;
                        let lo = bi + 1;
                        let t = blocks[rng.gen_range(lo..=hi)];
                        let strong = rng.gen_bool(spec.strong_bias_frac);
                        let base = if strong { 0.97 } else { 0.6 };
                        let bias = if rng.gen_bool(0.5) { base } else { 1.0 - base };
                        (
                            t,
                            BranchSite {
                                bias,
                                phase_sensitive: rng.gen_bool(spec.phase_sensitive_frac),
                                backward: false,
                            },
                        )
                    };
                    if target == blk {
                        // Self-loop guard: treat as backward loop to self.
                        branch_sites.push((
                            blk,
                            BranchSite {
                                bias: spec.loop_continue_prob,
                                phase_sensitive: false,
                                backward: true,
                            },
                        ));
                    } else {
                        branch_sites.push((blk, site));
                    }
                    b.push_inst(blk, Instruction::cond_branch(target));
                } else if nblocks > bi + 2 && rng.gen_bool(spec.indirect_jump_frac) {
                    // Indirect jump (switch): 2..=4 forward targets.
                    let fanout = rng.gen_range(2..=4usize);
                    let mut targets = Vec::with_capacity(fanout);
                    for _ in 0..fanout {
                        let t = blocks[rng.gen_range(bi + 1..nblocks)];
                        targets.push(FuncIdOrBlock::Block(t));
                    }
                    b.push_inst(blk, Instruction::indirect_jump());
                    indirect_sites.push((blk, targets));
                } else {
                    // Fall-through: nothing to push.
                }
            }
        }
    }

    // The dispatch site targets every handler.
    indirect_sites.push((
        d0,
        layers[0].iter().map(|&f| FuncIdOrBlock::Func(f)).collect(),
    ));

    let program = b.finish(event_loop)?;
    let handlers: Vec<BlockId> = layers[0]
        .iter()
        .map(|&f| program.function(f).entry())
        .collect();

    // Densify side tables now that block count is final.
    branch.resize(program.num_blocks(), None);
    indirect.resize(program.num_blocks(), None);
    for (blk, site) in branch_sites {
        branch[blk.index()] = Some(site);
    }
    for (blk, targets) in indirect_sites {
        let resolved: Vec<BlockId> = targets
            .into_iter()
            .map(|t| match t {
                FuncIdOrBlock::Func(f) => program.function(f).entry(),
                FuncIdOrBlock::Block(bb) => bb,
            })
            .collect();
        indirect[blk.index()] = Some(IndirectSite { targets: resolved });
    }

    let hot =
        ((handlers.len() as f64 * spec.hot_handler_frac).round() as usize).clamp(1, handlers.len());
    let model = ExecModel {
        branch,
        indirect,
        handlers,
        dispatch_block: d0,
        num_phases: spec.num_phases,
        requests_per_phase: spec.requests_per_phase,
        hot_handlers: hot,
        hot_handler_weight: spec.hot_handler_weight,
        variants: spec.variants_per_handler.max(1),
        path_noise: spec.path_noise,
    };

    Ok(Application {
        name: spec.name.clone(),
        program,
        model,
    })
}

fn build_leaf_body(
    b: &mut ProgramBuilder,
    f: FuncId,
    blocks: u32,
    spec: &AppSpec,
    rng: &mut StdRng,
) {
    let n = blocks.max(1);
    for bi in 0..n {
        let blk = b.add_block(f);
        let count = sample(rng, spec.instrs_per_block).max(1);
        for _ in 0..count {
            let sz = sample(rng, spec.instr_bytes).clamp(1, 15) as u8;
            b.push_inst(blk, Instruction::other(sz));
        }
        if bi + 1 == n {
            b.push_inst(blk, Instruction::ret());
        }
    }
}
