//! The dynamic execution model that accompanies a generated program.

use ripple_program::BlockId;

/// Behaviour of one conditional branch site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchSite {
    /// Base probability the branch is taken.
    pub bias: f64,
    /// Whether the bias flips with the program phase.
    pub phase_sensitive: bool,
    /// Whether this is a backward (loop) branch; loop branches keep their
    /// bias across phases so trip counts stay stable.
    pub backward: bool,
}

/// Behaviour of one indirect jump/call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndirectSite {
    /// Candidate successor blocks (function entries for calls, same-
    /// function blocks for jumps).
    pub targets: Vec<BlockId>,
}

/// Dynamic behaviour of a generated application: per-site branch biases and
/// indirect target sets, the request dispatch structure, and the phase
/// schedule.
///
/// Produced by [`generate`](crate::generate) together with its
/// [`Program`](ripple_program::Program); consumed by the
/// [`Executor`](crate::Executor).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecModel {
    /// Per-block conditional branch behaviour (dense; `None` when the
    /// block does not end in a conditional branch).
    pub branch: Vec<Option<BranchSite>>,
    /// Per-block indirect site behaviour.
    pub indirect: Vec<Option<IndirectSite>>,
    /// Entry blocks of the request handlers (dispatch targets of the event
    /// loop).
    pub handlers: Vec<BlockId>,
    /// Block holding the event loop's dispatching indirect call.
    pub dispatch_block: BlockId,
    /// Number of phases the application cycles through.
    pub num_phases: u64,
    /// Requests per phase.
    pub requests_per_phase: u64,
    /// Number of handlers that are hot in any given phase.
    pub hot_handlers: usize,
    /// Relative selection weight of a hot handler.
    pub hot_handler_weight: f64,
    /// Request variants per handler (deterministic paths).
    pub variants: u32,
    /// Per-decision deviation probability from the variant's fixed path.
    pub path_noise: f64,
}

impl ExecModel {
    /// The phase in effect while serving request number `request`.
    #[inline]
    pub fn phase_of(&self, request: u64) -> u64 {
        (request / self.requests_per_phase) % self.num_phases
    }

    /// The branch site for `block`, if it ends in a conditional branch.
    #[inline]
    pub fn branch_site(&self, block: BlockId) -> Option<&BranchSite> {
        self.branch.get(block.index()).and_then(|s| s.as_ref())
    }

    /// The indirect site for `block`, if it ends in an indirect transfer.
    #[inline]
    pub fn indirect_site(&self, block: BlockId) -> Option<&IndirectSite> {
        self.indirect.get(block.index()).and_then(|s| s.as_ref())
    }

    /// Effective taken probability of a branch site during `phase`.
    ///
    /// Phase-sensitive forward branches flip their bias on odd
    /// (site-relative) phases, which is what makes the same cache line
    /// cache-friendly in one phase and cache-averse in another (§II-D).
    pub fn effective_bias(&self, block: BlockId, site: &BranchSite, phase: u64) -> f64 {
        if site.phase_sensitive && !site.backward {
            let flip = (phase.wrapping_add(u64::from(block.get()))) % 2 == 1;
            if flip {
                1.0 - site.bias
            } else {
                site.bias
            }
        } else {
            site.bias
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ExecModel {
        ExecModel {
            branch: vec![
                Some(BranchSite {
                    bias: 0.9,
                    phase_sensitive: true,
                    backward: false,
                }),
                None,
            ],
            indirect: vec![None, None],
            handlers: vec![BlockId::new(1)],
            dispatch_block: BlockId::new(0),
            num_phases: 3,
            requests_per_phase: 10,
            hot_handlers: 1,
            hot_handler_weight: 4.0,
            variants: 2,
            path_noise: 0.05,
        }
    }

    #[test]
    fn phase_schedule() {
        let m = model();
        assert_eq!(m.phase_of(0), 0);
        assert_eq!(m.phase_of(9), 0);
        assert_eq!(m.phase_of(10), 1);
        assert_eq!(m.phase_of(29), 2);
        assert_eq!(m.phase_of(30), 0);
    }

    #[test]
    fn phase_sensitive_bias_flips() {
        let m = model();
        let site = m.branch_site(BlockId::new(0)).copied().unwrap();
        let b0 = m.effective_bias(BlockId::new(0), &site, 0);
        let b1 = m.effective_bias(BlockId::new(0), &site, 1);
        assert!((b0 - (1.0 - b1)).abs() < 1e-9);
    }

    #[test]
    fn backward_branches_keep_bias() {
        let m = model();
        let site = BranchSite {
            bias: 0.7,
            phase_sensitive: true,
            backward: true,
        };
        for phase in 0..4 {
            assert_eq!(m.effective_bias(BlockId::new(0), &site, phase), 0.7);
        }
    }

    #[test]
    fn missing_sites_are_none() {
        let m = model();
        assert!(m.branch_site(BlockId::new(1)).is_none());
        assert!(m.indirect_site(BlockId::new(0)).is_none());
        assert!(m.branch_site(BlockId::new(99)).is_none());
    }
}
