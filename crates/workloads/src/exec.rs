//! Request-driven execution of a generated application.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ripple_program::{BlockId, Program, Successors};
use ripple_trace::BbTrace;

use crate::input::InputConfig;
use crate::model::ExecModel;

/// Executes an application's program under its [`ExecModel`], producing
/// the dynamic basic-block trace.
///
/// The executor mimics a server's steady state: an event loop dispatches
/// requests to handlers (weighted by the current phase), handlers descend
/// the layered call graph, and branch outcomes follow per-site biases.
/// Execution is fully deterministic in `(model, input)`.
#[derive(Debug)]
pub struct Executor<'a> {
    program: &'a Program,
    model: &'a ExecModel,
    input: InputConfig,
    rng: StdRng,
    call_stack: Vec<BlockId>,
    current: BlockId,
    request: u64,
    instructions: u64,
    /// Variant of the in-flight request (fixed control-flow path).
    variant: u64,
    /// Per-request loop trip counters, keyed by loop-branch block.
    loop_visits: std::collections::HashMap<BlockId, u32>,
}

/// SplitMix64: cheap, well-mixed hash for deterministic path decisions.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl<'a> Executor<'a> {
    /// Creates an executor positioned at the program entry.
    pub fn new(program: &'a Program, model: &'a ExecModel, input: InputConfig) -> Self {
        let rng = StdRng::seed_from_u64(input.seed ^ 0x00c0_ffee);
        Executor {
            program,
            model,
            input,
            rng,
            call_stack: Vec::new(),
            current: program.entry_block(),
            request: 0,
            instructions: 0,
            variant: 0,
            loop_visits: std::collections::HashMap::new(),
        }
    }

    /// Number of original (non-injected) instructions executed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Number of requests dispatched so far.
    pub fn requests(&self) -> u64 {
        self.request
    }

    fn phase(&self) -> u64 {
        let scaled = self
            .model
            .requests_per_phase
            .saturating_mul(self.input.phase_length_scale.max(1));
        (self.request / scaled) % self.model.num_phases
    }

    /// Picks the handler (and request variant) for the next request.
    ///
    /// A server at steady load sees a near-periodic interleaving of its
    /// hot request types, so the executor round-robins over the phase's
    /// hot set, cycling the variant each full rotation; a
    /// `1 / hot_handler_weight` fraction of requests instead goes to a
    /// random cold handler. Hot handlers are spread across the handler
    /// space (stride) so their mostly-disjoint callee subtrees add up to
    /// a working set far larger than the L1I. The hot set rotates with
    /// the phase — the reuse-distance variance of §II-D.
    fn pick_handler(&mut self) -> BlockId {
        let n = self.model.handlers.len();
        let hot = self.model.hot_handlers.min(n);
        let phase = self.phase();
        let offset = ((phase as usize) + self.input.handler_skew as usize * (hot / 2 + 1)) % n;
        let spread = (n / hot).max(1);
        let cold_prob = (1.0 / self.model.hot_handler_weight).clamp(0.0, 1.0);
        if n > hot && self.rng.gen_bool(cold_prob) {
            self.variant = u64::from(self.rng.gen_range(0..self.model.variants));
            let cold = self.rng.gen_range(0..n - hot);
            return self.model.handlers[(offset + hot * spread + cold) % n];
        }
        let r = self.request as usize;
        let slot = r % hot;
        self.variant = ((r / hot) as u64) % u64::from(self.model.variants);
        self.model.handlers[(offset + slot * spread) % n]
    }

    /// Advances execution by one block and returns it; the first call
    /// returns the entry block.
    pub fn step(&mut self) -> BlockId {
        let out = self.current;
        self.instructions += self.program.block(out).original_instructions().len() as u64;
        self.current = self.next_block(out);
        out
    }

    /// A deterministic per-(site, variant) draw in [0, 1).
    #[inline]
    fn site_draw(&self, block: BlockId) -> f64 {
        let h = mix(u64::from(block.get()) ^ (self.variant << 32));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    // Structural invariant of the synthetic model: execution starts in
    // the event loop and every return matches a recorded call, so an
    // empty stack on `Return` is unreachable on a validated model.
    #[allow(clippy::expect_used)]
    fn next_block(&mut self, current: BlockId) -> BlockId {
        match self.program.successors(current) {
            Successors::Cond { taken, not_taken } => {
                let site =
                    self.model
                        .branch_site(current)
                        .copied()
                        .unwrap_or(crate::model::BranchSite {
                            bias: 0.5,
                            phase_sensitive: false,
                            backward: false,
                        });
                let bias = self.model.effective_bias(current, &site, self.phase());
                let taken_now = if site.backward {
                    // Loop: fixed per-(site, variant) trip count with a
                    // geometric tail beyond the deterministic part.
                    let trips = 1 + (mix(u64::from(current.get()) ^ self.variant) % 3) as u32;
                    let v = self.loop_visits.entry(current).or_insert(0);
                    *v += 1;
                    if *v < trips {
                        true
                    } else {
                        *v = 0;
                        self.rng.gen_bool(self.model.path_noise)
                    }
                } else if self.rng.gen_bool(self.model.path_noise) {
                    // Path noise: a genuinely unpredictable decision.
                    self.rng.gen_bool(0.5)
                } else {
                    // The variant's fixed outcome: deterministic draw
                    // against the (phase-modulated) bias.
                    self.site_draw(current) < bias.clamp(0.0, 1.0)
                };
                if taken_now {
                    taken
                } else {
                    not_taken
                }
            }
            Successors::Jump(t) => t,
            Successors::Fallthrough(t) => t,
            Successors::Call { callee, return_to } => {
                self.call_stack.push(return_to);
                callee
            }
            Successors::IndirectCall { return_to } => {
                self.call_stack.push(return_to);
                if current == self.model.dispatch_block {
                    self.request += 1;
                    self.loop_visits.clear();
                    self.pick_handler()
                } else {
                    self.pick_indirect(current)
                }
            }
            Successors::Indirect => self.pick_indirect(current),
            Successors::Return => self
                .call_stack
                .pop()
                .expect("return with empty call stack; event loop never returns"),
        }
    }

    /// Indirect target choice: fixed per (site, variant, phase) — the
    /// vtable dispatch a given request type performs is deterministic —
    /// with `path_noise` deviations. Still hard to *prefetch* (the BTB
    /// only remembers one target per site), but statistically regular, the
    /// combination Ripple's cue analysis exploits (§II-C Observation #2).
    // The generator registers a site model for every indirect terminator
    // it emits (see `generate`), so the lookup cannot miss.
    #[allow(clippy::expect_used)]
    fn pick_indirect(&mut self, site_block: BlockId) -> BlockId {
        let site = self
            .model
            .indirect_site(site_block)
            .expect("indirect terminator without a site model");
        let k = site.targets.len();
        debug_assert!(k > 0);
        if self.rng.gen_bool(self.model.path_noise) {
            return site.targets[self.rng.gen_range(0..k)];
        }
        let h = mix(u64::from(site_block.get())
            ^ (self.variant << 24)
            ^ (self.phase() << 48)
            ^ (u64::from(self.input.handler_skew) << 56));
        site.targets[(h % k as u64) as usize]
    }

    /// Runs until at least `budget_instructions` original instructions
    /// have executed, returning the block trace.
    pub fn run(mut self, budget_instructions: u64) -> BbTrace {
        let mut blocks = Vec::with_capacity((budget_instructions / 4) as usize);
        while self.instructions < budget_instructions {
            blocks.push(self.step());
        }
        BbTrace::new(blocks)
    }
}

/// Convenience: executes `app`'s program under `input` for
/// `budget_instructions`.
pub fn execute(
    program: &Program,
    model: &ExecModel,
    input: InputConfig,
    budget_instructions: u64,
) -> BbTrace {
    Executor::new(program, model, input).run(budget_instructions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use crate::spec::AppSpec;

    fn app() -> crate::generate::Application {
        generate(&AppSpec::tiny(19))
    }

    #[test]
    fn executor_counts_instructions_and_requests() {
        let a = app();
        let mut ex = Executor::new(&a.program, &a.model, InputConfig::training(19));
        while ex.instructions() < 5_000 {
            ex.step();
        }
        assert!(ex.requests() > 0, "the event loop must dispatch requests");
    }

    #[test]
    fn first_step_returns_the_entry_block() {
        let a = app();
        let mut ex = Executor::new(&a.program, &a.model, InputConfig::training(19));
        assert_eq!(ex.step(), a.program.entry_block());
    }

    #[test]
    fn trace_is_a_valid_cfg_walk() {
        let a = app();
        let trace = execute(&a.program, &a.model, InputConfig::training(19), 8_000);
        for w in trace.blocks().windows(2) {
            let ok = match a.program.successors(w[0]) {
                Successors::Cond { taken, not_taken } => w[1] == taken || w[1] == not_taken,
                Successors::Jump(t) | Successors::Fallthrough(t) => w[1] == t,
                Successors::Call { callee, .. } => w[1] == callee,
                // Indirect transfers and returns are checked by the tracer
                // round-trip tests; here just require a real block.
                Successors::IndirectCall { .. } | Successors::Indirect | Successors::Return => {
                    w[1].index() < a.program.num_blocks()
                }
            };
            assert!(ok, "illegal transition {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn hot_handlers_dominate_dispatch() {
        let a = app();
        let trace = execute(&a.program, &a.model, InputConfig::training(19), 60_000);
        let mut handler_hits = std::collections::HashMap::new();
        for w in trace.blocks().windows(2) {
            if w[0] == a.model.dispatch_block {
                *handler_hits.entry(w[1]).or_insert(0u32) += 1;
            }
        }
        let total: u32 = handler_hits.values().sum();
        let mut counts: Vec<u32> = handler_hits.values().copied().collect();
        counts.sort_unstable_by(|x, y| y.cmp(x));
        let hot = a.model.hot_handlers.min(counts.len());
        let hot_share: u32 = counts[..hot].iter().sum();
        assert!(
            f64::from(hot_share) / f64::from(total) > 0.5,
            "hot handlers must take most requests ({hot_share}/{total})"
        );
    }

    #[test]
    fn loops_terminate() {
        // A long run must never get stuck: instruction count advances.
        let a = app();
        let mut ex = Executor::new(&a.program, &a.model, InputConfig::training(19));
        let mut last = 0;
        for _ in 0..200_000 {
            ex.step();
        }
        assert!(ex.instructions() > last);
        last = ex.instructions();
        let _ = last;
    }

    #[test]
    fn variants_change_paths_deterministically() {
        let a = app();
        let t1 = execute(&a.program, &a.model, InputConfig::training(19), 20_000);
        let t2 = execute(&a.program, &a.model, InputConfig::training(19), 20_000);
        assert_eq!(t1, t2, "same input must replay identically");
    }
}
