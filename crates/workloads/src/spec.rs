//! Application specifications: the knobs that shape a synthetic data
//! center application.

use ripple_json::{object, ToJson, Value};

/// Inclusive integer range helper used by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Inclusive lower bound.
    pub min: u32,
    /// Inclusive upper bound.
    pub max: u32,
}

impl Range {
    /// Creates a range; `min` must not exceed `max`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: u32, max: u32) -> Self {
        assert!(min <= max, "range min {min} > max {max}");
        Range { min, max }
    }
}

/// Everything needed to deterministically generate one synthetic data
/// center application: its static shape (call-graph layers, block/function
/// sizes, branch mix) and its dynamic behaviour (branch biases, phase
/// structure, request mix, JIT/kernel fractions).
///
/// The nine presets on [`App`](crate::App) instantiate this to echo the
/// distinguishing features the paper reports for each application
/// (footprint, JIT fraction, branch predictability, coverage potential).
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Application name (matches the paper's figures).
    pub name: String,
    /// Base RNG seed; combined with the input seed at execution time.
    pub seed: u64,
    /// Number of functions per call-graph layer; layer 0 holds the request
    /// handlers, the last layer holds leaves.
    pub layer_functions: Vec<u32>,
    /// Blocks per function.
    pub blocks_per_fn: Range,
    /// Non-terminator instructions per block.
    pub instrs_per_block: Range,
    /// Byte size of a non-control-flow instruction.
    pub instr_bytes: Range,
    /// Probability that an eligible block ends in a call.
    pub call_density: f64,
    /// Of calls, fraction that are indirect.
    pub indirect_call_frac: f64,
    /// Number of candidate callees for an indirect call site.
    pub indirect_fanout: Range,
    /// Of non-call block endings, probability of a conditional branch
    /// (otherwise fall-through).
    pub cond_frac: f64,
    /// Of conditional branches, fraction that branch backward (loops).
    pub loop_frac: f64,
    /// Probability a loop's backward branch is taken (geometric trip
    /// count).
    pub loop_continue_prob: f64,
    /// Of forward conditional branches, fraction with a strong (0.97)
    /// taken/not-taken bias; the rest are weakly biased (0.6) and hard to
    /// predict.
    pub strong_bias_frac: f64,
    /// Fraction of branch sites whose bias flips with the program phase,
    /// creating the reuse-distance variance of §II-D.
    pub phase_sensitive_frac: f64,
    /// Of non-call, non-cond endings, fraction that are indirect jumps
    /// (switch tables).
    pub indirect_jump_frac: f64,
    /// Number of execution phases the application cycles through.
    pub num_phases: u64,
    /// Requests served before the phase advances.
    pub requests_per_phase: u64,
    /// Fraction of handlers that are hot within a given phase.
    pub hot_handler_frac: f64,
    /// Selection weight of a hot handler relative to a cold one.
    pub hot_handler_weight: f64,
    /// Fraction of non-handler functions that are JIT-compiled (address
    /// space reused; Ripple will not inject there).
    pub jit_frac: f64,
    /// Distinct request variants per handler: a (handler, variant) pair
    /// takes a fixed control-flow path through the stack (real request
    /// processing is nearly deterministic per request type), modulated by
    /// `path_noise`.
    pub variants_per_handler: u32,
    /// Probability that any single control-flow decision deviates from
    /// its variant's fixed path (cache-missy surprises, cold branches).
    pub path_noise: f64,
    /// Number of kernel functions (traced but never rewritten).
    pub kernel_funcs: u32,
    /// Probability that a call site targets a kernel function instead of
    /// the next layer.
    pub kernel_call_prob: f64,
}

impl AppSpec {
    /// A small, fast specification for tests and examples: a few dozen
    /// functions, two phases, every control-flow construct represented.
    pub fn tiny(seed: u64) -> Self {
        AppSpec {
            name: "tiny".to_string(),
            seed,
            layer_functions: vec![4, 8, 12],
            blocks_per_fn: Range::new(3, 8),
            instrs_per_block: Range::new(2, 8),
            instr_bytes: Range::new(2, 7),
            call_density: 0.35,
            indirect_call_frac: 0.2,
            indirect_fanout: Range::new(2, 4),
            cond_frac: 0.6,
            loop_frac: 0.15,
            loop_continue_prob: 0.55,
            strong_bias_frac: 0.8,
            phase_sensitive_frac: 0.25,
            indirect_jump_frac: 0.1,
            num_phases: 2,
            requests_per_phase: 16,
            hot_handler_frac: 0.5,
            hot_handler_weight: 6.0,
            jit_frac: 0.0,
            variants_per_handler: 3,
            path_noise: 0.06,
            kernel_funcs: 2,
            kernel_call_prob: 0.05,
        }
    }

    /// A small fleet-service specification: `tiny`-sized (so fleet runs
    /// over many instances stay fast) with per-index shape variation, so
    /// service 0 and service 1 of a fleet have genuinely different code
    /// footprints and miss profiles. Equal `(index, seed)` pairs produce
    /// equal specifications.
    pub fn fleet_service(index: usize, seed: u64) -> Self {
        let mix = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(index as u64);
        let mut spec = AppSpec::tiny(mix);
        spec.name = format!("svc-{index}");
        // Vary the dominant shape knobs deterministically by index.
        spec.layer_functions = match index % 4 {
            0 => vec![4, 8, 12],
            1 => vec![3, 6, 9, 12],
            2 => vec![6, 10],
            _ => vec![4, 6, 8, 10],
        };
        spec.hot_handler_frac = 0.35 + 0.1 * ((index % 3) as f64);
        spec.loop_frac = 0.1 + 0.05 * ((index % 2) as f64);
        spec.num_phases = 2 + (index % 2) as u64;
        spec
    }

    /// A randomized small specification for differential fuzzing
    /// (`ripple-check`): every knob is drawn uniformly from a slice of its
    /// validated range, sized so generation and simulation stay fast. Two
    /// equal seeds produce equal specifications.
    pub fn randomized(seed: u64) -> Self {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed_0b5e_55ed_c0de);
        fn frac(rng: &mut rand::rngs::StdRng, lo: f64, hi: f64) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + unit * (hi - lo)
        }
        let layers = rng.gen_range(2u32..=3);
        let layer_functions = (0..layers).map(|_| rng.gen_range(2u32..=8)).collect();
        let blocks_lo = rng.gen_range(2u32..=4);
        let instrs_lo = rng.gen_range(1u32..=4);
        let bytes_lo = rng.gen_range(1u32..=4);
        let fanout_lo = rng.gen_range(2u32..=3);
        let spec = AppSpec {
            name: format!("fuzz-{seed:x}"),
            seed: rng.next_u64(),
            layer_functions,
            blocks_per_fn: Range::new(blocks_lo, blocks_lo + rng.gen_range(1u32..=6)),
            instrs_per_block: Range::new(instrs_lo, instrs_lo + rng.gen_range(1u32..=8)),
            instr_bytes: Range::new(bytes_lo, bytes_lo + rng.gen_range(1u32..=6)),
            call_density: frac(&mut rng, 0.1, 0.6),
            indirect_call_frac: frac(&mut rng, 0.0, 0.5),
            indirect_fanout: Range::new(fanout_lo, fanout_lo + rng.gen_range(0u32..=3)),
            cond_frac: frac(&mut rng, 0.2, 0.8),
            loop_frac: frac(&mut rng, 0.0, 0.4),
            loop_continue_prob: frac(&mut rng, 0.3, 0.8),
            strong_bias_frac: frac(&mut rng, 0.4, 1.0),
            phase_sensitive_frac: frac(&mut rng, 0.0, 0.5),
            indirect_jump_frac: frac(&mut rng, 0.0, 0.3),
            num_phases: rng.gen_range(1u64..=3),
            requests_per_phase: rng.gen_range(4u64..=24),
            hot_handler_frac: frac(&mut rng, 0.2, 0.8),
            hot_handler_weight: frac(&mut rng, 1.0, 8.0),
            jit_frac: frac(&mut rng, 0.0, 0.3),
            variants_per_handler: rng.gen_range(1u32..=4),
            path_noise: frac(&mut rng, 0.0, 0.15),
            kernel_funcs: rng.gen_range(0u32..=3),
            kernel_call_prob: frac(&mut rng, 0.0, 0.15),
        };
        spec.validate();
        spec
    }

    /// Sanity-checks the specification's numeric ranges.
    ///
    /// # Panics
    ///
    /// Panics if probabilities fall outside `[0, 1]`, the layer list is
    /// empty, or a layer has no functions.
    pub fn validate(&self) {
        assert!(!self.layer_functions.is_empty(), "no call-graph layers");
        assert!(
            self.layer_functions.iter().all(|&n| n > 0),
            "empty call-graph layer"
        );
        for (label, p) in [
            ("call_density", self.call_density),
            ("indirect_call_frac", self.indirect_call_frac),
            ("cond_frac", self.cond_frac),
            ("loop_frac", self.loop_frac),
            ("loop_continue_prob", self.loop_continue_prob),
            ("strong_bias_frac", self.strong_bias_frac),
            ("phase_sensitive_frac", self.phase_sensitive_frac),
            ("indirect_jump_frac", self.indirect_jump_frac),
            ("hot_handler_frac", self.hot_handler_frac),
            ("path_noise", self.path_noise),
            ("jit_frac", self.jit_frac),
            ("kernel_call_prob", self.kernel_call_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{label} = {p} out of [0,1]");
        }
        assert!(self.num_phases >= 1, "need at least one phase");
        assert!(
            self.requests_per_phase >= 1,
            "need at least one request per phase"
        );
        assert!(self.hot_handler_weight >= 1.0, "hot weight must be >= 1");
        assert!(self.variants_per_handler >= 1, "need at least one variant");
    }
}

impl ToJson for Range {
    fn to_json(&self) -> Value {
        object([("min", self.min.to_json()), ("max", self.max.to_json())])
    }
}

impl ToJson for AppSpec {
    fn to_json(&self) -> Value {
        object([
            ("name", self.name.to_json()),
            ("seed", self.seed.to_json()),
            ("layer_functions", self.layer_functions.to_json()),
            ("blocks_per_fn", self.blocks_per_fn.to_json()),
            ("instrs_per_block", self.instrs_per_block.to_json()),
            ("instr_bytes", self.instr_bytes.to_json()),
            ("call_density", self.call_density.to_json()),
            ("indirect_call_frac", self.indirect_call_frac.to_json()),
            ("indirect_fanout", self.indirect_fanout.to_json()),
            ("cond_frac", self.cond_frac.to_json()),
            ("loop_frac", self.loop_frac.to_json()),
            ("loop_continue_prob", self.loop_continue_prob.to_json()),
            ("strong_bias_frac", self.strong_bias_frac.to_json()),
            ("phase_sensitive_frac", self.phase_sensitive_frac.to_json()),
            ("indirect_jump_frac", self.indirect_jump_frac.to_json()),
            ("num_phases", self.num_phases.to_json()),
            ("requests_per_phase", self.requests_per_phase.to_json()),
            ("hot_handler_frac", self.hot_handler_frac.to_json()),
            ("hot_handler_weight", self.hot_handler_weight.to_json()),
            ("jit_frac", self.jit_frac.to_json()),
            ("variants_per_handler", self.variants_per_handler.to_json()),
            ("path_noise", self.path_noise.to_json()),
            ("kernel_funcs", self.kernel_funcs.to_json()),
            ("kernel_call_prob", self.kernel_call_prob.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_spec_validates() {
        AppSpec::tiny(1).validate();
    }

    #[test]
    fn fleet_service_specs_validate_and_vary_by_index() {
        for index in 0..8 {
            let a = AppSpec::fleet_service(index, 7);
            a.validate();
            assert_eq!(a, AppSpec::fleet_service(index, 7));
        }
        assert_ne!(AppSpec::fleet_service(0, 7), AppSpec::fleet_service(1, 7));
        assert_ne!(AppSpec::fleet_service(0, 7), AppSpec::fleet_service(0, 8));
    }

    #[test]
    fn randomized_specs_validate_and_are_deterministic() {
        for seed in 0..32 {
            let a = AppSpec::randomized(seed);
            let b = AppSpec::randomized(seed);
            a.validate();
            assert_eq!(a, b);
        }
        assert_ne!(AppSpec::randomized(1), AppSpec::randomized(2));
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn bad_probability_rejected() {
        let mut s = AppSpec::tiny(1);
        s.call_density = 1.5;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "range min")]
    fn inverted_range_rejected() {
        let _ = Range::new(5, 2);
    }

    #[test]
    #[should_panic(expected = "no call-graph layers")]
    fn empty_layers_rejected() {
        let mut s = AppSpec::tiny(1);
        s.layer_functions.clear();
        s.validate();
    }
}
