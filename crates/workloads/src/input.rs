//! Input configurations for the cross-input study (paper Fig. 13).

use std::fmt;

/// One load-generator configuration.
///
/// The paper varies "the webpage, the client requests, the number of client
/// requests per second, the number of server threads, random number seeds,
/// and the size of input data" between inputs #0–#3. Here that maps to an
/// RNG seed, a rotation of the hot-handler set (different request mix) and
/// a phase-length scale (different request rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InputConfig {
    /// Input id (`0..=3` for the paper's study; any value is legal).
    pub id: u32,
    /// RNG seed for all dynamic choices.
    pub seed: u64,
    /// Rotates which handlers are hot (request-mix change).
    pub handler_skew: u32,
    /// Multiplies the phase length (request-rate change).
    pub phase_length_scale: u64,
}

impl InputConfig {
    /// The paper's input `#n` for an application-specific base seed.
    ///
    /// Input #0 is the training input used for profile collection; #1–#3
    /// are evaluation inputs with shifted request mixes, different seeds
    /// and different phase lengths.
    pub fn numbered(n: u32, base_seed: u64) -> Self {
        InputConfig {
            id: n,
            seed: base_seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(u64::from(n) * 0x1234_5678_9abc),
            handler_skew: n,
            phase_length_scale: 1 + u64::from(n % 2),
        }
    }

    /// The training input (#0).
    pub fn training(base_seed: u64) -> Self {
        Self::numbered(0, base_seed)
    }
}

impl Default for InputConfig {
    fn default() -> Self {
        Self::numbered(0, 0)
    }
}

impl fmt::Display for InputConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "input#{}", self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_differ() {
        let a = InputConfig::numbered(0, 42);
        let b = InputConfig::numbered(1, 42);
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.handler_skew, b.handler_skew);
    }

    #[test]
    fn deterministic() {
        assert_eq!(InputConfig::numbered(2, 7), InputConfig::numbered(2, 7));
    }

    #[test]
    fn display() {
        assert_eq!(InputConfig::numbered(3, 0).to_string(), "input#3");
    }
}
