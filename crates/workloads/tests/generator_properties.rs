//! Property tests: the generator must produce valid programs with the
//! advertised structure for arbitrary (sane) specifications.

use proptest::prelude::*;
use ripple_program::{CodeKind, Layout, LayoutConfig};
use ripple_workloads::{execute, generate, AppSpec, InputConfig};

fn arb_spec() -> impl Strategy<Value = AppSpec> {
    (
        any::<u64>(),
        2u32..8,
        4u32..16,
        proptest::collection::vec(3u32..24, 2..5),
        0.0f64..0.6,
        0.0f64..0.4,
        0.0f64..0.5,
        1u64..4,
    )
        .prop_map(
            |(seed, handlers, layer, layers, call_density, jit_frac, indirect, phases)| {
                let mut spec = AppSpec::tiny(seed);
                spec.layer_functions = std::iter::once(handlers)
                    .chain(layers.into_iter().map(|l| l * layer / 4 + 2))
                    .collect();
                spec.call_density = call_density;
                spec.jit_frac = jit_frac;
                spec.indirect_call_frac = indirect;
                spec.num_phases = phases;
                spec
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated programs always validate and are laid out non-trivially.
    #[test]
    fn generated_programs_validate(spec in arb_spec()) {
        let app = generate(&spec);
        prop_assert!(app.program.validate().is_ok());
        prop_assert!(app.program.num_blocks() > 0);
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        prop_assert!(layout.code_bytes() > 0);
        // Handlers are exactly the first layer's entries.
        prop_assert_eq!(app.model.handlers.len() as u32, spec.layer_functions[0]);
    }

    /// The jit fraction materializes as Jit-kind functions (layer > 0
    /// only), and kernel functions are never rewritable.
    #[test]
    fn code_kinds_follow_the_spec(spec in arb_spec()) {
        let app = generate(&spec);
        let jit = app
            .program
            .functions()
            .iter()
            .filter(|f| f.kind() == CodeKind::Jit)
            .count();
        if spec.jit_frac == 0.0 {
            prop_assert_eq!(jit, 0);
        }
        for f in app.program.functions() {
            if f.kind() == CodeKind::Kernel {
                prop_assert!(!f.kind().is_rewritable());
            }
        }
        // Handlers (layer 0) are never JIT.
        for &h in &app.model.handlers {
            let f = app.program.function(app.program.block(h).func());
            prop_assert_ne!(f.kind(), CodeKind::Jit);
        }
    }

    /// Execution always terminates within its instruction budget (+ one
    /// block) and is deterministic.
    #[test]
    fn execution_is_bounded_and_deterministic(spec in arb_spec()) {
        let app = generate(&spec);
        let budget = 5_000;
        let t1 = execute(&app.program, &app.model, InputConfig::training(1), budget);
        let t2 = execute(&app.program, &app.model, InputConfig::training(1), budget);
        prop_assert_eq!(&t1, &t2);
        let executed = t1.dynamic_instruction_count(&app.program);
        prop_assert!(executed >= budget);
        // Cannot overshoot by more than one block's worth (the largest
        // block is bounded by the spec).
        prop_assert!(executed < budget + 1_000);
    }
}
