//! Executor traces must be valid CFG walks with data-center-like
//! instruction footprints.

use ripple_program::{Layout, LayoutConfig, CACHE_LINE_BYTES};
use ripple_trace::{reconstruct_trace, record_trace};
use ripple_workloads::{execute, generate, App, AppSpec, InputConfig};

#[test]
fn tiny_trace_roundtrips_through_tracer() {
    let app = generate(&AppSpec::tiny(7));
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let trace = execute(&app.program, &app.model, InputConfig::training(7), 20_000);
    let bytes = record_trace(&app.program, &layout, trace.iter());
    let decoded = reconstruct_trace(&app.program, &layout, &bytes).expect("valid trace");
    assert_eq!(decoded, trace);
}

#[test]
fn execution_is_deterministic() {
    let app = generate(&AppSpec::tiny(9));
    let t1 = execute(&app.program, &app.model, InputConfig::training(9), 30_000);
    let t2 = execute(&app.program, &app.model, InputConfig::training(9), 30_000);
    assert_eq!(t1, t2);
}

#[test]
fn different_inputs_differ() {
    let app = generate(&AppSpec::tiny(9));
    let t0 = execute(
        &app.program,
        &app.model,
        InputConfig::numbered(0, 9),
        30_000,
    );
    let t1 = execute(
        &app.program,
        &app.model,
        InputConfig::numbered(1, 9),
        30_000,
    );
    assert_ne!(t0, t1);
}

#[test]
fn generation_is_deterministic() {
    let a = generate(&App::Kafka.spec());
    let b = generate(&App::Kafka.spec());
    assert_eq!(a.program, b.program);
    assert_eq!(a.model, b.model);
}

#[test]
fn datacenter_footprints_dwarf_the_l1i() {
    // The premise of the paper: instruction working sets are many times the
    // 32 KB L1I. Check the static footprint of every app and the dynamic
    // footprint of one representative.
    let l1i_lines = 32 * 1024 / CACHE_LINE_BYTES; // 512 lines
    for app in App::ALL {
        let gen = generate(&app.spec());
        let layout = Layout::new(&gen.program, &LayoutConfig::default());
        let static_lines = layout.footprint_lines();
        assert!(
            static_lines > 4 * l1i_lines,
            "{app}: static footprint {static_lines} lines too small"
        );
    }
    let gen = generate(&App::Cassandra.spec());
    let layout = Layout::new(&gen.program, &LayoutConfig::default());
    let trace = execute(&gen.program, &gen.model, InputConfig::training(1), 400_000);
    let dyn_lines = trace.footprint_lines(&layout);
    assert!(
        dyn_lines as u64 > 2 * l1i_lines,
        "dynamic footprint {dyn_lines} lines too small"
    );
}

#[test]
fn big_app_trace_roundtrips() {
    let gen = generate(&App::FinagleHttp.spec());
    let layout = Layout::new(&gen.program, &LayoutConfig::default());
    let trace = execute(&gen.program, &gen.model, InputConfig::training(3), 150_000);
    let bytes = record_trace(&gen.program, &layout, trace.iter());
    // PT-like compactness on a realistic workload.
    let per_block = bytes.len() as f64 / trace.len() as f64;
    assert!(per_block < 2.0, "trace too large: {per_block} B/block");
    let decoded = reconstruct_trace(&gen.program, &layout, &bytes).expect("valid");
    assert_eq!(decoded, trace);
}
