//! The end-to-end Ripple pipeline: profile → eviction analysis → injection
//! → evaluation (Fig. 4).

use std::collections::HashMap;
use std::sync::Arc;

use ripple_obs::{time_phase, NullRecorder, PhaseTimer, Recorder};
use ripple_program::{
    patch_invalidates, rewrite, BlockId, InjectionPlan, Layout, LineAddr, Program,
};
use ripple_sim::{
    simulate_ideal_cache, simulate_with_sink, EvictionEvent, EvictionMechanism, PolicyKind,
    PrefetcherKind, SimConfig, SimSession, SimStats, VecSink,
};
use ripple_trace::BbTrace;

use crate::analysis::{
    analyze, analyze_windows, Analysis, AnalysisConfig, CoverageStats, WindowSink,
};
use crate::harness::{effective_threads, run_jobs_observed, Job};
use crate::metrics::{
    eviction_accuracy, plan_accuracy, AccuracySink, AccuracyStats, LineAccessIndex, WindowIndex,
};

/// Configuration of one Ripple run.
#[derive(Debug, Clone, PartialEq)]
pub struct RippleConfig {
    /// Invalidation threshold (§III-C; the paper's per-app best values lie
    /// in 0.45..=0.65).
    pub threshold: f64,
    /// Eviction-window scan cap (see [`AnalysisConfig`]).
    pub analysis: AnalysisConfig,
    /// The underlying hardware replacement policy Ripple assists
    /// (Ripple-LRU or Ripple-Random in the paper).
    pub underlying: PolicyKind,
    /// How the injected instruction acts on the cache.
    pub mechanism: EvictionMechanism,
    /// Re-run the eviction analysis against the *final* (post-injection)
    /// layout and patch victim operands in place (the paper's link-time
    /// flow). Disable only for the ablation measuring how stale a
    /// pre-injection profile becomes.
    pub final_layout_analysis: bool,
    /// Slot-reservation generosity: slots are placed using
    /// `threshold * slot_threshold_factor` (and no per-pair recurrence
    /// floor), so the final-layout pass rarely lacks a slot where it
    /// wants one. Unassigned slots become no-op invalidations.
    pub slot_threshold_factor: f64,
    /// Simulator configuration (prefetcher, geometry, latencies).
    pub sim: SimConfig,
    /// Worker threads for the evaluation harness. Both `None` and
    /// `Some(0)` mean auto-detect (the machine's available parallelism);
    /// `--threads 0` on the CLI maps here. Results are bit-identical at
    /// any value, over-subscribed counts included.
    pub threads: Option<usize>,
}

impl Default for RippleConfig {
    fn default() -> Self {
        RippleConfig {
            threshold: 0.5,
            analysis: AnalysisConfig::default(),
            underlying: PolicyKind::Lru,
            mechanism: EvictionMechanism::Invalidate,
            final_layout_analysis: true,
            slot_threshold_factor: 0.6,
            sim: SimConfig::default(),
            threads: None,
        }
    }
}

impl RippleConfig {
    /// The ideal policy reported as the "ideal replacement" upper bound:
    /// prefetch-aware Demand-MIN whenever a prefetcher is active, plain
    /// Belady-OPT otherwise (§II-C).
    pub fn oracle(&self) -> PolicyKind {
        if self.sim.prefetcher == PrefetcherKind::None {
            PolicyKind::Opt
        } else {
            PolicyKind::DemandMin
        }
    }

    /// The oracle driving Ripple's *eviction analysis*: always Belady-OPT
    /// on demand accesses (§III-B: "mimic an ideal policy that would evict
    /// a line that will be used farthest in the future"). Demand-MIN's
    /// extra evictions are free only because a future prefetch re-fills
    /// the line; a software invalidation has no such guarantee, so cueing
    /// them mostly injects misses.
    pub fn analysis_oracle(&self) -> PolicyKind {
        PolicyKind::Opt
    }
}

/// Everything one Ripple run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RippleOutcome {
    /// Coverage bookkeeping at the chosen threshold.
    pub coverage: CoverageStats,
    /// Static invalidate instructions injected.
    pub injected_static: usize,
    /// Baseline run: original binary under the underlying policy.
    pub baseline: SimStats,
    /// Ripple run: rewritten binary under the underlying policy.
    pub ripple: SimStats,
    /// Ideal-replacement upper bound (oracle policy, original binary).
    pub ideal: SimStats,
    /// Ideal-cache (zero-miss) upper bound.
    pub ideal_cache: SimStats,
    /// Pure-LRU reference on the original binary (the paper's common
    /// baseline even for Ripple-Random).
    pub lru_reference: SimStats,
    /// Accuracy of Ripple's dynamic invalidations (Fig. 10).
    pub ripple_accuracy: AccuracyStats,
    /// Accuracy of the underlying policy's own evictions.
    pub underlying_accuracy: AccuracyStats,
    /// Static instruction overhead, percent (Fig. 11).
    pub static_overhead_pct: f64,
    /// Dynamic instruction overhead, percent (Fig. 12).
    pub dynamic_overhead_pct: f64,
}

impl RippleOutcome {
    /// Ripple's speedup over the pure-LRU baseline, percent (Fig. 7).
    pub fn speedup_pct(&self) -> f64 {
        self.ripple.speedup_pct_over(&self.lru_reference)
    }

    /// Ideal-replacement speedup over the LRU baseline, percent.
    pub fn ideal_speedup_pct(&self) -> f64 {
        self.ideal.speedup_pct_over(&self.lru_reference)
    }

    /// Ideal-cache speedup over the LRU baseline, percent (Fig. 1).
    pub fn ideal_cache_speedup_pct(&self) -> f64 {
        self.ideal_cache.speedup_pct_over(&self.lru_reference)
    }

    /// Ripple's L1I miss reduction over the LRU baseline, percent (Fig. 8).
    pub fn miss_reduction_pct(&self) -> f64 {
        self.ripple.miss_reduction_pct_over(&self.lru_reference)
    }

    /// Ideal-replacement miss reduction over LRU, percent.
    pub fn ideal_miss_reduction_pct(&self) -> f64 {
        self.ideal.miss_reduction_pct_over(&self.lru_reference)
    }
}

/// A reusable Ripple optimizer bound to one program + profiled layout.
///
/// Split from [`RippleOutcome`] so callers can run the (expensive)
/// analysis once and then evaluate several thresholds, mechanisms or
/// underlying policies — exactly what the paper's threshold sweep and
/// ablations need.
#[derive(Debug)]
pub struct Ripple<'p> {
    program: &'p Program,
    layout: &'p Layout,
    config: RippleConfig,
    analysis: Analysis,
    train_windows: WindowIndex,
    /// Observability sink for `train.*` / `eval.*` phases; propagated to
    /// every [`SimSession`] the pipeline creates. [`NullRecorder`] by
    /// default — recorders observe only and never change outcomes.
    recorder: Arc<dyn Recorder>,
}

impl<'p> Ripple<'p> {
    /// Profiles nothing itself: takes an already-collected training trace,
    /// replays the oracle over it, and builds the eviction analysis.
    pub fn train(
        program: &'p Program,
        layout: &'p Layout,
        train_trace: &BbTrace,
        config: RippleConfig,
    ) -> Self {
        Self::train_with_recorder(program, layout, train_trace, config, Arc::new(NullRecorder))
    }

    /// [`Ripple::train`] with an observability recorder attached: training
    /// reports `train.oracle_replay`, `train.cue_selection` and
    /// `train.window_index` phases, and every evaluation afterwards
    /// reports `eval.*` phases plus per-job harness timings.
    pub fn train_with_recorder(
        program: &'p Program,
        layout: &'p Layout,
        train_trace: &BbTrace,
        config: RippleConfig,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        let oracle_cfg = config.sim.clone().with_policy(config.analysis_oracle());
        let mut windows = WindowSink::new();
        let _ = time_phase(&*recorder, "train.oracle_replay", || {
            let session = SimSession::new(program, layout, train_trace, oracle_cfg.clone())
                .with_recorder(recorder.clone());
            session.run_with_sink(oracle_cfg.policy, &mut windows)
        });
        let analysis = time_phase(&*recorder, "train.cue_selection", || {
            analyze_windows(
                program,
                layout,
                train_trace,
                windows.into_windows(),
                &config.analysis,
            )
        });
        let train_windows = time_phase(&*recorder, "train.window_index", || {
            WindowIndex::build(analysis.windows())
        });
        Ripple {
            program,
            layout,
            config,
            analysis,
            train_windows,
            recorder,
        }
    }

    /// The attached observability recorder ([`NullRecorder`] unless
    /// trained via [`Ripple::train_with_recorder`]).
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// The underlying analysis (cue choices, windows).
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// The configuration this optimizer was trained with.
    pub fn config(&self) -> &RippleConfig {
        &self.config
    }

    /// Windows of the training run, indexed per line.
    pub fn train_windows(&self) -> &WindowIndex {
        &self.train_windows
    }

    /// The injection plan at the configured threshold.
    pub fn plan(&self) -> (InjectionPlan, CoverageStats) {
        self.analysis.plan_for_threshold(self.config.threshold)
    }

    /// Applies the plan and evaluates on `eval_trace` (which may be the
    /// training trace — the paper's default — or a different input's
    /// trace for the Fig. 13 study).
    pub fn evaluate(&self, eval_trace: &BbTrace) -> RippleOutcome {
        self.evaluate_with_threshold(eval_trace, self.config.threshold)
    }

    /// [`Ripple::evaluate`] at an explicit threshold (used by sweeps).
    ///
    /// The flow mirrors the paper's link-time deployment: the training
    /// analysis places invalidate *slots* (which cue blocks, how many);
    /// relinking fixes the final layout; a second analysis pass against
    /// that final layout assigns the victim operands (the binary's
    /// addresses are only meaningful once the layout is final).
    pub fn evaluate_with_threshold(&self, eval_trace: &BbTrace, threshold: f64) -> RippleOutcome {
        let (mut plan, mut coverage) = time_phase(&*self.recorder, "eval.plan", || {
            self.analysis.plan_for_threshold(threshold)
        });

        // Layout fixpoint iteration: victims are expressed as layout-
        // independent `CodeLoc`s, so a plan derived against one layout can
        // be re-applied to the pristine program. Each round relinks with
        // the current plan, re-runs the oracle on that layout, and derives
        // the next plan; by the last round the plan's own layout is (very
        // nearly) the layout it was derived against, and the residual is
        // closed by patching operands in place.
        let final_layout_timer = PhaseTimer::start(&*self.recorder);
        let rounds = if self.config.final_layout_analysis && !plan.is_empty() {
            2
        } else {
            0
        };
        let mut rewritten = rewrite(self.program, self.layout, &plan);
        let mut eval_analysis_opt = None;
        let mut final_plan = plan.clone();
        for round in 0..rounds {
            let mut oracle_cfg = self
                .config
                .sim
                .clone()
                .with_policy(self.config.analysis_oracle());
            oracle_cfg.eviction_mechanism = EvictionMechanism::NoOp;
            let mut windows_i = WindowSink::new();
            let _ = simulate_with_sink(
                &rewritten.program,
                &rewritten.layout,
                eval_trace,
                &oracle_cfg,
                &mut windows_i,
            );
            let analysis_i = analyze_windows(
                &rewritten.program,
                &rewritten.layout,
                eval_trace,
                windows_i.into_windows(),
                &self.config.analysis,
            );
            if round + 1 < rounds {
                // Intermediate round: re-place slots from this layout's
                // analysis and relink.
                let (plan_i, _) = analysis_i.plan_for_threshold(threshold);
                plan = plan_i;
                rewritten = rewrite(self.program, self.layout, &plan);
                continue;
            }
            // Final round: the layout is frozen; select cues *subject to*
            // the reserved slot budget (each window picks an eligible cue
            // that still has a free slot) and patch operands in place.
            let mut slots: HashMap<BlockId, usize> = HashMap::new();
            for block in rewritten.program.blocks() {
                if block.injected_prefix_len() > 0 {
                    slots.insert(block.id(), block.injected_prefix_len() as usize);
                }
            }
            let (plan_i, coverage_i) = analysis_i.plan_for_slots(threshold, &slots);
            let mut assignments: HashMap<BlockId, Vec<LineAddr>> = HashMap::new();
            for inj in plan_i.injections() {
                assignments
                    .entry(inj.cue)
                    .or_default()
                    .push(rewritten.layout.line_of(inj.victim));
            }
            if std::env::var("RIPPLE_DEBUG").is_ok() {
                eprintln!("    [debug] slots={} assigned={}", plan.len(), plan_i.len(),);
            }
            patch_invalidates(&mut rewritten.program, &assignments);
            coverage = coverage_i;
            final_plan = plan_i;
            eval_analysis_opt = Some(analysis_i);
        }
        let final_program = rewritten.program;
        let final_layout = rewritten.layout;
        final_layout_timer.finish(&*self.recorder, "eval.final_layout");

        // The five evaluation runs are independent simulations over two
        // binaries; they go through the shared harness as one job matrix.
        // The original binary's three runs (baseline / LRU reference /
        // ideal replacement) share one `SimSession`, so the ideal's
        // recording pass is paid at most once. The mechanism only matters
        // where invalidate instructions exist, so the original binary's
        // session can use the plain sim config for all three policies.
        let threads = effective_threads(self.config.threads);
        let session = SimSession::new(
            self.program,
            self.layout,
            eval_trace,
            self.config.sim.clone(),
        )
        .with_recorder(self.recorder.clone());
        let mut under_cfg = self.config.sim.clone().with_policy(self.config.underlying);
        under_cfg.eviction_mechanism = self.config.mechanism;
        let final_session = SimSession::new(&final_program, &final_layout, eval_trace, under_cfg)
            .with_recorder(self.recorder.clone());
        let underlying = self.config.underlying;
        let oracle = self.config.oracle();

        // When the final-layout analysis ran, the ideal windows and access
        // index exist before the runs, so the baseline's eviction accuracy
        // is scored online by an `AccuracySink` and no log is materialized.
        // Otherwise the ideal run must produce the windows first, so the
        // baseline and ideal logs are collected and scored afterwards.
        let prebuilt: Option<(WindowIndex, LineAccessIndex)> =
            eval_analysis_opt.as_ref().map(|a| {
                (
                    WindowIndex::build(a.windows()),
                    LineAccessIndex::build(&final_layout, eval_trace),
                )
            });

        enum RunOut {
            Stats(SimStats),
            Scored(SimStats, AccuracyStats),
            Logged(SimStats, Vec<EvictionEvent>),
        }
        let jobs: Vec<Job<'_, RunOut>> = vec![
            Box::new(|| match prebuilt.as_ref() {
                Some((windows, accesses)) => {
                    let mut sink = AccuracySink::new(windows, accesses);
                    let stats = session.run_with_sink(underlying, &mut sink);
                    RunOut::Scored(stats, sink.into_stats())
                }
                None => {
                    let mut sink = VecSink::new();
                    let stats = session.run_with_sink(underlying, &mut sink);
                    RunOut::Logged(stats, sink.into_events())
                }
            }),
            Box::new(|| RunOut::Stats(final_session.run(underlying))),
            Box::new(|| RunOut::Stats(session.run(PolicyKind::Lru))),
            Box::new(|| {
                if prebuilt.is_some() {
                    RunOut::Stats(session.run(oracle))
                } else {
                    let mut sink = VecSink::new();
                    let stats = session.run_with_sink(oracle, &mut sink);
                    RunOut::Logged(stats, sink.into_events())
                }
            }),
            Box::new(|| {
                RunOut::Stats(simulate_ideal_cache(
                    self.program,
                    eval_trace,
                    &self.config.sim,
                ))
            }),
        ];
        let mut outs = time_phase(&*self.recorder, "eval.sim_runs", || {
            run_jobs_observed(threads, "evaluate", &*self.recorder, jobs)
        })
        .into_iter();
        let baseline_out = outs.next().expect("baseline job");
        let ripple_stats = match outs.next().expect("ripple job") {
            RunOut::Stats(s) => s,
            _ => unreachable!("ripple job returns plain stats"),
        };
        let lru_reference = match outs.next().expect("lru job") {
            RunOut::Stats(s) => s,
            _ => unreachable!("lru job returns plain stats"),
        };
        let ideal_out = outs.next().expect("ideal job");
        let ideal_cache = match outs.next().expect("ideal-cache job") {
            RunOut::Stats(s) => s,
            _ => unreachable!("ideal-cache job returns plain stats"),
        };

        // Accuracy against ideal windows (final layout when available).
        let accuracy_timer = PhaseTimer::start(&*self.recorder);
        let (baseline, ideal, eval_windows, accesses, acc_layout, underlying_accuracy) =
            match (prebuilt, baseline_out, ideal_out) {
                (
                    Some((windows, accesses)),
                    RunOut::Scored(baseline, acc),
                    RunOut::Stats(ideal),
                ) => (baseline, ideal, windows, accesses, &final_layout, acc),
                (None, RunOut::Logged(baseline, base_log), RunOut::Logged(ideal, ideal_log)) => {
                    let eval_analysis = analyze(
                        self.program,
                        self.layout,
                        eval_trace,
                        &ideal_log,
                        &self.config.analysis,
                    );
                    let windows = WindowIndex::build(eval_analysis.windows());
                    let accesses = LineAccessIndex::build(self.layout, eval_trace);
                    let acc = eviction_accuracy(&base_log, &windows, &accesses);
                    (baseline, ideal, windows, accesses, self.layout, acc)
                }
                _ => unreachable!("job output shape follows the prebuilt-index path"),
            };
        let ripple_accuracy = plan_accuracy(
            &final_plan,
            acc_layout,
            eval_trace,
            &eval_windows,
            &accesses,
        );
        accuracy_timer.finish(&*self.recorder, "eval.accuracy");

        let static_orig = self.program.static_instruction_count();
        let static_overhead_pct = plan.len() as f64 / static_orig as f64 * 100.0;
        let dyn_orig = ripple_stats.instructions;
        let dynamic_overhead_pct = if dyn_orig == 0 {
            0.0
        } else {
            ripple_stats.invalidate_instructions as f64 / dyn_orig as f64 * 100.0
        };

        RippleOutcome {
            coverage,
            injected_static: plan.len(),
            baseline,
            ripple: ripple_stats,
            ideal,
            ideal_cache,
            lru_reference,
            ripple_accuracy,
            underlying_accuracy,
            static_overhead_pct,
            dynamic_overhead_pct,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_program::LayoutConfig;
    use ripple_workloads::{execute, generate, AppSpec, InputConfig};

    fn small_config() -> RippleConfig {
        let mut cfg = RippleConfig::default();
        // Shrink the L1I so the tiny app thrashes it, and drop the
        // recurrence filter (tiny traces rarely repeat pairs).
        cfg.sim.l1i = ripple_sim::CacheGeometry::new(2 * 1024, 4);
        cfg.analysis.min_windows_per_injection = 1;
        cfg.threshold = 0.1;
        cfg
    }

    #[test]
    fn pipeline_injects_and_reports_sane_metrics() {
        let app = generate(&AppSpec::tiny(21));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(&app.program, &app.model, InputConfig::training(21), 60_000);
        let ripple = Ripple::train(&app.program, &layout, &trace, small_config());
        let outcome = ripple.evaluate(&trace);

        assert!(outcome.coverage.total_windows > 0, "no eviction windows");
        assert!(outcome.injected_static > 0, "nothing injected");
        assert!(
            outcome.ideal.demand_misses <= outcome.baseline.demand_misses,
            "ideal must lower-bound the baseline"
        );
        assert!(
            outcome.ripple.invalidate_instructions > 0,
            "invalidates must execute"
        );
        assert!(outcome.ripple_accuracy.total > 0);
        assert!((0.0..=1.0).contains(&outcome.coverage.coverage()));
        assert!((0.0..=1.0).contains(&outcome.ripple_accuracy.accuracy()));
        assert!(outcome.static_overhead_pct > 0.0);
        assert!(outcome.dynamic_overhead_pct > 0.0);
        // The performance guarantee on calibrated workloads is asserted by
        // the integration tests; the tiny app only checks plumbing.
    }

    #[test]
    fn ordering_invariants_hold() {
        let app = generate(&AppSpec::tiny(33));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(&app.program, &app.model, InputConfig::training(33), 60_000);
        let ripple = Ripple::train(&app.program, &layout, &trace, small_config());
        let o = ripple.evaluate(&trace);
        // ideal cache >= ideal replacement >= ripple (in IPC terms).
        assert!(o.ideal_cache.ipc() >= o.ideal.ipc() - 1e-9);
        assert!(o.ideal_speedup_pct() >= o.speedup_pct() - 1.0);
        assert_eq!(o.ideal_cache.demand_misses, 0);
    }
}
