//! The end-to-end Ripple pipeline: profile → eviction analysis → injection
//! → evaluation (Fig. 4).

use std::collections::HashMap;
use std::sync::Arc;

use ripple_obs::{time_phase, NullRecorder, PhaseTimer, Recorder};
use ripple_program::{
    patch_invalidates, rewrite, rewrite_incremental, BlockId, InjectionPlan, Layout, LineAddr,
    Program,
};
use ripple_sim::{
    simulate_ideal_cache, EvictionEvent, EvictionMechanism, PlanCache, PolicyKind, PrefetcherKind,
    SimConfig, SimSession, SimStats, VecSink,
};
use ripple_trace::BbTrace;

use crate::analysis::{
    analyze, analyze_windows, Analysis, AnalysisConfig, CoverageStats, WindowSink,
};
use crate::error::{ConfigError, Error};
use crate::harness::{effective_threads, run_jobs_observed, Job};
use crate::metrics::{
    eviction_accuracy, plan_accuracy, AccuracySink, AccuracyStats, LineAccessIndex, WindowIndex,
};

/// Configuration of one Ripple run.
#[derive(Debug, Clone, PartialEq)]
pub struct RippleConfig {
    /// Invalidation threshold (§III-C; the paper's per-app best values lie
    /// in 0.45..=0.65).
    pub threshold: f64,
    /// Eviction-window scan cap (see [`AnalysisConfig`]).
    pub analysis: AnalysisConfig,
    /// The underlying hardware replacement policy Ripple assists
    /// (Ripple-LRU or Ripple-Random in the paper).
    pub underlying: PolicyKind,
    /// How the injected instruction acts on the cache.
    pub mechanism: EvictionMechanism,
    /// Re-run the eviction analysis against the *final* (post-injection)
    /// layout and patch victim operands in place (the paper's link-time
    /// flow). Disable only for the ablation measuring how stale a
    /// pre-injection profile becomes.
    pub final_layout_analysis: bool,
    /// Slot-reservation generosity: slots are placed using
    /// `threshold * slot_threshold_factor` (and no per-pair recurrence
    /// floor), so the final-layout pass rarely lacks a slot where it
    /// wants one. Unassigned slots become no-op invalidations.
    pub slot_threshold_factor: f64,
    /// Simulator configuration (prefetcher, geometry, latencies).
    pub sim: SimConfig,
    /// Worker threads for the evaluation harness. Both `None` and
    /// `Some(0)` mean auto-detect (the machine's available parallelism);
    /// `--threads 0` on the CLI maps here. Results are bit-identical at
    /// any value, over-subscribed counts included.
    pub threads: Option<usize>,
}

impl Default for RippleConfig {
    fn default() -> Self {
        RippleConfig {
            threshold: 0.5,
            analysis: AnalysisConfig::default(),
            underlying: PolicyKind::LRU,
            mechanism: EvictionMechanism::Invalidate,
            final_layout_analysis: true,
            slot_threshold_factor: 0.6,
            sim: SimConfig::default(),
            threads: None,
        }
    }
}

impl RippleConfig {
    /// Starts a validating builder seeded with the default configuration.
    pub fn builder() -> RippleConfigBuilder {
        RippleConfigBuilder {
            config: RippleConfig::default(),
        }
    }

    /// Checks every knob against its documented range, the embedded
    /// [`SimConfig`] included, returning the first violation.
    ///
    /// [`Ripple::train`] calls this, so a config assembled by struct
    /// literal is still validated before any expensive work happens.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn finite_in(
            field: &'static str,
            value: f64,
            min: f64,
            max: f64,
        ) -> Result<(), ConfigError> {
            if !value.is_finite() {
                return Err(ConfigError::NotFinite { field });
            }
            if value < min || value > max {
                return Err(ConfigError::OutOfRange {
                    field,
                    value,
                    min,
                    max,
                });
            }
            Ok(())
        }
        finite_in("threshold", self.threshold, 0.0, 1.0)?;
        finite_in(
            "slot_threshold_factor",
            self.slot_threshold_factor,
            0.0,
            1.0,
        )?;
        self.sim.validate().map_err(ConfigError::Sim)?;
        Ok(())
    }

    /// The ideal policy reported as the "ideal replacement" upper bound:
    /// prefetch-aware Demand-MIN whenever a prefetcher is active, plain
    /// Belady-OPT otherwise (§II-C).
    pub fn oracle(&self) -> PolicyKind {
        if self.sim.prefetcher == PrefetcherKind::None {
            PolicyKind::OPT
        } else {
            PolicyKind::DEMAND_MIN
        }
    }

    /// The oracle driving Ripple's *eviction analysis*: always Belady-OPT
    /// on demand accesses (§III-B: "mimic an ideal policy that would evict
    /// a line that will be used farthest in the future"). Demand-MIN's
    /// extra evictions are free only because a future prefetch re-fills
    /// the line; a software invalidation has no such guarantee, so cueing
    /// them mostly injects misses.
    pub fn analysis_oracle(&self) -> PolicyKind {
        PolicyKind::OPT
    }
}

/// Validating builder for [`RippleConfig`].
///
/// Starts from [`RippleConfig::default`], lets callers override individual
/// knobs, and checks every range in [`RippleConfigBuilder::build`] — a NaN
/// threshold or a degenerate cache geometry comes back as a
/// [`ConfigError`] instead of a panic mid-pipeline.
///
/// # Examples
///
/// ```
/// use ripple::{ConfigError, RippleConfig};
///
/// let cfg = RippleConfig::builder().threshold(0.55).build().unwrap();
/// assert_eq!(cfg.threshold, 0.55);
///
/// let err = RippleConfig::builder().threshold(f64::NAN).build();
/// assert!(matches!(err, Err(ConfigError::NotFinite { .. })));
/// ```
#[derive(Debug, Clone)]
pub struct RippleConfigBuilder {
    config: RippleConfig,
}

impl RippleConfigBuilder {
    /// Sets the invalidation threshold (must end up in `0.0..=1.0`).
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.config.threshold = threshold;
        self
    }

    /// Sets the eviction-window analysis knobs.
    pub fn analysis(mut self, analysis: AnalysisConfig) -> Self {
        self.config.analysis = analysis;
        self
    }

    /// Sets the underlying hardware replacement policy.
    pub fn underlying(mut self, underlying: PolicyKind) -> Self {
        self.config.underlying = underlying;
        self
    }

    /// Sets how injected instructions act on the cache.
    pub fn mechanism(mut self, mechanism: EvictionMechanism) -> Self {
        self.config.mechanism = mechanism;
        self
    }

    /// Enables or disables the final-layout analysis pass.
    pub fn final_layout_analysis(mut self, enabled: bool) -> Self {
        self.config.final_layout_analysis = enabled;
        self
    }

    /// Sets the slot-reservation generosity factor (`0.0..=1.0`).
    pub fn slot_threshold_factor(mut self, factor: f64) -> Self {
        self.config.slot_threshold_factor = factor;
        self
    }

    /// Sets the simulator configuration (validated as part of `build`).
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.config.sim = sim;
        self
    }

    /// Sets the evaluation-harness worker count (`None`/`Some(0)` =
    /// auto-detect).
    pub fn threads(mut self, threads: Option<usize>) -> Self {
        self.config.threads = threads;
        self
    }

    /// Validates every knob and returns the configuration.
    pub fn build(self) -> Result<RippleConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Everything one Ripple run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RippleOutcome {
    /// Coverage bookkeeping at the chosen threshold.
    pub coverage: CoverageStats,
    /// Static invalidate instructions injected.
    pub injected_static: usize,
    /// Baseline run: original binary under the underlying policy.
    pub baseline: SimStats,
    /// Ripple run: rewritten binary under the underlying policy.
    pub ripple: SimStats,
    /// Ideal-replacement upper bound (oracle policy, original binary).
    pub ideal: SimStats,
    /// Ideal-cache (zero-miss) upper bound.
    pub ideal_cache: SimStats,
    /// Pure-LRU reference on the original binary (the paper's common
    /// baseline even for Ripple-Random).
    pub lru_reference: SimStats,
    /// Accuracy of Ripple's dynamic invalidations (Fig. 10).
    pub ripple_accuracy: AccuracyStats,
    /// Accuracy of the underlying policy's own evictions.
    pub underlying_accuracy: AccuracyStats,
    /// Static instruction overhead, percent (Fig. 11).
    pub static_overhead_pct: f64,
    /// Dynamic instruction overhead, percent (Fig. 12).
    pub dynamic_overhead_pct: f64,
}

impl RippleOutcome {
    /// Ripple's speedup over the pure-LRU baseline, percent (Fig. 7).
    pub fn speedup_pct(&self) -> f64 {
        self.ripple.speedup_pct_over(&self.lru_reference)
    }

    /// Ideal-replacement speedup over the LRU baseline, percent.
    pub fn ideal_speedup_pct(&self) -> f64 {
        self.ideal.speedup_pct_over(&self.lru_reference)
    }

    /// Ideal-cache speedup over the LRU baseline, percent (Fig. 1).
    pub fn ideal_cache_speedup_pct(&self) -> f64 {
        self.ideal_cache.speedup_pct_over(&self.lru_reference)
    }

    /// Ripple's L1I miss reduction over the LRU baseline, percent (Fig. 8).
    pub fn miss_reduction_pct(&self) -> f64 {
        self.ripple.miss_reduction_pct_over(&self.lru_reference)
    }

    /// Ideal-replacement miss reduction over LRU, percent.
    pub fn ideal_miss_reduction_pct(&self) -> f64 {
        self.ideal.miss_reduction_pct_over(&self.lru_reference)
    }
}

/// A reusable Ripple optimizer bound to one program + profiled layout.
///
/// Split from [`RippleOutcome`] so callers can run the (expensive)
/// analysis once and then evaluate several thresholds, mechanisms or
/// underlying policies — exactly what the paper's threshold sweep and
/// ablations need.
#[derive(Debug)]
pub struct Ripple<'p> {
    program: &'p Program,
    layout: &'p Layout,
    config: RippleConfig,
    analysis: Analysis,
    train_windows: WindowIndex,
    /// Observability sink for `train.*` / `eval.*` phases; propagated to
    /// every [`SimSession`] the pipeline creates. [`NullRecorder`] by
    /// default — recorders observe only and never change outcomes.
    recorder: Arc<dyn Recorder>,
}

impl<'p> Ripple<'p> {
    /// Profiles nothing itself: takes an already-collected training trace,
    /// replays the oracle over it, and builds the eviction analysis.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when `config` fails
    /// [`RippleConfig::validate`]; no simulation work happens in that
    /// case.
    pub fn train(
        program: &'p Program,
        layout: &'p Layout,
        train_trace: &BbTrace,
        config: RippleConfig,
    ) -> Result<Self, Error> {
        Self::train_with_recorder(program, layout, train_trace, config, Arc::new(NullRecorder))
    }

    /// [`Ripple::train`] with an observability recorder attached: training
    /// reports `train.oracle_replay`, `train.cue_selection` and
    /// `train.window_index` phases, and every evaluation afterwards
    /// reports `eval.*` phases plus per-job harness timings.
    pub fn train_with_recorder(
        program: &'p Program,
        layout: &'p Layout,
        train_trace: &BbTrace,
        config: RippleConfig,
        recorder: Arc<dyn Recorder>,
    ) -> Result<Self, Error> {
        config.validate()?;
        let oracle_cfg = config.sim.clone().with_policy(config.analysis_oracle());
        let mut windows = WindowSink::new();
        let _ = time_phase(&*recorder, "train.oracle_replay", || {
            let session = SimSession::new(program, layout, train_trace, oracle_cfg.clone())
                .with_recorder(recorder.clone());
            session.run_with_sink(oracle_cfg.policy, &mut windows)
        });
        let analysis = time_phase(&*recorder, "train.cue_selection", || {
            analyze_windows(
                program,
                layout,
                train_trace,
                windows.into_windows(),
                &config.analysis,
            )
        });
        let train_windows = time_phase(&*recorder, "train.window_index", || {
            WindowIndex::build(analysis.windows())
        });
        Ok(Ripple {
            program,
            layout,
            config,
            analysis,
            train_windows,
            recorder,
        })
    }

    /// The attached observability recorder ([`NullRecorder`] unless
    /// trained via [`Ripple::train_with_recorder`]).
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// The underlying analysis (cue choices, windows).
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// The configuration this optimizer was trained with.
    pub fn config(&self) -> &RippleConfig {
        &self.config
    }

    /// Windows of the training run, indexed per line.
    pub fn train_windows(&self) -> &WindowIndex {
        &self.train_windows
    }

    /// The injection plan at the configured threshold.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when the configured threshold is not a
    /// finite probability (possible when the config was assembled by
    /// struct literal rather than the validating builder).
    pub fn plan(&self) -> Result<(InjectionPlan, CoverageStats), Error> {
        check_threshold(self.config.threshold)?;
        Ok(self.analysis.plan_for_threshold(self.config.threshold))
    }

    /// Applies the plan and evaluates on `eval_trace` (which may be the
    /// training trace — the paper's default — or a different input's
    /// trace for the Fig. 13 study).
    pub fn evaluate(&self, eval_trace: &BbTrace) -> Result<RippleOutcome, Error> {
        self.evaluate_with_threshold(eval_trace, self.config.threshold)
    }

    /// [`Ripple::evaluate`] at an explicit threshold (used by sweeps).
    ///
    /// The flow mirrors the paper's link-time deployment: the training
    /// analysis places invalidate *slots* (which cue blocks, how many);
    /// relinking fixes the final layout; a second analysis pass against
    /// that final layout assigns the victim operands (the binary's
    /// addresses are only meaningful once the layout is final).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for a non-finite or out-of-range
    /// `threshold` and [`Error::Job`] when an evaluation job panicked (the
    /// harness isolates the panic; sibling runs still complete).
    pub fn evaluate_with_threshold(
        &self,
        eval_trace: &BbTrace,
        threshold: f64,
    ) -> Result<RippleOutcome, Error> {
        check_threshold(threshold)?;
        let (mut plan, mut coverage) = time_phase(&*self.recorder, "eval.plan", || {
            self.analysis.plan_for_threshold(threshold)
        });

        // Layout fixpoint iteration: victims are expressed as layout-
        // independent `CodeLoc`s, so a plan derived against one layout can
        // be re-applied to the pristine program. Each round relinks with
        // the current plan, re-runs the oracle on that layout, and derives
        // the next plan; by the last round the plan's own layout is (very
        // nearly) the layout it was derived against, and the residual is
        // closed by patching operands in place.
        let final_layout_timer = PhaseTimer::start(&*self.recorder);
        let rounds = if self.config.final_layout_analysis && !plan.is_empty() {
            2
        } else {
            0
        };
        let mut rewritten = time_phase(&*self.recorder, "eval.relink", || {
            rewrite(self.program, self.layout, &plan)
        });
        let mut eval_analysis_opt = None;
        let mut final_plan = plan.clone();
        // Per-function line lists survive relinking for every function the
        // round didn't dirty; the cache from each round's session seeds the
        // next round's (and the final evaluation's) fetch-plan splice.
        let mut plan_cache: Option<PlanCache> = None;
        for round in 0..rounds {
            let mut oracle_cfg = self
                .config
                .sim
                .clone()
                .with_policy(self.config.analysis_oracle());
            oracle_cfg.eviction_mechanism = EvictionMechanism::NoOp;
            let mut windows_i = WindowSink::new();
            plan_cache = Some(time_phase(&*self.recorder, "eval.oracle_replay", || {
                let session = SimSession::new_cached(
                    &rewritten.program,
                    &rewritten.layout,
                    eval_trace,
                    oracle_cfg.clone(),
                    plan_cache.as_ref(),
                )
                .with_recorder(self.recorder.clone());
                let _ = session.run_with_sink(oracle_cfg.policy, &mut windows_i);
                session.plan_cache()
            }));
            let analysis_i = time_phase(&*self.recorder, "eval.window_analysis", || {
                analyze_windows(
                    &rewritten.program,
                    &rewritten.layout,
                    eval_trace,
                    windows_i.into_windows(),
                    &self.config.analysis,
                )
            });
            if round + 1 < rounds {
                // Intermediate round: re-place slots from this layout's
                // analysis and relink only the functions whose injected
                // prefixes changed, splicing the rest of the old layout.
                let (plan_i, _) = analysis_i.plan_for_threshold(threshold);
                rewritten = time_phase(&*self.recorder, "eval.relink", || {
                    rewrite_incremental(self.program, self.layout, &plan_i, &plan, rewritten)
                });
                plan = plan_i;
                continue;
            }
            // Final round: the layout is frozen; select cues *subject to*
            // the reserved slot budget (each window picks an eligible cue
            // that still has a free slot) and patch operands in place.
            let (plan_i, coverage_i) = time_phase(&*self.recorder, "eval.patch", || {
                let mut slots: HashMap<BlockId, usize> = HashMap::new();
                for block in rewritten.program.blocks() {
                    if block.injected_prefix_len() > 0 {
                        slots.insert(block.id(), block.injected_prefix_len() as usize);
                    }
                }
                let (plan_i, coverage_i) = analysis_i.plan_for_slots(threshold, &slots);
                let mut assignments: HashMap<BlockId, Vec<LineAddr>> = HashMap::new();
                for inj in plan_i.injections() {
                    assignments
                        .entry(inj.cue)
                        .or_default()
                        .push(rewritten.layout.line_of(inj.victim));
                }
                patch_invalidates(&mut rewritten.program, &assignments);
                (plan_i, coverage_i)
            });
            self.recorder
                .gauge("eval.slots_reserved", plan.len() as f64);
            self.recorder
                .gauge("eval.slots_assigned", plan_i.len() as f64);
            coverage = coverage_i;
            final_plan = plan_i;
            eval_analysis_opt = Some(analysis_i);
        }
        let final_program = rewritten.program;
        let final_layout = rewritten.layout;
        final_layout_timer.finish(&*self.recorder, "eval.final_layout");

        // The five evaluation runs are independent simulations over two
        // binaries; they go through the shared harness as one job matrix.
        // The original binary's three runs (baseline / LRU reference /
        // ideal replacement) share one `SimSession`, so the ideal's
        // recording pass is paid at most once. The mechanism only matters
        // where invalidate instructions exist, so the original binary's
        // session can use the plain sim config for all three policies.
        let threads = effective_threads(self.config.threads);
        let session = SimSession::new(
            self.program,
            self.layout,
            eval_trace,
            self.config.sim.clone(),
        )
        .with_recorder(self.recorder.clone());
        let mut under_cfg = self.config.sim.clone().with_policy(self.config.underlying);
        under_cfg.eviction_mechanism = self.config.mechanism;
        let final_session = SimSession::new_cached(
            &final_program,
            &final_layout,
            eval_trace,
            under_cfg,
            plan_cache.as_ref(),
        )
        .with_recorder(self.recorder.clone());
        let underlying = self.config.underlying;
        let oracle = self.config.oracle();

        // When the final-layout analysis ran, the ideal windows and access
        // index exist before the runs, so the baseline's eviction accuracy
        // is scored online by an `AccuracySink` and no log is materialized.
        // Otherwise the ideal run must produce the windows first, so the
        // baseline and ideal logs are collected and scored afterwards.
        let prebuilt: Option<(WindowIndex, LineAccessIndex)> =
            eval_analysis_opt.as_ref().map(|a| {
                (
                    WindowIndex::build(a.windows()),
                    LineAccessIndex::build(&final_layout, eval_trace),
                )
            });

        enum RunOut {
            Stats(SimStats),
            Scored(SimStats, AccuracyStats),
            Logged(SimStats, Vec<EvictionEvent>),
        }
        let jobs: Vec<Job<'_, RunOut>> = vec![
            Box::new(|| match prebuilt.as_ref() {
                Some((windows, accesses)) => {
                    let mut sink = AccuracySink::new(windows, accesses);
                    let stats = session.run_with_sink(underlying, &mut sink);
                    RunOut::Scored(stats, sink.into_stats())
                }
                None => {
                    let mut sink = VecSink::new();
                    let stats = session.run_with_sink(underlying, &mut sink);
                    RunOut::Logged(stats, sink.into_events())
                }
            }),
            Box::new(|| RunOut::Stats(final_session.run(underlying))),
            Box::new(|| RunOut::Stats(session.run(PolicyKind::LRU))),
            Box::new(|| {
                if prebuilt.is_some() {
                    RunOut::Stats(session.run(oracle))
                } else {
                    let mut sink = VecSink::new();
                    let stats = session.run_with_sink(oracle, &mut sink);
                    RunOut::Logged(stats, sink.into_events())
                }
            }),
            Box::new(|| {
                RunOut::Stats(simulate_ideal_cache(
                    self.program,
                    eval_trace,
                    &self.config.sim,
                ))
            }),
        ];
        let mut outs = time_phase(&*self.recorder, "eval.sim_runs", || {
            run_jobs_observed(threads, "evaluate", &*self.recorder, jobs)
        })?
        .into_iter();
        let mut next_out = |name: &str| {
            outs.next()
                .ok_or_else(|| Error::Internal(format!("missing {name} job output")))
        };
        let plain_stats = |out: RunOut, name: &str| match out {
            RunOut::Stats(s) => Ok(s),
            _ => Err(Error::Internal(format!(
                "{name} job returned a sink output"
            ))),
        };
        let baseline_out = next_out("baseline")?;
        let ripple_stats = plain_stats(next_out("ripple")?, "ripple")?;
        let lru_reference = plain_stats(next_out("lru")?, "lru")?;
        let ideal_out = next_out("ideal")?;
        let ideal_cache = plain_stats(next_out("ideal-cache")?, "ideal-cache")?;

        // Accuracy against ideal windows (final layout when available).
        let accuracy_timer = PhaseTimer::start(&*self.recorder);
        let (baseline, ideal, eval_windows, accesses, acc_layout, underlying_accuracy) =
            match (prebuilt, baseline_out, ideal_out) {
                (
                    Some((windows, accesses)),
                    RunOut::Scored(baseline, acc),
                    RunOut::Stats(ideal),
                ) => (baseline, ideal, windows, accesses, &final_layout, acc),
                (None, RunOut::Logged(baseline, base_log), RunOut::Logged(ideal, ideal_log)) => {
                    let eval_analysis = analyze(
                        self.program,
                        self.layout,
                        eval_trace,
                        &ideal_log,
                        &self.config.analysis,
                    );
                    let windows = WindowIndex::build(eval_analysis.windows());
                    let accesses = LineAccessIndex::build(self.layout, eval_trace);
                    let acc = eviction_accuracy(&base_log, &windows, &accesses);
                    (baseline, ideal, windows, accesses, self.layout, acc)
                }
                _ => {
                    return Err(Error::Internal(
                        "job output shape diverged from the prebuilt-index path".to_string(),
                    ))
                }
            };
        let ripple_accuracy = plan_accuracy(
            &final_plan,
            acc_layout,
            eval_trace,
            &eval_windows,
            &accesses,
        );
        accuracy_timer.finish(&*self.recorder, "eval.accuracy");

        let static_orig = self.program.static_instruction_count();
        let static_overhead_pct = plan.len() as f64 / static_orig as f64 * 100.0;
        let dyn_orig = ripple_stats.instructions;
        let dynamic_overhead_pct = if dyn_orig == 0 {
            0.0
        } else {
            ripple_stats.invalidate_instructions as f64 / dyn_orig as f64 * 100.0
        };

        Ok(RippleOutcome {
            coverage,
            injected_static: plan.len(),
            baseline,
            ripple: ripple_stats,
            ideal,
            ideal_cache,
            lru_reference,
            ripple_accuracy,
            underlying_accuracy,
            static_overhead_pct,
            dynamic_overhead_pct,
        })
    }
}

/// An explicit sweep threshold must be a finite probability.
fn check_threshold(threshold: f64) -> Result<(), Error> {
    if !threshold.is_finite() {
        return Err(Error::Config(ConfigError::NotFinite { field: "threshold" }));
    }
    if !(0.0..=1.0).contains(&threshold) {
        return Err(Error::Config(ConfigError::OutOfRange {
            field: "threshold",
            value: threshold,
            min: 0.0,
            max: 1.0,
        }));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_program::LayoutConfig;
    use ripple_workloads::{execute, generate, AppSpec, InputConfig};

    fn small_config() -> RippleConfig {
        let mut cfg = RippleConfig::default();
        // Shrink the L1I so the tiny app thrashes it, and drop the
        // recurrence filter (tiny traces rarely repeat pairs).
        cfg.sim.l1i = ripple_sim::CacheGeometry::new(2 * 1024, 4);
        cfg.analysis.min_windows_per_injection = 1;
        cfg.threshold = 0.1;
        cfg
    }

    #[test]
    fn pipeline_injects_and_reports_sane_metrics() {
        let app = generate(&AppSpec::tiny(21));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(&app.program, &app.model, InputConfig::training(21), 60_000);
        let ripple = Ripple::train(&app.program, &layout, &trace, small_config()).unwrap();
        let outcome = ripple.evaluate(&trace).unwrap();

        assert!(outcome.coverage.total_windows > 0, "no eviction windows");
        assert!(outcome.injected_static > 0, "nothing injected");
        assert!(
            outcome.ideal.demand_misses <= outcome.baseline.demand_misses,
            "ideal must lower-bound the baseline"
        );
        assert!(
            outcome.ripple.invalidate_instructions > 0,
            "invalidates must execute"
        );
        assert!(outcome.ripple_accuracy.total > 0);
        assert!((0.0..=1.0).contains(&outcome.coverage.coverage()));
        assert!((0.0..=1.0).contains(&outcome.ripple_accuracy.accuracy()));
        assert!(outcome.static_overhead_pct > 0.0);
        assert!(outcome.dynamic_overhead_pct > 0.0);
        // The performance guarantee on calibrated workloads is asserted by
        // the integration tests; the tiny app only checks plumbing.
    }

    #[test]
    fn ordering_invariants_hold() {
        let app = generate(&AppSpec::tiny(33));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(&app.program, &app.model, InputConfig::training(33), 60_000);
        let ripple = Ripple::train(&app.program, &layout, &trace, small_config()).unwrap();
        let o = ripple.evaluate(&trace).unwrap();
        // ideal cache >= ideal replacement >= ripple (in IPC terms).
        assert!(o.ideal_cache.ipc() >= o.ideal.ipc() - 1e-9);
        assert!(o.ideal_speedup_pct() >= o.speedup_pct() - 1.0);
        assert_eq!(o.ideal_cache.demand_misses, 0);
    }

    #[test]
    fn train_rejects_invalid_configs_before_any_work() {
        let app = generate(&AppSpec::tiny(21));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(&app.program, &app.model, InputConfig::training(21), 10_000);

        let mut bad = small_config();
        bad.threshold = f64::NAN;
        assert!(matches!(
            Ripple::train(&app.program, &layout, &trace, bad),
            Err(Error::Config(ConfigError::NotFinite { field: "threshold" }))
        ));

        let mut bad = small_config();
        bad.sim.warmup_fraction = 2.0;
        assert!(matches!(
            Ripple::train(&app.program, &layout, &trace, bad),
            Err(Error::Config(ConfigError::Sim(_)))
        ));
    }

    #[test]
    fn evaluate_rejects_bad_explicit_thresholds() {
        let app = generate(&AppSpec::tiny(21));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(&app.program, &app.model, InputConfig::training(21), 10_000);
        let ripple = Ripple::train(&app.program, &layout, &trace, small_config()).unwrap();
        assert!(matches!(
            ripple.evaluate_with_threshold(&trace, f64::INFINITY),
            Err(Error::Config(ConfigError::NotFinite { .. }))
        ));
        assert!(matches!(
            ripple.evaluate_with_threshold(&trace, -0.5),
            Err(Error::Config(ConfigError::OutOfRange { .. }))
        ));
    }

    #[test]
    fn builder_validates_the_embedded_sim_config() {
        assert!(RippleConfig::builder().build().is_ok());
        let mut sim = ripple_sim::SimConfig::default();
        sim.base_cpi = f64::NAN;
        assert!(matches!(
            RippleConfig::builder().sim(sim).build(),
            Err(ConfigError::Sim(_))
        ));
        assert!(matches!(
            RippleConfig::builder().slot_threshold_factor(2.0).build(),
            Err(ConfigError::OutOfRange {
                field: "slot_threshold_factor",
                ..
            })
        ));
    }
}
