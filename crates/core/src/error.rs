//! The workspace-wide error taxonomy.
//!
//! Every fallible entry point of the public API returns [`Error`]: one
//! enum whose variants wrap the substrate crates' typed errors
//! ([`DecodePacketError`], [`ReconstructError`], [`ValidateProgramError`],
//! [`JsonError`], [`SimConfigError`]) plus the failures that originate
//! here — configuration validation ([`ConfigError`]) and isolated harness
//! job failures ([`JobError`]). Source chains are preserved, so
//! `std::error::Error::source` walks from a pipeline failure down to the
//! packet byte that caused it.

use ripple_json::JsonError;
use ripple_program::ValidateProgramError;
use ripple_sim::{SimConfigError, StreamLimitError};
use ripple_trace::{DecodePacketError, ReconstructError};

/// Any failure a Ripple pipeline entry point can report.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A trace packet failed to decode.
    Decode(DecodePacketError),
    /// A packet stream failed to reconstruct against the CFG.
    Reconstruct(ReconstructError),
    /// A program failed structural validation.
    Program(ValidateProgramError),
    /// A configuration was rejected by validation.
    Config(ConfigError),
    /// An isolated harness job panicked.
    Job(JobError),
    /// A JSON document failed to parse or had the wrong shape.
    Json(JsonError),
    /// A trace produced more cache requests than the simulator's columnar
    /// capture can index (`u32` positions), detected at record time.
    StreamLimit(StreamLimitError),
    /// An internal invariant broke (always a bug; the message says which).
    Internal(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Decode(e) => write!(f, "trace packet decode failed: {e}"),
            Error::Reconstruct(e) => write!(f, "trace reconstruction failed: {e}"),
            Error::Program(e) => write!(f, "program validation failed: {e}"),
            Error::Config(e) => write!(f, "invalid configuration: {e}"),
            Error::Job(e) => write!(f, "{e}"),
            Error::Json(e) => write!(f, "{e}"),
            Error::StreamLimit(e) => write!(f, "trace too large to simulate: {e}"),
            Error::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Decode(e) => Some(e),
            Error::Reconstruct(e) => Some(e),
            Error::Program(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::Job(_) | Error::Internal(_) => None,
            Error::Json(e) => Some(e),
            Error::StreamLimit(e) => Some(e),
        }
    }
}

impl From<DecodePacketError> for Error {
    fn from(e: DecodePacketError) -> Self {
        Error::Decode(e)
    }
}

impl From<ReconstructError> for Error {
    fn from(e: ReconstructError) -> Self {
        Error::Reconstruct(e)
    }
}

impl From<ValidateProgramError> for Error {
    fn from(e: ValidateProgramError) -> Self {
        Error::Program(e)
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<SimConfigError> for Error {
    fn from(e: SimConfigError) -> Self {
        Error::Config(ConfigError::Sim(e))
    }
}

impl From<JobError> for Error {
    fn from(e: JobError) -> Self {
        Error::Job(e)
    }
}

impl From<JsonError> for Error {
    fn from(e: JsonError) -> Self {
        Error::Json(e)
    }
}

impl From<StreamLimitError> for Error {
    fn from(e: StreamLimitError) -> Self {
        Error::StreamLimit(e)
    }
}

/// Why a [`RippleConfig`] was rejected.
///
/// [`RippleConfig`]: crate::RippleConfig
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A floating-point knob was NaN or infinite.
    NotFinite {
        /// The offending field.
        field: &'static str,
    },
    /// A knob fell outside its documented range.
    OutOfRange {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// The embedded simulator configuration was rejected.
    Sim(SimConfigError),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NotFinite { field } => {
                write!(f, "config field `{field}` must be finite")
            }
            ConfigError::OutOfRange {
                field,
                value,
                min,
                max,
            } => write!(f, "config field `{field}` = {value} outside [{min}, {max}]"),
            ConfigError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

/// An isolated harness job failed: the job panicked (possibly on every
/// retry attempt) and the panic was contained by the harness instead of
/// sinking the whole batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// The batch scope the job belonged to (e.g. `"evaluate"`, `"sweep"`).
    pub scope: String,
    /// Index of the failed job within its batch.
    pub index: usize,
    /// How many times the job was attempted (1 unless retries were
    /// requested).
    pub attempts: u32,
    /// The panic payload, rendered as text (`"<non-string panic>"` when
    /// the payload was not a string).
    pub panic_message: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} of batch `{}` panicked after {} attempt{}: {}",
            self.index,
            self.scope,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.panic_message
        )
    }
}

impl std::error::Error for JobError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_chain_to_the_substrate_error() {
        use std::error::Error as _;
        let e = Error::from(ReconstructError::MissingSync);
        assert!(e.source().is_some());
        let e = Error::from(SimConfigError::NotFinite { field: "base_cpi" });
        let cfg = e.source().expect("config source");
        assert!(cfg.source().is_some(), "Sim wraps the sim error");
    }

    #[test]
    fn stream_limit_wraps_the_sim_error() {
        use std::error::Error as _;
        let e = Error::from(StreamLimitError {
            records: u64::from(u32::MAX),
        });
        assert!(e.to_string().contains("trace too large"));
        assert!(e.source().is_some());
    }

    #[test]
    fn job_error_display_counts_attempts() {
        let e = JobError {
            scope: "evaluate".into(),
            index: 3,
            attempts: 2,
            panic_message: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains("job 3") && s.contains("2 attempts") && s.contains("boom"));
    }
}
