//! Structured run reports: a [`MetricsSnapshot`] rendered as a stable
//! JSON document (`--metrics <path>` on the CLI, the CI observability
//! artifact).
//!
//! The report is versioned by [`REPORT_SCHEMA`]; [`validate_run_report`]
//! checks a parsed document against the schema and a required-phase list
//! ([`COMPARE_PHASES`] / [`PIPELINE_PHASES`]), which is what the CI job
//! runs against the artifact it uploads.

use ripple_json::{object, Value};
use ripple_obs::{MetricsSnapshot, OwnedValue};

/// Schema tag carried by every report this module emits.
pub const REPORT_SCHEMA: &str = "ripple.run_report.v1";

/// Phases a `compare` run (a policy matrix over one [`SimSession`]) must
/// report with nonzero wall time.
///
/// [`SimSession`]: ripple_sim::SimSession
pub const COMPARE_PHASES: &[&str] = &[
    "session.record",
    "session.future_index",
    "session.run",
    "frontend.warmup",
    "frontend.measure",
    "harness.batch",
    "harness.job",
];

/// Phases a full Ripple pipeline run (`optimize` / `sweep`:
/// train + evaluate) must report with nonzero wall time, on top of
/// [`COMPARE_PHASES`]'s session/frontend/harness set.
pub const PIPELINE_PHASES: &[&str] = &[
    "train.oracle_replay",
    "train.cue_selection",
    "train.window_index",
    "eval.plan",
    "eval.final_layout",
    "eval.relink",
    "eval.oracle_replay",
    "eval.window_analysis",
    "eval.patch",
    "eval.sim_runs",
    "eval.accuracy",
    "session.run",
    "frontend.warmup",
    "frontend.measure",
    "harness.batch",
    "harness.job",
];

fn owned_to_json(v: &OwnedValue) -> Value {
    match v {
        OwnedValue::U64(x) => {
            if *x <= i64::MAX as u64 {
                Value::Int(*x as i64)
            } else {
                Value::UInt(*x)
            }
        }
        OwnedValue::I64(x) => Value::Int(*x),
        OwnedValue::F64(x) => Value::Float(*x),
        OwnedValue::Str(s) => Value::Str(s.clone()),
        OwnedValue::Bool(b) => Value::Bool(*b),
    }
}

fn u64_json(x: u64) -> Value {
    if x <= i64::MAX as u64 {
        Value::Int(x as i64)
    } else {
        Value::UInt(x)
    }
}

/// Renders a metrics snapshot as a `ripple.run_report.v1` document.
///
/// Layout: `schema` / `command` / `app` at the top, then `phases` (name →
/// `{count, total_ns, max_ns}`), `counters` (name → value), `gauges`
/// (name → value) and `jobs` — one entry per `harness.job` event, each
/// carrying the batch `scope`, job index, `queue_wait_ns` and `run_ns`.
/// Key order is deterministic: snapshots sort metric names, and events
/// arrive in completion order.
pub fn run_report(command: &str, app: &str, snapshot: &MetricsSnapshot) -> Value {
    let phases = Value::Object(
        snapshot
            .phases
            .iter()
            .map(|(name, stat)| {
                (
                    name.clone(),
                    object([
                        ("count", u64_json(stat.count)),
                        ("total_ns", u64_json(stat.total_nanos)),
                        ("max_ns", u64_json(stat.max_nanos)),
                    ]),
                )
            })
            .collect(),
    );
    let counters = Value::Object(
        snapshot
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), u64_json(*value)))
            .collect(),
    );
    let gauges = Value::Object(
        snapshot
            .gauges
            .iter()
            .map(|(name, value)| (name.clone(), Value::Float(*value)))
            .collect(),
    );
    let jobs = Value::Array(
        snapshot
            .events_named("harness.job")
            .map(|event| {
                Value::Object(
                    event
                        .fields
                        .iter()
                        .map(|(name, value)| (name.clone(), owned_to_json(value)))
                        .collect(),
                )
            })
            .collect(),
    );
    object([
        ("schema", Value::Str(REPORT_SCHEMA.to_string())),
        ("command", Value::Str(command.to_string())),
        ("app", Value::Str(app.to_string())),
        ("phases", phases),
        ("counters", counters),
        ("gauges", gauges),
        ("jobs", jobs),
    ])
}

/// Validates a parsed run report: schema tag, every `required_phase`
/// present with a positive count and nonzero total wall time, and every
/// `jobs` entry carrying its per-job timings. Returns the first problem
/// found.
pub fn validate_run_report(report: &Value, required_phases: &[&str]) -> Result<(), String> {
    let schema = report
        .get("schema")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| format!("missing schema: {e}"))?;
    if schema != REPORT_SCHEMA {
        return Err(format!("schema {schema:?}, expected {REPORT_SCHEMA:?}"));
    }
    let phases = report.get("phases").map_err(|e| e.to_string())?;
    for &name in required_phases {
        let phase = phases
            .get(name)
            .map_err(|_| format!("required phase {name:?} missing"))?;
        let count = phase
            .get("count")
            .and_then(|v| v.as_u64())
            .map_err(|e| format!("phase {name:?}: {e}"))?;
        let total_ns = phase
            .get("total_ns")
            .and_then(|v| v.as_u64())
            .map_err(|e| format!("phase {name:?}: {e}"))?;
        if count == 0 {
            return Err(format!("phase {name:?} has zero count"));
        }
        if total_ns == 0 {
            return Err(format!("phase {name:?} has zero wall time"));
        }
    }
    let jobs = report
        .get("jobs")
        .and_then(|v| v.as_array().map(<[Value]>::to_vec))
        .map_err(|e| format!("missing jobs: {e}"))?;
    for (i, job) in jobs.iter().enumerate() {
        for key in ["scope", "job", "queue_wait_ns", "run_ns"] {
            if job.get(key).is_err() {
                return Err(format!("job entry {i} lacks {key:?}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_obs::{FieldValue, MetricsRecorder, Recorder};

    fn sample_snapshot() -> MetricsSnapshot {
        let m = MetricsRecorder::new();
        for name in COMPARE_PHASES {
            m.phase(name, 1_000);
        }
        m.add("session.runs", 9);
        m.gauge("threads", 4.0);
        m.event(
            "harness.job",
            &[
                ("scope", FieldValue::Str("policy_matrix")),
                ("job", FieldValue::U64(0)),
                ("queue_wait_ns", FieldValue::U64(12)),
                ("run_ns", FieldValue::U64(990)),
            ],
        );
        m.snapshot()
    }

    #[test]
    fn report_round_trips_through_ripple_json_and_validates() {
        let report = run_report("compare", "tomcat", &sample_snapshot());
        let text = report.to_pretty_string();
        let parsed = ripple_json::parse(&text).expect("report must parse");
        assert_eq!(parsed, report);
        validate_run_report(&parsed, COMPARE_PHASES).expect("sample must validate");
        assert_eq!(parsed.get("command").unwrap().as_str().unwrap(), "compare");
        let jobs = parsed.get("jobs").unwrap().as_array().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].get("queue_wait_ns").unwrap().as_u64().unwrap(), 12);
    }

    #[test]
    fn validation_rejects_missing_and_zero_phases() {
        let mut snapshot = sample_snapshot();
        snapshot.phases.retain(|(name, _)| name != "session.record");
        let report = run_report("compare", "tomcat", &snapshot);
        let err = validate_run_report(&report, COMPARE_PHASES).unwrap_err();
        assert!(err.contains("session.record"), "{err}");

        let m = MetricsRecorder::new();
        for name in COMPARE_PHASES {
            m.phase(name, 0);
        }
        let report = run_report("compare", "tomcat", &m.snapshot());
        let err = validate_run_report(&report, COMPARE_PHASES).unwrap_err();
        assert!(err.contains("zero wall time"), "{err}");
    }

    #[test]
    fn validation_rejects_wrong_schema() {
        let report = object([("schema", Value::Str("bogus.v0".into()))]);
        assert!(validate_run_report(&report, &[]).is_err());
    }

    #[test]
    fn job_entries_must_carry_timings() {
        let m = MetricsRecorder::new();
        for name in COMPARE_PHASES {
            m.phase(name, 5);
        }
        m.event("harness.job", &[("scope", FieldValue::Str("x"))]);
        let report = run_report("compare", "t", &m.snapshot());
        let err = validate_run_report(&report, COMPARE_PHASES).unwrap_err();
        assert!(err.contains("job"), "{err}");
    }
}
