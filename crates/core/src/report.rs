//! Structured run reports: a [`MetricsSnapshot`] rendered as a stable
//! JSON document (`--metrics <path>` on the CLI, the CI observability
//! artifact).
//!
//! The report is versioned by [`REPORT_SCHEMA`]; [`validate_run_report`]
//! checks a parsed document against the schema and a required-phase list
//! ([`COMPARE_PHASES`] / [`PIPELINE_PHASES`]), which is what the CI job
//! runs against the artifact it uploads.

use ripple_json::{object, Value};
use ripple_obs::{MetricsSnapshot, OwnedValue};

/// Every report schema the workspace emits, in one place: run reports
/// (this module), fleet reports (`ripple-fleet`) and lab reports
/// (`ripple-lab`) all derive their schema strings from here, and
/// `validate-metrics` dispatches on a parsed tag instead of
/// string-matching in each consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemaTag {
    /// `ripple.run_report.v1`: wall-time phase breakdown of one
    /// instrumented CLI run.
    Run,
    /// `ripple.fleet_report.v1`: deterministic per-epoch fleet figures.
    Fleet,
    /// `ripple.lab_report.v1`: deterministic experiment-grid figures.
    Lab,
}

impl SchemaTag {
    /// Every known tag, in introduction order.
    pub const ALL: [SchemaTag; 3] = [SchemaTag::Run, SchemaTag::Fleet, SchemaTag::Lab];

    /// The schema string written into (and expected in) a report's
    /// `schema` member.
    pub const fn as_str(self) -> &'static str {
        match self {
            SchemaTag::Run => "ripple.run_report.v1",
            SchemaTag::Fleet => "ripple.fleet_report.v1",
            SchemaTag::Lab => "ripple.lab_report.v1",
        }
    }

    /// Resolves a schema string.
    pub fn parse(tag: &str) -> Option<SchemaTag> {
        SchemaTag::ALL.into_iter().find(|t| t.as_str() == tag)
    }

    /// Reads and resolves a parsed report's `schema` member.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the member is missing,
    /// non-string, or names no known schema (listing the valid ones).
    pub fn of_report(report: &Value) -> Result<SchemaTag, String> {
        let tag = report
            .get("schema")
            .and_then(|s| s.as_str())
            .map_err(|e| format!("schema: {e}"))?;
        SchemaTag::parse(tag).ok_or_else(|| {
            let valid: Vec<&str> = SchemaTag::ALL.iter().map(|t| t.as_str()).collect();
            format!("unknown schema {tag:?} (known: {})", valid.join(" "))
        })
    }
}

/// Schema tag carried by every report this module emits.
pub const REPORT_SCHEMA: &str = SchemaTag::Run.as_str();

/// Note attached to a report whose caller-measured wall clock read zero
/// (a trivial run below the clock's resolution). Shares are emitted as
/// 0.0 instead of NaN/inf, and [`validate_run_report`] accepts the zero
/// wall exactly when this note explains it.
pub const ZERO_WALL_NOTE: &str =
    "wall_ns is zero (run completed below clock resolution); share_pct values emitted as 0.0";

/// Phases a `compare` run (a policy matrix over one [`SimSession`]) must
/// report with nonzero wall time.
///
/// [`SimSession`]: ripple_sim::SimSession
pub const COMPARE_PHASES: &[&str] = &[
    "session.record",
    "session.future_index",
    "session.run",
    "frontend.warmup",
    "frontend.measure",
    "harness.batch",
    "harness.job",
];

/// Phases a full Ripple pipeline run (`optimize` / `sweep`:
/// train + evaluate) must report with nonzero wall time, on top of
/// [`COMPARE_PHASES`]'s session/frontend/harness set.
pub const PIPELINE_PHASES: &[&str] = &[
    "train.oracle_replay",
    "train.cue_selection",
    "train.window_index",
    "eval.plan",
    "eval.final_layout",
    "eval.relink",
    "eval.oracle_replay",
    "eval.window_analysis",
    "eval.patch",
    "eval.sim_runs",
    "eval.accuracy",
    "session.run",
    "frontend.warmup",
    "frontend.measure",
    "harness.batch",
    "harness.job",
];

/// The top-level (mutually disjoint) phases of a `compare` run. A
/// `compare` does all its simulation inside one `policy_matrix` harness
/// batch, so `harness.batch` alone partitions the run's timed work —
/// `harness.job`, `session.*` and `frontend.*` all nest inside it (and
/// `harness.job` aggregates *per-thread* run time, which can legitimately
/// exceed wall clock under parallelism).
pub const COMPARE_TOP_PHASES: &[&str] = &["harness.batch"];

/// The top-level (mutually disjoint) phases of a pipeline run
/// (`optimize` / `sweep`). Every other reported phase nests inside one of
/// these: `eval.relink` / `eval.oracle_replay` / `eval.window_analysis` /
/// `eval.patch` inside `eval.final_layout`; `harness.batch` ⊃
/// `harness.job` ⊃ `session.run` ⊃ `frontend.*` inside `eval.sim_runs`
/// (and `session.*` inside `train.oracle_replay` for the training pass).
/// Summing *all* phase totals therefore double-counts; shares are
/// computed against a single measured root wall time instead.
pub const PIPELINE_TOP_PHASES: &[&str] = &[
    "train.oracle_replay",
    "train.cue_selection",
    "train.window_index",
    "eval.plan",
    "eval.final_layout",
    "eval.sim_runs",
    "eval.accuracy",
];

/// The disjoint top-level phase set for a report's `command` — the
/// phases whose `share_pct` values must sum to at most 100%. Commands
/// without a known phase tree (e.g. `simulate`) get an empty set, which
/// disables the share-sum gate without weakening the other checks.
pub fn top_level_phases(command: &str) -> &'static [&'static str] {
    match command {
        "compare" => COMPARE_TOP_PHASES,
        "optimize" | "sweep" => PIPELINE_TOP_PHASES,
        _ => &[],
    }
}

fn owned_to_json(v: &OwnedValue) -> Value {
    match v {
        OwnedValue::U64(x) => {
            if *x <= i64::MAX as u64 {
                Value::Int(*x as i64)
            } else {
                Value::UInt(*x)
            }
        }
        OwnedValue::I64(x) => Value::Int(*x),
        OwnedValue::F64(x) => Value::Float(*x),
        OwnedValue::Str(s) => Value::Str(s.clone()),
        OwnedValue::Bool(b) => Value::Bool(*b),
    }
}

fn u64_json(x: u64) -> Value {
    if x <= i64::MAX as u64 {
        Value::Int(x as i64)
    } else {
        Value::UInt(x)
    }
}

/// Renders a metrics snapshot as a `ripple.run_report.v1` document.
///
/// Layout: `schema` / `command` / `app` / `wall_ns` at the top, then
/// `phases` (name → `{count, total_ns, max_ns, share_pct}`), `counters`
/// (name → value), `gauges` (name → value) and `jobs` — one entry per
/// `harness.job` event, each carrying the batch `scope`, job index,
/// `queue_wait_ns` and `run_ns`. Key order is deterministic: snapshots
/// sort metric names, and events arrive in completion order.
///
/// `wall_ns` is the caller-measured wall time of the whole run — the
/// single root every `share_pct` is computed against. Phases nest
/// (`harness.batch` ⊃ `harness.job`, `eval.sim_runs` ⊃ `session.run`),
/// so dividing by the *sum* of phase totals would double-count every
/// nested level; dividing by the root wall keeps disjoint top-level
/// shares summing to ≤ 100% (see [`top_level_phases`]).
pub fn run_report(command: &str, app: &str, snapshot: &MetricsSnapshot, wall_ns: u64) -> Value {
    let share_of_wall = |total_ns: u64| {
        if wall_ns == 0 {
            0.0
        } else {
            100.0 * total_ns as f64 / wall_ns as f64
        }
    };
    let phases = Value::Object(
        snapshot
            .phases
            .iter()
            .map(|(name, stat)| {
                (
                    name.clone(),
                    object([
                        ("count", u64_json(stat.count)),
                        ("total_ns", u64_json(stat.total_nanos)),
                        ("max_ns", u64_json(stat.max_nanos)),
                        ("share_pct", Value::Float(share_of_wall(stat.total_nanos))),
                    ]),
                )
            })
            .collect(),
    );
    let counters = Value::Object(
        snapshot
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), u64_json(*value)))
            .collect(),
    );
    let gauges = Value::Object(
        snapshot
            .gauges
            .iter()
            .map(|(name, value)| (name.clone(), Value::Float(*value)))
            .collect(),
    );
    let jobs = Value::Array(
        snapshot
            .events_named("harness.job")
            .map(|event| {
                Value::Object(
                    event
                        .fields
                        .iter()
                        .map(|(name, value)| (name.clone(), owned_to_json(value)))
                        .collect(),
                )
            })
            .collect(),
    );
    let mut members = vec![
        ("schema".to_string(), Value::Str(REPORT_SCHEMA.to_string())),
        ("command".to_string(), Value::Str(command.to_string())),
        ("app".to_string(), Value::Str(app.to_string())),
        ("wall_ns".to_string(), u64_json(wall_ns)),
    ];
    if wall_ns == 0 {
        // A zero caller-measured wall (trivial run, coarse clock) must
        // stay self-describing: the guard above already emitted 0.0
        // shares instead of NaN/inf, and this note is what lets the
        // validator accept the degenerate report instead of rejecting it
        // with a confusing "zero wall" error.
        members.push(("note".to_string(), Value::Str(ZERO_WALL_NOTE.to_string())));
    }
    members.extend([
        ("phases".to_string(), phases),
        ("counters".to_string(), counters),
        ("gauges".to_string(), gauges),
        ("jobs".to_string(), jobs),
    ]);
    Value::Object(members)
}

/// Validates a parsed run report: schema tag, a positive root `wall_ns`,
/// every `required_phase` present with a positive count, nonzero total
/// wall time and a `share_pct`, disjoint top-level shares summing to at
/// most 100% (the gate against nested-phase double counting), and every
/// `jobs` entry carrying its per-job timings. Returns the first problem
/// found.
pub fn validate_run_report(report: &Value, required_phases: &[&str]) -> Result<(), String> {
    let schema = report
        .get("schema")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| format!("missing schema: {e}"))?;
    if schema != REPORT_SCHEMA {
        return Err(format!("schema {schema:?}, expected {REPORT_SCHEMA:?}"));
    }
    let wall_ns = report
        .get("wall_ns")
        .and_then(|v| v.as_u64())
        .map_err(|e| format!("missing wall_ns: {e}"))?;
    let zero_wall = wall_ns == 0;
    if zero_wall {
        // A zero wall is legal only when the report says so itself (the
        // explicit note `run_report` attaches): sub-resolution runs stay
        // valid, while a report that silently lost its wall time is still
        // rejected.
        let note = report.get("note").ok().and_then(|v| v.as_str().ok());
        if note != Some(ZERO_WALL_NOTE) {
            return Err(
                "wall_ns is zero without the explicit zero-wall note (corrupt or truncated \
                 report?)"
                    .to_string(),
            );
        }
    }
    let phases = report.get("phases").map_err(|e| e.to_string())?;
    for &name in required_phases {
        let phase = phases
            .get(name)
            .map_err(|_| format!("required phase {name:?} missing"))?;
        let count = phase
            .get("count")
            .and_then(|v| v.as_u64())
            .map_err(|e| format!("phase {name:?}: {e}"))?;
        let total_ns = phase
            .get("total_ns")
            .and_then(|v| v.as_u64())
            .map_err(|e| format!("phase {name:?}: {e}"))?;
        phase
            .get("share_pct")
            .and_then(|v| v.as_f64())
            .map_err(|e| format!("phase {name:?}: {e}"))?;
        if count == 0 {
            return Err(format!("phase {name:?} has zero count"));
        }
        // Under a declared zero root wall, phase totals below the clock's
        // resolution are expected; requiring them nonzero would reject
        // exactly the runs the note exists for.
        if total_ns == 0 && !zero_wall {
            return Err(format!("phase {name:?} has zero wall time"));
        }
    }
    // The double-count gate: the top-level phases of the report's command
    // are disjoint slices of one wall clock, so their shares can never
    // legitimately sum past 100%. A sum beyond that means shares were
    // computed against something smaller than the true root wall (the
    // historical bug: dividing by the sum of *all* phase totals, which
    // counts `harness.job` inside `harness.batch` and `session.run`
    // inside `eval.sim_runs` twice). Absent top-level phases contribute
    // nothing: the gate is one-sided by design.
    let command = report
        .get("command")
        .ok()
        .and_then(|v| v.as_str().ok())
        .unwrap_or("");
    let mut top_share_sum = 0.0f64;
    for &name in top_level_phases(command) {
        if let Ok(phase) = phases.get(name) {
            let share = phase
                .get("share_pct")
                .and_then(|v| v.as_f64())
                .map_err(|e| format!("phase {name:?}: {e}"))?;
            top_share_sum += share;
        }
    }
    if top_share_sum > 100.0 + 1e-6 {
        return Err(format!(
            "top-level phase shares sum to {top_share_sum:.1}% (> 100%): \
             share_pct was not computed against a single root wall time"
        ));
    }
    let jobs = report
        .get("jobs")
        .and_then(|v| v.as_array().map(<[Value]>::to_vec))
        .map_err(|e| format!("missing jobs: {e}"))?;
    for (i, job) in jobs.iter().enumerate() {
        for key in ["scope", "job", "queue_wait_ns", "run_ns"] {
            if job.get(key).is_err() {
                return Err(format!("job entry {i} lacks {key:?}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_obs::{FieldValue, MetricsRecorder, Recorder};

    fn sample_snapshot() -> MetricsSnapshot {
        let m = MetricsRecorder::new();
        for name in COMPARE_PHASES {
            m.phase(name, 1_000);
        }
        m.add("session.runs", 9);
        m.gauge("threads", 4.0);
        m.event(
            "harness.job",
            &[
                ("scope", FieldValue::Str("policy_matrix")),
                ("job", FieldValue::U64(0)),
                ("queue_wait_ns", FieldValue::U64(12)),
                ("run_ns", FieldValue::U64(990)),
            ],
        );
        m.snapshot()
    }

    #[test]
    fn report_round_trips_through_ripple_json_and_validates() {
        let report = run_report("compare", "tomcat", &sample_snapshot(), 10_000);
        let text = report.to_pretty_string();
        let parsed = ripple_json::parse(&text).expect("report must parse");
        assert_eq!(parsed, report);
        validate_run_report(&parsed, COMPARE_PHASES).expect("sample must validate");
        assert_eq!(parsed.get("command").unwrap().as_str().unwrap(), "compare");
        assert_eq!(parsed.get("wall_ns").unwrap().as_u64().unwrap(), 10_000);
        let jobs = parsed.get("jobs").unwrap().as_array().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].get("queue_wait_ns").unwrap().as_u64().unwrap(), 12);
    }

    #[test]
    fn shares_are_computed_against_the_root_wall_not_the_phase_sum() {
        // Seven phases of 1,000 ns each against a 10,000 ns root wall:
        // every share is 10%, even though the summed phase time (7,000 ns)
        // would have inflated each slice to ~14.3% under the old
        // sum-of-totals denominator.
        let report = run_report("compare", "tomcat", &sample_snapshot(), 10_000);
        let phases = report.get("phases").unwrap();
        for name in COMPARE_PHASES {
            let share = phases
                .get(name)
                .unwrap()
                .get("share_pct")
                .unwrap()
                .as_f64()
                .unwrap();
            assert!((share - 10.0).abs() < 1e-9, "{name}: {share}");
        }
    }

    #[test]
    fn validation_rejects_top_level_shares_past_100_pct() {
        // A wall shorter than the (single) top-level phase is exactly
        // what a wrong denominator produces: harness.batch at 1,000 ns
        // against a claimed 800 ns root wall is a 125% share.
        let report = run_report("compare", "tomcat", &sample_snapshot(), 800);
        let err = validate_run_report(&report, COMPARE_PHASES).unwrap_err();
        assert!(err.contains("> 100%"), "{err}");

        // Pipeline command: the seven disjoint train/eval slices at
        // 1,000 ns each overflow a 5,000 ns wall (140% summed) even
        // though each individual share is well under 100%.
        let m = MetricsRecorder::new();
        for name in PIPELINE_TOP_PHASES {
            m.phase(name, 1_000);
        }
        let report = run_report("sweep", "tomcat", &m.snapshot(), 5_000);
        let err = validate_run_report(&report, &[]).unwrap_err();
        assert!(err.contains("> 100%"), "{err}");
        // The same snapshot against an honest root wall passes.
        let report = run_report("sweep", "tomcat", &m.snapshot(), 7_000);
        validate_run_report(&report, &[]).expect("honest wall must validate");
    }

    #[test]
    fn zero_wall_report_carries_note_and_validates() {
        // Regression: a sub-resolution run used to produce a report the
        // validator rejected with a bare "wall_ns is zero". The report now
        // explains itself (explicit note, 0.0 shares) and validates.
        let report = run_report("compare", "tomcat", &sample_snapshot(), 0);
        assert_eq!(
            report.get("note").unwrap().as_str().unwrap(),
            ZERO_WALL_NOTE
        );
        let phases = report.get("phases").unwrap();
        for name in COMPARE_PHASES {
            let share = phases
                .get(name)
                .unwrap()
                .get("share_pct")
                .unwrap()
                .as_f64()
                .unwrap();
            assert_eq!(share, 0.0, "{name}: zero wall must yield 0.0 shares");
        }
        validate_run_report(&report, COMPARE_PHASES)
            .expect("zero-wall report with the explicit note must validate");
        // Nonzero-wall reports carry no note.
        let normal = run_report("compare", "tomcat", &sample_snapshot(), 10_000);
        assert!(normal.get("note").is_err());
    }

    #[test]
    fn validation_rejects_missing_wall_and_unexplained_zero_wall() {
        // A zero wall *without* the note (hand-edited / truncated report)
        // is still rejected.
        let mut report = run_report("compare", "tomcat", &sample_snapshot(), 0);
        if let Value::Object(members) = &mut report {
            members.retain(|(k, _)| k != "note");
        }
        let err = validate_run_report(&report, COMPARE_PHASES).unwrap_err();
        assert!(err.contains("zero-wall note"), "{err}");

        let mut report = run_report("compare", "tomcat", &sample_snapshot(), 10_000);
        if let Value::Object(members) = &mut report {
            members.retain(|(k, _)| k != "wall_ns");
        }
        let err = validate_run_report(&report, COMPARE_PHASES).unwrap_err();
        assert!(err.contains("wall_ns"), "{err}");
    }

    #[test]
    fn validation_rejects_missing_and_zero_phases() {
        let mut snapshot = sample_snapshot();
        snapshot.phases.retain(|(name, _)| name != "session.record");
        let report = run_report("compare", "tomcat", &snapshot, 10_000);
        let err = validate_run_report(&report, COMPARE_PHASES).unwrap_err();
        assert!(err.contains("session.record"), "{err}");

        let m = MetricsRecorder::new();
        for name in COMPARE_PHASES {
            m.phase(name, 0);
        }
        let report = run_report("compare", "tomcat", &m.snapshot(), 10_000);
        let err = validate_run_report(&report, COMPARE_PHASES).unwrap_err();
        assert!(err.contains("zero wall time"), "{err}");
    }

    #[test]
    fn validation_rejects_wrong_schema() {
        let report = object([("schema", Value::Str("bogus.v0".into()))]);
        assert!(validate_run_report(&report, &[]).is_err());
    }

    #[test]
    fn top_level_sets_are_subsets_of_the_required_sets() {
        for name in COMPARE_TOP_PHASES {
            assert!(COMPARE_PHASES.contains(name), "{name}");
        }
        for name in PIPELINE_TOP_PHASES {
            assert!(PIPELINE_PHASES.contains(name), "{name}");
        }
        assert_eq!(top_level_phases("compare"), COMPARE_TOP_PHASES);
        assert_eq!(top_level_phases("optimize"), PIPELINE_TOP_PHASES);
        assert_eq!(top_level_phases("sweep"), PIPELINE_TOP_PHASES);
        assert!(top_level_phases("simulate").is_empty());
    }

    #[test]
    fn job_entries_must_carry_timings() {
        let m = MetricsRecorder::new();
        for name in COMPARE_PHASES {
            m.phase(name, 5);
        }
        m.event("harness.job", &[("scope", FieldValue::Str("x"))]);
        let report = run_report("compare", "t", &m.snapshot(), 10_000);
        let err = validate_run_report(&report, COMPARE_PHASES).unwrap_err();
        assert!(err.contains("job"), "{err}");
    }
}
