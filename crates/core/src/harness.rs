//! Shared parallel evaluation harness.
//!
//! Every consumer of the simulator — [`Ripple::evaluate_with_threshold`]'s
//! five runs, the CLI's policy-compare and threshold-sweep loops, the bench
//! crate's grid matrices — reduces to the same shape: a list of independent
//! simulation jobs whose results must come back *in job order*, bit-identical
//! to running them sequentially. This module expresses that shape once.
//!
//! Determinism: each job is a pure function of its inputs (the simulator is
//! deterministic), each result is stored in the slot of the job that produced
//! it, and nothing about scheduling leaks into a result. Running with one
//! thread or sixteen therefore yields byte-identical output; the
//! `tests/determinism.rs` suite asserts this end to end.
//!
//! [`Ripple::evaluate_with_threshold`]: crate::Ripple::evaluate_with_threshold

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use ripple_obs::{FieldValue, Recorder};
use ripple_sim::{PolicyKind, SimSession, SimStats};

/// A unit of work for [`run_jobs`]: boxed so heterogeneous closures can
/// share one job list.
pub type Job<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

/// Resolves a requested worker count: both `None` and `Some(0)` mean
/// "auto-detect" — the machine's available parallelism (at least 1).
///
/// `Some(0)` is the CLI's `--threads 0`; it is equivalent to omitting the
/// flag, never a request for a single thread (ask for that explicitly with
/// `Some(1)`). Over-subscribed counts are passed through untouched: the
/// harness caps workers at the job count, so requesting more threads than
/// jobs (or cores) is safe.
pub fn effective_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(0) | None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Some(n) => n,
    }
}

/// Runs `jobs` on up to `threads` scoped worker threads and returns their
/// results in job order.
///
/// Jobs are claimed from a shared counter, so long jobs do not serialize
/// short ones; results land in the slot of the job that produced them, so
/// the output is independent of scheduling. With `threads <= 1` (or a
/// single job) everything runs inline on the caller's thread — the
/// sequential reference order the parallel path is measured against.
///
/// # Panics
///
/// A panicking job propagates its panic to the caller once the scope joins.
pub fn run_jobs<'env, T: Send>(threads: usize, jobs: Vec<Job<'env, T>>) -> Vec<T> {
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let slots: Vec<Mutex<Option<Job<'env, T>>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("each job index is claimed exactly once");
                let out = job();
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed job stores a result")
        })
        .collect()
}

/// [`run_jobs`] with per-job observability: wraps every job so its claim
/// and completion are reported to `recorder`, then runs the batch through
/// the plain engine (scheduling is shared, not duplicated).
///
/// Per job, a `harness.job` event carries the batch `scope`, the job
/// index, `queue_wait_ns` (batch start → the job being claimed by a
/// worker) and `run_ns`; a `harness.job` phase aggregates run times and a
/// `harness.jobs` counter tallies completions. The whole batch is wrapped
/// in a `harness.batch` phase with a start/finish event pair around it.
///
/// With a disabled recorder this delegates straight to [`run_jobs`] —
/// same closures, no clock reads — so observability never perturbs the
/// job results (which stay byte-identical either way; jobs are pure).
pub fn run_jobs_observed<'env, T: Send + 'env>(
    threads: usize,
    scope: &'env str,
    recorder: &'env dyn Recorder,
    jobs: Vec<Job<'env, T>>,
) -> Vec<T> {
    if !recorder.enabled() {
        return run_jobs(threads, jobs);
    }
    let n = jobs.len();
    recorder.event(
        "harness.batch",
        &[
            ("scope", FieldValue::Str(scope)),
            ("jobs", FieldValue::U64(n as u64)),
            ("threads", FieldValue::U64(threads.min(n.max(1)) as u64)),
        ],
    );
    let batch_start = Instant::now();
    let observed: Vec<Job<'env, T>> = jobs
        .into_iter()
        .enumerate()
        .map(|(i, job)| -> Job<'env, T> {
            Box::new(move || {
                let claimed = Instant::now();
                let queue_wait = (claimed - batch_start).as_nanos() as u64;
                let out = job();
                let run_ns = claimed.elapsed().as_nanos() as u64;
                recorder.phase("harness.job", run_ns);
                recorder.add("harness.jobs", 1);
                recorder.event(
                    "harness.job",
                    &[
                        ("scope", FieldValue::Str(scope)),
                        ("job", FieldValue::U64(i as u64)),
                        ("queue_wait_ns", FieldValue::U64(queue_wait)),
                        ("run_ns", FieldValue::U64(run_ns)),
                    ],
                );
                out
            })
        })
        .collect();
    let results = run_jobs(threads, observed);
    recorder.phase("harness.batch", batch_start.elapsed().as_nanos() as u64);
    results
}

/// Evaluates each policy of a matrix against one [`SimSession`], in
/// parallel, returning stats in `policies` order.
///
/// Offline-ideal policies replay the session's shared recording pass, so an
/// entire matrix costs one recording run no matter how many ideals it
/// contains (see [`SimSession::recording_passes`]).
pub fn policy_matrix(
    session: &SimSession<'_>,
    policies: &[PolicyKind],
    threads: usize,
) -> Vec<SimStats> {
    let jobs: Vec<Job<'_, SimStats>> = policies
        .iter()
        .map(|&p| -> Job<'_, SimStats> { Box::new(move || session.run(p)) })
        .collect();
    run_jobs_observed(threads, "policy_matrix", &**session.recorder(), jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_program::{Layout, LayoutConfig};
    use ripple_sim::SimConfig;
    use ripple_workloads::{execute, generate, AppSpec, InputConfig};

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<Job<'_, usize>> = (0..32)
            .map(|i| -> Job<'_, usize> { Box::new(move || i * i) })
            .collect();
        let out = run_jobs(4, jobs);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq: Vec<Job<'_, u64>> = (0..17)
            .map(|i: u64| -> Job<'_, u64> { Box::new(move || i.wrapping_mul(0x9e37)) })
            .collect();
        let par: Vec<Job<'_, u64>> = (0..17)
            .map(|i: u64| -> Job<'_, u64> { Box::new(move || i.wrapping_mul(0x9e37)) })
            .collect();
        assert_eq!(run_jobs(1, seq), run_jobs(8, par));
    }

    #[test]
    fn effective_threads_zero_means_auto_detect() {
        // `Some(0)` and `None` are the same request: the machine's
        // available parallelism, never fewer than one worker.
        assert_eq!(effective_threads(Some(0)), effective_threads(None));
        assert!(effective_threads(Some(0)) >= 1);
        assert_eq!(effective_threads(Some(1)), 1);
        assert_eq!(effective_threads(Some(3)), 3);
    }

    #[test]
    fn oversubscribed_threads_match_sequential() {
        // More workers than jobs (and than cores) must still return
        // results in job order, identical to the sequential run.
        let make = || -> Vec<Job<'_, u64>> {
            (0..5u64)
                .map(|i| -> Job<'_, u64> { Box::new(move || i * 31) })
                .collect()
        };
        assert_eq!(effective_threads(Some(1000)), 1000);
        assert_eq!(run_jobs(1000, make()), run_jobs(1, make()));
    }

    #[test]
    fn observed_jobs_report_per_job_timings() {
        let recorder = ripple_obs::MetricsRecorder::new();
        let jobs: Vec<Job<'_, usize>> = (0..6)
            .map(|i| -> Job<'_, usize> { Box::new(move || i + 1) })
            .collect();
        let out = run_jobs_observed(3, "test_batch", &recorder, jobs);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("harness.jobs"), Some(6));
        assert_eq!(snap.phase("harness.job").map(|p| p.count), Some(6));
        assert_eq!(snap.phase("harness.batch").map(|p| p.count), Some(1));
        // One event per job, each carrying scope + both timings.
        let events: Vec<_> = snap.events_named("harness.job").collect();
        assert_eq!(events.len(), 6);
        for e in &events {
            assert_eq!(
                e.field("scope").and_then(ripple_obs::OwnedValue::as_str),
                Some("test_batch")
            );
            assert!(e.field("queue_wait_ns").is_some());
            assert!(e.field("run_ns").is_some());
        }
        // Every job index 0..6 appears exactly once.
        let mut idx: Vec<u64> = events
            .iter()
            .filter_map(|e| e.field("job").and_then(ripple_obs::OwnedValue::as_u64))
            .collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn observed_disabled_recorder_is_passthrough() {
        let jobs: Vec<Job<'_, usize>> = (0..4)
            .map(|i| -> Job<'_, usize> { Box::new(move || i * 2) })
            .collect();
        let out = run_jobs_observed(2, "x", &ripple_obs::NullRecorder, jobs);
        assert_eq!(out, vec![0, 2, 4, 6]);
    }

    #[test]
    fn policy_matrix_shares_one_recording_pass() {
        let app = generate(&AppSpec::tiny(9));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(&app.program, &app.model, InputConfig::training(9), 20_000);
        let mut cfg = SimConfig::default();
        cfg.l1i = ripple_sim::CacheGeometry::new(2 * 1024, 4);
        let session = SimSession::new(&app.program, &layout, &trace, cfg);
        let policies = [
            PolicyKind::Lru,
            PolicyKind::Opt,
            PolicyKind::DemandMin,
            PolicyKind::Random,
        ];
        let par = policy_matrix(&session, &policies, 4);
        assert_eq!(
            session.recording_passes(),
            1,
            "two ideal policies must share one recording pass"
        );
        for (i, &p) in policies.iter().enumerate() {
            assert_eq!(par[i], session.run(p), "policy {p:?} must be reproducible");
        }
    }
}
