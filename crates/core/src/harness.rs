//! Shared parallel evaluation harness with per-job panic isolation.
//!
//! Every consumer of the simulator — [`Ripple::evaluate_with_threshold`]'s
//! five runs, the CLI's policy-compare and threshold-sweep loops, the bench
//! crate's grid matrices — reduces to the same shape: a list of independent
//! simulation jobs whose results must come back *in job order*, bit-identical
//! to running them sequentially. This module expresses that shape once.
//!
//! Determinism: each job is a pure function of its inputs (the simulator is
//! deterministic), each result is stored in the slot of the job that produced
//! it, and nothing about scheduling leaks into a result. Running with one
//! thread or sixteen therefore yields byte-identical output; the
//! `tests/determinism.rs` suite asserts this end to end.
//!
//! Fault isolation: every job runs under [`std::panic::catch_unwind`]. A
//! panicking job never sinks its batch — the remaining jobs complete, and
//! the failure comes back as a typed [`JobError`] carrying the batch scope,
//! the job index and the panic message. [`run_jobs_settled`] exposes the
//! full per-job picture; [`run_jobs`] collapses it to first-error for
//! callers that need all results anyway. [`run_jobs_retrying`] re-runs
//! panicking jobs a bounded number of times for workloads with transient
//! failure modes.
//!
//! [`Ripple::evaluate_with_threshold`]: crate::Ripple::evaluate_with_threshold

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use ripple_obs::{FieldValue, Recorder};
use ripple_sim::{PolicyKind, SimSession, SimStats};

use crate::error::JobError;

/// A unit of work for [`run_jobs`]: boxed so heterogeneous closures can
/// share one job list.
pub type Job<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

/// A re-runnable unit of work for [`run_jobs_retrying`]: `Fn` rather than
/// `FnOnce`, so a panicked attempt can be retried.
pub type RetryJob<'env, T> = Box<dyn Fn() -> T + Send + Sync + 'env>;

/// Resolves a requested worker count: both `None` and `Some(0)` mean
/// "auto-detect" — the machine's available parallelism (at least 1).
///
/// `Some(0)` is the CLI's `--threads 0`; it is equivalent to omitting the
/// flag, never a request for a single thread (ask for that explicitly with
/// `Some(1)`). Over-subscribed counts are passed through untouched: the
/// harness caps workers at the job count, so requesting more threads than
/// jobs (or cores) is safe.
pub fn effective_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(0) | None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Some(n) => n,
    }
}

/// Renders a panic payload as text (panics with non-string payloads are
/// reported as `"<non-string panic>"`).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

/// Runs one job under `catch_unwind`, converting a panic into a
/// [`JobError`].
fn settle_one<T>(scope: &str, index: usize, job: Job<'_, T>) -> Result<T, JobError> {
    catch_unwind(AssertUnwindSafe(job)).map_err(|payload| JobError {
        scope: scope.to_string(),
        index,
        attempts: 1,
        panic_message: panic_message(payload),
    })
}

/// Runs `jobs` on up to `threads` scoped worker threads, isolating each
/// job's panics, and returns the per-job outcomes in job order.
///
/// Jobs are claimed from a shared counter, so long jobs do not serialize
/// short ones; results land in the slot of the job that produced them, so
/// the output is independent of scheduling. With `threads <= 1` (or a
/// single job) everything runs inline on the caller's thread — the
/// sequential reference order the parallel path is measured against.
///
/// A panicking job yields an `Err(JobError)` in its slot; every other job
/// still runs and returns its own outcome. Panics never cross the harness
/// boundary.
pub fn run_jobs_settled<'env, T: Send>(
    threads: usize,
    scope: &str,
    jobs: Vec<Job<'env, T>>,
) -> Vec<Result<T, JobError>> {
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| settle_one(scope, i, job))
            .collect();
    }
    let slots: Vec<Mutex<Option<Job<'env, T>>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<Result<T, JobError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Panics are contained by `settle_one`, so a worker can
                // never die mid-slot; poison recovery is pure belt and
                // braces (the data is a plain Option either way).
                let job = slots[i].lock().unwrap_or_else(|p| p.into_inner()).take();
                let Some(job) = job else { continue };
                let out = settle_one(scope, i, job);
                *results[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
            });
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            m.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .unwrap_or_else(|| {
                    Err(JobError {
                        scope: scope.to_string(),
                        index: i,
                        attempts: 0,
                        panic_message: "job was never run (harness bug)".to_string(),
                    })
                })
        })
        .collect()
}

/// Runs `jobs` on up to `threads` workers and returns their results in job
/// order, or the first (lowest-index) [`JobError`] if any job panicked.
///
/// The batch always runs to completion — a panicking job does not cancel
/// its siblings — but the partial results are discarded when any job
/// failed. Use [`run_jobs_settled`] to keep the survivors.
pub fn run_jobs<'env, T: Send>(
    threads: usize,
    jobs: Vec<Job<'env, T>>,
) -> Result<Vec<T>, JobError> {
    run_jobs_settled(threads, "jobs", jobs)
        .into_iter()
        .collect()
}

/// [`run_jobs_settled`] with bounded retry: each job is attempted up to
/// `max_attempts` times (panicked attempts are re-run from scratch), and a
/// job that panics on every attempt reports the *last* panic with its
/// attempt count.
///
/// Jobs must be [`Fn`] (see [`RetryJob`]) so an attempt can be repeated.
/// Retry only helps jobs with nondeterministic failure modes (I/O,
/// resource exhaustion); the simulator itself is deterministic, so its
/// panics repeat — which the attempt count then documents.
pub fn run_jobs_retrying<'env, T: Send + 'env>(
    threads: usize,
    scope: &str,
    max_attempts: u32,
    jobs: Vec<RetryJob<'env, T>>,
) -> Vec<Result<T, JobError>> {
    let max_attempts = max_attempts.max(1);
    let wrapped: Vec<Job<'env, Result<T, JobError>>> = jobs
        .into_iter()
        .enumerate()
        .map(|(i, job)| -> Job<'env, Result<T, JobError>> {
            let scope = scope.to_string();
            Box::new(move || {
                let mut last = None;
                for attempt in 1..=max_attempts {
                    match catch_unwind(AssertUnwindSafe(&job)) {
                        Ok(out) => return Ok(out),
                        Err(payload) => {
                            last = Some(JobError {
                                scope: scope.clone(),
                                index: i,
                                attempts: attempt,
                                panic_message: panic_message(payload),
                            });
                        }
                    }
                }
                Err(last.unwrap_or_else(|| JobError {
                    scope: scope.clone(),
                    index: i,
                    attempts: 0,
                    panic_message: "zero attempts (harness bug)".to_string(),
                }))
            })
        })
        .collect();
    run_jobs_settled(threads, scope, wrapped)
        .into_iter()
        .map(|slot| slot.and_then(|inner| inner))
        .collect()
}

/// [`run_jobs`] with per-job observability: wraps every job so its claim
/// and completion are reported to `recorder`, then runs the batch through
/// the plain engine (scheduling is shared, not duplicated).
///
/// Per job, a `harness.job` event carries the batch `scope`, the job
/// index, `queue_wait_ns` (batch start → the job being claimed by a
/// worker) and `run_ns`; a `harness.job` phase aggregates run times and a
/// `harness.jobs` counter tallies completions. A job that panics reports a
/// `harness.job_failed` counter and event instead, and the batch returns
/// the first [`JobError`]. The whole batch is wrapped in a `harness.batch`
/// phase with a start/finish event pair around it.
///
/// With a disabled recorder this delegates straight to [`run_jobs`] —
/// same closures, no clock reads — so observability never perturbs the
/// job results (which stay byte-identical either way; jobs are pure).
pub fn run_jobs_observed<'env, T: Send + 'env>(
    threads: usize,
    scope: &'env str,
    recorder: &'env dyn Recorder,
    jobs: Vec<Job<'env, T>>,
) -> Result<Vec<T>, JobError> {
    run_jobs_observed_settled(threads, scope, recorder, jobs)
        .into_iter()
        .collect()
}

/// [`run_jobs_settled`] with the observability of [`run_jobs_observed`]:
/// per-job outcomes, nothing collapsed.
pub fn run_jobs_observed_settled<'env, T: Send + 'env>(
    threads: usize,
    scope: &'env str,
    recorder: &'env dyn Recorder,
    jobs: Vec<Job<'env, T>>,
) -> Vec<Result<T, JobError>> {
    if !recorder.enabled() {
        return run_jobs_settled(threads, scope, jobs);
    }
    let n = jobs.len();
    recorder.event(
        "harness.batch",
        &[
            ("scope", FieldValue::Str(scope)),
            ("jobs", FieldValue::U64(n as u64)),
            ("threads", FieldValue::U64(threads.min(n.max(1)) as u64)),
        ],
    );
    let batch_start = Instant::now();
    let observed: Vec<Job<'env, T>> = jobs
        .into_iter()
        .enumerate()
        .map(|(i, job)| -> Job<'env, T> {
            Box::new(move || {
                let claimed = Instant::now();
                let queue_wait = (claimed - batch_start).as_nanos() as u64;
                let out = job();
                let run_ns = claimed.elapsed().as_nanos() as u64;
                recorder.phase("harness.job", run_ns);
                recorder.add("harness.jobs", 1);
                recorder.event(
                    "harness.job",
                    &[
                        ("scope", FieldValue::Str(scope)),
                        ("job", FieldValue::U64(i as u64)),
                        ("queue_wait_ns", FieldValue::U64(queue_wait)),
                        ("run_ns", FieldValue::U64(run_ns)),
                    ],
                );
                out
            })
        })
        .collect();
    let results = run_jobs_settled(threads, scope, observed);
    for (i, r) in results.iter().enumerate() {
        if r.is_err() {
            recorder.add("harness.job_failed", 1);
            recorder.event(
                "harness.job_failed",
                &[
                    ("scope", FieldValue::Str(scope)),
                    ("job", FieldValue::U64(i as u64)),
                ],
            );
        }
    }
    recorder.phase("harness.batch", batch_start.elapsed().as_nanos() as u64);
    results
}

/// Evaluates each policy of a matrix against one [`SimSession`], in
/// parallel, returning stats in `policies` order (or the first
/// [`JobError`] if a policy run panicked).
///
/// Offline-ideal policies replay the session's shared recording pass, so an
/// entire matrix costs one recording run no matter how many ideals it
/// contains (see [`SimSession::recording_passes`]).
pub fn policy_matrix(
    session: &SimSession<'_>,
    policies: &[PolicyKind],
    threads: usize,
) -> Result<Vec<SimStats>, JobError> {
    let jobs: Vec<Job<'_, SimStats>> = policies
        .iter()
        .map(|&p| -> Job<'_, SimStats> { Box::new(move || session.run(p)) })
        .collect();
    run_jobs_observed(threads, "policy_matrix", &**session.recorder(), jobs)
}

/// [`policy_matrix`] over *every* policy in the global registry, in
/// registration order — the CLI's `compare` and any other "run the whole
/// zoo" consumer get new policies for free when they are registered.
///
/// Returns `(policies, stats)` with matching order.
pub fn policy_matrix_all(
    session: &SimSession<'_>,
    threads: usize,
) -> Result<(Vec<PolicyKind>, Vec<SimStats>), JobError> {
    let policies: Vec<PolicyKind> = ripple_sim::PolicyRegistry::global().all().collect();
    let stats = policy_matrix(session, &policies, threads)?;
    Ok((policies, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_program::{Layout, LayoutConfig};
    use ripple_sim::SimConfig;
    use ripple_workloads::{execute, generate, AppSpec, InputConfig};

    /// Silences the default panic-to-stderr hook for the duration of a
    /// test that panics on purpose. Serialized so concurrent tests never
    /// interleave their hook swaps.
    fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        static HOOK_LOCK: Mutex<()> = Mutex::new(());
        let _guard = HOOK_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<Job<'_, usize>> = (0..32)
            .map(|i| -> Job<'_, usize> { Box::new(move || i * i) })
            .collect();
        let out = run_jobs(4, jobs).unwrap();
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq: Vec<Job<'_, u64>> = (0..17)
            .map(|i: u64| -> Job<'_, u64> { Box::new(move || i.wrapping_mul(0x9e37)) })
            .collect();
        let par: Vec<Job<'_, u64>> = (0..17)
            .map(|i: u64| -> Job<'_, u64> { Box::new(move || i.wrapping_mul(0x9e37)) })
            .collect();
        assert_eq!(run_jobs(1, seq).unwrap(), run_jobs(8, par).unwrap());
    }

    #[test]
    fn effective_threads_zero_means_auto_detect() {
        // `Some(0)` and `None` are the same request: the machine's
        // available parallelism, never fewer than one worker.
        assert_eq!(effective_threads(Some(0)), effective_threads(None));
        assert!(effective_threads(Some(0)) >= 1);
        assert_eq!(effective_threads(Some(1)), 1);
        assert_eq!(effective_threads(Some(3)), 3);
    }

    #[test]
    fn oversubscribed_threads_match_sequential() {
        // More workers than jobs (and than cores) must still return
        // results in job order, identical to the sequential run.
        let make = || -> Vec<Job<'_, u64>> {
            (0..5u64)
                .map(|i| -> Job<'_, u64> { Box::new(move || i * 31) })
                .collect()
        };
        assert_eq!(effective_threads(Some(1000)), 1000);
        assert_eq!(
            run_jobs(1000, make()).unwrap(),
            run_jobs(1, make()).unwrap()
        );
    }

    #[test]
    fn one_panicking_job_does_not_sink_the_batch() {
        // The poisoned job fails; all seven siblings still complete, at
        // one thread and at four.
        for threads in [1, 4] {
            let jobs: Vec<Job<'_, usize>> = (0..8)
                .map(|i| -> Job<'_, usize> {
                    Box::new(move || {
                        if i == 3 {
                            panic!("poisoned job {i}");
                        }
                        i * 10
                    })
                })
                .collect();
            let out = quiet_panics(|| run_jobs_settled(threads, "test", jobs));
            assert_eq!(out.len(), 8);
            for (i, slot) in out.iter().enumerate() {
                if i == 3 {
                    let err = slot.as_ref().unwrap_err();
                    assert_eq!(err.index, 3);
                    assert_eq!(err.scope, "test");
                    assert_eq!(err.attempts, 1);
                    assert!(err.panic_message.contains("poisoned job 3"));
                } else {
                    assert_eq!(slot.as_ref().unwrap(), &(i * 10), "threads {threads}");
                }
            }
        }
    }

    #[test]
    fn run_jobs_reports_the_first_error() {
        let jobs: Vec<Job<'_, u32>> = (0..6)
            .map(|i| -> Job<'_, u32> {
                Box::new(move || {
                    if i % 2 == 1 {
                        panic!("odd job {i}");
                    }
                    i
                })
            })
            .collect();
        let err = quiet_panics(|| run_jobs(3, jobs)).unwrap_err();
        assert_eq!(err.index, 1, "lowest failing index wins");
        assert!(err.panic_message.contains("odd job 1"));
    }

    #[test]
    fn retrying_recovers_transient_failures_and_counts_attempts() {
        use std::sync::atomic::AtomicU32;
        // Job 0 succeeds on attempt 3; job 1 always panics; job 2 is fine.
        let tries = AtomicU32::new(0);
        let jobs: Vec<RetryJob<'_, u32>> = vec![
            Box::new(|| {
                if tries.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("transient");
                }
                7
            }),
            Box::new(|| panic!("permanent")),
            Box::new(|| 42),
        ];
        let out = quiet_panics(|| run_jobs_retrying(1, "retry_test", 3, jobs));
        assert_eq!(out[0].as_ref().unwrap(), &7);
        let err = out[1].as_ref().unwrap_err();
        assert_eq!(err.attempts, 3);
        assert!(err.panic_message.contains("permanent"));
        assert_eq!(out[2].as_ref().unwrap(), &42);
    }

    #[test]
    fn non_string_panics_are_reported() {
        let jobs: Vec<Job<'_, ()>> = vec![Box::new(|| std::panic::panic_any(17_u64))];
        let out = quiet_panics(|| run_jobs_settled(1, "weird", jobs));
        let err = out[0].as_ref().unwrap_err();
        assert_eq!(err.panic_message, "<non-string panic>");
    }

    #[test]
    fn observed_jobs_report_per_job_timings() {
        let recorder = ripple_obs::MetricsRecorder::new();
        let jobs: Vec<Job<'_, usize>> = (0..6)
            .map(|i| -> Job<'_, usize> { Box::new(move || i + 1) })
            .collect();
        let out = run_jobs_observed(3, "test_batch", &recorder, jobs).unwrap();
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("harness.jobs"), Some(6));
        assert_eq!(snap.counter("harness.job_failed"), None);
        assert_eq!(snap.phase("harness.job").map(|p| p.count), Some(6));
        assert_eq!(snap.phase("harness.batch").map(|p| p.count), Some(1));
        // One event per job, each carrying scope + both timings.
        let events: Vec<_> = snap.events_named("harness.job").collect();
        assert_eq!(events.len(), 6);
        for e in &events {
            assert_eq!(
                e.field("scope").and_then(ripple_obs::OwnedValue::as_str),
                Some("test_batch")
            );
            assert!(e.field("queue_wait_ns").is_some());
            assert!(e.field("run_ns").is_some());
        }
        // Every job index 0..6 appears exactly once.
        let mut idx: Vec<u64> = events
            .iter()
            .filter_map(|e| e.field("job").and_then(ripple_obs::OwnedValue::as_u64))
            .collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn observed_failures_are_counted() {
        let recorder = ripple_obs::MetricsRecorder::new();
        let jobs: Vec<Job<'_, usize>> = (0..4)
            .map(|i| -> Job<'_, usize> {
                Box::new(move || {
                    if i == 2 {
                        panic!("observed failure");
                    }
                    i
                })
            })
            .collect();
        let out = quiet_panics(|| run_jobs_observed_settled(2, "obs_fail", &recorder, jobs));
        assert!(out[2].is_err());
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("harness.job_failed"), Some(1));
        let failed: Vec<_> = snap.events_named("harness.job_failed").collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(
            failed[0]
                .field("job")
                .and_then(ripple_obs::OwnedValue::as_u64),
            Some(2)
        );
    }

    #[test]
    fn observed_disabled_recorder_is_passthrough() {
        let jobs: Vec<Job<'_, usize>> = (0..4)
            .map(|i| -> Job<'_, usize> { Box::new(move || i * 2) })
            .collect();
        let out = run_jobs_observed(2, "x", &ripple_obs::NullRecorder, jobs).unwrap();
        assert_eq!(out, vec![0, 2, 4, 6]);
    }

    #[test]
    fn policy_matrix_all_is_thread_invariant_with_trrip_profile() {
        // The full registry matrix — TRRIP included, fed real profiled
        // temperatures — must be bit-identical at 1 and 4 workers.
        let app = generate(&AppSpec::tiny(5));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(&app.program, &app.model, InputConfig::training(5), 20_000);
        let mut cfg = SimConfig::default();
        cfg.l1i = ripple_sim::CacheGeometry::new(2 * 1024, 4);
        cfg.temperatures = Some(std::sync::Arc::new(crate::metrics::profile_temperatures(
            &layout, &trace,
        )));
        let session = SimSession::new(&app.program, &layout, &trace, cfg);
        let (policies, sequential) = policy_matrix_all(&session, 1).unwrap();
        let (_, parallel) = policy_matrix_all(&session, 4).unwrap();
        assert_eq!(sequential, parallel, "matrix must be thread-invariant");
        let trrip = policies
            .iter()
            .position(|&p| p == PolicyKind::TRRIP)
            .expect("registry matrix includes trrip");
        assert!(
            sequential[trrip].demand_accesses > 0,
            "trrip row must come from a real run"
        );
    }

    #[test]
    fn policy_matrix_is_shard_invariant() {
        // `replay_shards` rides in on the session's SimConfig, so a whole
        // policy matrix — threaded harness on top of sharded replay —
        // must stay byte-identical to the single-shard single-thread run.
        let app = generate(&AppSpec::tiny(13));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(&app.program, &app.model, InputConfig::training(13), 20_000);
        let mut cfg = SimConfig::default();
        cfg.l1i = ripple_sim::CacheGeometry::new(2 * 1024, 4);
        let policies = [
            PolicyKind::LRU,
            PolicyKind::OPT,
            PolicyKind::DEMAND_MIN,
            PolicyKind::DRRIP, // not set-local: must fall back unchanged
        ];
        let base_session = SimSession::new(&app.program, &layout, &trace, cfg.clone());
        let baseline = policy_matrix(&base_session, &policies, 1).unwrap();
        for shards in [2usize, 4] {
            let sharded_cfg = cfg.clone().with_replay_shards(shards);
            let session = SimSession::new(&app.program, &layout, &trace, sharded_cfg);
            let sharded = policy_matrix(&session, &policies, 4).unwrap();
            assert_eq!(
                baseline, sharded,
                "matrix must be shard-invariant ({shards})"
            );
            assert_eq!(session.recording_passes(), 1);
        }
    }

    #[test]
    fn policy_matrix_shares_one_recording_pass() {
        let app = generate(&AppSpec::tiny(9));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(&app.program, &app.model, InputConfig::training(9), 20_000);
        let mut cfg = SimConfig::default();
        cfg.l1i = ripple_sim::CacheGeometry::new(2 * 1024, 4);
        let session = SimSession::new(&app.program, &layout, &trace, cfg);
        let policies = [
            PolicyKind::LRU,
            PolicyKind::OPT,
            PolicyKind::DEMAND_MIN,
            PolicyKind::RANDOM,
        ];
        let par = policy_matrix(&session, &policies, 4).unwrap();
        assert_eq!(
            session.recording_passes(),
            1,
            "two ideal policies must share one recording pass"
        );
        for (i, &p) in policies.iter().enumerate() {
            assert_eq!(par[i], session.run(p), "policy {p:?} must be reproducible");
        }
    }
}
