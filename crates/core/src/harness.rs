//! Shared parallel evaluation harness.
//!
//! Every consumer of the simulator — [`Ripple::evaluate_with_threshold`]'s
//! five runs, the CLI's policy-compare and threshold-sweep loops, the bench
//! crate's grid matrices — reduces to the same shape: a list of independent
//! simulation jobs whose results must come back *in job order*, bit-identical
//! to running them sequentially. This module expresses that shape once.
//!
//! Determinism: each job is a pure function of its inputs (the simulator is
//! deterministic), each result is stored in the slot of the job that produced
//! it, and nothing about scheduling leaks into a result. Running with one
//! thread or sixteen therefore yields byte-identical output; the
//! `tests/determinism.rs` suite asserts this end to end.
//!
//! [`Ripple::evaluate_with_threshold`]: crate::Ripple::evaluate_with_threshold

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ripple_sim::{PolicyKind, SimSession, SimStats};

/// A unit of work for [`run_jobs`]: boxed so heterogeneous closures can
/// share one job list.
pub type Job<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

/// Resolves a requested worker count: `None` means the machine's available
/// parallelism (at least 1).
pub fn effective_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Runs `jobs` on up to `threads` scoped worker threads and returns their
/// results in job order.
///
/// Jobs are claimed from a shared counter, so long jobs do not serialize
/// short ones; results land in the slot of the job that produced them, so
/// the output is independent of scheduling. With `threads <= 1` (or a
/// single job) everything runs inline on the caller's thread — the
/// sequential reference order the parallel path is measured against.
///
/// # Panics
///
/// A panicking job propagates its panic to the caller once the scope joins.
pub fn run_jobs<'env, T: Send>(threads: usize, jobs: Vec<Job<'env, T>>) -> Vec<T> {
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let slots: Vec<Mutex<Option<Job<'env, T>>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("each job index is claimed exactly once");
                let out = job();
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed job stores a result")
        })
        .collect()
}

/// Evaluates each policy of a matrix against one [`SimSession`], in
/// parallel, returning stats in `policies` order.
///
/// Offline-ideal policies replay the session's shared recording pass, so an
/// entire matrix costs one recording run no matter how many ideals it
/// contains (see [`SimSession::recording_passes`]).
pub fn policy_matrix(
    session: &SimSession<'_>,
    policies: &[PolicyKind],
    threads: usize,
) -> Vec<SimStats> {
    let jobs: Vec<Job<'_, SimStats>> = policies
        .iter()
        .map(|&p| -> Job<'_, SimStats> { Box::new(move || session.run(p)) })
        .collect();
    run_jobs(threads, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_program::{Layout, LayoutConfig};
    use ripple_sim::SimConfig;
    use ripple_workloads::{execute, generate, AppSpec, InputConfig};

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<Job<'_, usize>> = (0..32)
            .map(|i| -> Job<'_, usize> { Box::new(move || i * i) })
            .collect();
        let out = run_jobs(4, jobs);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq: Vec<Job<'_, u64>> = (0..17)
            .map(|i: u64| -> Job<'_, u64> { Box::new(move || i.wrapping_mul(0x9e37)) })
            .collect();
        let par: Vec<Job<'_, u64>> = (0..17)
            .map(|i: u64| -> Job<'_, u64> { Box::new(move || i.wrapping_mul(0x9e37)) })
            .collect();
        assert_eq!(run_jobs(1, seq), run_jobs(8, par));
    }

    #[test]
    fn effective_threads_floors_at_one() {
        assert_eq!(effective_threads(Some(0)), 1);
        assert_eq!(effective_threads(Some(3)), 3);
        assert!(effective_threads(None) >= 1);
    }

    #[test]
    fn policy_matrix_shares_one_recording_pass() {
        let app = generate(&AppSpec::tiny(9));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(&app.program, &app.model, InputConfig::training(9), 20_000);
        let mut cfg = SimConfig::default();
        cfg.l1i = ripple_sim::CacheGeometry::new(2 * 1024, 4);
        let session = SimSession::new(&app.program, &layout, &trace, cfg);
        let policies = [
            PolicyKind::Lru,
            PolicyKind::Opt,
            PolicyKind::DemandMin,
            PolicyKind::Random,
        ];
        let par = policy_matrix(&session, &policies, 4);
        assert_eq!(
            session.recording_passes(),
            1,
            "two ideal policies must share one recording pass"
        );
        for (i, &p) in policies.iter().enumerate() {
            assert_eq!(par[i], session.run(p), "policy {p:?} must be reproducible");
        }
    }
}
