//! Profile collection (§III-A): execute the application while recording a
//! PT-style packet stream, then decode it back into the basic-block trace
//! the analysis consumes.
//!
//! Running the real encode → decode path (rather than keeping the executed
//! block list) exercises exactly the information a hardware tracer
//! provides: taken/not-taken bits and indirect targets.

use ripple_program::Layout;
use ripple_trace::{reconstruct_trace, record_trace, BbTrace};
use ripple_workloads::{Application, Executor, InputConfig};

use crate::error::Error;

/// A collected profile: the decoded block trace plus tracing statistics.
#[derive(Debug, Clone)]
pub struct Profile {
    /// The decoded basic-block trace.
    pub trace: BbTrace,
    /// Size of the encoded packet stream in bytes.
    pub trace_bytes: usize,
    /// The input the profile was collected under.
    pub input: InputConfig,
}

impl Profile {
    /// Average encoded bytes per executed block (PT-style compression
    /// quality).
    pub fn bytes_per_block(&self) -> f64 {
        if self.trace.is_empty() {
            0.0
        } else {
            self.trace_bytes as f64 / self.trace.len() as f64
        }
    }
}

/// Executes `app` under `input` for `budget_instructions`, records the
/// control flow as packets, and decodes them back into a [`BbTrace`].
///
/// # Errors
///
/// Returns [`Error::Reconstruct`] if decoding fails (which would indicate
/// a tracer bug; the round trip is property-tested in `ripple-trace`).
pub fn collect_profile(
    app: &Application,
    layout: &Layout,
    input: InputConfig,
    budget_instructions: u64,
) -> Result<Profile, Error> {
    let executed = Executor::new(&app.program, &app.model, input).run(budget_instructions);
    let bytes = record_trace(&app.program, layout, executed.iter());
    let trace = reconstruct_trace(&app.program, layout, &bytes)?;
    debug_assert_eq!(trace, executed, "tracer round-trip must be lossless");
    Ok(Profile {
        trace,
        trace_bytes: bytes.len(),
        input,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_program::LayoutConfig;
    use ripple_workloads::{generate, AppSpec};

    #[test]
    fn profile_roundtrips_and_is_compact() {
        let app = generate(&AppSpec::tiny(11));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let profile =
            collect_profile(&app, &layout, InputConfig::training(11), 30_000).expect("profile");
        assert!(profile.trace.dynamic_instruction_count(&app.program) >= 30_000);
        assert!(profile.bytes_per_block() < 2.0);
    }
}
