//! Invalidation-threshold exploration (§III-C, Fig. 6) and per-app
//! threshold tuning.

use ripple_trace::BbTrace;

use crate::error::Error;
use crate::harness::{effective_threads, run_jobs_observed, Job};
use crate::pipeline::Ripple;

/// One point of the coverage/accuracy trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPoint {
    /// The invalidation threshold this point was measured at.
    pub threshold: f64,
    /// Replacement coverage at this threshold (0..=1).
    pub coverage: f64,
    /// Replacement accuracy at this threshold (0..=1).
    pub accuracy: f64,
    /// Ripple speedup over the LRU baseline, percent.
    pub speedup_pct: f64,
}

/// Sweeps the invalidation threshold over `thresholds`, evaluating each
/// against `eval_trace` (Fig. 6's curve).
///
/// Thresholds are independent, so they run as parallel harness jobs (the
/// worker count follows the trained config's `threads`); the returned
/// points are in `thresholds` order, bit-identical to a sequential sweep.
///
/// # Errors
///
/// The first point that fails to evaluate — an invalid threshold
/// ([`Error::Config`]) or an isolated job panic ([`Error::Job`]) — aborts
/// the sweep's result (the remaining jobs still run to completion).
pub fn sweep(
    ripple: &Ripple<'_>,
    eval_trace: &BbTrace,
    thresholds: &[f64],
) -> Result<Vec<ThresholdPoint>, Error> {
    let threads = effective_threads(ripple.config().threads);
    let jobs: Vec<Job<'_, Result<ThresholdPoint, Error>>> = thresholds
        .iter()
        .map(|&t| -> Job<'_, Result<ThresholdPoint, Error>> {
            Box::new(move || {
                let outcome = ripple.evaluate_with_threshold(eval_trace, t)?;
                Ok(ThresholdPoint {
                    threshold: t,
                    coverage: outcome.coverage.coverage(),
                    accuracy: outcome.ripple_accuracy.accuracy(),
                    speedup_pct: outcome.speedup_pct(),
                })
            })
        })
        .collect();
    run_jobs_observed(threads, "sweep", &**ripple.recorder(), jobs)?
        .into_iter()
        .collect()
}

/// Picks the best-performing threshold from a sweep (the paper tunes each
/// application; the winners fall in 0.45..=0.65).
///
/// Points with a non-finite speedup are skipped: `f64::total_cmp` orders
/// `NaN` above every real number, so a single degenerate point (e.g. a
/// division artifact from a warmup-dominated run) would otherwise be
/// crowned "best". Returns `None` when no point has a finite speedup.
pub fn best_threshold(points: &[ThresholdPoint]) -> Option<ThresholdPoint> {
    points
        .iter()
        .copied()
        .filter(|p| p.speedup_pct.is_finite())
        .max_by(|a, b| a.speedup_pct.total_cmp(&b.speedup_pct))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::RippleConfig;
    use ripple_program::{Layout, LayoutConfig};
    use ripple_workloads::{execute, generate, AppSpec, InputConfig};

    #[test]
    fn coverage_falls_and_accuracy_rises_with_threshold() {
        let app = generate(&AppSpec::tiny(55));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(&app.program, &app.model, InputConfig::training(55), 60_000);
        let mut cfg = RippleConfig::default();
        cfg.sim.l1i = ripple_sim::CacheGeometry::new(2 * 1024, 4);
        let ripple = Ripple::train(&app.program, &layout, &trace, cfg).unwrap();

        let points = sweep(&ripple, &trace, &[0.05, 0.5, 0.95]).unwrap();
        assert_eq!(points.len(), 3);
        // Coverage is monotonically non-increasing in the threshold.
        assert!(points[0].coverage >= points[1].coverage);
        assert!(points[1].coverage >= points[2].coverage);
        // Accuracy at the strictest threshold is at least that of the
        // loosest (the Fig. 6 trade-off).
        assert!(points[2].accuracy + 1e-9 >= points[0].accuracy);
        let best = best_threshold(&points).unwrap();
        assert!(points.iter().all(|p| p.speedup_pct <= best.speedup_pct));
    }

    fn point(threshold: f64, speedup_pct: f64) -> ThresholdPoint {
        ThresholdPoint {
            threshold,
            coverage: 0.5,
            accuracy: 0.5,
            speedup_pct,
        }
    }

    #[test]
    fn best_threshold_never_crowns_a_non_finite_point() {
        // total_cmp orders NaN above all reals, so without the finite
        // filter the NaN point would win every one of these.
        let points = [
            point(0.1, 2.0),
            point(0.3, f64::NAN),
            point(0.5, 5.0),
            point(0.7, f64::INFINITY),
            point(0.9, 3.0),
        ];
        let best = best_threshold(&points).unwrap();
        assert_eq!(best.threshold, 0.5);
        assert_eq!(best.speedup_pct, 5.0);
    }

    #[test]
    fn best_threshold_handles_all_degenerate_sweeps() {
        assert!(best_threshold(&[]).is_none());
        assert!(best_threshold(&[point(0.5, f64::NAN)]).is_none());
        // Negative speedups are still finite and comparable.
        let best = best_threshold(&[point(0.2, -3.0), point(0.4, -1.0)]).unwrap();
        assert_eq!(best.threshold, 0.4);
    }
}
