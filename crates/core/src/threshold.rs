//! Invalidation-threshold exploration (§III-C, Fig. 6) and per-app
//! threshold tuning.

use ripple_trace::BbTrace;

use crate::harness::{effective_threads, run_jobs, Job};
use crate::pipeline::Ripple;

/// One point of the coverage/accuracy trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPoint {
    /// The invalidation threshold this point was measured at.
    pub threshold: f64,
    /// Replacement coverage at this threshold (0..=1).
    pub coverage: f64,
    /// Replacement accuracy at this threshold (0..=1).
    pub accuracy: f64,
    /// Ripple speedup over the LRU baseline, percent.
    pub speedup_pct: f64,
}

/// Sweeps the invalidation threshold over `thresholds`, evaluating each
/// against `eval_trace` (Fig. 6's curve).
///
/// Thresholds are independent, so they run as parallel harness jobs (the
/// worker count follows the trained config's `threads`); the returned
/// points are in `thresholds` order, bit-identical to a sequential sweep.
pub fn sweep(ripple: &Ripple<'_>, eval_trace: &BbTrace, thresholds: &[f64]) -> Vec<ThresholdPoint> {
    let threads = effective_threads(ripple.config().threads);
    let jobs: Vec<Job<'_, ThresholdPoint>> = thresholds
        .iter()
        .map(|&t| -> Job<'_, ThresholdPoint> {
            Box::new(move || {
                let outcome = ripple.evaluate_with_threshold(eval_trace, t);
                ThresholdPoint {
                    threshold: t,
                    coverage: outcome.coverage.coverage(),
                    accuracy: outcome.ripple_accuracy.accuracy(),
                    speedup_pct: outcome.speedup_pct(),
                }
            })
        })
        .collect();
    run_jobs(threads, jobs)
}

/// Picks the best-performing threshold from a sweep (the paper tunes each
/// application; the winners fall in 0.45..=0.65).
pub fn best_threshold(points: &[ThresholdPoint]) -> Option<ThresholdPoint> {
    points
        .iter()
        .copied()
        .max_by(|a, b| a.speedup_pct.total_cmp(&b.speedup_pct))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::RippleConfig;
    use ripple_program::{Layout, LayoutConfig};
    use ripple_workloads::{execute, generate, AppSpec, InputConfig};

    #[test]
    fn coverage_falls_and_accuracy_rises_with_threshold() {
        let app = generate(&AppSpec::tiny(55));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(&app.program, &app.model, InputConfig::training(55), 60_000);
        let mut cfg = RippleConfig::default();
        cfg.sim.l1i = ripple_sim::CacheGeometry::new(2 * 1024, 4);
        let ripple = Ripple::train(&app.program, &layout, &trace, cfg);

        let points = sweep(&ripple, &trace, &[0.05, 0.5, 0.95]);
        assert_eq!(points.len(), 3);
        // Coverage is monotonically non-increasing in the threshold.
        assert!(points[0].coverage >= points[1].coverage);
        assert!(points[1].coverage >= points[2].coverage);
        // Accuracy at the strictest threshold is at least that of the
        // loosest (the Fig. 6 trade-off).
        assert!(points[2].accuracy + 1e-9 >= points[0].accuracy);
        let best = best_threshold(&points).unwrap();
        assert!(points.iter().all(|p| p.speedup_pct <= best.speedup_pct));
    }
}
