//! Replacement-coverage and replacement-accuracy metrics (§III-C).

use std::collections::HashMap;

use ripple_program::{BlockId, InstKind, Layout, LineAddr, Program};
use ripple_sim::{EvictionEvent, EvictionSink, Temperature, TemperatureMap};
use ripple_trace::BbTrace;

use crate::analysis::EvictionWindow;

/// Per-line index of demand access positions, for "is this line ever used
/// again after position p?" queries.
#[derive(Debug, Default)]
pub struct LineAccessIndex {
    positions: HashMap<LineAddr, Vec<u64>>,
}

impl LineAccessIndex {
    /// Builds the index from a block trace under `layout`.
    pub fn build(layout: &Layout, trace: &BbTrace) -> Self {
        let mut positions: HashMap<LineAddr, Vec<u64>> = HashMap::new();
        for (pos, block) in trace.iter().enumerate() {
            for line in layout.lines_of_block(block) {
                positions.entry(line).or_default().push(pos as u64);
            }
        }
        LineAccessIndex { positions }
    }

    /// First demand access to `line` strictly after `pos`, if any.
    pub fn next_access_after(&self, line: LineAddr, pos: u64) -> Option<u64> {
        let v = self.positions.get(&line)?;
        let i = v.partition_point(|&p| p <= pos);
        v.get(i).copied()
    }

    /// Number of distinct lines indexed.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Raw per-line demand access counts of `trace` under `layout` — the
/// mergeable half of [`profile_temperatures`]. Fleet-profile aggregation
/// sums these across trace shards (weighted by instance traffic) before
/// classifying the merged counts with [`temperatures_from_counts`].
pub fn line_access_counts(layout: &Layout, trace: &BbTrace) -> HashMap<LineAddr, u64> {
    let mut counts: HashMap<LineAddr, u64> = HashMap::new();
    for block in trace.iter() {
        for line in layout.lines_of_block(block) {
            *counts.entry(line).or_insert(0) += 1;
        }
    }
    counts
}

/// Classifies profiled per-line access counts into TRRIP temperature
/// classes — the classification half of [`profile_temperatures`].
///
/// * **cold** — touch-once lines (streaming code: init paths, cold error
///   handling); TRRIP inserts them at distant re-reference.
/// * **hot** — the top decile of multi-touch lines *by rank*: exactly
///   `(n - 1) / 10 + 1` of `n` multi-touch lines, ranked by count
///   descending with ties broken by ascending [`LineAddr`]. A value-based
///   cutoff would classify every line tied with the boundary count as hot;
///   an all-equal-counts profile (common after fleet shard merging) would
///   then make *every* re-referenced line hot instead of one decile.
/// * **warm** — everything else, including unprofiled lines (the map's
///   default), behaving like plain SRRIP insertion.
///
/// Deterministic and input-order independent: the (count, address) rank is
/// a total order, so equal count multisets always produce equal maps.
pub fn temperatures_from_counts(
    counts: impl IntoIterator<Item = (LineAddr, u64)>,
) -> TemperatureMap {
    let mut cold: Vec<LineAddr> = Vec::new();
    let mut multi: Vec<(LineAddr, u64)> = Vec::new();
    for (line, count) in counts {
        if count <= 1 {
            cold.push(line);
        } else {
            multi.push((line, count));
        }
    }
    multi.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let hot_n = if multi.is_empty() {
        0
    } else {
        (multi.len() - 1) / 10 + 1
    };
    let mut map = TemperatureMap::new();
    for line in cold {
        map.set(line, Temperature::Cold);
    }
    for (rank, &(line, _)) in multi.iter().enumerate() {
        let temp = if rank < hot_n {
            Temperature::Hot
        } else {
            Temperature::Warm
        };
        map.set(line, temp);
    }
    map
}

/// Classifies every code line touched by `trace` into TRRIP temperature
/// classes from its profiled access frequency.
///
/// This is the profile half of the TRRIP co-design (Kao et al.), fed by
/// the same basic-block trace Ripple itself trains on. Composition of
/// [`line_access_counts`] (one trace walk) and [`temperatures_from_counts`]
/// (rank-based decile cut, ties broken by `LineAddr`); both halves are
/// exposed so fleet aggregation can merge shard counts before classifying.
pub fn profile_temperatures(layout: &Layout, trace: &BbTrace) -> TemperatureMap {
    temperatures_from_counts(line_access_counts(layout, trace))
}

/// Per-line index of ideal eviction windows, for "would the ideal policy
/// also have evicted this line here?" queries.
///
/// Windows of one line never overlap (each starts after the refill that
/// follows the previous eviction), so sorted binary search suffices.
#[derive(Debug, Default)]
pub struct WindowIndex {
    windows: HashMap<LineAddr, Vec<(u64, u64)>>,
}

impl WindowIndex {
    /// Builds the index from the analysis's eviction windows.
    pub fn build(windows: &[EvictionWindow]) -> Self {
        let mut map: HashMap<LineAddr, Vec<(u64, u64)>> = HashMap::new();
        for w in windows {
            map.entry(w.victim).or_default().push((w.start, w.end));
        }
        for v in map.values_mut() {
            v.sort_unstable();
        }
        WindowIndex { windows: map }
    }

    /// Whether position `pos` lies inside an eviction window of `line`
    /// (start-exclusive, end-inclusive): an action at `pos` that evicts
    /// `line` agrees with the ideal policy.
    pub fn contains(&self, line: LineAddr, pos: u64) -> bool {
        let Some(v) = self.windows.get(&line) else {
            return false;
        };
        let i = v.partition_point(|&(_, end)| end < pos);
        v.get(i).is_some_and(|&(start, _)| start < pos)
    }
}

/// An eviction-style decision (Ripple invalidation or hardware eviction)
/// is *accurate* when it cannot introduce a miss the ideal policy would
/// not also have taken: either the position falls inside an ideal eviction
/// window of the line, or the line is never demand-accessed again.
pub fn decision_is_accurate(
    line: LineAddr,
    pos: u64,
    windows: &WindowIndex,
    accesses: &LineAccessIndex,
) -> bool {
    windows.contains(line, pos) || accesses.next_access_after(line, pos).is_none()
}

/// Accuracy tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccuracyStats {
    /// Decisions that agreed with the ideal policy.
    pub accurate: u64,
    /// All decisions examined.
    pub total: u64,
}

impl AccuracyStats {
    /// Accuracy in `[0, 1]` (1.0 when no decisions were made).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.accurate as f64 / self.total as f64
        }
    }
}

/// Replays `trace` over the *rewritten* program and scores every dynamic
/// invalidation execution against the ideal windows (Fig. 10).
///
/// `windows`/`accesses` must be built against the same layout generation
/// as the invalidate operands (the rewritten layout).
pub fn invalidation_accuracy(
    program: &Program,
    trace: &BbTrace,
    windows: &WindowIndex,
    accesses: &LineAccessIndex,
) -> AccuracyStats {
    // Victim lines per cue block (empty for untouched blocks).
    let mut victims: HashMap<BlockId, Vec<LineAddr>> = HashMap::new();
    for block in program.blocks() {
        if block.injected_prefix_len() == 0 {
            continue;
        }
        let lines: Vec<LineAddr> = block
            .instructions()
            .iter()
            .filter_map(|inst| match inst.kind() {
                InstKind::Invalidate { line } => Some(line),
                _ => None,
            })
            .collect();
        victims.insert(block.id(), lines);
    }

    let mut stats = AccuracyStats::default();
    for (pos, block) in trace.iter().enumerate() {
        let Some(lines) = victims.get(&block) else {
            continue;
        };
        for &line in lines {
            stats.total += 1;
            if decision_is_accurate(line, pos as u64, windows, accesses) {
                stats.accurate += 1;
            }
        }
    }
    stats
}

/// Scores a not-yet-applied [`InjectionPlan`](ripple_program::InjectionPlan)
/// by replaying `trace` and
/// testing every dynamic execution of a cue block against the ideal
/// windows, with victims expressed in the *profiled* layout (`layout`).
///
/// This is the evaluation the pipeline uses: windows, accesses and plan
/// victims all live in the same (pre-injection) address space.
pub fn plan_accuracy(
    plan: &ripple_program::InjectionPlan,
    layout: &Layout,
    trace: &BbTrace,
    windows: &WindowIndex,
    accesses: &LineAccessIndex,
) -> AccuracyStats {
    let mut victims: HashMap<BlockId, Vec<LineAddr>> = HashMap::new();
    for inj in plan.injections() {
        victims
            .entry(inj.cue)
            .or_default()
            .push(layout.line_of(inj.victim));
    }
    let mut stats = AccuracyStats::default();
    for (pos, block) in trace.iter().enumerate() {
        let Some(lines) = victims.get(&block) else {
            continue;
        };
        for &line in lines {
            stats.total += 1;
            if decision_is_accurate(line, pos as u64, windows, accesses) {
                stats.accurate += 1;
            }
        }
    }
    stats
}

/// Scores a hardware policy's eviction log against the ideal windows —
/// the paper's "LRU has 77.8 % average accuracy" measurement.
///
/// Wrapper over [`AccuracySink`] for callers holding a materialized log;
/// when the indexes exist before the run, plug an `AccuracySink` into the
/// simulation instead and skip the log entirely.
pub fn eviction_accuracy(
    evictions: &[EvictionEvent],
    windows: &WindowIndex,
    accesses: &LineAccessIndex,
) -> AccuracyStats {
    let mut sink = AccuracySink::new(windows, accesses);
    for &e in evictions {
        sink.record(e);
    }
    sink.into_stats()
}

/// Streams a simulation's evictions straight into an accuracy tally,
/// scoring each decision online against pre-built ideal-window and access
/// indexes — no eviction log is ever materialized.
#[derive(Debug)]
pub struct AccuracySink<'a> {
    windows: &'a WindowIndex,
    accesses: &'a LineAccessIndex,
    stats: AccuracyStats,
}

impl<'a> AccuracySink<'a> {
    /// Creates a sink scoring against `windows` and `accesses`.
    pub fn new(windows: &'a WindowIndex, accesses: &'a LineAccessIndex) -> Self {
        AccuracySink {
            windows,
            accesses,
            stats: AccuracyStats::default(),
        }
    }

    /// The tally so far.
    pub fn stats(&self) -> AccuracyStats {
        self.stats
    }

    /// Consumes the sink, returning the tally.
    pub fn into_stats(self) -> AccuracyStats {
        self.stats
    }
}

impl EvictionSink for AccuracySink<'_> {
    fn record(&mut self, e: EvictionEvent) {
        self.stats.total += 1;
        if decision_is_accurate(e.victim, e.evict_pos, self.windows, self.accesses) {
            self.stats.accurate += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::EvictionWindow;

    fn l(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    fn windows_of(spec: &[(u64, u64, u64)]) -> WindowIndex {
        let ws: Vec<EvictionWindow> = spec
            .iter()
            .map(|&(line, start, end)| EvictionWindow {
                victim: l(line),
                start,
                end,
            })
            .collect();
        WindowIndex::build(&ws)
    }

    #[test]
    fn window_membership_is_start_exclusive_end_inclusive() {
        let idx = windows_of(&[(7, 10, 20)]);
        assert!(!idx.contains(l(7), 10));
        assert!(idx.contains(l(7), 11));
        assert!(idx.contains(l(7), 20));
        assert!(!idx.contains(l(7), 21));
        assert!(!idx.contains(l(8), 15));
    }

    #[test]
    fn multiple_windows_binary_search() {
        let idx = windows_of(&[(7, 10, 20), (7, 30, 40), (7, 50, 60)]);
        for (pos, expect) in [(15, true), (25, false), (35, true), (45, false), (55, true)] {
            assert_eq!(idx.contains(l(7), pos), expect, "pos {pos}");
        }
    }

    #[test]
    fn accuracy_counts_dead_lines_as_accurate() {
        let windows = windows_of(&[]);
        let accesses = LineAccessIndex::default();
        // Never accessed again -> accurate even with no window.
        assert!(decision_is_accurate(l(3), 5, &windows, &accesses));
    }

    #[test]
    fn accuracy_stats_ratio() {
        let s = AccuracyStats {
            accurate: 9,
            total: 10,
        };
        assert!((s.accuracy() - 0.9).abs() < 1e-12);
        assert_eq!(AccuracyStats::default().accuracy(), 1.0);
    }

    #[test]
    fn eviction_accuracy_scores_log_entries() {
        let windows = windows_of(&[(7, 10, 20)]);
        // Line 7 accessed at 5 and 25: an eviction at 15 matches the
        // window (accurate); an eviction at 22 is premature (line used at
        // 25, no window) -> inaccurate.
        let mut accesses = LineAccessIndex::default();
        accesses.positions.insert(l(7), vec![5, 25]);
        let log = vec![
            EvictionEvent {
                victim: l(7),
                evict_pos: 15,
                last_access_pos: 5,
                by_prefetch: false,
            },
            EvictionEvent {
                victim: l(7),
                evict_pos: 22,
                last_access_pos: 5,
                by_prefetch: false,
            },
        ];
        let s = eviction_accuracy(&log, &windows, &accesses);
        assert_eq!(s.accurate, 1);
        assert_eq!(s.total, 2);
    }

    #[test]
    fn profile_temperatures_classifies_hot_warm_cold() {
        use ripple_program::{Layout, LayoutConfig};
        use ripple_sim::Temperature;
        use ripple_workloads::{execute, generate, AppSpec, InputConfig};

        let app = generate(&AppSpec::tiny(3));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        let trace = execute(&app.program, &app.model, InputConfig::training(3), 20_000);
        let temps = profile_temperatures(&layout, &trace);
        assert!(!temps.is_empty());

        // Recompute raw counts independently and spot-check the contract:
        // the most-touched line is hot, touch-once lines are cold.
        let mut counts: HashMap<LineAddr, u64> = HashMap::new();
        for block in trace.iter() {
            for line in layout.lines_of_block(block) {
                *counts.entry(line).or_insert(0) += 1;
            }
        }
        // Among count-tied maxima, the lowest address wins the rank
        // tie-break, so that line is the one guaranteed hot.
        let max = counts.values().copied().max().unwrap();
        let hottest = counts
            .iter()
            .filter(|&(_, &c)| c == max)
            .map(|(&line, _)| line)
            .min()
            .unwrap();
        assert!(max >= 2, "20k-block trace must re-reference some line");
        assert_eq!(temps.of_line(hottest), Temperature::Hot);
        for (&line, &c) in &counts {
            if c <= 1 {
                assert_eq!(temps.of_line(line), Temperature::Cold);
            }
        }
        // Unprofiled lines default to warm; the profile is deterministic.
        assert_eq!(temps.of_line(LineAddr::new(u64::MAX)), Temperature::Warm);
        assert_eq!(profile_temperatures(&layout, &trace), temps);
    }

    /// Regression test for the tie-unstable decile cut: a trace whose
    /// multi-touch lines all share one access count must classify exactly
    /// the top decile (by the `LineAddr` tie-break) as hot — the old
    /// value-based cutoff marked *every* boundary-tied line hot.
    #[test]
    fn all_equal_counts_trace_hots_exactly_the_top_decile() {
        use ripple_program::{Layout, LayoutConfig};
        use ripple_sim::Temperature;
        use ripple_trace::BbTrace;
        use ripple_workloads::{generate, AppSpec};

        let app = generate(&AppSpec::tiny(11));
        let layout = Layout::new(&app.program, &LayoutConfig::default());
        // A multi-line block repeated N times: every line it touches has
        // the same count N — an all-equal-counts profile.
        let block = app
            .program
            .blocks()
            .iter()
            .map(|b| b.id())
            .find(|&b| layout.lines_of_block(b).count() >= 2)
            .expect("tiny app must contain a block spanning >= 2 lines");
        let trace = BbTrace::new(vec![block; 3]);
        let temps = profile_temperatures(&layout, &trace);

        let mut lines: Vec<LineAddr> = layout.lines_of_block(block).collect();
        lines.sort_unstable();
        lines.dedup();
        let hot_n = (lines.len() - 1) / 10 + 1;
        for (rank, &line) in lines.iter().enumerate() {
            let expect = if rank < hot_n {
                Temperature::Hot
            } else {
                Temperature::Warm
            };
            assert_eq!(temps.of_line(line), expect, "line {line:?} rank {rank}");
        }
    }

    #[test]
    fn temperature_rank_cut_is_order_independent_and_bounded_under_ties() {
        use ripple_sim::Temperature;

        // Twenty lines all tied at count 5: exactly (20-1)/10 + 1 = 2 hot,
        // and the tie-break picks the two lowest addresses.
        let counts: Vec<(LineAddr, u64)> = (0..20).map(|i| (l(100 + i), 5)).collect();
        let temps = temperatures_from_counts(counts.iter().copied());
        let hot: Vec<LineAddr> = (0..20)
            .map(|i| l(100 + i))
            .filter(|&line| temps.of_line(line) == Temperature::Hot)
            .collect();
        assert_eq!(hot, vec![l(100), l(101)]);

        // Input order must not matter (HashMap iteration order never
        // leaks into the classification).
        let mut reversed = counts.clone();
        reversed.reverse();
        assert_eq!(temperatures_from_counts(reversed), temps);

        // Touch-once lines stay cold regardless of the hot-set churn.
        let mut with_cold = counts;
        with_cold.push((l(7), 1));
        assert_eq!(
            temperatures_from_counts(with_cold).of_line(l(7)),
            Temperature::Cold
        );
    }
}
