//! Ripple's offline eviction analysis (§III-B of the paper).
//!
//! Given a basic-block trace and the eviction log of an *ideal*
//! replacement policy replayed over it, the analysis:
//!
//! 1. builds the **eviction window** of every ideal eviction — the span of
//!    blocks executed between the victim line's last access and the access
//!    that triggers its eviction (Fig. 5a);
//! 2. treats every block executed inside a window as a **candidate cue
//!    block** and computes the conditional probability
//!    `P(evict A | execute B)` as the number of distinct windows of `A`
//!    containing `B` divided by `B`'s total execution count (Fig. 5b);
//! 3. for each window selects the candidate with the highest probability;
//!    windows whose winner clears the invalidation threshold contribute an
//!    injection of `invalidate(A)` into that cue block (§III-C).

use std::collections::{HashMap, HashSet};

use ripple_program::{
    line_origins, BlockId, CodeLoc, Injection, InjectionPlan, Layout, LineAddr, Program,
};
use ripple_sim::{EvictionEvent, EvictionSink};
use ripple_trace::BbTrace;

/// One ideal-policy eviction window (Fig. 5a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionWindow {
    /// The line the ideal policy evicted.
    pub victim: LineAddr,
    /// Trace position of the victim's last demand access (exclusive window
    /// start).
    pub start: u64,
    /// Trace position of the eviction trigger (inclusive window end).
    pub end: u64,
}

/// Streams the simulator's eviction log directly into eviction windows.
///
/// Plugged into a simulation as its [`EvictionSink`], this keeps only the
/// *usable* windows (the victim had a demand access before eviction and the
/// window is non-degenerate) and drops everything else as it arrives — the
/// raw event log is never materialized. Feed the result to
/// [`analyze_windows`].
#[derive(Debug, Default)]
pub struct WindowSink {
    windows: Vec<EvictionWindow>,
}

impl WindowSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        WindowSink::default()
    }

    /// The usable windows collected so far.
    pub fn windows(&self) -> &[EvictionWindow] {
        &self.windows
    }

    /// Consumes the sink, returning the collected windows.
    pub fn into_windows(self) -> Vec<EvictionWindow> {
        self.windows
    }
}

impl EvictionSink for WindowSink {
    fn record(&mut self, e: EvictionEvent) {
        if e.last_access_pos != u64::MAX && e.evict_pos > e.last_access_pos + 1 {
            self.windows.push(EvictionWindow {
                victim: e.victim,
                start: e.last_access_pos,
                end: e.evict_pos,
            });
        }
    }
}

/// One candidate cue block within a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CueCandidate {
    /// The candidate block.
    pub block: BlockId,
    /// `P(evict victim | execute block)`.
    pub probability: f64,
    /// Whether the block may be rewritten (static code).
    pub rewritable: bool,
    /// Distance (in blocks) from the eviction trigger to the candidate's
    /// *earliest* execution inside the window. An injected invalidation
    /// fires at that earliest execution, so a small gap means the freed
    /// way is still free when the triggering fill arrives.
    pub earliest_gap: u64,
}

/// The cue candidates of one window, nearest-to-the-eviction first.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowChoice {
    /// The window's victim line.
    pub victim: LineAddr,
    /// Candidates in backward scan order (the first executed closest to
    /// the eviction trigger), deduplicated, capped.
    pub candidates: Vec<CueCandidate>,
}

impl WindowChoice {
    /// The candidate with the highest conditional probability.
    pub fn best_by_probability(&self) -> Option<&CueCandidate> {
        self.candidates
            .iter()
            .max_by(|a, b| a.probability.total_cmp(&b.probability))
    }

    /// Among candidates whose probability reaches `threshold`, the one
    /// whose earliest in-window execution is closest to the eviction.
    pub fn latest_eligible(&self, threshold: f64) -> Option<&CueCandidate> {
        self.candidates
            .iter()
            .filter(|c| c.probability >= threshold)
            .min_by_key(|c| c.earliest_gap)
    }
}

/// How the cue block is selected among a window's eligible candidates.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum CueSelection {
    /// The candidate executed nearest the eviction whose probability
    /// clears the threshold. Late cues time the invalidation close to the
    /// ideal eviction point, so the freed way is consumed by the very fill
    /// the ideal policy would have used it for.
    #[default]
    LatestEligible,
    /// The paper's Fig. 5b selection: the candidate with the highest
    /// conditional probability, injected only if it clears the threshold.
    HighestProbability,
}

/// Analysis parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisConfig {
    /// Maximum number of blocks scanned backward from an eviction when
    /// building its window. The paper scans to the window start; capping
    /// bounds analysis cost on pathological reuse distances while keeping
    /// the candidates closest to the eviction, which are the strongest
    /// cues.
    pub max_window_blocks: usize,
    /// Maximum distinct candidates retained per window (nearest first).
    pub max_candidates: usize,
    /// Blocks scanned forward from the window start (the victim's last
    /// access). Front-side candidates belong to the victim's own request
    /// and recur every time that request repeats, letting one injected
    /// pair cover many windows.
    pub front_window_blocks: usize,
    /// Cue selection strategy.
    pub cue_selection: CueSelection,
    /// Maximum distance (blocks) between a cue's earliest in-window
    /// execution and the eviction trigger for it to be eligible. A freed
    /// way only helps if it is still free when the triggering fill
    /// arrives; a cue that fires thousands of blocks early donates its
    /// slot to an unrelated fill and the benefit evaporates.
    pub max_earliest_gap: u64,
    /// Minimum number of eviction windows a (cue, victim) pair must cover
    /// to stay in the plan. A pair covering a single window trades one
    /// saved miss for seven bytes of hot code — negative expected value —
    /// so only recurring evictions are worth a static instruction
    /// ("sparing" injection, §III).
    pub min_windows_per_injection: u32,
    /// Maximum invalidate instructions injected into one cue block. A hot
    /// block cueing dozens of victims would grow by hundreds of bytes,
    /// and that local bloat (extra hot lines) costs more misses than the
    /// invalidations save; overflow spills to the next-best candidate.
    pub max_injections_per_block: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            max_window_blocks: 128,
            max_candidates: 32,
            front_window_blocks: 64,
            cue_selection: CueSelection::HighestProbability,
            max_earliest_gap: u64::MAX,
            min_windows_per_injection: 2,
            max_injections_per_block: 6,
        }
    }
}

/// Result of the eviction analysis; thresholds are applied afterwards (so
/// a single analysis supports a full threshold sweep, Fig. 6).
#[derive(Debug)]
pub struct Analysis {
    windows: Vec<EvictionWindow>,
    choices: Vec<WindowChoice>,
    origins: HashMap<LineAddr, CodeLoc>,
    selection: CueSelection,
    per_block_cap: usize,
    max_earliest_gap: u64,
    min_pair_windows: u32,
}

/// Coverage bookkeeping for one threshold (Fig. 9).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoverageStats {
    /// Ideal evictions analyzed (with a usable window).
    pub total_windows: u64,
    /// Windows whose selected cue cleared the threshold and was injected.
    pub covered_windows: u64,
    /// Windows lost because the winning cue lies in JIT/kernel code.
    pub skipped_unrewritable: u64,
}

impl CoverageStats {
    /// Replacement coverage: the fraction of ideal replacement decisions
    /// Ripple's invalidations will initiate.
    pub fn coverage(&self) -> f64 {
        if self.total_windows == 0 {
            0.0
        } else {
            self.covered_windows as f64 / self.total_windows as f64
        }
    }
}

impl Analysis {
    /// The eviction windows underlying the analysis.
    pub fn windows(&self) -> &[EvictionWindow] {
        &self.windows
    }

    /// Per-window winning cue candidates.
    pub fn choices(&self) -> &[WindowChoice] {
        &self.choices
    }

    /// Derives the injection plan for an invalidation `threshold`
    /// (0.0..=1.0): every window whose selected cue's conditional
    /// probability reaches the threshold injects one `invalidate` into
    /// that cue block.
    pub fn plan_for_threshold(&self, threshold: f64) -> (InjectionPlan, CoverageStats) {
        self.plan_with(threshold, self.min_pair_windows)
    }

    /// [`Analysis::plan_for_threshold`] constrained to an available slot
    /// budget per block: the final (layout-frozen) assignment pass selects,
    /// per window, an eligible cue that still has a reserved invalidate
    /// slot, so a window is only lost when *none* of its eligible cues has
    /// space.
    pub fn plan_for_slots(
        &self,
        threshold: f64,
        slots: &HashMap<BlockId, usize>,
    ) -> (InjectionPlan, CoverageStats) {
        self.plan_impl(threshold, self.min_pair_windows, Some(slots))
    }

    /// [`Analysis::plan_for_threshold`] with an explicit minimum number of
    /// windows per injected pair (used when reserving slots generously
    /// for the final-layout pass).
    pub fn plan_with(
        &self,
        threshold: f64,
        min_pair_windows: u32,
    ) -> (InjectionPlan, CoverageStats) {
        self.plan_impl(threshold, min_pair_windows, None)
    }

    fn plan_impl(
        &self,
        threshold: f64,
        min_pair_windows: u32,
        slots: Option<&HashMap<BlockId, usize>>,
    ) -> (InjectionPlan, CoverageStats) {
        let mut plan = InjectionPlan::new();
        let mut stats = CoverageStats {
            total_windows: self.choices.len() as u64,
            ..CoverageStats::default()
        };
        let mut per_cue: HashMap<BlockId, usize> = HashMap::new();
        let mut seen: HashSet<(BlockId, LineAddr)> = HashSet::new();
        let cap_of = |block: BlockId, per_cue: &HashMap<BlockId, usize>| -> bool {
            let used = per_cue.get(&block).copied().unwrap_or(0);
            match slots {
                Some(s) => used < s.get(&block).copied().unwrap_or(0),
                None => used < self.per_block_cap,
            }
        };
        // (cue, victim-identity) -> (victim CodeLoc, windows covered).
        // `pair_order` remembers first-placement order: the plan must be
        // emitted deterministically (HashMap iteration order is
        // per-instance random, and injection order dictates the injected
        // byte sequence, hence the layout).
        let mut pair_value: HashMap<(BlockId, LineAddr), (CodeLoc, u32)> = HashMap::new();
        let mut pair_order: Vec<(BlockId, LineAddr)> = Vec::new();
        let mut skipped = 0u64;
        for choice in &self.choices {
            // Candidates eligible at this threshold, in selection order.
            let mut eligible: Vec<&CueCandidate> = choice
                .candidates
                .iter()
                .filter(|c| c.probability >= threshold && c.earliest_gap <= self.max_earliest_gap)
                .collect();
            match self.selection {
                CueSelection::LatestEligible => {
                    eligible.sort_by_key(|c| c.earliest_gap);
                }
                CueSelection::HighestProbability => {
                    eligible.sort_by(|a, b| b.probability.total_cmp(&a.probability));
                }
            }
            if eligible.is_empty() {
                continue;
            }
            let Some(&victim_loc) = self.origins.get(&choice.victim) else {
                continue;
            };
            let mut placed = false;
            let mut saw_rewritable = false;
            // First pass: an already-assigned (cue, victim) pair covers
            // this window for free — recurring evictions of the same line
            // (one per phase cycle) amortize a single static instruction.
            for cand in &eligible {
                if !cand.rewritable {
                    continue;
                }
                let key = (cand.block, self.layout_line(victim_loc));
                if seen.contains(&key) {
                    // `seen` and `pair_value` are inserted in lockstep, so
                    // a seen key always resolves.
                    if let Some(entry) = pair_value.get_mut(&key) {
                        entry.1 += 1;
                    }
                    placed = true;
                    saw_rewritable = true;
                    break;
                }
            }
            if !placed {
                for cand in eligible {
                    if !cand.rewritable {
                        continue;
                    }
                    saw_rewritable = true;
                    if !cap_of(cand.block, &per_cue) {
                        continue;
                    }
                    *per_cue.entry(cand.block).or_insert(0) += 1;
                    let key = (cand.block, self.layout_line(victim_loc));
                    seen.insert(key);
                    pair_value.insert(key, (victim_loc, 1));
                    pair_order.push(key);
                    placed = true;
                    break;
                }
            }
            if placed {
                stats.covered_windows += 1;
            } else if !saw_rewritable {
                skipped += 1;
            }
        }
        stats.skipped_unrewritable = skipped;
        // Value filter: keep only pairs whose recurring coverage pays for
        // the injected bytes.
        let mut dropped_windows = 0u64;
        let min_pair_windows = if slots.is_some() {
            1
        } else {
            min_pair_windows.max(1)
        };
        for &key @ (cue, _) in &pair_order {
            // Inserted in lockstep with `pair_order`, so the key resolves.
            let Some(&(victim, windows)) = pair_value.get(&key) else {
                continue;
            };
            if windows >= min_pair_windows {
                plan.push(Injection { cue, victim });
            } else {
                dropped_windows += u64::from(windows);
            }
        }
        stats.covered_windows = stats.covered_windows.saturating_sub(dropped_windows);
        (plan, stats)
    }

    /// Stable key for dedup: the victim's line identity is its CodeLoc
    /// (origins are unique per line).
    fn layout_line(&self, loc: CodeLoc) -> LineAddr {
        // Origins map line -> loc; invert cheaply by using the loc itself
        // as identity. Two distinct lines never share an origin CodeLoc.
        LineAddr::new(((loc.block.get() as u64) << 32) | u64::from(loc.offset))
    }
}

/// Runs the eviction analysis over `trace` and the ideal policy's
/// `evictions` log.
///
/// `layout` must be the layout the eviction log was produced under (the
/// profiled, pre-injection layout). Thin wrapper over [`analyze_windows`]
/// for callers holding a materialized log; the pipeline itself streams
/// events through a [`WindowSink`] instead.
pub fn analyze(
    program: &Program,
    layout: &Layout,
    trace: &BbTrace,
    evictions: &[EvictionEvent],
    config: &AnalysisConfig,
) -> Analysis {
    let mut sink = WindowSink::new();
    for &e in evictions {
        sink.record(e);
    }
    analyze_windows(program, layout, trace, sink.into_windows(), config)
}

/// Runs the eviction analysis over eviction `windows` already extracted
/// from the ideal policy's run (usually streamed via [`WindowSink`]).
///
/// This is the dense production path: windows are grouped by victim line,
/// each window is scanned exactly once (back side then front side, fused),
/// and all per-window / per-victim scratch lives in flat `BlockId`-indexed
/// arrays with epoch stamps instead of hash maps — no per-window clears,
/// no hashing in the scan loop. [`analyze_windows_reference`] keeps the
/// original two-pass map-based implementation as the equivalence oracle;
/// both must produce identical `WindowChoice` sequences.
pub fn analyze_windows(
    program: &Program,
    layout: &Layout,
    trace: &BbTrace,
    windows: Vec<EvictionWindow>,
    config: &AnalysisConfig,
) -> Analysis {
    let blocks = trace.blocks();
    let num_blocks = program.num_blocks();

    // Execution counts for the probability denominator.
    let mut exec_count = vec![0u64; num_blocks];
    for &b in blocks {
        exec_count[b.index()] += 1;
    }

    // Precomputed block -> (first, last) spanned-line table (flat, eager):
    // the scan loop tests victim containment per trace position, so this
    // must be a plain indexed load.
    let mut span: Vec<(u64, u64)> = Vec::with_capacity(num_blocks);
    let mut rewritable = vec![false; num_blocks];
    for block in program.blocks() {
        let mut iter = layout.lines_of_block(block.id());
        let first = iter.next().map(|l| l.index()).unwrap_or(u64::MAX);
        let last = iter.last().map(|l| l.index()).unwrap_or(first);
        span.push((first, last));
        rewritable[block.id().index()] = program.function(block.func()).kind().is_rewritable();
    }
    debug_assert_eq!(span.len(), num_blocks);

    // Group windows by victim so pair counts (distinct windows of this
    // victim containing block B) complete as soon as the group does: a
    // stable sort keeps each group's windows in arrival order, and the
    // per-window choice is written back to its original index.
    let mut order: Vec<u32> = (0..windows.len() as u32).collect();
    order.sort_by_key(|&i| windows[i as usize].victim);

    // Epoch-stamped scratch, all BlockId-indexed: `win_epoch`/`earliest`
    // reset per window, `pair_epoch`/`pair_count` per victim group — a
    // stale stamp *is* the cleared state, so no O(num_blocks) clears.
    let mut win_epoch = vec![0u64; num_blocks];
    let mut earliest = vec![0u64; num_blocks];
    let mut pair_epoch = vec![0u64; num_blocks];
    let mut pair_count = vec![0u32; num_blocks];
    let mut window_no = 0u64;
    let mut group_no = 0u64;

    // Per-group staging: each window's capped candidate list (block,
    // earliest position) in scan order, finalized into probabilities once
    // the group's pair counts are complete.
    struct Staged {
        window: u32,
        hi: u64,
        cands: Vec<(BlockId, u64)>,
    }
    let mut staged: Vec<Staged> = Vec::new();
    let half = config.max_candidates / 2;

    let mut choices: Vec<Option<WindowChoice>> = Vec::new();
    choices.resize_with(windows.len(), || None);

    let flush_group = |staged: &mut Vec<Staged>,
                       pair_count: &[u32],
                       choices: &mut Vec<Option<WindowChoice>>,
                       victim: LineAddr| {
        for s in staged.drain(..) {
            let candidates: Vec<CueCandidate> = s
                .cands
                .iter()
                .filter_map(|&(b, early)| {
                    let execs = exec_count[b.index()];
                    if execs == 0 {
                        return None;
                    }
                    Some(CueCandidate {
                        block: b,
                        probability: f64::from(pair_count[b.index()]) / execs as f64,
                        rewritable: rewritable[b.index()],
                        earliest_gap: s.hi - early,
                    })
                })
                .collect();
            choices[s.window as usize] = Some(WindowChoice { victim, candidates });
        }
    };

    let mut group_victim: Option<LineAddr> = None;
    for &wi in &order {
        let w = &windows[wi as usize];
        if group_victim != Some(w.victim) {
            if let Some(v) = group_victim {
                flush_group(&mut staged, &pair_count, &mut choices, v);
            }
            group_victim = Some(w.victim);
            group_no += 1;
        }
        window_no += 1;
        let victim_line = w.victim.index();

        let lo = w.start + 1;
        let hi = w.end; // exclusive: the trigger block itself is too late
        let back_lo = hi.saturating_sub(config.max_window_blocks as u64).max(lo);
        let front_hi = lo.saturating_add(config.front_window_blocks as u64).min(hi);
        let mut cands: Vec<(BlockId, u64)> = Vec::with_capacity(config.max_candidates);

        // Back side, nearest the trigger first. Walking backward means a
        // later iteration is an earlier position, so a plain overwrite of
        // `earliest` converges on the minimum.
        for p in (back_lo..hi).rev() {
            let b = blocks[p as usize];
            let bi = b.index();
            let (first, last) = span[bi];
            if (first..=last).contains(&victim_line) {
                break;
            }
            if win_epoch[bi] != window_no {
                win_epoch[bi] = window_no;
                if pair_epoch[bi] != group_no {
                    pair_epoch[bi] = group_no;
                    pair_count[bi] = 0;
                }
                pair_count[bi] += 1;
                if cands.len() < half {
                    cands.push((b, p));
                }
            }
            earliest[bi] = p;
        }
        // Front side, nearest the last access first.
        for p in lo..front_hi {
            let b = blocks[p as usize];
            let bi = b.index();
            let (first, last) = span[bi];
            if (first..=last).contains(&victim_line) {
                break;
            }
            if win_epoch[bi] != window_no {
                win_epoch[bi] = window_no;
                if pair_epoch[bi] != group_no {
                    pair_epoch[bi] = group_no;
                    pair_count[bi] = 0;
                }
                pair_count[bi] += 1;
                if cands.len() < config.max_candidates {
                    cands.push((b, p));
                }
                earliest[bi] = p;
            } else {
                earliest[bi] = earliest[bi].min(p);
            }
        }
        // Snapshot earliest positions now: the next window reuses the
        // array under a fresh epoch.
        for slot in &mut cands {
            slot.1 = earliest[slot.0.index()];
        }
        staged.push(Staged {
            window: wi,
            hi,
            cands,
        });
    }
    if let Some(v) = group_victim {
        flush_group(&mut staged, &pair_count, &mut choices, v);
    }

    let choices: Vec<WindowChoice> = choices
        .into_iter()
        .map(|c| c.unwrap_or_else(|| unreachable!("every window staged exactly once")))
        .collect();

    Analysis {
        windows,
        choices,
        origins: line_origins(program, layout),
        selection: config.cue_selection,
        per_block_cap: config.max_injections_per_block.max(1),
        max_earliest_gap: config.max_earliest_gap,
        min_pair_windows: config.min_windows_per_injection.max(1),
    }
}

/// The original two-pass, map-based implementation of
/// [`analyze_windows`], retained verbatim as the equivalence oracle for
/// the dense path (and exercised by `ripple-check` and the analysis
/// equivalence tests). Must produce an identical [`Analysis`].
pub fn analyze_windows_reference(
    program: &Program,
    layout: &Layout,
    trace: &BbTrace,
    windows: Vec<EvictionWindow>,
    config: &AnalysisConfig,
) -> Analysis {
    let blocks = trace.blocks();

    // Execution counts for the probability denominator.
    let mut exec_count = vec![0u64; program.num_blocks()];
    for &b in blocks {
        exec_count[b.index()] += 1;
    }

    // Cache of which lines each block spans (for the stop-at-victim rule).
    let mut block_lines: Vec<Option<(u64, u64)>> = vec![None; program.num_blocks()];
    let mut lines_of = |b: BlockId| -> (u64, u64) {
        let slot = &mut block_lines[b.index()];
        *slot.get_or_insert_with(|| {
            let mut iter = layout.lines_of_block(b);
            let first = iter.next().map(|l| l.index()).unwrap_or(u64::MAX);
            let last = iter.last().map(|l| l.index()).unwrap_or(first);
            (first, last)
        })
    };
    let mut contains = |b: BlockId, line: LineAddr| -> bool {
        let (first, last) = lines_of(b);
        (first..=last).contains(&line.index())
    };

    // Candidate scan: both ends of the window matter. Blocks just
    // *before* the eviction trigger time the invalidation perfectly, but
    // depend on whatever request happens to run next; blocks just *after*
    // the victim's last access belong to the victim's own (recurring)
    // request, so the same (cue, victim) pair re-covers every recurrence
    // — and at high coverage, early in-window invalidation is exactly as
    // good (the free way is consumed by fills that each had their own
    // invalidated victim).
    let mut scan = |w: &EvictionWindow,
                    scratch: &mut HashSet<BlockId>,
                    ordered: Option<&mut Vec<BlockId>>,
                    earliest: Option<&mut HashMap<BlockId, u64>>| {
        scratch.clear();
        let lo = w.start + 1;
        let hi = w.end; // exclusive: the trigger block itself is too late
        let back_lo = hi.saturating_sub(config.max_window_blocks as u64).max(lo);
        let front_hi = lo.saturating_add(config.front_window_blocks as u64).min(hi);
        let mut ordered = ordered;
        let mut earliest = earliest;
        let half = config.max_candidates / 2;
        // Back side, nearest the trigger first.
        for p in (back_lo..hi).rev() {
            let b = blocks[p as usize];
            if contains(b, w.victim) {
                break;
            }
            if scratch.insert(b) {
                if let Some(ord) = ordered.as_deref_mut() {
                    if ord.len() < half {
                        ord.push(b);
                    }
                }
            }
            if let Some(e) = earliest.as_deref_mut() {
                e.insert(b, p); // walking backward: later writes are earlier
            }
        }
        // Front side, nearest the last access first.
        for p in lo..front_hi {
            let b = blocks[p as usize];
            if contains(b, w.victim) {
                break;
            }
            if scratch.insert(b) {
                if let Some(ord) = ordered.as_deref_mut() {
                    if ord.len() < config.max_candidates {
                        ord.push(b);
                    }
                }
            }
            if let Some(e) = earliest.as_deref_mut() {
                e.entry(b).and_modify(|x| *x = (*x).min(p)).or_insert(p);
            }
        }
    };

    // Pass 1: count, per (victim, candidate) pair, the distinct windows of
    // the victim that contain the candidate.
    let mut pair_windows: HashMap<(LineAddr, BlockId), u32> = HashMap::new();
    let mut scratch: HashSet<BlockId> = HashSet::new();
    for w in &windows {
        scan(w, &mut scratch, None, None);
        for &b in scratch.iter() {
            *pair_windows.entry((w.victim, b)).or_insert(0) += 1;
        }
    }

    // Pass 2: collect each window's candidates.
    let is_rewritable = |b: BlockId| {
        let func = program.block(b).func();
        program.function(func).kind().is_rewritable()
    };
    let mut choices = Vec::with_capacity(windows.len());
    let mut ordered: Vec<BlockId> = Vec::new();
    let mut earliest: HashMap<BlockId, u64> = HashMap::new();
    for w in &windows {
        ordered.clear();
        earliest.clear();
        scan(w, &mut scratch, Some(&mut ordered), Some(&mut earliest));
        let hi = w.end;
        let candidates: Vec<CueCandidate> = ordered
            .iter()
            .filter_map(|&b| {
                let execs = exec_count[b.index()];
                if execs == 0 {
                    return None;
                }
                let hits = pair_windows[&(w.victim, b)];
                Some(CueCandidate {
                    block: b,
                    probability: f64::from(hits) / execs as f64,
                    rewritable: is_rewritable(b),
                    earliest_gap: hi - earliest.get(&b).copied().unwrap_or(hi),
                })
            })
            .collect();
        choices.push(WindowChoice {
            victim: w.victim,
            candidates,
        });
    }

    Analysis {
        windows,
        choices,
        origins: line_origins(program, layout),
        selection: config.cue_selection,
        per_block_cap: config.max_injections_per_block.max(1),
        max_earliest_gap: config.max_earliest_gap,
        min_pair_windows: config.min_windows_per_injection.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_program::{CodeKind, Instruction, LayoutConfig, ProgramBuilder};

    /// Builds the paper's Fig. 5 scenario programmatically: a victim line
    /// A and candidate cue blocks B, C, D, E with controlled execution
    /// counts and window memberships.
    ///
    /// Layout: one function per "block" so each lives on its own line(s).
    struct Fig5 {
        program: Program,
        layout: Layout,
        a: BlockId,
        b: BlockId,
        c: BlockId,
        d: BlockId,
        filler: BlockId,
    }

    fn fig5() -> Fig5 {
        let mut pb = ProgramBuilder::new();
        let mut mk = |name: &str| {
            let f = pb.add_function(name, CodeKind::Static);
            let blk = pb.add_block(f);
            pb.push_inst(blk, Instruction::other(59));
            pb.push_inst(blk, Instruction::ret());
            (f, blk)
        };
        let (_fa, a) = mk("A");
        let (_fb, b) = mk("B");
        let (_fc, c) = mk("C");
        let (_fd, d) = mk("D");
        let (_ff, filler) = mk("filler");
        let program = pb.finish(ripple_program::FuncId::new(0)).unwrap();
        let layout = Layout::new(&program, &LayoutConfig::default());
        Fig5 {
            program,
            layout,
            a,
            b,
            c,
            d,
            filler,
        }
    }

    /// Default analysis config with the paper's argmax selection and no
    /// value filter, which the unit tests reason about directly.
    fn plain_config() -> AnalysisConfig {
        AnalysisConfig {
            cue_selection: CueSelection::HighestProbability,
            min_windows_per_injection: 1,
            ..AnalysisConfig::default()
        }
    }

    /// Builds a trace and matching eviction log. `windows` lists, per
    /// eviction of A, the cue blocks executed inside the window.
    fn trace_and_log(
        f: &Fig5,
        windows: &[Vec<BlockId>],
        extra_execs: &[(BlockId, usize)],
    ) -> (BbTrace, Vec<EvictionEvent>) {
        let victim_line = f.layout.lines_of_block(f.a).next().unwrap();
        let mut blocks = Vec::new();
        let mut log = Vec::new();
        for contents in windows {
            blocks.push(f.a); // last access to A
            let start = (blocks.len() - 1) as u64;
            for &blk in contents {
                blocks.push(blk);
            }
            blocks.push(f.filler); // the trigger block
            log.push(EvictionEvent {
                victim: victim_line,
                evict_pos: (blocks.len() - 1) as u64,
                last_access_pos: start,
                by_prefetch: false,
            });
        }
        // Extra executions outside any window dilute P(evict | exec).
        for &(blk, n) in extra_execs {
            for _ in 0..n {
                blocks.push(blk);
            }
        }
        (BbTrace::new(blocks), log)
    }

    fn best_cue(analysis: &Analysis, i: usize) -> (BlockId, f64) {
        let c = analysis.choices()[i]
            .best_by_probability()
            .expect("window has candidates");
        (c.block, c.probability)
    }

    #[test]
    fn single_window_selects_its_only_candidate() {
        let f = fig5();
        let (trace, log) = trace_and_log(&f, &[vec![f.b]], &[]);
        let analysis = analyze(&f.program, &f.layout, &trace, &log, &plain_config());
        assert_eq!(analysis.choices().len(), 1);
        let (cue, p) = best_cue(&analysis, 0);
        assert_eq!(cue, f.b);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probability_divides_by_execution_count() {
        // B appears in 1 window but executes 4 times in total => P = 0.25.
        let f = fig5();
        let (trace, log) = trace_and_log(&f, &[vec![f.b]], &[(f.b, 3)]);
        let analysis = analyze(&f.program, &f.layout, &trace, &log, &plain_config());
        let (cue, p) = best_cue(&analysis, 0);
        assert_eq!(cue, f.b);
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn paper_worked_example_prefers_high_probability_cues() {
        // Mirror Fig. 5b's counts: B executes 16 times appearing in 4
        // windows (P=0.25); C executes 8 times appearing in 4 windows
        // (P=0.5). Windows containing both must pick C.
        let f = fig5();
        let windows = vec![
            vec![f.b, f.c],
            vec![f.b, f.c],
            vec![f.b, f.c],
            vec![f.b, f.c],
        ];
        let (trace, log) = trace_and_log(&f, &windows, &[(f.b, 12), (f.c, 4)]);
        let analysis = analyze(&f.program, &f.layout, &trace, &log, &plain_config());
        for i in 0..4 {
            let (cue, p) = best_cue(&analysis, i);
            assert_eq!(cue, f.c, "C has P=0.5 > B's 0.25");
            assert!((p - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn threshold_gates_injection() {
        let f = fig5();
        let (trace, log) = trace_and_log(&f, &[vec![f.b]], &[(f.b, 3)]); // P = 0.25
        let analysis = analyze(&f.program, &f.layout, &trace, &log, &plain_config());
        let (plan_low, cov_low) = analysis.plan_for_threshold(0.2);
        let (plan_high, cov_high) = analysis.plan_for_threshold(0.5);
        assert_eq!(plan_low.len(), 1);
        assert_eq!(cov_low.covered_windows, 1);
        assert!(plan_high.is_empty());
        assert_eq!(cov_high.covered_windows, 0);
        assert!((cov_low.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn value_filter_drops_single_window_pairs() {
        let f = fig5();
        // Two windows with different best cues: each pair covers one
        // window, so min_windows_per_injection = 2 empties the plan.
        let (trace, log) = trace_and_log(&f, &[vec![f.b], vec![f.c]], &[]);
        let mut cfg = plain_config();
        cfg.min_windows_per_injection = 2;
        let analysis = analyze(&f.program, &f.layout, &trace, &log, &cfg);
        let (plan, cov) = analysis.plan_for_threshold(0.5);
        assert!(plan.is_empty());
        assert_eq!(cov.covered_windows, 0);
        // Recurring pairs survive: both windows cued by B.
        let (trace2, log2) = trace_and_log(&f, &[vec![f.b], vec![f.b]], &[]);
        let analysis2 = analyze(&f.program, &f.layout, &trace2, &log2, &cfg);
        let (plan2, cov2) = analysis2.plan_for_threshold(0.5);
        assert_eq!(plan2.len(), 1);
        assert_eq!(cov2.covered_windows, 2);
    }

    #[test]
    fn per_block_cap_spills_to_next_candidate() {
        let f = fig5();
        let (trace, log) = trace_and_log(&f, &[vec![f.d, f.b]], &[]);
        let mut cfg = plain_config();
        cfg.max_injections_per_block = 1;
        let analysis = analyze(&f.program, &f.layout, &trace, &log, &cfg);
        // Only one victim here so the cap cannot bind; sanity-check shape.
        let (plan, cov) = analysis.plan_for_threshold(0.5);
        assert_eq!(plan.len(), 1);
        assert_eq!(cov.covered_windows, 1);
    }

    #[test]
    fn scan_stops_at_blocks_containing_the_victim() {
        // A window containing [D, A', C] where A' shares the victim line:
        // the backward scan from the trigger stops at A', so only C (after
        // A') can be a back-side candidate; the forward scan from the
        // window start stops immediately at A' too, so D never appears.
        let f = fig5();
        let (trace, log) = trace_and_log(&f, &[vec![f.d, f.a, f.c]], &[]);
        let analysis = analyze(&f.program, &f.layout, &trace, &log, &plain_config());
        let blocks: Vec<BlockId> = analysis.choices()[0]
            .candidates
            .iter()
            .map(|c| c.block)
            .collect();
        assert!(blocks.contains(&f.c));
        assert!(!blocks.contains(&f.a), "victim-holding blocks excluded");
    }

    #[test]
    fn front_candidates_recur_across_windows() {
        // D executes right after A's last access in both windows (front
        // side); the trigger-side cues differ (B then C). The same (D, A)
        // pair must cover both windows, yielding a single injection.
        let f = fig5();
        let (trace, log) =
            trace_and_log(&f, &[vec![f.d, f.b], vec![f.d, f.c]], &[(f.b, 7), (f.c, 7)]);
        let mut cfg = plain_config();
        cfg.min_windows_per_injection = 2;
        let analysis = analyze(&f.program, &f.layout, &trace, &log, &cfg);
        let (plan, cov) = analysis.plan_for_threshold(0.6);
        assert_eq!(plan.len(), 1, "one pair covers both windows");
        assert_eq!(plan.injections()[0].cue, f.d);
        assert_eq!(cov.covered_windows, 2);
    }

    #[test]
    fn unrewritable_cues_are_skipped_but_counted() {
        let mut pb = ProgramBuilder::new();
        let fa = pb.add_function("A", CodeKind::Static);
        let a = pb.add_block(fa);
        pb.push_inst(a, Instruction::other(59));
        pb.push_inst(a, Instruction::ret());
        let fj = pb.add_function("jit", CodeKind::Jit);
        let j = pb.add_block(fj);
        pb.push_inst(j, Instruction::other(59));
        pb.push_inst(j, Instruction::ret());
        let ff = pb.add_function("filler", CodeKind::Static);
        let fill = pb.add_block(ff);
        pb.push_inst(fill, Instruction::other(59));
        pb.push_inst(fill, Instruction::ret());
        let program = pb.finish(fa).unwrap();
        let layout = Layout::new(&program, &LayoutConfig::default());
        let victim = layout.lines_of_block(a).next().unwrap();

        let trace = BbTrace::new(vec![a, j, fill]);
        let log = vec![EvictionEvent {
            victim,
            evict_pos: 2,
            last_access_pos: 0,
            by_prefetch: false,
        }];
        let analysis = analyze(&program, &layout, &trace, &log, &plain_config());
        let (plan, cov) = analysis.plan_for_threshold(0.5);
        assert!(plan.is_empty());
        assert_eq!(cov.skipped_unrewritable, 1);
        assert_eq!(cov.covered_windows, 0);
        assert_eq!(cov.total_windows, 1);
    }

    #[test]
    fn slot_constrained_plan_respects_budget() {
        let f = fig5();
        let (trace, log) = trace_and_log(&f, &[vec![f.b]], &[]);
        let analysis = analyze(&f.program, &f.layout, &trace, &log, &plain_config());
        // No slots anywhere: nothing can be placed.
        let slots = HashMap::new();
        let (plan, cov) = analysis.plan_for_slots(0.5, &slots);
        assert!(plan.is_empty());
        assert_eq!(cov.covered_windows, 0);
        // One slot on the cue block: the window is covered.
        let mut slots = HashMap::new();
        slots.insert(f.b, 1usize);
        let (plan, cov) = analysis.plan_for_slots(0.5, &slots);
        assert_eq!(plan.len(), 1);
        assert_eq!(cov.covered_windows, 1);
    }

    #[test]
    fn prefetch_only_victims_are_ignored() {
        let f = fig5();
        let (trace, _) = trace_and_log(&f, &[vec![f.b]], &[]);
        let log = vec![EvictionEvent {
            victim: LineAddr::new(999),
            evict_pos: 2,
            last_access_pos: u64::MAX,
            by_prefetch: true,
        }];
        let analysis = analyze(&f.program, &f.layout, &trace, &log, &plain_config());
        assert!(analysis.windows().is_empty());
    }
}
