//! # Ripple: profile-guided instruction cache replacement
//!
//! A full reproduction of *"Ripple: Profile-Guided Instruction Cache
//! Replacement for Data Center Applications"* (ISCA 2021). Ripple is a
//! software-only technique: it profiles a program's basic-block execution,
//! replays an ideal (Belady / Demand-MIN) replacement policy over the
//! induced I-cache access stream, identifies **cue blocks** whose
//! execution predicts an ideal eviction of a **victim line**, and injects
//! `invalidate` (cldemote-style) instructions into those blocks at link
//! time. Any hardware replacement policy — even Random — then makes
//! near-ideal eviction decisions.
//!
//! The pipeline (paper Fig. 4):
//!
//! 1. [`collect_profile`] — execute the workload while recording a
//!    PT-style packet stream, and decode it into a [`BbTrace`]
//!    (`ripple-trace`);
//! 2. [`analyze`] — replay the ideal policy (`ripple-sim`), build eviction
//!    windows, and compute `P(evict A | execute B)` per candidate cue
//!    (§III-B, Fig. 5);
//! 3. [`Ripple::plan`] — threshold the winning candidates into an
//!    injection plan (§III-C);
//! 4. [`Ripple::evaluate`] — rewrite + relink the binary
//!    (`ripple-program`) and simulate baseline, Ripple, ideal-replacement
//!    and ideal-cache configurations, reporting speedup, MPKI reduction,
//!    coverage, accuracy and code-bloat overheads (§IV).
//!
//! # Examples
//!
//! ```
//! use ripple::{collect_profile, Ripple, RippleConfig};
//! use ripple_program::{Layout, LayoutConfig};
//! use ripple_workloads::{generate, AppSpec, InputConfig};
//!
//! let app = generate(&AppSpec::tiny(7));
//! let layout = Layout::new(&app.program, &LayoutConfig::default());
//! let profile = collect_profile(&app, &layout, InputConfig::training(7), 40_000)?;
//!
//! let mut config = RippleConfig::default();
//! config.sim.l1i = ripple_sim::CacheGeometry::new(2 * 1024, 4); // tiny demo cache
//! let ripple = Ripple::train(&app.program, &layout, &profile.trace, config)?;
//! let outcome = ripple.evaluate(&profile.trace)?;
//! assert!(outcome.ripple.demand_misses <= outcome.baseline.demand_misses);
//! # Ok::<(), ripple::Error>(())
//! ```
//!
//! Every fallible entry point returns the workspace-wide [`Error`], whose
//! variants wrap the substrate crates' typed errors; see the error
//! taxonomy in `DESIGN.md` §10.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_debug_implementations)]

mod analysis;
mod error;
mod harness;
mod metrics;
mod pipeline;
mod profile;
mod report;
mod threshold;

pub use analysis::{
    analyze, analyze_windows, analyze_windows_reference, Analysis, AnalysisConfig, CoverageStats,
    CueCandidate, CueSelection, EvictionWindow, WindowChoice, WindowSink,
};
pub use error::{ConfigError, Error, JobError};
pub use harness::{
    effective_threads, policy_matrix, policy_matrix_all, run_jobs, run_jobs_observed,
    run_jobs_observed_settled, run_jobs_retrying, run_jobs_settled, Job, RetryJob,
};
pub use metrics::{
    decision_is_accurate, eviction_accuracy, invalidation_accuracy, line_access_counts,
    plan_accuracy, profile_temperatures, temperatures_from_counts, AccuracySink, AccuracyStats,
    LineAccessIndex, WindowIndex,
};
pub use pipeline::{Ripple, RippleConfig, RippleConfigBuilder, RippleOutcome};
pub use profile::{collect_profile, Profile};
pub use report::{
    run_report, top_level_phases, validate_run_report, SchemaTag, COMPARE_PHASES,
    COMPARE_TOP_PHASES, PIPELINE_PHASES, PIPELINE_TOP_PHASES, REPORT_SCHEMA, ZERO_WALL_NOTE,
};
pub use threshold::{best_threshold, sweep, ThresholdPoint};

// Re-export the substrate crates so downstream users need only `ripple`.
pub use ripple_json;
pub use ripple_obs;
pub use ripple_program;
pub use ripple_sim;
pub use ripple_trace;
pub use ripple_trace::BbTrace;
pub use ripple_workloads;
