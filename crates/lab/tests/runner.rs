//! End-to-end runner tests: the report is valid, renders, and is
//! byte-identical across thread counts and repeated runs.

use std::sync::Arc;

use ripple_lab::{builtin, run_experiment, validate_lab_report, LabOptions};

/// The CI smoke declaration at a reduced budget, so the full grid (two
/// profiles x fault modes x shard counts) stays test-sized.
fn smoke_options(threads: Option<usize>) -> LabOptions {
    LabOptions {
        threads,
        instructions: Some(30_000),
        ..LabOptions::default()
    }
}

#[test]
fn smoke_grid_runs_validates_and_renders() {
    let resolved = builtin("lab-smoke").unwrap().resolve().unwrap();
    let run = run_experiment(&resolved, &smoke_options(Some(2))).unwrap();
    assert_eq!(run.points.len(), resolved.num_points());
    assert_eq!(run.outcomes.len(), run.points.len());
    validate_lab_report(&run.report).unwrap();

    // Round-trip through text: the parsed document still validates.
    let text = run.report.to_pretty_string();
    let parsed = ripple_json::parse(&text).unwrap();
    validate_lab_report(&parsed).unwrap();

    let tables = ripple_lab::render_tables(&run.report).unwrap();
    assert!(tables.contains("lab lab-smoke"), "{tables}");
    assert!(tables.contains("srrip"), "{tables}");

    // Fault axis: bitflip points carry loss accounting, pristine don't.
    for (point, outcome) in run.points.iter().zip(&run.outcomes) {
        match point.fault {
            ripple_lab::FaultMode::None => assert!(outcome.trace_health.is_none()),
            ripple_lab::FaultMode::BitFlip => {
                let health = outcome.trace_health.expect("bitflip point has health");
                assert!(health.total_bytes > 0);
            }
        }
        // The LRU baseline's speedup over itself is exactly zero.
        assert_eq!(outcome.lru.speedup_pct, 0.0);
    }
}

#[test]
fn report_is_byte_identical_across_thread_counts_and_reruns() {
    let resolved = builtin("lab-smoke").unwrap().resolve().unwrap();
    let t1 = run_experiment(&resolved, &smoke_options(Some(1))).unwrap();
    let t4 = run_experiment(&resolved, &smoke_options(Some(4))).unwrap();
    let again = run_experiment(&resolved, &smoke_options(Some(1))).unwrap();
    let a = t1.report.to_pretty_string();
    assert_eq!(a, t4.report.to_pretty_string(), "threads must not leak");
    assert_eq!(a, again.report.to_pretty_string(), "reruns must not drift");
}

#[test]
fn recorder_observes_every_lab_phase_without_changing_the_report() {
    let metrics = Arc::new(ripple_obs::MetricsRecorder::new());
    let mut options = smoke_options(Some(2));
    options.recorder = metrics.clone();
    let resolved = builtin("lab-smoke").unwrap().resolve().unwrap();
    let observed = run_experiment(&resolved, &options).unwrap();
    let plain = run_experiment(&resolved, &smoke_options(Some(2))).unwrap();
    assert_eq!(
        observed.report.to_pretty_string(),
        plain.report.to_pretty_string(),
        "recorders observe, never change outcomes"
    );
    let snapshot = metrics.snapshot();
    for phase in ripple_lab::LAB_PHASES {
        assert!(
            snapshot.phases.iter().any(|(name, _)| name == phase),
            "phase {phase} missing from the recorder"
        );
    }
}
