//! Pins the lab path to the legacy bench path: a declarative experiment
//! over (app, prefetcher, policies, Ripple underlyings) must produce the
//! same figures as `ripple_bench::compute_cell`, which the per-figure
//! benches consumed for nine PRs. Exact equality is expected — both
//! paths drive the same deterministic simulator over the same trace.

use ripple_bench::{compute_cell, load_app};
use ripple_lab::{run_experiment, Experiment, LabOptions};
use ripple_sim::PrefetcherKind;
use ripple_workloads::App;

const BUDGET: u64 = 60_000;
const THRESHOLD: f64 = 0.55;

fn close(label: &str, lab: f64, legacy: f64) {
    assert!(
        (lab - legacy).abs() < 1e-9,
        "{label}: lab {lab} != legacy bench {legacy}"
    );
}

#[test]
fn lab_grid_point_matches_legacy_compute_cell() {
    // Legacy path: the bench crate's cell for (tomcat, nlp) at a fixed
    // threshold (tuning is a separate concern, pinned by its own rule).
    let loaded = load_app(App::Tomcat, BUDGET);
    let cell = compute_cell(&loaded, PrefetcherKind::NextLine, THRESHOLD);

    // Lab path: the same measurement as a declaration.
    let decl = Experiment {
        name: "equivalence".into(),
        description: String::new(),
        instructions: BUDGET,
        profiles: vec!["paper".into()],
        apps: vec!["tomcat".into()],
        prefetchers: vec!["nlp".into()],
        policies: vec![ripple_lab::TOKEN_PRIORS.into()],
        ripple_underlying: vec!["lru".into(), "random".into()],
        thresholds: vec![THRESHOLD],
        fault_modes: vec!["none".into()],
        replay_shards: vec![1],
    };
    let resolved = decl.resolve().unwrap();
    let run = run_experiment(&resolved, &LabOptions::default()).unwrap();
    let outcome = run
        .outcome("paper", "tomcat", PrefetcherKind::NextLine)
        .unwrap();

    // Policy matrix rows: every prior the registry knows, plus bounds.
    assert_eq!(outcome.lru.demand_misses, cell.lru.demand_misses);
    close("lru mpki", outcome.lru.mpki, cell.lru.mpki);
    close("compulsory", outcome.compulsory_mpki, cell.compulsory_mpki);
    assert_eq!(outcome.policies.len(), cell.policies.len());
    for (name, row) in &outcome.policies {
        let legacy = &cell.policies[name];
        assert_eq!(
            row.demand_misses, legacy.demand_misses,
            "{name} demand misses"
        );
        close(
            &format!("{name} speedup"),
            row.speedup_pct,
            legacy.speedup_pct,
        );
        close(&format!("{name} mpki"), row.mpki, legacy.mpki);
        close(
            &format!("{name} miss reduction"),
            row.miss_reduction_pct,
            legacy.miss_reduction_pct,
        );
    }
    assert_eq!(outcome.ideal.demand_misses, cell.ideal.demand_misses);
    close(
        "ideal speedup",
        outcome.ideal.speedup_pct,
        cell.ideal.speedup_pct,
    );
    close(
        "ideal-cache speedup",
        outcome.ideal_cache.speedup_pct,
        cell.ideal_cache.speedup_pct,
    );

    // Ripple pipelines: one row per underlying at the fixed threshold.
    assert_eq!(outcome.ripple.len(), 2);
    for (row, legacy) in outcome
        .ripple
        .iter()
        .zip([&cell.ripple_lru, &cell.ripple_random])
    {
        assert!(row.best, "single-threshold rows are trivially best");
        close(
            &format!("ripple-{} threshold", row.underlying),
            row.threshold,
            legacy.threshold,
        );
        close(
            &format!("ripple-{} speedup", row.underlying),
            row.row.speedup_pct,
            legacy.row.speedup_pct,
        );
        close(
            &format!("ripple-{} mpki", row.underlying),
            row.row.mpki,
            legacy.row.mpki,
        );
        close(
            &format!("ripple-{} coverage", row.underlying),
            row.coverage,
            legacy.coverage,
        );
        close(
            &format!("ripple-{} accuracy", row.underlying),
            row.accuracy,
            legacy.accuracy,
        );
        close(
            &format!("ripple-{} underlying accuracy", row.underlying),
            row.underlying_accuracy,
            legacy.underlying_accuracy,
        );
        close(
            &format!("ripple-{} static overhead", row.underlying),
            row.static_overhead_pct,
            legacy.static_overhead_pct,
        );
        close(
            &format!("ripple-{} dynamic overhead", row.underlying),
            row.dynamic_overhead_pct,
            legacy.dynamic_overhead_pct,
        );
    }
}

#[test]
fn lab_threshold_tuning_matches_legacy_rule() {
    // The legacy bench tunes by scanning TUNE_THRESHOLDS and keeping the
    // first-best speedup; the lab marks the same winner as `best`.
    let loaded = load_app(App::Kafka, BUDGET);
    let tuned = ripple_bench::tune_threshold(&loaded, PrefetcherKind::None);

    let decl = Experiment {
        name: "tuning".into(),
        description: String::new(),
        instructions: BUDGET,
        profiles: vec!["paper".into()],
        apps: vec!["kafka".into()],
        prefetchers: vec!["none".into()],
        policies: vec![],
        ripple_underlying: vec!["lru".into()],
        thresholds: ripple_bench::TUNE_THRESHOLDS.to_vec(),
        fault_modes: vec!["none".into()],
        replay_shards: vec![1],
    };
    let run = run_experiment(&decl.resolve().unwrap(), &LabOptions::default()).unwrap();
    let best = run.outcomes[0]
        .ripple
        .iter()
        .find(|r| r.best)
        .expect("one best per underlying");
    assert_eq!(best.threshold, tuned, "tuning rule must match the bench");
}
