//! # ripple-lab: experiments as data
//!
//! The paper's evaluation is a grid — applications × prefetchers × cache
//! geometries × replacement policies × invalidation thresholds — but a
//! grid expressed as twenty hand-written bench binaries costs a new
//! binary (and a copy of the harness wiring) per figure. This crate
//! inverts that: an **experiment is a declaration** ([`Experiment`], JSON
//! under `experiments/`), resolved against the policy/app/profile
//! registries ([`Experiment::resolve`]), expanded into a deterministic
//! cartesian grid ([`ResolvedExperiment::expand`]), and executed on the
//! shared harness ([`run_experiment`]) into a validated, byte-stable
//! `ripple.lab_report.v1` document ([`validate_lab_report`]) plus
//! rendered sweep tables ([`render_tables`]).
//!
//! Named [`TargetProfile`]s carry the machine model (the paper's
//! Table II plus Zen 2- and Tremont-like hierarchies), the same
//! per-target shape as the `eigenform/perfect` harness this crate is
//! modeled on — so "the Fig. 7 sweep, but on a Tremont-like cache" is a
//! one-line edit to a declaration, not a new binary.
//!
//! The checked-in declarations re-express the per-figure benches; the
//! remaining bench binaries are thin wrappers that run a declaration and
//! assert the paper's headline shapes over the typed [`LabRun`].

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_debug_implementations)]

mod experiment;
mod report;
mod runner;
mod target;

pub use experiment::{
    Experiment, FaultMode, GridPoint, ResolvedExperiment, FAULT_MODES, TOKEN_PRIORS,
    TOKEN_UNDERLYING_AGNOSTIC,
};
pub use report::{render_tables, validate_lab_report, LAB_PHASES, LAB_SCHEMA};
pub use runner::{run_experiment, LabOptions, LabRun, PointOutcome, PointRow, RipplePointRow};
pub use target::{TargetProfile, TARGET_PROFILES};

/// Why a lab operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabError {
    /// The experiment declaration is malformed: unparseable JSON, an
    /// unknown axis entry, or an out-of-range value.
    Declaration(String),
    /// Executing the grid failed; the message names the offending point.
    Run(String),
}

impl std::fmt::Display for LabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LabError::Declaration(msg) => write!(f, "experiment declaration: {msg}"),
            LabError::Run(msg) => write!(f, "experiment run: {msg}"),
        }
    }
}

impl std::error::Error for LabError {}

/// The checked-in experiment declarations, embedded at compile time so
/// `lab run <name>` works from any working directory. Each is the
/// declarative form of a legacy per-figure bench (plus `lab-smoke`, the
/// small grid CI uses for determinism diffs).
pub const BUILTIN_EXPERIMENTS: [(&str, &str); 5] = [
    (
        "fig03-policies",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../experiments/fig03-policies.json"
        )),
    ),
    (
        "fig06-threshold",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../experiments/fig06-threshold.json"
        )),
    ),
    (
        "fig07-speedup",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../experiments/fig07-speedup.json"
        )),
    ),
    (
        "ablation-underlying",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../experiments/ablation-underlying.json"
        )),
    ),
    (
        "lab-smoke",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../experiments/lab-smoke.json"
        )),
    ),
];

/// Parses a built-in declaration by name.
///
/// # Errors
///
/// Returns [`LabError::Declaration`] for an unknown name (listing the
/// valid ones) — a built-in that fails to *parse* is a packaging bug and
/// also surfaces here.
pub fn builtin(name: &str) -> Result<Experiment, LabError> {
    let Some((_, text)) = BUILTIN_EXPERIMENTS.iter().find(|(n, _)| *n == name) else {
        let valid: Vec<&str> = BUILTIN_EXPERIMENTS.iter().map(|(n, _)| *n).collect();
        return Err(LabError::Declaration(format!(
            "unknown experiment {name:?} (built-in: {})",
            valid.join(" ")
        )));
    };
    Experiment::parse(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_parses_resolves_and_matches_its_key() {
        for (name, _) in BUILTIN_EXPERIMENTS {
            let e = builtin(name).unwrap();
            assert_eq!(e.name, name, "declaration name must match its key");
            let r = e.resolve().unwrap();
            assert!(r.num_points() > 0);
            assert_eq!(r.expand().len(), r.num_points());
        }
    }

    #[test]
    fn unknown_builtin_lists_the_valid_names() {
        let err = builtin("fig99").unwrap_err();
        let LabError::Declaration(msg) = err else {
            panic!("wrong variant");
        };
        assert!(msg.contains("lab-smoke"), "{msg}");
    }
}
