//! The declarative [`Experiment`] type: a parameter grid as data.
//!
//! An experiment declares *what* to measure — apps × target profiles ×
//! prefetchers × fault modes × replay-shard counts, with replacement
//! policies, Ripple underlyings and invalidation thresholds measured
//! inside every grid point — and the runner decides *how* (shared
//! harness, `--threads` parallelism, deterministic report). Declarations
//! live as JSON under `experiments/` and parse with defaulting, so the
//! smallest useful experiment is just a name and an app list.

use ripple_json::{object, FromJson, JsonError, ToJson, Value};
use ripple_sim::{PolicyFamily, PolicyKind, PolicyRegistry, PrefetcherKind};
use ripple_workloads::App;

use crate::target::TargetProfile;
use crate::LabError;

/// Trace corruption applied to a grid point before simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Pristine trace (the strict decoder's output).
    None,
    /// The encoded PT-style stream has one deterministic corrupt span and
    /// is recovered through the lossy decoder; the report carries the
    /// resulting [`TraceHealth`](ripple_trace::TraceHealth) counters.
    BitFlip,
}

/// All fault modes, in declaration-resolution order.
pub const FAULT_MODES: [FaultMode; 2] = [FaultMode::None, FaultMode::BitFlip];

impl FaultMode {
    /// Stable name used in declarations and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultMode::None => "none",
            FaultMode::BitFlip => "bitflip",
        }
    }

    /// Resolves a declaration name.
    pub fn parse(name: &str) -> Option<FaultMode> {
        FAULT_MODES.iter().copied().find(|m| m.name() == name)
    }
}

/// Expansion token in a `policies` list: every registered online policy
/// except the LRU baseline, in registration order (the bench's
/// `prior_policies` set — a newly registered policy joins the experiment
/// without editing the declaration).
pub const TOKEN_PRIORS: &str = "@priors";

/// Expansion token in a `ripple_underlying` list: every registered online
/// policy that is a neutral substrate for Ripple's plan — offline ideals
/// (need a recorded future) and RRIP / predictive-reuse families (carry
/// their own predictions) excluded.
pub const TOKEN_UNDERLYING_AGNOSTIC: &str = "@underlying-agnostic";

/// The [`TOKEN_UNDERLYING_AGNOSTIC`] set: every registered online policy
/// outside the RRIP and predictive-reuse families, in registration order.
fn underlying_agnostic(registry: &PolicyRegistry) -> impl Iterator<Item = PolicyKind> + '_ {
    registry.online().filter(|id| {
        !matches!(
            id.descriptor().family,
            PolicyFamily::Rrip | PolicyFamily::PredictiveReuse
        )
    })
}

/// One declarative experiment: a named parameter grid.
///
/// Every axis is a list of names resolved against the relevant registry
/// at [`Experiment::resolve`] time. Empty `policies` /
/// `ripple_underlying` lists are legal: a point then measures only the
/// LRU baseline and ideal bounds (policies), or no Ripple pipelines at
/// all (underlyings).
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// Experiment name (report tag, CLI argument).
    pub name: String,
    /// One-line description for `lab list` / `lab describe`.
    pub description: String,
    /// Instruction budget per application trace.
    pub instructions: u64,
    /// Target machine profiles (default `["paper"]`).
    pub profiles: Vec<String>,
    /// Applications (no default — every experiment names its apps).
    pub apps: Vec<String>,
    /// Instruction prefetchers (default `["none"]`).
    pub prefetchers: Vec<String>,
    /// Replacement policies measured against the LRU baseline in every
    /// point; supports [`TOKEN_PRIORS`] (default `[]`).
    pub policies: Vec<String>,
    /// Underlying policies to run the full Ripple pipeline over;
    /// supports [`TOKEN_UNDERLYING_AGNOSTIC`] (default `[]`).
    pub ripple_underlying: Vec<String>,
    /// Invalidation thresholds swept per (point, underlying); the
    /// best-speedup threshold is marked in the report (default `[0.5]`,
    /// the pipeline's own default).
    pub thresholds: Vec<f64>,
    /// Trace fault modes (default `["none"]`).
    pub fault_modes: Vec<String>,
    /// Replay shard counts (default `[1]`).
    pub replay_shards: Vec<usize>,
}

fn names(v: &Value, key: &str) -> Result<Vec<String>, JsonError> {
    match v.get(key) {
        Ok(entry) => Vec::<String>::from_json(entry),
        Err(_) => Ok(Vec::new()),
    }
}

fn names_or(v: &Value, key: &str, default: &[&str]) -> Result<Vec<String>, JsonError> {
    match v.get(key) {
        Ok(entry) => Vec::<String>::from_json(entry),
        Err(_) => Ok(default.iter().map(|s| s.to_string()).collect()),
    }
}

impl FromJson for Experiment {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(Experiment {
            name: String::from_json(v.get("name")?)?,
            description: match v.get("description") {
                Ok(d) => String::from_json(d)?,
                Err(_) => String::new(),
            },
            instructions: v.get("instructions")?.as_u64()?,
            profiles: names_or(v, "profiles", &["paper"])?,
            apps: names(v, "apps")?,
            prefetchers: names_or(v, "prefetchers", &["none"])?,
            policies: names(v, "policies")?,
            ripple_underlying: names(v, "ripple_underlying")?,
            thresholds: match v.get("thresholds") {
                Ok(t) => Vec::<f64>::from_json(t)?,
                Err(_) => vec![0.5],
            },
            fault_modes: names_or(v, "fault_modes", &["none"])?,
            replay_shards: match v.get("replay_shards") {
                Ok(s) => {
                    let raw = Vec::<u64>::from_json(s)?;
                    raw.into_iter().map(|n| n as usize).collect()
                }
                Err(_) => vec![1],
            },
        })
    }
}

impl ToJson for Experiment {
    fn to_json(&self) -> Value {
        object([
            ("name", self.name.to_json()),
            ("description", self.description.to_json()),
            ("instructions", self.instructions.to_json()),
            ("profiles", self.profiles.to_json()),
            ("apps", self.apps.to_json()),
            ("prefetchers", self.prefetchers.to_json()),
            ("policies", self.policies.to_json()),
            ("ripple_underlying", self.ripple_underlying.to_json()),
            ("thresholds", self.thresholds.to_json()),
            ("fault_modes", self.fault_modes.to_json()),
            (
                "replay_shards",
                self.replay_shards
                    .iter()
                    .map(|&n| n as u64)
                    .collect::<Vec<u64>>()
                    .to_json(),
            ),
        ])
    }
}

impl Experiment {
    /// Parses a JSON declaration.
    ///
    /// # Errors
    ///
    /// Returns [`LabError::Declaration`] for malformed JSON or a missing
    /// required field (`name`, `instructions`, `apps`).
    pub fn parse(text: &str) -> Result<Experiment, LabError> {
        let value = ripple_json::parse(text)
            .map_err(|e| LabError::Declaration(format!("experiment JSON: {e}")))?;
        Experiment::from_json(&value)
            .map_err(|e| LabError::Declaration(format!("experiment declaration: {e}")))
    }

    /// Resolves every axis name against its registry, expands tokens,
    /// dedups (first occurrence wins), and validates ranges.
    ///
    /// # Errors
    ///
    /// Returns [`LabError::Declaration`] naming the first unknown axis
    /// entry or out-of-range value.
    pub fn resolve(&self) -> Result<ResolvedExperiment, LabError> {
        let bad = |what: &str, name: &str, valid: String| {
            LabError::Declaration(format!("unknown {what} {name:?} (valid: {valid})"))
        };
        if self.name.is_empty() {
            return Err(LabError::Declaration("experiment name is empty".into()));
        }
        if self.instructions == 0 {
            return Err(LabError::Declaration(
                "instruction budget must be positive".into(),
            ));
        }
        if self.apps.is_empty() {
            return Err(LabError::Declaration("apps list is empty".into()));
        }

        let mut profiles: Vec<&'static TargetProfile> = Vec::new();
        for name in &self.profiles {
            let p = TargetProfile::find(name).ok_or_else(|| {
                let valid: Vec<&str> = crate::TARGET_PROFILES.iter().map(|p| p.name).collect();
                bad("target profile", name, valid.join(" "))
            })?;
            if !profiles.contains(&p) {
                profiles.push(p);
            }
        }

        let mut apps: Vec<App> = Vec::new();
        for name in &self.apps {
            let app = App::ALL
                .into_iter()
                .find(|a| a.name() == name)
                .ok_or_else(|| {
                    let valid: Vec<&str> = App::ALL.iter().map(|a| a.name()).collect();
                    bad("application", name, valid.join(" "))
                })?;
            if !apps.contains(&app) {
                apps.push(app);
            }
        }

        let mut prefetchers: Vec<PrefetcherKind> = Vec::new();
        for name in &self.prefetchers {
            let pf = match name.as_str() {
                "none" | "no-prefetch" => PrefetcherKind::None,
                "nlp" | "next-line" => PrefetcherKind::NextLine,
                "fdip" => PrefetcherKind::Fdip,
                other => return Err(bad("prefetcher", other, "none nlp fdip".into())),
            };
            if !prefetchers.contains(&pf) {
                prefetchers.push(pf);
            }
        }

        let registry = PolicyRegistry::global();
        let policy_valid = || {
            let valid: Vec<&str> = registry.names().collect();
            format!("{} {TOKEN_PRIORS}", valid.join(" "))
        };
        let mut policies: Vec<PolicyKind> = Vec::new();
        for name in &self.policies {
            if name == TOKEN_PRIORS {
                for id in registry.online().filter(|&p| p != PolicyKind::LRU) {
                    if !policies.contains(&id) {
                        policies.push(id);
                    }
                }
                continue;
            }
            // The agnostic set is also usable as a grid-policy axis (the
            // underlying ablation measures each substrate plain before
            // stacking Ripple on it); LRU is dropped here because it is
            // already every point's baseline row.
            if name == TOKEN_UNDERLYING_AGNOSTIC {
                for id in underlying_agnostic(registry) {
                    if id != PolicyKind::LRU && !policies.contains(&id) {
                        policies.push(id);
                    }
                }
                continue;
            }
            let id = registry
                .parse(name)
                .ok_or_else(|| bad("policy", name, policy_valid()))?;
            if id.needs_future_index() {
                return Err(LabError::Declaration(format!(
                    "policy {name:?} is an offline ideal; it is measured as every \
                     point's ideal bound, not as a grid policy"
                )));
            }
            if !policies.contains(&id) {
                policies.push(id);
            }
        }

        let mut ripple_underlying: Vec<PolicyKind> = Vec::new();
        for name in &self.ripple_underlying {
            if name == TOKEN_UNDERLYING_AGNOSTIC {
                for id in underlying_agnostic(registry) {
                    if !ripple_underlying.contains(&id) {
                        ripple_underlying.push(id);
                    }
                }
                continue;
            }
            let id = registry
                .parse(name)
                .ok_or_else(|| bad("underlying policy", name, policy_valid()))?;
            if id.needs_future_index() {
                return Err(LabError::Declaration(format!(
                    "underlying policy {name:?} needs a recorded future index and \
                     cannot substrate the online Ripple pipeline"
                )));
            }
            if !ripple_underlying.contains(&id) {
                ripple_underlying.push(id);
            }
        }

        let mut thresholds: Vec<f64> = Vec::new();
        for &t in &self.thresholds {
            if !t.is_finite() || !(0.0..=1.0).contains(&t) {
                return Err(LabError::Declaration(format!(
                    "threshold {t} outside [0, 1]"
                )));
            }
            if !thresholds.contains(&t) {
                thresholds.push(t);
            }
        }
        if !ripple_underlying.is_empty() && thresholds.is_empty() {
            return Err(LabError::Declaration(
                "ripple_underlying set but thresholds empty".into(),
            ));
        }

        let mut fault_modes: Vec<FaultMode> = Vec::new();
        for name in &self.fault_modes {
            let mode = FaultMode::parse(name).ok_or_else(|| {
                let valid: Vec<&str> = FAULT_MODES.iter().map(|m| m.name()).collect();
                bad("fault mode", name, valid.join(" "))
            })?;
            if !fault_modes.contains(&mode) {
                fault_modes.push(mode);
            }
        }

        let mut replay_shards: Vec<usize> = Vec::new();
        for &n in &self.replay_shards {
            if !(1..=1024).contains(&n) {
                return Err(LabError::Declaration(format!(
                    "replay shard count {n} outside [1, 1024]"
                )));
            }
            if !replay_shards.contains(&n) {
                replay_shards.push(n);
            }
        }

        for (axis, empty) in [
            ("profiles", profiles.is_empty()),
            ("prefetchers", prefetchers.is_empty()),
            ("fault_modes", fault_modes.is_empty()),
            ("replay_shards", replay_shards.is_empty()),
        ] {
            if empty {
                return Err(LabError::Declaration(format!("{axis} list is empty")));
            }
        }

        Ok(ResolvedExperiment {
            name: self.name.clone(),
            description: self.description.clone(),
            instructions: self.instructions,
            profiles,
            apps,
            prefetchers,
            policies,
            ripple_underlying,
            thresholds,
            fault_modes,
            replay_shards,
        })
    }
}

/// An [`Experiment`] with every axis name resolved, deduped and range
/// checked; the only form the runner accepts.
#[derive(Debug, Clone)]
pub struct ResolvedExperiment {
    /// Experiment name.
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Instruction budget per application trace.
    pub instructions: u64,
    /// Deduped target profiles, declaration order.
    pub profiles: Vec<&'static TargetProfile>,
    /// Deduped applications, declaration order.
    pub apps: Vec<App>,
    /// Deduped prefetchers, declaration order.
    pub prefetchers: Vec<PrefetcherKind>,
    /// Deduped grid policies (tokens expanded), declaration order.
    pub policies: Vec<PolicyKind>,
    /// Deduped Ripple underlyings (tokens expanded), declaration order.
    pub ripple_underlying: Vec<PolicyKind>,
    /// Deduped thresholds, declaration order.
    pub thresholds: Vec<f64>,
    /// Deduped fault modes, declaration order.
    pub fault_modes: Vec<FaultMode>,
    /// Deduped replay shard counts, declaration order.
    pub replay_shards: Vec<usize>,
}

/// One cell of the expanded grid: everything that selects a simulation
/// environment. Policies, underlyings and thresholds are measured
/// *inside* a point (they share its session and trace), so they are point
/// content, not point coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Target machine.
    pub profile: &'static TargetProfile,
    /// Application.
    pub app: App,
    /// Instruction prefetcher.
    pub prefetcher: PrefetcherKind,
    /// Trace fault mode.
    pub fault: FaultMode,
    /// Replay shard count.
    pub replay_shards: usize,
}

impl ResolvedExperiment {
    /// Expands the declaration's cartesian grid, in nested declaration
    /// order (profiles outermost, replay shards innermost). Deterministic:
    /// two calls yield identical vectors.
    pub fn expand(&self) -> Vec<GridPoint> {
        let mut points = Vec::with_capacity(self.num_points());
        for &profile in &self.profiles {
            for &app in &self.apps {
                for &prefetcher in &self.prefetchers {
                    for &fault in &self.fault_modes {
                        for &replay_shards in &self.replay_shards {
                            points.push(GridPoint {
                                profile,
                                app,
                                prefetcher,
                                fault,
                                replay_shards,
                            });
                        }
                    }
                }
            }
        }
        points
    }

    /// Number of grid points ([`ResolvedExperiment::expand`]'s length).
    pub fn num_points(&self) -> usize {
        self.profiles.len()
            * self.apps.len()
            * self.prefetchers.len()
            * self.fault_modes.len()
            * self.replay_shards.len()
    }

    /// Simulator runs per grid point: the policy matrix (LRU + policies +
    /// ideal) plus one Ripple evaluation per (underlying, threshold).
    pub fn runs_per_point(&self) -> usize {
        2 + self.policies.len() + self.ripple_underlying.len() * self.thresholds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(apps: &[&str]) -> Experiment {
        Experiment {
            name: "t".into(),
            description: String::new(),
            instructions: 10_000,
            profiles: vec!["paper".into()],
            apps: apps.iter().map(|s| s.to_string()).collect(),
            prefetchers: vec!["none".into()],
            policies: vec![],
            ripple_underlying: vec![],
            thresholds: vec![0.5],
            fault_modes: vec!["none".into()],
            replay_shards: vec![1],
        }
    }

    #[test]
    fn expansion_has_cartesian_count_in_declaration_order() {
        let mut e = minimal(&["tomcat", "kafka"]);
        e.profiles = vec!["zen2".into(), "paper".into()];
        e.prefetchers = vec!["fdip".into(), "none".into(), "nlp".into()];
        e.fault_modes = vec!["none".into(), "bitflip".into()];
        e.replay_shards = vec![1, 4];
        let r = e.resolve().unwrap();
        let points = r.expand();
        assert_eq!(points.len(), 2 * 2 * 3 * 2 * 2);
        assert_eq!(points.len(), r.num_points());
        // Outermost axis varies slowest, in declaration order.
        assert_eq!(points[0].profile.name, "zen2");
        assert_eq!(points[points.len() - 1].profile.name, "paper");
        assert_eq!(points[0].app.name(), "tomcat");
        assert_eq!(points[0].prefetcher, PrefetcherKind::Fdip);
        assert_eq!(points[0].fault, FaultMode::None);
        assert_eq!(points[1].replay_shards, 4);
        // Deterministic: a second expansion is identical.
        assert_eq!(points, r.expand());
    }

    #[test]
    fn duplicate_axis_entries_dedup_keeping_first() {
        let mut e = minimal(&["kafka", "tomcat", "kafka"]);
        e.prefetchers = vec!["nlp".into(), "next-line".into(), "none".into()];
        e.thresholds = vec![0.5, 0.25, 0.5];
        e.replay_shards = vec![2, 2, 1];
        let r = e.resolve().unwrap();
        assert_eq!(
            r.apps.iter().map(|a| a.name()).collect::<Vec<_>>(),
            ["kafka", "tomcat"]
        );
        // "next-line" is an alias of "nlp": the alias dedups too.
        assert_eq!(
            r.prefetchers,
            [PrefetcherKind::NextLine, PrefetcherKind::None]
        );
        assert_eq!(r.thresholds, [0.5, 0.25]);
        assert_eq!(r.replay_shards, [2, 1]);
        assert_eq!(r.expand().len(), 2 * 2 * 2);
    }

    #[test]
    fn tokens_expand_from_the_registry() {
        let mut e = minimal(&["tomcat"]);
        e.policies = vec![TOKEN_PRIORS.into()];
        e.ripple_underlying = vec![TOKEN_UNDERLYING_AGNOSTIC.into()];
        let r = e.resolve().unwrap();
        let registry = PolicyRegistry::global();
        let priors: Vec<PolicyKind> = registry
            .online()
            .filter(|&p| p != PolicyKind::LRU)
            .collect();
        assert_eq!(r.policies, priors);
        assert!(r.ripple_underlying.contains(&PolicyKind::LRU));
        assert!(r.ripple_underlying.contains(&PolicyKind::RANDOM));
        for id in &r.ripple_underlying {
            assert!(!id.needs_future_index());
            assert!(!matches!(
                id.descriptor().family,
                PolicyFamily::Rrip | PolicyFamily::PredictiveReuse
            ));
        }
        // A token plus an explicit member it already covers dedups.
        let mut e2 = minimal(&["tomcat"]);
        e2.policies = vec!["random".into(), TOKEN_PRIORS.into()];
        let r2 = e2.resolve().unwrap();
        assert_eq!(r2.policies.len(), priors.len());
        assert_eq!(r2.policies[0], PolicyKind::RANDOM);
    }

    #[test]
    fn resolve_rejects_unknowns_and_bad_ranges() {
        let cases: Vec<(&str, Experiment)> = vec![
            ("unknown application", minimal(&["netflix"])),
            ("unknown target profile", {
                let mut e = minimal(&["tomcat"]);
                e.profiles = vec!["m1".into()];
                e
            }),
            ("unknown prefetcher", {
                let mut e = minimal(&["tomcat"]);
                e.prefetchers = vec!["ghost".into()];
                e
            }),
            ("unknown policy", {
                let mut e = minimal(&["tomcat"]);
                e.policies = vec!["belady2".into()];
                e
            }),
            ("offline ideal as grid policy", {
                let mut e = minimal(&["tomcat"]);
                e.policies = vec!["opt".into()];
                e
            }),
            ("offline ideal as underlying", {
                let mut e = minimal(&["tomcat"]);
                e.ripple_underlying = vec!["opt".into()];
                e
            }),
            ("threshold out of range", {
                let mut e = minimal(&["tomcat"]);
                e.thresholds = vec![1.5];
                e
            }),
            ("shard count out of range", {
                let mut e = minimal(&["tomcat"]);
                e.replay_shards = vec![0];
                e
            }),
            ("zero budget", {
                let mut e = minimal(&["tomcat"]);
                e.instructions = 0;
                e
            }),
            ("no apps", minimal(&[])),
        ];
        for (why, e) in cases {
            assert!(e.resolve().is_err(), "{why} must be rejected");
        }
    }

    #[test]
    fn parse_defaults_optional_axes() {
        let e =
            Experiment::parse(r#"{ "name": "mini", "instructions": 5000, "apps": ["tomcat"] }"#)
                .unwrap();
        assert_eq!(e.profiles, ["paper"]);
        assert_eq!(e.prefetchers, ["none"]);
        assert!(e.policies.is_empty());
        assert!(e.ripple_underlying.is_empty());
        assert_eq!(e.thresholds, [0.5]);
        assert_eq!(e.fault_modes, ["none"]);
        assert_eq!(e.replay_shards, [1]);
        assert_eq!(e.resolve().unwrap().runs_per_point(), 2);
    }

    #[test]
    fn declaration_round_trips_through_json() {
        let mut e = minimal(&["tomcat", "verilator"]);
        e.policies = vec!["srrip".into()];
        e.ripple_underlying = vec!["lru".into()];
        e.thresholds = vec![0.45, 0.65];
        let text = e.to_json().to_pretty_string();
        let back = Experiment::parse(&text).unwrap();
        assert_eq!(back, e);
    }
}
