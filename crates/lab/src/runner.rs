//! Executes a resolved experiment on the shared harness.
//!
//! Grid points are independent, so they run as parallel harness jobs
//! under the requested `--threads` count; each point is internally
//! sequential (its policy matrix and Ripple evaluations run on one
//! worker). Results come back in grid-expansion order regardless of
//! scheduling, and every figure is a pure function of the declaration —
//! the emitted report is byte-identical at any thread count.

use std::sync::Arc;

use ripple::{effective_threads, policy_matrix, profile_temperatures, Ripple, RippleConfig};
use ripple_json::Value;
use ripple_obs::{time_phase, NullRecorder, Recorder};
use ripple_program::{Layout, LayoutConfig};
use ripple_sim::{
    simulate_ideal_cache, PolicyKind, PrefetcherKind, SimConfig, SimSession, SimStats,
    TemperatureMap,
};
use ripple_trace::{
    reconstruct_trace, reconstruct_trace_lossy, record_trace_with_sync, BbTrace, DecodeOptions,
    TraceHealth,
};
use ripple_workloads::{execute, generate, Application, InputConfig};

use crate::experiment::{FaultMode, GridPoint, ResolvedExperiment};
use crate::report::lab_report;
use crate::LabError;

/// Mid-stream sync-point interval (blocks) for the encoded traces, so the
/// `bitflip` fault mode loses one span, not the stream's tail.
const SYNC_INTERVAL: u64 = 4096;

/// How to execute an experiment; everything here observes or schedules
/// and never changes measured figures.
#[derive(Debug, Clone)]
pub struct LabOptions {
    /// Worker threads for the grid (`None`/`Some(0)` = auto).
    pub threads: Option<usize>,
    /// Observability sink for `lab.*` phases and per-job timings.
    pub recorder: Arc<dyn Recorder>,
    /// Overrides the declaration's per-app instruction budget (bench
    /// wrappers pass `RIPPLE_BENCH_INSTRS` through here).
    pub instructions: Option<u64>,
    /// Deterministic seed for the fault injector (`bitflip` span
    /// placement). The seed is recorded in the report; identical
    /// declarations with identical seeds produce byte-identical reports.
    pub seed: u64,
}

impl Default for LabOptions {
    fn default() -> Self {
        LabOptions {
            threads: None,
            recorder: Arc::new(NullRecorder),
            instructions: None,
            seed: 0,
        }
    }
}

/// One policy's headline numbers relative to the point's LRU baseline.
#[derive(Debug, Clone, Copy)]
pub struct PointRow {
    /// Speedup over LRU, percent.
    pub speedup_pct: f64,
    /// Demand-miss MPKI.
    pub mpki: f64,
    /// Miss reduction over LRU, percent.
    pub miss_reduction_pct: f64,
    /// Absolute demand misses.
    pub demand_misses: u64,
}

impl PointRow {
    fn from_stats(stats: &SimStats, baseline: &SimStats) -> Self {
        PointRow {
            speedup_pct: stats.speedup_pct_over(baseline),
            mpki: stats.mpki(),
            miss_reduction_pct: stats.miss_reduction_pct_over(baseline),
            demand_misses: stats.demand_misses,
        }
    }
}

/// One Ripple pipeline evaluation inside a grid point.
#[derive(Debug, Clone)]
pub struct RipplePointRow {
    /// Underlying policy name.
    pub underlying: String,
    /// Invalidation threshold evaluated.
    pub threshold: f64,
    /// Whether this is the underlying's best-speedup threshold (first
    /// listed wins ties, like a sequential tuning scan).
    pub best: bool,
    /// Headline numbers vs the point's LRU baseline.
    pub row: PointRow,
    /// Replacement coverage, 0..=1.
    pub coverage: f64,
    /// Invalidation accuracy, 0..=1.
    pub accuracy: f64,
    /// The underlying policy's own eviction accuracy, 0..=1.
    pub underlying_accuracy: f64,
    /// Static instruction overhead, percent.
    pub static_overhead_pct: f64,
    /// Dynamic instruction overhead, percent.
    pub dynamic_overhead_pct: f64,
}

/// Everything measured for one grid point.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// LRU baseline (speedup 0 by construction).
    pub lru: PointRow,
    /// Declared grid policies, in axis order.
    pub policies: Vec<(String, PointRow)>,
    /// Prefetch-aware ideal replacement (Demand-MIN; OPT when no
    /// prefetcher).
    pub ideal: PointRow,
    /// Ideal cache (no misses at all).
    pub ideal_cache: PointRow,
    /// Ripple evaluations: one row per (underlying, threshold), grouped
    /// by underlying in axis order, thresholds in axis order.
    pub ripple: Vec<RipplePointRow>,
    /// Compulsory MPKI of the LRU baseline run.
    pub compulsory_mpki: f64,
    /// Loss accounting of the point's trace (`bitflip` points only).
    pub trace_health: Option<TraceHealth>,
}

/// A finished experiment: typed per-point outcomes plus the rendered
/// `ripple.lab_report.v1` document.
#[derive(Debug)]
pub struct LabRun {
    /// The expanded grid, in report order.
    pub points: Vec<GridPoint>,
    /// One outcome per grid point, parallel to `points`.
    pub outcomes: Vec<PointOutcome>,
    /// The deterministic report document.
    pub report: Value,
}

impl LabRun {
    /// The outcome for the grid point matching every coordinate.
    pub fn outcome(
        &self,
        profile: &str,
        app: &str,
        prefetcher: PrefetcherKind,
    ) -> Option<&PointOutcome> {
        self.points
            .iter()
            .zip(&self.outcomes)
            .find(|(p, _)| {
                p.profile.name == profile && p.app.name() == app && p.prefetcher == prefetcher
            })
            .map(|(_, o)| o)
    }
}

/// One loaded application: generated program, layout, and the traces the
/// grid's fault modes need.
struct LoadedApp {
    app: Application,
    layout: Layout,
    clean: TraceVariant,
    faulted: Option<TraceVariant>,
}

struct TraceVariant {
    trace: BbTrace,
    temperatures: Arc<TemperatureMap>,
    health: Option<TraceHealth>,
}

impl LoadedApp {
    fn variant(&self, fault: FaultMode) -> &TraceVariant {
        match fault {
            FaultMode::None => &self.clean,
            FaultMode::BitFlip => self.faulted.as_ref().unwrap_or(&self.clean),
        }
    }
}

/// Deterministically corrupts one span of an encoded trace stream.
/// Seeded per app index so different apps lose different spans; no
/// entropy source — the same input always corrupts identically.
fn corrupt_span(bytes: &mut [u8], seed: u64) {
    if bytes.is_empty() {
        return;
    }
    // splitmix64: the checker's seed-mixing function.
    let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let start = (next() as usize) % bytes.len();
    let len = 24 + (next() as usize) % 40;
    for i in 0..len {
        let j = start + i;
        if j >= bytes.len() {
            break;
        }
        bytes[j] ^= 0xa5;
    }
}

fn load_app(
    app: ripple_workloads::App,
    index: usize,
    instructions: u64,
    want_fault: bool,
    fault_seed: u64,
) -> Result<LoadedApp, LabError> {
    let generated = generate(&app.spec());
    let layout = Layout::new(&generated.program, &LayoutConfig::default());
    let input = InputConfig::training(app.spec().seed);
    let executed = execute(&generated.program, &generated.model, input, instructions);
    let bytes = record_trace_with_sync(&generated.program, &layout, executed.iter(), SYNC_INTERVAL);
    let clean_trace = reconstruct_trace(&generated.program, &layout, &bytes)
        .map_err(|e| LabError::Run(format!("{}: trace round-trip: {e}", app.name())))?;
    let clean = TraceVariant {
        temperatures: Arc::new(profile_temperatures(&layout, &clean_trace)),
        trace: clean_trace,
        health: None,
    };
    let faulted = if want_fault {
        let mut damaged = bytes;
        corrupt_span(&mut damaged, fault_seed.wrapping_add(index as u64));
        let lossy = reconstruct_trace_lossy(
            &generated.program,
            &layout,
            &damaged,
            &DecodeOptions::default(),
        )
        .map_err(|e| LabError::Run(format!("{}: lossy decode: {e}", app.name())))?;
        Some(TraceVariant {
            temperatures: Arc::new(profile_temperatures(&layout, &lossy.trace)),
            trace: lossy.trace,
            health: Some(lossy.health),
        })
    } else {
        None
    };
    Ok(LoadedApp {
        app: generated,
        layout,
        clean,
        faulted,
    })
}

fn run_point(
    resolved: &ResolvedExperiment,
    point: &GridPoint,
    loaded: &LoadedApp,
) -> Result<PointOutcome, LabError> {
    let variant = loaded.variant(point.fault);
    let program = &loaded.app.program;
    let layout = &loaded.layout;
    let trace = &variant.trace;
    if trace.blocks().is_empty() {
        return Err(LabError::Run(format!(
            "{}: {} trace decoded to zero blocks",
            point.app.name(),
            point.fault.name()
        )));
    }

    let mut base_cfg: SimConfig = point.profile.sim_config().with_prefetcher(point.prefetcher);
    base_cfg.replay_shards = point.replay_shards;
    // Line temperatures are profiled once per point: hint-driven policies
    // (TRRIP) consume them, everything else ignores the map. Ripple
    // pipelines run without the map, matching the bench path.
    let mut matrix_cfg = base_cfg.clone();
    matrix_cfg.temperatures = Some(variant.temperatures.clone());

    let ideal_kind = if point.prefetcher == PrefetcherKind::None {
        PolicyKind::OPT
    } else {
        PolicyKind::DEMAND_MIN
    };
    let mut matrix = vec![PolicyKind::LRU];
    matrix.extend(&resolved.policies);
    matrix.push(ideal_kind);
    let session = SimSession::new(program, layout, trace, matrix_cfg.clone());
    // The point itself is one harness job; its matrix runs sequentially.
    let results = policy_matrix(&session, &matrix, 1)
        .map_err(|e| LabError::Run(format!("{}: policy matrix: {e}", point.app.name())))?;
    let lru = &results[0];
    let policies = resolved
        .policies
        .iter()
        .zip(&results[1..])
        .map(|(kind, stats)| (kind.name().to_string(), PointRow::from_stats(stats, lru)))
        .collect();
    let ideal = results.last().map(|s| PointRow::from_stats(s, lru));
    let ideal_cache = simulate_ideal_cache(program, trace, &matrix_cfg);

    let mut ripple_rows = Vec::new();
    for &underlying in &resolved.ripple_underlying {
        let config = RippleConfig {
            sim: base_cfg.clone(),
            underlying,
            threads: Some(1),
            ..RippleConfig::default()
        };
        let ripple = Ripple::train(program, layout, trace, config)
            .map_err(|e| LabError::Run(format!("{}: train: {e}", point.app.name())))?;
        let mut best_at = 0usize;
        let mut best_speedup = f64::NEG_INFINITY;
        let group_start = ripple_rows.len();
        for (i, &threshold) in resolved.thresholds.iter().enumerate() {
            let o = ripple
                .evaluate_with_threshold(trace, threshold)
                .map_err(|e| {
                    LabError::Run(format!(
                        "{}: evaluate at threshold {threshold}: {e}",
                        point.app.name()
                    ))
                })?;
            // Tuning rule: highest pipeline speedup wins, first listed
            // threshold wins ties (a sequential scan's behaviour).
            if o.speedup_pct() > best_speedup {
                best_speedup = o.speedup_pct();
                best_at = i;
            }
            ripple_rows.push(RipplePointRow {
                underlying: underlying.name().to_string(),
                threshold,
                best: false,
                row: PointRow::from_stats(&o.ripple, lru),
                coverage: o.coverage.coverage(),
                accuracy: o.ripple_accuracy.accuracy(),
                underlying_accuracy: o.underlying_accuracy.accuracy(),
                static_overhead_pct: o.static_overhead_pct,
                dynamic_overhead_pct: o.dynamic_overhead_pct,
            });
        }
        if !resolved.thresholds.is_empty() {
            ripple_rows[group_start + best_at].best = true;
        }
    }

    Ok(PointOutcome {
        lru: PointRow::from_stats(lru, lru),
        policies,
        ideal: ideal.unwrap_or_else(|| PointRow::from_stats(lru, lru)),
        ideal_cache: PointRow::from_stats(&ideal_cache, lru),
        ripple: ripple_rows,
        compulsory_mpki: lru.compulsory_mpki(),
        trace_health: variant.health,
    })
}

/// Runs a resolved experiment and builds its deterministic report.
///
/// # Errors
///
/// Returns [`LabError::Run`] when an application fails to load, a
/// simulation job panics, or a pipeline evaluation fails; the error names
/// the offending point.
pub fn run_experiment(
    resolved: &ResolvedExperiment,
    options: &LabOptions,
) -> Result<LabRun, LabError> {
    let mut resolved = resolved.clone();
    if let Some(budget) = options.instructions {
        if budget == 0 {
            return Err(LabError::Declaration(
                "instruction override must be positive".into(),
            ));
        }
        resolved.instructions = budget;
    }
    let resolved = &resolved;
    let recorder = &*options.recorder;
    let threads = effective_threads(options.threads);

    let points = time_phase(recorder, "lab.expand", || resolved.expand());
    let want_fault = resolved.fault_modes.contains(&FaultMode::BitFlip);

    let loaded: Vec<LoadedApp> = time_phase(recorder, "lab.load", || {
        let jobs: Vec<ripple::Job<'_, Result<LoadedApp, LabError>>> = resolved
            .apps
            .iter()
            .enumerate()
            .map(
                |(i, &app)| -> ripple::Job<'_, Result<LoadedApp, LabError>> {
                    Box::new(move || {
                        load_app(app, i, resolved.instructions, want_fault, options.seed)
                    })
                },
            )
            .collect();
        ripple::run_jobs_observed(threads, "lab.load", recorder, jobs)
            .map_err(|e| LabError::Run(format!("loading applications: {e}")))?
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
    })?;

    let outcomes: Vec<PointOutcome> = time_phase(recorder, "lab.execute", || {
        let loaded = &loaded;
        let jobs: Vec<ripple::Job<'_, Result<PointOutcome, LabError>>> = points
            .iter()
            .map(|point| -> ripple::Job<'_, Result<PointOutcome, LabError>> {
                Box::new(move || {
                    let index = resolved
                        .apps
                        .iter()
                        .position(|&a| a == point.app)
                        .unwrap_or(0);
                    run_point(resolved, point, &loaded[index])
                })
            })
            .collect();
        ripple::run_jobs_observed(threads, "lab.execute", recorder, jobs)
            .map_err(|e| LabError::Run(format!("executing grid: {e}")))?
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
    })?;

    let report = time_phase(recorder, "lab.render", || {
        lab_report(resolved, &points, &outcomes, options.seed)
    });
    Ok(LabRun {
        points,
        outcomes,
        report,
    })
}
