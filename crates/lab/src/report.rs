//! The `ripple.lab_report.v1` schema: construction, validation and
//! rendered sweep tables.
//!
//! Like the fleet report, a lab report is **fully deterministic**: it
//! carries per-point MPKI/speedup figures, Ripple coverage/accuracy and
//! trace health — never wall times. Floats are rounded to 1e-6 before
//! serialization, points appear in grid-expansion order and rows in
//! matrix order, so two runs of the same declaration produce
//! byte-identical JSON at any `--threads` count (CI diffs them with
//! `cmp`). Timings flow through the attached recorder instead; the
//! report's `phases` section carries only the fixed per-phase counts.

use ripple::SchemaTag;
use ripple_json::{object, Value};

use crate::experiment::{FaultMode, GridPoint, ResolvedExperiment};
use crate::runner::{PointOutcome, PointRow, RipplePointRow};

/// Schema identifier of a lab report.
pub const LAB_SCHEMA: &str = SchemaTag::Lab.as_str();

/// The runner's phases, in execution order.
pub const LAB_PHASES: [&str; 4] = ["lab.expand", "lab.load", "lab.execute", "lab.render"];

fn round6(x: f64) -> f64 {
    // Serialized figures are rounded so the textual report is stable
    // against float-formatting noise; 1e-6 of a percent or an MPKI is far
    // below anything a reader cares about.
    (x * 1e6).round() / 1e6
}

fn row_value(name: &str, row: &PointRow) -> Value {
    object([
        ("policy", Value::Str(name.to_string())),
        ("demand_misses", Value::UInt(row.demand_misses)),
        ("mpki", Value::Float(round6(row.mpki))),
        ("speedup_pct", Value::Float(round6(row.speedup_pct))),
        (
            "miss_reduction_pct",
            Value::Float(round6(row.miss_reduction_pct)),
        ),
    ])
}

fn ripple_value(row: &RipplePointRow) -> Value {
    object([
        ("underlying", Value::Str(row.underlying.clone())),
        ("threshold", Value::Float(round6(row.threshold))),
        ("best", Value::Bool(row.best)),
        ("speedup_pct", Value::Float(round6(row.row.speedup_pct))),
        ("mpki", Value::Float(round6(row.row.mpki))),
        (
            "miss_reduction_pct",
            Value::Float(round6(row.row.miss_reduction_pct)),
        ),
        ("coverage", Value::Float(round6(row.coverage))),
        ("accuracy", Value::Float(round6(row.accuracy))),
        (
            "underlying_accuracy",
            Value::Float(round6(row.underlying_accuracy)),
        ),
        (
            "static_overhead_pct",
            Value::Float(round6(row.static_overhead_pct)),
        ),
        (
            "dynamic_overhead_pct",
            Value::Float(round6(row.dynamic_overhead_pct)),
        ),
    ])
}

fn point_value(point: &GridPoint, outcome: &PointOutcome) -> Value {
    let mut rows = Vec::with_capacity(outcome.policies.len() + 3);
    rows.push(row_value("lru", &outcome.lru));
    for (name, row) in &outcome.policies {
        rows.push(row_value(name, row));
    }
    rows.push(row_value("ideal", &outcome.ideal));
    rows.push(row_value("ideal-cache", &outcome.ideal_cache));
    let mut fields = vec![
        ("profile", Value::Str(point.profile.name.to_string())),
        ("app", Value::Str(point.app.name().to_string())),
        (
            "prefetcher",
            Value::Str(point.prefetcher.name().to_string()),
        ),
        ("fault", Value::Str(point.fault.name().to_string())),
        ("replay_shards", Value::UInt(point.replay_shards as u64)),
        (
            "compulsory_mpki",
            Value::Float(round6(outcome.compulsory_mpki)),
        ),
        ("rows", Value::Array(rows)),
        (
            "ripple",
            Value::Array(outcome.ripple.iter().map(ripple_value).collect()),
        ),
    ];
    if let Some(health) = &outcome.trace_health {
        fields.push((
            "trace_health",
            object([
                ("total_bytes", Value::UInt(health.total_bytes)),
                ("dropped_bytes", Value::UInt(health.dropped_bytes)),
                ("dropped_packets", Value::UInt(health.dropped_packets)),
                ("resync_events", Value::UInt(health.resync_events)),
            ]),
        ));
    }
    // `object` takes a fixed-size array; the trace-health member makes
    // this the one variable-length object in the schema.
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Builds the `ripple.lab_report.v1` document from a finished run.
/// `outcomes` must parallel `points` (grid-expansion order).
pub(crate) fn lab_report(
    resolved: &ResolvedExperiment,
    points: &[GridPoint],
    outcomes: &[PointOutcome],
    seed: u64,
) -> Value {
    let strs = |names: Vec<String>| Value::Array(names.into_iter().map(Value::Str).collect());
    let axes = object([
        (
            "profiles",
            strs(
                resolved
                    .profiles
                    .iter()
                    .map(|p| p.name.to_string())
                    .collect(),
            ),
        ),
        (
            "apps",
            strs(resolved.apps.iter().map(|a| a.name().to_string()).collect()),
        ),
        (
            "prefetchers",
            strs(
                resolved
                    .prefetchers
                    .iter()
                    .map(|p| p.name().to_string())
                    .collect(),
            ),
        ),
        (
            "policies",
            strs(
                resolved
                    .policies
                    .iter()
                    .map(|p| p.name().to_string())
                    .collect(),
            ),
        ),
        (
            "ripple_underlying",
            strs(
                resolved
                    .ripple_underlying
                    .iter()
                    .map(|p| p.name().to_string())
                    .collect(),
            ),
        ),
        (
            "thresholds",
            Value::Array(
                resolved
                    .thresholds
                    .iter()
                    .map(|&t| Value::Float(round6(t)))
                    .collect(),
            ),
        ),
        (
            "fault_modes",
            strs(
                resolved
                    .fault_modes
                    .iter()
                    .map(|m| m.name().to_string())
                    .collect(),
            ),
        ),
        (
            "replay_shards",
            Value::Array(
                resolved
                    .replay_shards
                    .iter()
                    .map(|&n| Value::UInt(n as u64))
                    .collect(),
            ),
        ),
    ]);
    let phase_counts = [1u64, resolved.apps.len() as u64, points.len() as u64, 1u64];
    object([
        ("schema", Value::Str(LAB_SCHEMA.to_string())),
        ("command", Value::Str("lab".to_string())),
        ("experiment", Value::Str(resolved.name.clone())),
        ("description", Value::Str(resolved.description.clone())),
        ("instructions", Value::UInt(resolved.instructions)),
        ("seed", Value::UInt(seed)),
        ("axes", axes),
        (
            "points",
            Value::Array(
                points
                    .iter()
                    .zip(outcomes)
                    .map(|(p, o)| point_value(p, o))
                    .collect(),
            ),
        ),
        (
            "phases",
            Value::Array(
                LAB_PHASES
                    .iter()
                    .zip(phase_counts)
                    .map(|(&name, count)| {
                        object([
                            ("name", Value::Str(name.to_string())),
                            ("count", Value::UInt(count)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(|f| f.as_u64())
        .map_err(|e| format!("{key}: {e}"))
}

fn field_finite(v: &Value, key: &str) -> Result<f64, String> {
    let x = v
        .get(key)
        .and_then(|f| f.as_f64())
        .map_err(|e| format!("{key}: {e}"))?;
    if !x.is_finite() {
        return Err(format!("{key} is not finite: {x}"));
    }
    Ok(x)
}

fn field_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
    v.get(key)
        .and_then(|f| f.as_str())
        .map_err(|e| format!("{key}: {e}"))
}

fn names_of(axes: &Value, key: &str) -> Result<Vec<String>, String> {
    let arr = axes
        .get(key)
        .and_then(|a| a.as_array())
        .map_err(|e| format!("axes.{key}: {e}"))?;
    arr.iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .map_err(|e| format!("axes.{key}: {e}"))
        })
        .collect()
}

/// Validates a parsed `ripple.lab_report.v1` document: schema and
/// command tags, the grid-point count against the axes' cartesian
/// product, per-point row structure (LRU first with zero speedup, ideal
/// bounds last), Ripple rows grouped by declared underlying with exactly
/// one best-marked threshold per group, fault-mode vocabulary, and the
/// fixed phase roster.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_lab_report(report: &Value) -> Result<(), String> {
    let schema = field_str(report, "schema")?;
    if schema != LAB_SCHEMA {
        return Err(format!(
            "unknown schema {schema:?}, expected {LAB_SCHEMA:?}"
        ));
    }
    let command = field_str(report, "command")?;
    if command != "lab" {
        return Err(format!("command {command:?} is not \"lab\""));
    }
    if field_str(report, "experiment")?.is_empty() {
        return Err("experiment name is empty".into());
    }
    let instructions = field_u64(report, "instructions")?;
    if instructions == 0 {
        return Err("instruction budget is zero".into());
    }
    field_u64(report, "seed")?;

    let axes = report.get("axes").map_err(|e| format!("axes: {e}"))?;
    let profiles = names_of(axes, "profiles")?;
    let apps = names_of(axes, "apps")?;
    let prefetchers = names_of(axes, "prefetchers")?;
    let policies = names_of(axes, "policies")?;
    let underlyings = names_of(axes, "ripple_underlying")?;
    let fault_modes = names_of(axes, "fault_modes")?;
    let shard_axis = axes
        .get("replay_shards")
        .and_then(|a| a.as_array())
        .map_err(|e| format!("axes.replay_shards: {e}"))?;
    let threshold_axis = axes
        .get("thresholds")
        .and_then(|a| a.as_array())
        .map_err(|e| format!("axes.thresholds: {e}"))?;
    for m in &fault_modes {
        if FaultMode::parse(m).is_none() {
            return Err(format!("axes.fault_modes has unknown mode {m:?}"));
        }
    }

    let expected_points =
        profiles.len() * apps.len() * prefetchers.len() * fault_modes.len() * shard_axis.len();
    let points = report
        .get("points")
        .and_then(|p| p.as_array())
        .map_err(|e| format!("points: {e}"))?;
    if points.len() != expected_points {
        return Err(format!(
            "points has {} entries, axes promise {expected_points}",
            points.len()
        ));
    }

    for (i, point) in points.iter().enumerate() {
        let ctx = |msg: String| format!("point {i}: {msg}");
        let profile = field_str(point, "profile").map_err(&ctx)?;
        if !profiles.iter().any(|p| p == profile) {
            return Err(ctx(format!("profile {profile:?} not on the profiles axis")));
        }
        let app = field_str(point, "app").map_err(&ctx)?;
        if !apps.iter().any(|a| a == app) {
            return Err(ctx(format!("app {app:?} not on the apps axis")));
        }
        let fault = field_str(point, "fault").map_err(&ctx)?;
        let fault_mode =
            FaultMode::parse(fault).ok_or_else(|| ctx(format!("unknown fault {fault:?}")))?;
        let shards = field_u64(point, "replay_shards").map_err(&ctx)?;
        if shards == 0 {
            return Err(ctx("replay_shards is zero".into()));
        }
        let compulsory = field_finite(point, "compulsory_mpki").map_err(&ctx)?;
        if compulsory < 0.0 {
            return Err(ctx(format!("compulsory_mpki is negative: {compulsory}")));
        }

        let rows = point
            .get("rows")
            .and_then(|r| r.as_array())
            .map_err(|e| ctx(format!("rows: {e}")))?;
        // LRU baseline, the declared policies, then the two ideal bounds.
        if rows.len() != policies.len() + 3 {
            return Err(ctx(format!(
                "{} rows for {} declared policies (want policies + 3)",
                rows.len(),
                policies.len()
            )));
        }
        for (j, row) in rows.iter().enumerate() {
            let name = field_str(row, "policy").map_err(&ctx)?;
            let expected: &str = match j {
                0 => "lru",
                j if j == rows.len() - 2 => "ideal",
                j if j == rows.len() - 1 => "ideal-cache",
                j => policies[j - 1].as_str(),
            };
            if name != expected {
                return Err(ctx(format!("row {j} is {name:?}, expected {expected:?}")));
            }
            field_u64(row, "demand_misses").map_err(&ctx)?;
            let mpki = field_finite(row, "mpki").map_err(&ctx)?;
            if mpki < 0.0 {
                return Err(ctx(format!("{name} mpki is negative: {mpki}")));
            }
            field_finite(row, "miss_reduction_pct").map_err(&ctx)?;
            let speedup = field_finite(row, "speedup_pct").map_err(&ctx)?;
            if j == 0 && speedup != 0.0 {
                return Err(ctx(format!(
                    "LRU speedup over itself is {speedup}, not zero"
                )));
            }
        }

        let ripple = point
            .get("ripple")
            .and_then(|r| r.as_array())
            .map_err(|e| ctx(format!("ripple: {e}")))?;
        if ripple.len() != underlyings.len() * threshold_axis.len() {
            return Err(ctx(format!(
                "{} ripple rows for {} underlyings x {} thresholds",
                ripple.len(),
                underlyings.len(),
                threshold_axis.len()
            )));
        }
        for (u, group) in ripple.chunks(threshold_axis.len().max(1)).enumerate() {
            let mut best = 0usize;
            for row in group {
                let name = field_str(row, "underlying").map_err(&ctx)?;
                if name != underlyings[u] {
                    return Err(ctx(format!(
                        "ripple group {u} row names underlying {name:?}, expected {:?}",
                        underlyings[u]
                    )));
                }
                let t = field_finite(row, "threshold").map_err(&ctx)?;
                if !(0.0..=1.0).contains(&t) {
                    return Err(ctx(format!("threshold {t} outside [0, 1]")));
                }
                for key in ["coverage", "accuracy", "underlying_accuracy"] {
                    let x = field_finite(row, key).map_err(&ctx)?;
                    if !(0.0..=1.0).contains(&x) {
                        return Err(ctx(format!("{name} {key} {x} outside [0, 1]")));
                    }
                }
                field_finite(row, "speedup_pct").map_err(&ctx)?;
                field_finite(row, "static_overhead_pct").map_err(&ctx)?;
                field_finite(row, "dynamic_overhead_pct").map_err(&ctx)?;
                if row
                    .get("best")
                    .and_then(|b| b.as_bool())
                    .map_err(|e| ctx(format!("best: {e}")))?
                {
                    best += 1;
                }
            }
            if best != 1 {
                return Err(ctx(format!(
                    "ripple group {:?} marks {best} best thresholds, want exactly 1",
                    underlyings[u]
                )));
            }
        }

        match (fault_mode, point.get("trace_health")) {
            (FaultMode::None, Ok(_)) => {
                return Err(ctx("pristine point carries trace_health".into()))
            }
            (FaultMode::None, Err(_)) => {}
            (FaultMode::BitFlip, health) => {
                let health = health.map_err(|e| ctx(format!("trace_health: {e}")))?;
                let total = field_u64(health, "total_bytes")?;
                let dropped = field_u64(health, "dropped_bytes")?;
                if dropped > total {
                    return Err(ctx(format!(
                        "trace_health drops {dropped} of {total} bytes"
                    )));
                }
                field_u64(health, "dropped_packets")?;
                field_u64(health, "resync_events")?;
            }
        }
    }

    let phases = report
        .get("phases")
        .and_then(|p| p.as_array())
        .map_err(|e| format!("phases: {e}"))?;
    for name in LAB_PHASES {
        let found = phases.iter().any(|p| {
            p.get("name")
                .and_then(|n| n.as_str())
                .map(|n| n == name)
                .unwrap_or(false)
                && p.get("count").and_then(|c| c.as_u64()).unwrap_or(0) >= 1
        });
        if !found {
            return Err(format!("required phase {name:?} missing or never ran"));
        }
    }
    Ok(())
}

/// Renders the report's sweep tables as plain text: one speedup table per
/// (profile, prefetcher, fault, shards) slice with a column per policy
/// row, and a Ripple table per slice when the declaration ran pipelines.
///
/// # Errors
///
/// Returns a description of the first malformed field; a report that
/// passed [`validate_lab_report`] always renders.
pub fn render_tables(report: &Value) -> Result<String, String> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let experiment = field_str(report, "experiment")?;
    let instructions = field_u64(report, "instructions")?;
    let points = report
        .get("points")
        .and_then(|p| p.as_array())
        .map_err(|e| format!("points: {e}"))?;
    let _ = writeln!(
        out,
        "lab {experiment} — {instructions} instructions/app, {} grid points",
        points.len()
    );

    // Group points into slices by everything except the app, preserving
    // report order; each slice renders as one table with apps as rows.
    let mut slices: Vec<(String, Vec<&Value>)> = Vec::new();
    for point in points {
        let key = format!(
            "{} / {} / fault {} / {} shard(s)",
            field_str(point, "profile")?,
            field_str(point, "prefetcher")?,
            field_str(point, "fault")?,
            field_u64(point, "replay_shards")?
        );
        match slices.last_mut() {
            Some((k, members)) if *k == key => members.push(point),
            _ => slices.push((key, vec![point])),
        }
    }

    for (key, members) in &slices {
        let _ = writeln!(out, "\n[{key}] speedup over LRU, %");
        let first_rows = members[0]
            .get("rows")
            .and_then(|r| r.as_array())
            .map_err(|e| format!("rows: {e}"))?;
        let mut header = format!("  {:<16}", "app");
        for row in first_rows.iter().skip(1) {
            let _ = write!(header, " {:>11}", field_str(row, "policy")?);
        }
        let _ = writeln!(out, "{header}");
        for point in members {
            let mut line = format!("  {:<16}", field_str(point, "app")?);
            let rows = point
                .get("rows")
                .and_then(|r| r.as_array())
                .map_err(|e| format!("rows: {e}"))?;
            for row in rows.iter().skip(1) {
                let _ = write!(line, " {:>11.2}", field_finite(row, "speedup_pct")?);
            }
            let _ = writeln!(out, "{line}");
        }

        let any_ripple = members.iter().any(|p| {
            p.get("ripple")
                .and_then(|r| r.as_array())
                .map(|r| !r.is_empty())
                .unwrap_or(false)
        });
        if any_ripple {
            let _ = writeln!(
                out,
                "  {:<16} {:>10} {:>9} {:>9} {:>9} {:>9}",
                "ripple", "underlying", "thresh", "speedup%", "cover%", "accur%"
            );
            for point in members {
                let app = field_str(point, "app")?;
                let ripple = point
                    .get("ripple")
                    .and_then(|r| r.as_array())
                    .map_err(|e| format!("ripple: {e}"))?;
                for row in ripple {
                    let best = row.get("best").and_then(|b| b.as_bool()).unwrap_or(false);
                    let _ = writeln!(
                        out,
                        "  {:<16} {:>10} {:>9.2} {:>9.2} {:>9.1} {:>9.1}{}",
                        app,
                        field_str(row, "underlying")?,
                        field_finite(row, "threshold")?,
                        field_finite(row, "speedup_pct")?,
                        field_finite(row, "coverage")? * 100.0,
                        field_finite(row, "accuracy")? * 100.0,
                        if best { "  *best" } else { "" }
                    );
                }
            }
        }
    }
    Ok(out)
}
