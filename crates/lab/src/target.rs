//! Named target profiles: the cache hierarchy an experiment runs on.
//!
//! A [`TargetProfile`] bundles the geometry and latency knobs of one
//! modelled machine under a stable name, so experiment declarations say
//! `"profiles": ["paper", "zen2"]` instead of repeating raw cache
//! parameters. The built-in table ships the paper's Table II machine plus
//! two contemporary x86 shapes (Zen 2- and Tremont-like hierarchies), the
//! same per-uarch-profile idea as `perfect-zen2`/`perfect-tremont` in the
//! `eigenform/perfect` harness this crate is modeled on.

use ripple_sim::{CacheGeometry, SimConfig};

/// One named machine model: cache geometries plus hit/miss latencies.
///
/// All geometries in the built-in table are valid by construction
/// (`size` a multiple of `assoc * 64`); a unit test pins that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetProfile {
    /// Stable name used in experiment declarations and reports.
    pub name: &'static str,
    /// One-line description for `ripple-cli lab describe`.
    pub description: &'static str,
    /// L1 instruction cache (size in bytes, associativity).
    pub l1i: (u64, u16),
    /// Unified L2.
    pub l2: (u64, u16),
    /// Shared L3.
    pub l3: (u64, u16),
    /// Hit latencies in cycles: (L1I, L2, L3, memory).
    pub latencies: (u32, u32, u32, u32),
}

/// The built-in profile table, in declaration-resolution order.
pub const TARGET_PROFILES: [TargetProfile; 3] = [
    TargetProfile {
        name: "paper",
        description: "the paper's Table II machine (32K/8 L1I, 1M/16 L2, 10M/20 L3)",
        l1i: (32 * 1024, 8),
        l2: (1024 * 1024, 16),
        l3: (10 * 1024 * 1024, 20),
        latencies: (3, 12, 36, 260),
    },
    TargetProfile {
        name: "zen2",
        description: "Zen 2-like hierarchy (32K/8 L1I, 512K/8 private L2, 16M/16 CCX L3)",
        l1i: (32 * 1024, 8),
        l2: (512 * 1024, 8),
        l3: (16 * 1024 * 1024, 16),
        latencies: (4, 12, 39, 240),
    },
    TargetProfile {
        name: "tremont",
        description: "Tremont-like hierarchy (32K/8 L1I, 1.5M/12 module L2, 4M/16 L3)",
        l1i: (32 * 1024, 8),
        l2: (1536 * 1024, 12),
        l3: (4 * 1024 * 1024, 16),
        latencies: (3, 17, 40, 230),
    },
];

impl TargetProfile {
    /// Looks up a built-in profile by name.
    pub fn find(name: &str) -> Option<&'static TargetProfile> {
        TARGET_PROFILES.iter().find(|p| p.name == name)
    }

    /// A [`SimConfig`] for this machine, otherwise at Table II defaults
    /// (warmup fraction, FTQ depth, base CPI are workload knobs, not
    /// machine knobs, and stay shared across profiles).
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::default();
        cfg.l1i = CacheGeometry {
            size_bytes: self.l1i.0,
            assoc: self.l1i.1,
        };
        cfg.l2 = CacheGeometry {
            size_bytes: self.l2.0,
            assoc: self.l2.1,
        };
        cfg.l3 = CacheGeometry {
            size_bytes: self.l3.0,
            assoc: self.l3.1,
        };
        let (l1i, l2, l3, mem) = self.latencies;
        cfg.l1i_latency = l1i;
        cfg.l2_latency = l2;
        cfg.l3_latency = l3;
        cfg.mem_latency = mem;
        cfg
    }

    /// A short stable fingerprint of the machine model, embedded in
    /// cached artifacts (e.g. the bench grid) so a cache computed for one
    /// geometry is never served for another.
    pub fn fingerprint(&self) -> String {
        let (l1i, l2, l3, mem) = self.latencies;
        format!(
            "l1i={}x{} l2={}x{} l3={}x{} lat={l1i}/{l2}/{l3}/{mem}",
            self.l1i.0, self.l1i.1, self.l2.0, self.l2.1, self.l3.0, self.l3.1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_geometries_are_valid_and_named_uniquely() {
        for p in &TARGET_PROFILES {
            for (level, (size, assoc)) in [("l1i", p.l1i), ("l2", p.l2), ("l3", p.l3)] {
                CacheGeometry::checked(size, assoc)
                    .unwrap_or_else(|e| panic!("{}.{level}: {e}", p.name));
            }
            assert!(TargetProfile::find(p.name).is_some());
        }
        let mut names: Vec<&str> = TARGET_PROFILES.iter().map(|p| p.name).collect();
        names.dedup();
        assert_eq!(names.len(), TARGET_PROFILES.len());
    }

    #[test]
    fn paper_profile_matches_table_ii_defaults() {
        let cfg = TargetProfile::find("paper").unwrap().sim_config();
        let default = SimConfig::default();
        assert_eq!(cfg.l1i, default.l1i);
        assert_eq!(cfg.l2, default.l2);
        assert_eq!(cfg.l3, default.l3);
        assert_eq!(cfg.l1i_latency, default.l1i_latency);
        assert_eq!(cfg.mem_latency, default.mem_latency);
    }

    #[test]
    fn fingerprints_distinguish_profiles() {
        let f: Vec<String> = TARGET_PROFILES.iter().map(|p| p.fingerprint()).collect();
        assert_ne!(f[0], f[1]);
        assert_ne!(f[1], f[2]);
        assert_ne!(f[0], f[2]);
    }
}
