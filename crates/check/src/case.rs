//! Random full-simulator case generation.
//!
//! One [`FullCase`] is everything a simulator run needs — program, layout,
//! trace, [`SimConfig`] — drawn deterministically from a single seed:
//! randomized application specs (via [`AppSpec::randomized`]), random
//! cache geometry / prefetcher / eviction mechanism / warmup, an optional
//! injected-invalidate rewrite, and an optional scripted-invalidation
//! schedule sampled from a pilot run's evictions.

use std::sync::Arc;

use rand::{Rng, SeedableRng, StdRng};
use ripple_program::{
    rewrite, BlockId, CodeLoc, Injection, InjectionPlan, Layout, LayoutConfig, LineAddr, Program,
};
use ripple_sim::{
    CacheGeometry, EvictionMechanism, LinePath, PolicyKind, PolicyRegistry, PrefetcherKind,
    SimConfig, SimSession, Temperature, TemperatureMap, VecSink,
};
use ripple_trace::BbTrace;
use ripple_workloads::{execute, generate, AppSpec, InputConfig};

/// All replacement policies the full-simulator dimensions may select:
/// everything in the global registry, so a newly registered policy is
/// fuzzed without any checker edit.
pub fn all_policies() -> Vec<PolicyKind> {
    PolicyRegistry::global().all().collect()
}

/// Small L1I geometries that actually miss on the tiny fuzzed programs.
const L1I_GEOMETRIES: [(u64, u16); 5] = [(512, 2), (1024, 2), (1024, 4), (2048, 4), (4096, 8)];

/// A fully materialized random simulation case.
pub struct FullCase {
    /// Short human-readable description for repros.
    pub label: String,
    /// The (possibly rewritten) program.
    pub program: Program,
    /// Its layout.
    pub layout: Layout,
    /// The executed block trace (valid for the rewritten program too:
    /// `rewrite` preserves `BlockId`s).
    pub trace: BbTrace,
    /// Simulator configuration, scripted invalidations included.
    pub config: SimConfig,
    /// Whether the program carries injected invalidate instructions.
    pub injected: bool,
}

impl std::fmt::Debug for FullCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FullCase")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

impl FullCase {
    /// The scripted schedule, if any.
    pub fn script(&self) -> Option<&[(u64, LineAddr)]> {
        self.config
            .scripted_invalidations
            .as_deref()
            .map(Vec::as_slice)
    }

    /// This case with its trace truncated to `len` blocks and the script
    /// clipped to positions inside the truncated trace — the shrinking
    /// step (trace prefixes are valid CFG walks).
    pub fn truncated(&self, len: usize) -> FullCase {
        let mut config = self.config.clone();
        if let Some(script) = self.script() {
            let clipped: Vec<(u64, LineAddr)> = script
                .iter()
                .copied()
                .filter(|&(pos, _)| pos < len as u64)
                .collect();
            config.scripted_invalidations = (!clipped.is_empty()).then(|| Arc::new(clipped));
        }
        FullCase {
            label: format!("{} [truncated to {len}]", self.label),
            program: self.program.clone(),
            layout: self.layout.clone(),
            trace: BbTrace::new(self.trace.blocks()[..len].to_vec()),
            config,
            injected: self.injected,
        }
    }

    /// This case with a different scripted schedule (script shrinking).
    pub fn with_script(&self, script: Vec<(u64, LineAddr)>) -> FullCase {
        let mut config = self.config.clone();
        config.scripted_invalidations = (!script.is_empty()).then(|| Arc::new(script));
        FullCase {
            label: self.label.clone(),
            program: self.program.clone(),
            layout: self.layout.clone(),
            trace: BbTrace::new(self.trace.blocks().to_vec()),
            config,
            injected: self.injected,
        }
    }
}

/// Generates one full case from `seed`. The same seed always produces the
/// same case (spec, trace, config, injections, script).
pub fn gen_full_case(seed: u64) -> FullCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = if rng.gen_bool(0.4) {
        AppSpec::tiny(rng.next_u64())
    } else {
        AppSpec::randomized(rng.next_u64())
    };
    let app = generate(&spec);
    let base_layout = Layout::new(&app.program, &LayoutConfig::default());
    let budget = rng.gen_range(1500u64..=5000);
    let trace = execute(
        &app.program,
        &app.model,
        InputConfig::training(rng.next_u64()),
        budget,
    );

    // Optionally rewrite with a handful of manual injections so the
    // Demote/NoOp mechanisms and the injected-invalidate path execute.
    let injected = rng.gen_bool(0.4);
    let (program, layout) = if injected {
        let n = app.program.num_blocks() as u32;
        let mut plan = InjectionPlan::new();
        for _ in 0..rng.gen_range(1u32..=8) {
            plan.push(Injection {
                cue: BlockId::new(rng.gen_range(0..n)),
                victim: CodeLoc::new(BlockId::new(rng.gen_range(0..n)), 0),
            });
        }
        let rewritten = rewrite(&app.program, &base_layout, &plan);
        (rewritten.program, rewritten.layout)
    } else {
        (app.program, base_layout)
    };

    let (size, assoc) = L1I_GEOMETRIES[rng.gen_range(0..L1I_GEOMETRIES.len())];
    let mut config = SimConfig {
        l1i: CacheGeometry::new(size, assoc),
        prefetcher: match rng.gen_range(0u32..3) {
            0 => PrefetcherKind::None,
            1 => PrefetcherKind::NextLine,
            _ => PrefetcherKind::Fdip,
        },
        eviction_mechanism: match rng.gen_range(0u32..3) {
            0 => EvictionMechanism::Invalidate,
            1 => EvictionMechanism::Demote,
            _ => EvictionMechanism::NoOp,
        },
        warmup_fraction: [0.0, 0.1, 0.25, 0.4][rng.gen_range(0..4usize)],
        ftq_depth: rng.gen_range(4usize..=16),
        random_seed: rng.next_u64(),
        ..SimConfig::default()
    };

    // Optionally attach a random temperature profile over the program's
    // line span so TRRIP's hint-insertion path executes under every
    // full-simulator dimension (other policies ignore the map).
    if rng.gen_bool(0.3) {
        if let Some((lo, hi)) = layout.line_bounds().map(|(a, b)| (a.index(), b.index())) {
            let mut temps = TemperatureMap::new();
            for line in lo..=hi {
                match rng.gen_range(0u32..4) {
                    0 => temps.set(LineAddr::new(line), Temperature::Hot),
                    1 => temps.set(LineAddr::new(line), Temperature::Cold),
                    2 => temps.set(LineAddr::new(line), Temperature::Warm),
                    _ => {} // unprofiled: defaults to warm
                }
            }
            config.temperatures = Some(Arc::new(temps));
        }
    }

    // Optionally script invalidations: sample a pilot LRU run's evictions
    // (likely resident at their positions) plus a few arbitrary lines
    // (out-of-span fallbacks, misses).
    if rng.gen_bool(0.5) {
        let session = SimSession::new(&program, &layout, &trace, config.clone());
        let mut sink = VecSink::new();
        session.run_with_sink(PolicyKind::LRU, &mut sink);
        let mut script: Vec<(u64, LineAddr)> = sink
            .into_events()
            .into_iter()
            .filter(|_| rng.gen_bool(0.25))
            .map(|e| (e.evict_pos, e.victim))
            .take(150)
            .collect();
        let (lo, hi) = layout
            .line_bounds()
            .map(|(a, b)| (a.index(), b.index()))
            .unwrap_or((0, 8));
        for _ in 0..4 {
            let pos = rng.gen_range(0..trace.len() as u64);
            let line = rng.gen_range(lo.saturating_sub(3)..=hi + 3);
            script.push((pos, LineAddr::new(line)));
        }
        script.sort_unstable_by_key(|&(pos, _)| pos);
        config.scripted_invalidations = Some(Arc::new(script));
    }

    let label = format!(
        "app {} (spec seed {:#x}), {} blocks, l1i {}B/{}-way, {}, {:?}, warmup {}, injected {}, script {}, temps {}",
        spec.name,
        spec.seed,
        trace.len(),
        size,
        assoc,
        config.prefetcher.name(),
        config.eviction_mechanism,
        config.warmup_fraction,
        injected,
        config
            .scripted_invalidations
            .as_ref()
            .map_or(0, |s| s.len()),
        config.temperatures.as_ref().map_or(0, |t| t.len()),
    );
    FullCase {
        label,
        program,
        layout,
        trace,
        config,
        injected,
    }
}

/// Runs `case` on the given frontend path and returns its stats and full
/// eviction stream.
pub fn run_path(
    case: &FullCase,
    policy: PolicyKind,
    path: LinePath,
) -> (ripple_sim::SimStats, Vec<ripple_sim::EvictionEvent>) {
    let config = case.config.clone().with_line_path(path);
    let session = SimSession::new(&case.program, &case.layout, &case.trace, config);
    let mut sink = VecSink::new();
    let stats = session.run_with_sink(policy, &mut sink);
    (stats, sink.into_events())
}

/// [`run_path`] with an observability recorder attached to the session.
/// Recorders observe, never feed back: results must be identical to the
/// unrecorded run, which is exactly what the recorded dimensions check.
pub fn run_path_recorded(
    case: &FullCase,
    policy: PolicyKind,
    path: LinePath,
    recorder: Arc<dyn ripple_obs::Recorder>,
) -> (ripple_sim::SimStats, Vec<ripple_sim::EvictionEvent>) {
    let config = case.config.clone().with_line_path(path);
    let session =
        SimSession::new(&case.program, &case.layout, &case.trace, config).with_recorder(recorder);
    let mut sink = VecSink::new();
    let stats = session.run_with_sink(policy, &mut sink);
    (stats, sink.into_events())
}
