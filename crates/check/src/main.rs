//! `ripple-check` — differential oracle fuzzing from the command line.
//!
//! ```text
//! ripple-check [--cases N] [--seed S] [--dims a,b,c] [--replay DIM:SEED]
//! ```
//!
//! Every failure prints a minimized repro and a `RIPPLE_CHECK_SEED=...`
//! line; setting that variable (or passing `--replay`) re-runs exactly the
//! failing case.

use std::process::ExitCode;

use ripple_check::{check_case, run_corpus, Dimension, ALL_DIMENSIONS};

struct Options {
    cases: u64,
    seed: u64,
    dims: Vec<Dimension>,
    replay: Option<(Dimension, u64)>,
}

fn parse_seed(text: &str) -> Result<u64, String> {
    let text = text.trim();
    let parsed = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        text.parse()
    };
    parsed.map_err(|_| format!("invalid seed {text:?}"))
}

fn parse_replay(token: &str) -> Result<(Dimension, u64), String> {
    let (dim, seed) = token
        .split_once(':')
        .ok_or_else(|| format!("replay token {token:?} is not DIM:SEED"))?;
    let dimension = Dimension::parse(dim)
        .ok_or_else(|| format!("unknown dimension {dim:?} (try one of {})", dim_names()))?;
    Ok((dimension, parse_seed(seed)?))
}

fn dim_names() -> String {
    ALL_DIMENSIONS
        .iter()
        .map(|d| d.name())
        .collect::<Vec<_>>()
        .join(", ")
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        cases: 500,
        seed: 0x5269_7070_6c65, // "Ripple"
        dims: ALL_DIMENSIONS.to_vec(),
        replay: None,
    };
    if let Ok(token) = std::env::var("RIPPLE_CHECK_SEED") {
        options.replay = Some(parse_replay(&token)?);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--cases" => options.cases = parse_seed(&value("--cases")?)?,
            "--seed" => options.seed = parse_seed(&value("--seed")?)?,
            "--dims" => {
                options.dims = value("--dims")?
                    .split(',')
                    .map(|name| {
                        Dimension::parse(name.trim()).ok_or_else(|| {
                            format!("unknown dimension {name:?} (try one of {})", dim_names())
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if options.dims.is_empty() {
                    return Err("--dims needs at least one dimension".into());
                }
            }
            "--replay" => options.replay = Some(parse_replay(&value("--replay")?)?),
            "--help" | "-h" => {
                println!(
                    "ripple-check [--cases N] [--seed S] [--dims {}] [--replay DIM:SEED]",
                    dim_names()
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(message) => {
            eprintln!("ripple-check: {message}");
            return ExitCode::from(2);
        }
    };

    if let Some((dimension, case_seed)) = options.replay {
        println!("replaying {dimension} case {case_seed:#x}");
        return match check_case(dimension, case_seed) {
            Ok(()) => {
                println!("case passed: no divergence");
                ExitCode::SUCCESS
            }
            Err(failure) => {
                eprintln!("DIVERGENCE in {}: {}", failure.dimension, failure.message);
                eprintln!("minimized repro:\n{}", failure.repro);
                eprintln!("replay: {}", failure.replay_line());
                ExitCode::FAILURE
            }
        };
    }

    println!(
        "fuzzing {} cases (seed {:#x}) across: {}",
        options.cases,
        options.seed,
        options
            .dims
            .iter()
            .map(|d| d.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let report = run_corpus(options.seed, options.cases, &options.dims, |done, total| {
        if done % 100 == 0 || done == total {
            println!("  {done}/{total} cases");
        }
    });
    for (i, &passed) in report.passed.iter().enumerate() {
        if options.dims.contains(&ALL_DIMENSIONS[i]) {
            println!("{:>15}: {passed} cases passed", ALL_DIMENSIONS[i].name());
        }
    }
    if report.failures.is_empty() {
        println!("ok: {} cases, zero divergences", report.total_passed());
        ExitCode::SUCCESS
    } else {
        for failure in &report.failures {
            eprintln!();
            eprintln!(
                "DIVERGENCE in {} (case seed {:#x}): {}",
                failure.dimension, failure.case_seed, failure.message
            );
            eprintln!("minimized repro:\n{}", failure.repro);
            eprintln!("replay: {}", failure.replay_line());
        }
        ExitCode::FAILURE
    }
}
