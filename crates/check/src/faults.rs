//! Dimension 6: fault injection — corrupted inputs must surface typed
//! errors, never panics.
//!
//! Three layered oracles over the decoding and reporting surfaces:
//!
//! * **strict decode** — encoded traces mangled by random [`Mutation`]s
//!   pushed through [`reconstruct_trace`] return `Ok` or a typed
//!   `ReconstructError`; a panic is a divergence;
//! * **lossy decode** — [`reconstruct_trace_lossy`] with an open drop
//!   bound always succeeds on the same mangled bytes, its `TraceHealth`
//!   satisfies the accounting invariants (byte totals, ratio range,
//!   valid recovered block ids), decoding the same bytes twice is
//!   bit-identical, and a zero drop bound rejects exactly the streams
//!   that dropped bytes. The recovered trace must also survive
//!   `Ripple::train` + `plan` without panicking;
//! * **json** — mutated run-report documents pushed through
//!   [`ripple_json::parse`] and `validate_run_report` never panic, and
//!   any document that still parses survives a print → reparse round
//!   trip.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::{Rng, SeedableRng, StdRng};
use ripple::ripple_json::{self, Value};
use ripple::{validate_run_report, RippleConfig};
use ripple_program::{Layout, LayoutConfig, Program};
use ripple_trace::{
    reconstruct_trace, reconstruct_trace_lossy, record_trace, record_trace_with_sync,
    DecodeOptions, ReconstructError,
};
use ripple_workloads::{execute, generate, AppSpec, InputConfig};

use crate::shrink::shrink_list;

/// One mutation applied to an encoded byte stream. Offsets and lengths
/// are clamped against the stream's current size at application time, so
/// a mutation list stays valid while being shrunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Flip bit `bit` of the byte at `offset`.
    BitFlip {
        /// Byte offset (clamped into the stream).
        offset: usize,
        /// Bit index, `0..8`.
        bit: u8,
    },
    /// Overwrite the byte at `offset` with `byte`.
    Overwrite {
        /// Byte offset (clamped into the stream).
        offset: usize,
        /// Replacement byte.
        byte: u8,
    },
    /// Cut the stream to at most `len` bytes.
    Truncate {
        /// New maximum length.
        len: usize,
    },
    /// Re-insert a copy of the span at `start..start+len` right after it
    /// (packet duplication).
    Duplicate {
        /// Span start.
        start: usize,
        /// Span length.
        len: usize,
    },
    /// Swap the two `len`-byte spans starting at `a` and `b`
    /// (packet reordering).
    Swap {
        /// First span start.
        a: usize,
        /// Second span start.
        b: usize,
        /// Span length.
        len: usize,
    },
    /// Insert a raw byte at `offset`.
    Insert {
        /// Insertion offset (clamped to the stream length).
        offset: usize,
        /// The byte to insert.
        byte: u8,
    },
    /// Delete up to `len` bytes at `offset`.
    Delete {
        /// Deletion start.
        offset: usize,
        /// Bytes to remove.
        len: usize,
    },
}

/// Applies one mutation in place. Never panics: every offset is clamped
/// against the current stream, and degenerate spans are no-ops.
pub fn apply_mutation(bytes: &mut Vec<u8>, m: Mutation) {
    match m {
        Mutation::BitFlip { offset, bit } => {
            if !bytes.is_empty() {
                let i = offset % bytes.len();
                bytes[i] ^= 1 << (bit % 8);
            }
        }
        Mutation::Overwrite { offset, byte } => {
            if !bytes.is_empty() {
                let i = offset % bytes.len();
                bytes[i] = byte;
            }
        }
        Mutation::Truncate { len } => bytes.truncate(len),
        Mutation::Duplicate { start, len } => {
            if !bytes.is_empty() && len > 0 {
                let start = start % bytes.len();
                let end = (start + len).min(bytes.len());
                let span: Vec<u8> = bytes[start..end].to_vec();
                let mut out = Vec::with_capacity(bytes.len() + span.len());
                out.extend_from_slice(&bytes[..end]);
                out.extend_from_slice(&span);
                out.extend_from_slice(&bytes[end..]);
                *bytes = out;
            }
        }
        Mutation::Swap { a, b, len } => {
            if !bytes.is_empty() && len > 0 {
                let (mut a, mut b) = (a % bytes.len(), b % bytes.len());
                if a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                // Only swap non-overlapping spans that both fit.
                let len = len.min(b - a).min(bytes.len() - b);
                for i in 0..len {
                    bytes.swap(a + i, b + i);
                }
            }
        }
        Mutation::Insert { offset, byte } => {
            let i = offset.min(bytes.len());
            bytes.insert(i, byte);
        }
        Mutation::Delete { offset, len } => {
            if !bytes.is_empty() && len > 0 {
                let start = offset % bytes.len();
                let end = (start + len).min(bytes.len());
                bytes.drain(start..end);
            }
        }
    }
}

/// Applies `mutations` to a copy of `bytes`, in order.
pub fn mutate(bytes: &[u8], mutations: &[Mutation]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    for &m in mutations {
        apply_mutation(&mut out, m);
    }
    out
}

/// Draws a random mutation list sized for a `len`-byte stream from
/// `seed`. Deterministic: the same seed and length always produce the
/// same list.
pub fn gen_mutations(seed: u64, len: usize) -> Vec<Mutation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let span = len.max(1);
    let count = rng.gen_range(1usize..=6);
    (0..count)
        .map(|_| match rng.gen_range(0u32..14) {
            // Bit flips dominate: they probe every decoder branch without
            // destroying the whole stream.
            0..=5 => Mutation::BitFlip {
                offset: rng.gen_range(0..span),
                bit: rng.gen_range(0u8..8),
            },
            6..=7 => Mutation::Overwrite {
                offset: rng.gen_range(0..span),
                byte: rng.next_u64() as u8,
            },
            8 => Mutation::Truncate {
                len: rng.gen_range(0..span),
            },
            9 => Mutation::Duplicate {
                start: rng.gen_range(0..span),
                len: rng.gen_range(1..=16usize),
            },
            10..=11 => Mutation::Swap {
                a: rng.gen_range(0..span),
                b: rng.gen_range(0..span),
                len: rng.gen_range(1..=8usize),
            },
            12 => Mutation::Insert {
                offset: rng.gen_range(0..=span),
                byte: rng.next_u64() as u8,
            },
            _ => Mutation::Delete {
                offset: rng.gen_range(0..span),
                len: rng.gen_range(1..=8usize),
            },
        })
        .collect()
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic>"
    }
}

/// Runs every trace-level oracle against `bytes` mangled by `mutations`.
/// Returns a violation message, or `None` if all invariants hold.
fn trace_fault_violation(
    program: &Program,
    layout: &Layout,
    bytes: &[u8],
    mutations: &[Mutation],
) -> Option<String> {
    let corrupt = mutate(bytes, mutations);

    // Strict decode: a typed error or a clean decode, never a panic.
    if let Err(p) = catch_unwind(AssertUnwindSafe(|| {
        let _ = reconstruct_trace(program, layout, &corrupt);
    })) {
        return Some(format!("strict decoder panicked: {}", panic_text(&*p)));
    }

    // Lossy decode with the open bound must always produce a result.
    let open = DecodeOptions {
        max_drop_ratio: 1.0,
    };
    let lossy = match catch_unwind(AssertUnwindSafe(|| {
        reconstruct_trace_lossy(program, layout, &corrupt, &open)
    })) {
        Err(p) => return Some(format!("lossy decoder panicked: {}", panic_text(&*p))),
        Ok(Err(e)) => return Some(format!("lossy decode with open drop bound failed: {e}")),
        Ok(Ok(l)) => l,
    };

    // Health accounting invariants.
    let h = lossy.health;
    if h.total_bytes != corrupt.len() as u64 {
        return Some(format!(
            "health.total_bytes {} != stream length {}",
            h.total_bytes,
            corrupt.len()
        ));
    }
    if h.dropped_bytes > h.total_bytes {
        return Some(format!(
            "health dropped {} of only {} bytes",
            h.dropped_bytes, h.total_bytes
        ));
    }
    if !(0.0..=1.0).contains(&h.drop_ratio()) {
        return Some(format!("drop ratio {} outside 0..=1", h.drop_ratio()));
    }
    if let Some(&b) = lossy
        .trace
        .blocks()
        .iter()
        .find(|b| b.index() >= program.num_blocks())
    {
        return Some(format!(
            "recovered block {b:?} outside program ({} blocks)",
            program.num_blocks()
        ));
    }

    // Lossy decoding is a pure function of the bytes: run it again and
    // demand a bit-identical trace and health.
    match reconstruct_trace_lossy(program, layout, &corrupt, &open) {
        Ok(again) => {
            if again.trace != lossy.trace || again.health != h {
                return Some("lossy decode is nondeterministic on identical bytes".into());
            }
        }
        Err(e) => {
            return Some(format!(
                "lossy decode nondeterministic: second run failed: {e}"
            ))
        }
    }

    // A zero drop bound accepts exactly the streams that dropped nothing.
    let strict_bound = DecodeOptions {
        max_drop_ratio: 0.0,
    };
    match reconstruct_trace_lossy(program, layout, &corrupt, &strict_bound) {
        Ok(_) if h.dropped_bytes > 0 => {
            return Some(format!(
                "zero drop bound accepted a stream that dropped {} bytes",
                h.dropped_bytes
            ))
        }
        Ok(_) => {}
        Err(ReconstructError::DropRatioExceeded { .. }) if h.dropped_bytes == 0 => {
            return Some("zero drop bound rejected a stream that dropped nothing".into())
        }
        Err(ReconstructError::DropRatioExceeded { .. }) => {}
        Err(e) => {
            return Some(format!(
                "zero-bound decode failed with unexpected error: {e}"
            ))
        }
    }

    // The recovered trace must flow through the pipeline without
    // panicking (typed errors are fine: the trace may be empty or
    // degenerate).
    if !lossy.trace.is_empty() {
        let decoded = lossy.trace;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut config = RippleConfig::default();
            config.sim.l1i = ripple_sim::CacheGeometry::new(1024, 2);
            config.analysis.min_windows_per_injection = 1;
            config.threads = Some(1);
            ripple::Ripple::train(program, layout, &decoded, config)
                .and_then(|r| r.plan().map(|_| ()))
        }));
        if let Err(p) = outcome {
            return Some(format!(
                "pipeline panicked on a lossily recovered trace: {}",
                panic_text(&*p)
            ));
        }
    }
    None
}

/// Runs the JSON oracles against `doc` mangled by `mutations`.
fn json_fault_violation(doc: &str, mutations: &[Mutation]) -> Option<String> {
    let corrupt = mutate(doc.as_bytes(), mutations);
    let corrupt = String::from_utf8_lossy(&corrupt);
    let parsed = match catch_unwind(AssertUnwindSafe(|| ripple_json::parse(&corrupt))) {
        Err(p) => return Some(format!("json parser panicked: {}", panic_text(&*p))),
        Ok(Err(_)) => return None, // a typed parse error is the expected outcome
        Ok(Ok(v)) => v,
    };

    // Whatever still parses must survive print -> reparse. Non-finite
    // floats print as null (JSON has no Inf), so equality only holds for
    // finite documents; reparsing must succeed either way.
    let printed = parsed.to_compact_string();
    match ripple_json::parse(&printed) {
        Err(e) => return Some(format!("printed document no longer parses: {e}")),
        Ok(reparsed) => {
            if all_finite(&parsed) && reparsed != parsed {
                return Some("print -> reparse changed the document".into());
            }
        }
    }

    // The report validator sees arbitrary shapes; it must reject them
    // with a message, not a panic.
    if let Err(p) = catch_unwind(AssertUnwindSafe(|| {
        let _ = validate_run_report(&parsed, ripple::PIPELINE_PHASES);
    })) {
        return Some(format!("report validator panicked: {}", panic_text(&*p)));
    }
    None
}

fn all_finite(v: &Value) -> bool {
    match v {
        Value::Float(f) => f.is_finite(),
        Value::Array(items) => items.iter().all(all_finite),
        Value::Object(members) => members.iter().all(|(_, v)| all_finite(v)),
        _ => true,
    }
}

/// A realistic run-report document to mutate (schema, phases, counters,
/// harness events), rendered pretty so truncations land mid-structure.
fn sample_report_text(rng: &mut StdRng) -> String {
    use ripple_obs::Recorder as _;
    let m = ripple_obs::MetricsRecorder::new();
    // The root wall must cover the disjoint top-level phases or the
    // share-sum gate fires on the *uncorrupted* document; summing every
    // phase total over-covers, which is fine (the gate is one-sided).
    let mut wall_ns = 0u64;
    for name in ripple::PIPELINE_PHASES {
        let total = rng.gen_range(1u64..2_000_000);
        m.phase(name, total);
        wall_ns += total;
    }
    m.gauge("trace.dropped_packets", rng.gen_range(0u32..50) as f64);
    m.gauge("trace.resync_events", rng.gen_range(0u32..10) as f64);
    m.event(
        "harness.job",
        &[
            ("scope", ripple_obs::FieldValue::Str("policy_matrix")),
            ("job", ripple_obs::FieldValue::U64(rng.gen_range(0u64..8))),
            (
                "queue_wait_ns",
                ripple_obs::FieldValue::U64(rng.next_u64() >> 40),
            ),
            ("run_ns", ripple_obs::FieldValue::U64(rng.next_u64() >> 40)),
        ],
    );
    ripple::run_report("optimize", "tomcat", &m.snapshot(), wall_ns).to_pretty_string()
}

/// Checks one trace-corruption case and one report-corruption case;
/// shrinks the mutation list on failure.
pub fn check(seed: u64) -> Result<(), (String, String)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17_1e57_u64.rotate_left(23));

    let spec = if rng.gen_bool(0.3) {
        AppSpec::tiny(rng.next_u64())
    } else {
        AppSpec::randomized(rng.next_u64())
    };
    let app = generate(&spec);
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let budget = rng.gen_range(400u64..=1500);
    let trace = execute(
        &app.program,
        &app.model,
        InputConfig::training(rng.next_u64()),
        budget,
    );
    // Mix plain streams with checkpointed ones: sync points are what the
    // lossy decoder resynchronizes on, so both shapes must hold up.
    let sync_interval = [0u64, 8, 32][rng.gen_range(0..3usize)];
    let bytes = if sync_interval == 0 {
        record_trace(&app.program, &layout, trace.iter())
    } else {
        record_trace_with_sync(&app.program, &layout, trace.iter(), sync_interval)
    };
    let mutations = gen_mutations(rng.next_u64(), bytes.len());
    if let Some(message) = trace_fault_violation(&app.program, &layout, &bytes, &mutations) {
        let minimal = shrink_list(&mutations, |m| {
            trace_fault_violation(&app.program, &layout, &bytes, m).is_some()
        });
        let final_message = trace_fault_violation(&app.program, &layout, &bytes, &minimal)
            .expect("shrunk case still fails");
        let repro = format!(
            "app {} (spec seed {:#x}), {} trace bytes (sync {}), mutations shrunk {} -> {}:\n  {:?}\n  {}",
            spec.name,
            spec.seed,
            bytes.len(),
            sync_interval,
            mutations.len(),
            minimal.len(),
            minimal,
            final_message,
        );
        return Err((message, repro));
    }

    let doc = sample_report_text(&mut rng);
    let mutations = gen_mutations(rng.next_u64(), doc.len());
    if let Some(message) = json_fault_violation(&doc, &mutations) {
        let minimal = shrink_list(&mutations, |m| json_fault_violation(&doc, m).is_some());
        let final_message = json_fault_violation(&doc, &minimal).expect("shrunk case still fails");
        let repro = format!(
            "run report of {} bytes, mutations shrunk {} -> {}:\n  {:?}\n  {}",
            doc.len(),
            mutations.len(),
            minimal.len(),
            minimal,
            final_message,
        );
        return Err((message, repro));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_cases_pass_on_many_seeds() {
        for seed in 0..32 {
            if let Err((msg, repro)) = check(seed) {
                panic!("seed {seed}: {msg}\n{repro}");
            }
        }
    }

    #[test]
    fn mutations_are_deterministic_and_clamped() {
        let bytes: Vec<u8> = (0..64u8).collect();
        for seed in 0..64 {
            let muts = gen_mutations(seed, bytes.len());
            assert_eq!(muts, gen_mutations(seed, bytes.len()));
            assert_eq!(mutate(&bytes, &muts), mutate(&bytes, &muts));
            // Mutations stay total on degenerate inputs too.
            let _ = mutate(&[], &muts);
            let _ = mutate(&[0x06], &muts);
        }
    }

    #[test]
    fn truncate_and_delete_shrink_the_stream() {
        let bytes: Vec<u8> = (0..16u8).collect();
        let out = mutate(&bytes, &[Mutation::Truncate { len: 4 }]);
        assert_eq!(out, vec![0, 1, 2, 3]);
        let out = mutate(&bytes, &[Mutation::Delete { offset: 2, len: 30 }]);
        assert_eq!(out, vec![0, 1]);
        let out = mutate(&bytes, &[Mutation::Duplicate { start: 0, len: 2 }]);
        assert_eq!(&out[..4], &[0, 1, 0, 1]);
        assert_eq!(out.len(), 18);
    }
}
