//! Dimension 7: incremental relinking and dense-analysis equivalence.
//!
//! The pipeline's fixpoint loop relinks each round with
//! [`rewrite_incremental`] — re-laying-out only the functions whose
//! injected prefixes changed and splicing the rest from the previous
//! layout — and selects cues with the dense, epoch-stamped
//! [`analyze_windows`]. Both are pure optimizations with retained
//! reference implementations ([`rewrite`] and
//! [`analyze_windows_reference`]); this dimension fuzzes random
//! injection-plan chains and real oracle window sets and demands
//! byte-identical results. A subset of cases additionally runs the full
//! pipeline at 1 and 4 harness threads and demands an identical
//! [`RippleOutcome`].
//!
//! [`RippleOutcome`]: ripple::RippleOutcome

use rand::{Rng, SeedableRng, StdRng};
use ripple::{analyze_windows, analyze_windows_reference, AnalysisConfig, WindowSink};
use ripple::{Ripple, RippleConfig};
use ripple_program::{
    rewrite, rewrite_incremental, BlockId, CodeLoc, Injection, InjectionPlan, Layout, LayoutConfig,
    Program,
};
use ripple_sim::{
    CacheGeometry, EvictionMechanism, PolicyKind, PrefetcherKind, SimConfig, SimSession,
};
use ripple_trace::BbTrace;
use ripple_workloads::{execute, generate, AppSpec, InputConfig};

use crate::shrink::{min_failing_prefix, shrink_list};

/// One generated relinking case: a program, its profiled layout, a trace,
/// and a chain of injection plans (each a mutation of its predecessor, so
/// consecutive plans share clean functions — the splice path — while
/// still dirtying a few).
struct RewriteCase {
    label: String,
    program: Program,
    layout: Layout,
    trace: BbTrace,
    plans: Vec<Vec<Injection>>,
    threshold: f64,
}

fn to_plan(injections: &[Injection]) -> InjectionPlan {
    let mut plan = InjectionPlan::new();
    for &inj in injections {
        plan.push(inj);
    }
    plan
}

fn gen_case(seed: u64) -> RewriteCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = if rng.gen_bool(0.4) {
        AppSpec::tiny(rng.next_u64())
    } else {
        AppSpec::randomized(rng.next_u64())
    };
    let app = generate(&spec);
    let layout = Layout::new(&app.program, &LayoutConfig::default());
    let budget = rng.gen_range(1500u64..=4000);
    let trace = execute(
        &app.program,
        &app.model,
        InputConfig::training(rng.next_u64()),
        budget,
    );

    // A chain of 3 plans. Each successor keeps a random subset of its
    // predecessor (possibly reordered within a block via fresh pushes),
    // drops the rest, and adds fresh injections — the exact shape of the
    // fixpoint loop's round-to-round plan drift.
    let n = app.program.num_blocks() as u32;
    let mut plans: Vec<Vec<Injection>> = Vec::new();
    let mut current: Vec<Injection> = Vec::new();
    for _ in 0..3 {
        let mut next: Vec<Injection> = current
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(0.6))
            .collect();
        for _ in 0..rng.gen_range(1u32..=6) {
            next.push(Injection {
                cue: BlockId::new(rng.gen_range(0..n)),
                victim: CodeLoc::new(BlockId::new(rng.gen_range(0..n)), 0),
            });
        }
        plans.push(next.clone());
        current = next;
    }

    let threshold = [0.05, 0.1, 0.3, 0.5][rng.gen_range(0..4usize)];
    let label = format!(
        "app {} (spec seed {:#x}), {} blocks traced, plan chain {:?}, threshold {threshold}",
        spec.name,
        spec.seed,
        trace.len(),
        plans.iter().map(Vec::len).collect::<Vec<_>>(),
    );
    RewriteCase {
        label,
        program: app.program,
        layout,
        trace,
        plans,
        threshold,
    }
}

/// Incremental-vs-full relink over the case's plan chain. The incremental
/// result is carried forward, so later rounds splice from a layout that
/// was itself produced incrementally — divergence compounds instead of
/// being masked.
fn rewrite_violation(case: &RewriteCase) -> Option<String> {
    let first = to_plan(&case.plans[0]);
    let mut prev_plan = first.clone();
    let mut prev = rewrite(&case.program, &case.layout, &first);
    for (round, injections) in case.plans.iter().enumerate().skip(1) {
        let plan = to_plan(injections);
        let full = rewrite(&case.program, &case.layout, &plan);
        let incr = rewrite_incremental(&case.program, &case.layout, &plan, &prev_plan, prev);
        if incr.layout != full.layout {
            return Some(format!(
                "incremental relink diverged from full rewrite at round {round}: layouts differ"
            ));
        }
        if incr.program != full.program {
            return Some(format!(
                "incremental relink diverged from full rewrite at round {round}: programs differ"
            ));
        }
        if incr.mapper != full.mapper {
            return Some(format!(
                "incremental relink diverged from full rewrite at round {round}: mappers differ"
            ));
        }
        prev_plan = plan;
        prev = incr;
    }
    None
}

/// Dense-vs-reference cue analysis over a *real* oracle window set from
/// the rewritten binary (the exact windows the fixpoint loop analyzes).
fn analysis_violation(case: &RewriteCase) -> Option<String> {
    let last = to_plan(case.plans.last().expect("chain is non-empty"));
    let rewritten = rewrite(&case.program, &case.layout, &last);
    let mut cfg = SimConfig::default();
    cfg.l1i = CacheGeometry::new(1024, 2);
    cfg.prefetcher = PrefetcherKind::NextLine;
    cfg.eviction_mechanism = EvictionMechanism::NoOp;
    let session = SimSession::new(&rewritten.program, &rewritten.layout, &case.trace, cfg);
    let mut windows = WindowSink::new();
    session.run_with_sink(PolicyKind::OPT, &mut windows);
    let windows = windows.into_windows();

    let mut analysis_cfg = AnalysisConfig::default();
    analysis_cfg.min_windows_per_injection = 1;
    let dense = analyze_windows(
        &rewritten.program,
        &rewritten.layout,
        &case.trace,
        windows.clone(),
        &analysis_cfg,
    );
    let reference = analyze_windows_reference(
        &rewritten.program,
        &rewritten.layout,
        &case.trace,
        windows,
        &analysis_cfg,
    );
    if dense.windows() != reference.windows() {
        return Some("dense analysis reordered the window set".into());
    }
    if dense.choices() != reference.choices() {
        let idx = dense
            .choices()
            .iter()
            .zip(reference.choices().iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| dense.choices().len().min(reference.choices().len()));
        return Some(format!(
            "dense and reference cue choices diverge at window {idx}"
        ));
    }
    let (dense_plan, dense_cov) = dense.plan_for_threshold(case.threshold);
    let (ref_plan, ref_cov) = reference.plan_for_threshold(case.threshold);
    if dense_plan.injections() != ref_plan.injections() || dense_cov != ref_cov {
        return Some(format!(
            "plans diverge at threshold {}: {} vs {} injections",
            case.threshold,
            dense_plan.len(),
            ref_plan.len()
        ));
    }
    None
}

/// Full-pipeline probe: train once, evaluate at 1 and 4 harness threads;
/// the outcomes (which flow through incremental relinking, columnar
/// replay, and dense analysis) must be identical.
fn outcome_violation(case: &RewriteCase) -> Option<String> {
    let mut base = RippleConfig::default();
    base.sim.l1i = CacheGeometry::new(2 * 1024, 4);
    base.analysis.min_windows_per_injection = 1;
    base.threshold = case.threshold.min(0.3);
    let mut outcomes = Vec::new();
    for threads in [1usize, 4] {
        let mut cfg = base.clone();
        cfg.threads = Some(threads);
        let ripple = match Ripple::train(&case.program, &case.layout, &case.trace, cfg) {
            Ok(r) => r,
            Err(e) => return Some(format!("train failed at {threads} threads: {e}")),
        };
        match ripple.evaluate(&case.trace) {
            Ok(outcome) => outcomes.push(outcome),
            Err(e) => return Some(format!("evaluate failed at {threads} threads: {e}")),
        }
    }
    (outcomes[0] != outcomes[1])
        .then(|| "RippleOutcome differs between 1 and 4 harness threads".into())
}

/// Checks one generated case; shrinks the failing plan chain (rewrite
/// divergence) or the trace (analysis divergence) on failure.
pub fn check(seed: u64) -> Result<(), (String, String)> {
    let case = gen_case(seed);
    if let Some(message) = rewrite_violation(&case) {
        // Shrink each plan in the chain, last (the diverging rewrite's
        // target) first, keeping the chain failing throughout.
        let mut minimal = case;
        for i in (0..minimal.plans.len()).rev() {
            let plan = minimal.plans[i].clone();
            if plan.is_empty() {
                continue;
            }
            let kept = shrink_list(&plan, |entries| {
                let mut probe = RewriteCase {
                    label: minimal.label.clone(),
                    program: minimal.program.clone(),
                    layout: minimal.layout.clone(),
                    trace: BbTrace::new(minimal.trace.blocks().to_vec()),
                    plans: minimal.plans.clone(),
                    threshold: minimal.threshold,
                };
                probe.plans[i] = entries.to_vec();
                rewrite_violation(&probe).is_some()
            });
            let mut shrunk = minimal.plans.clone();
            shrunk[i] = kept;
            let probe = RewriteCase {
                label: minimal.label.clone(),
                program: minimal.program.clone(),
                layout: minimal.layout.clone(),
                trace: BbTrace::new(minimal.trace.blocks().to_vec()),
                plans: shrunk,
                threshold: minimal.threshold,
            };
            if rewrite_violation(&probe).is_some() {
                minimal = probe;
            }
        }
        let final_message = rewrite_violation(&minimal).expect("shrunk case still fails");
        let repro = format!(
            "case: {}\nplan chain shrunk to {:?}\nplans: {:?}\n{final_message}",
            minimal.label,
            minimal.plans.iter().map(Vec::len).collect::<Vec<_>>(),
            minimal.plans,
        );
        return Err((message, repro));
    }

    if let Some(message) = analysis_violation(&case) {
        let len = min_failing_prefix(case.trace.len(), |n| {
            let probe = RewriteCase {
                label: case.label.clone(),
                program: case.program.clone(),
                layout: case.layout.clone(),
                trace: BbTrace::new(case.trace.blocks()[..n].to_vec()),
                plans: case.plans.clone(),
                threshold: case.threshold,
            };
            analysis_violation(&probe).is_some()
        });
        let minimal = RewriteCase {
            label: format!("{} [truncated to {len}]", case.label),
            program: case.program.clone(),
            layout: case.layout.clone(),
            trace: BbTrace::new(case.trace.blocks()[..len].to_vec()),
            plans: case.plans.clone(),
            threshold: case.threshold,
        };
        let final_message = analysis_violation(&minimal).expect("shrunk case still fails");
        let repro = format!(
            "case: {}\ntrace shrunk {} -> {} blocks\n{final_message}",
            minimal.label,
            case.trace.len(),
            minimal.trace.len(),
        );
        return Err((message, repro));
    }

    // The end-to-end probe is an order of magnitude more expensive than
    // the direct oracles, so only a slice of the corpus pays for it.
    if seed.is_multiple_of(4) {
        if let Some(message) = outcome_violation(&case) {
            let repro = format!("case: {}\n{message}", case.label);
            return Err((message, repro));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relink_and_analysis_agree_on_many_seeds() {
        for seed in 0..16 {
            if let Err((msg, repro)) = check(seed) {
                panic!("seed {seed}: {msg}\n{repro}");
            }
        }
    }

    #[test]
    fn violation_helpers_cover_a_real_case() {
        // The oracles must actually exercise non-trivial inputs: at least
        // one generated case produces windows and a non-empty plan chain.
        let case = gen_case(4); // seed 4 also runs the outcome probe in check()
        assert!(case.plans.iter().any(|p| !p.is_empty()));
        assert!(rewrite_violation(&case).is_none());
        assert!(analysis_violation(&case).is_none());
        assert!(outcome_violation(&case).is_none());
    }
}
