//! Dimension 2: exhaustive Belady search on short streams.
//!
//! For request streams short enough to search exhaustively, the true
//! minimum number of demand misses (over *every* possible eviction
//! decision, under the simulator's always-fill semantics) is computable
//! by memoized DFS over (position, resident-set) states. That minimum
//! bounds the offline-ideal policies from below, and on demand-only
//! streams Belady-OPT must *match* it exactly — as must Demand-MIN,
//! which degenerates to OPT without prefetches.

use std::collections::HashMap;

use rand::{Rng, SeedableRng, StdRng};
use ripple_program::{Addr, LineAddr};
use ripple_sim::{
    build_ideal_policy, Cache, CacheGeometry, FutureIndex, LineId, PolicyKind, ReplacementPolicy,
    StreamRecord,
};

use crate::shrink::shrink_list;

/// One request: (line index, is_prefetch).
pub type Req = (u32, bool);

/// Exhaustive minimum demand-miss count for `stream` on `geom`, searching
/// every victim choice. Semantics mirror the production cache: every
/// access to an absent line fills it (prefetches included), choosing some
/// victim when the set is full; only demand misses count.
pub fn exhaustive_min_demand_misses(geom: CacheGeometry, stream: &[Req]) -> u64 {
    let num_sets = geom.num_sets() as u32;
    let assoc = usize::from(geom.assoc);
    // State: per-set sorted resident lines (way placement is irrelevant
    // to future decisions, so sets are canonical).
    type State = Vec<Vec<u32>>;
    fn dfs(
        pos: usize,
        state: &State,
        stream: &[Req],
        num_sets: u32,
        assoc: usize,
        memo: &mut HashMap<(usize, State), u64>,
    ) -> u64 {
        if pos == stream.len() {
            return 0;
        }
        if let Some(&m) = memo.get(&(pos, state.clone())) {
            return m;
        }
        let (line, is_prefetch) = stream[pos];
        let set = (line % num_sets) as usize;
        let result = if state[set].contains(&line) {
            dfs(pos + 1, state, stream, num_sets, assoc, memo)
        } else {
            let cost = u64::from(!is_prefetch);
            let mut best = u64::MAX;
            if state[set].len() < assoc {
                let mut next = state.clone();
                next[set].push(line);
                next[set].sort_unstable();
                best = dfs(pos + 1, &next, stream, num_sets, assoc, memo);
            } else {
                for victim_idx in 0..state[set].len() {
                    let mut next = state.clone();
                    next[set][victim_idx] = line;
                    next[set].sort_unstable();
                    best = best.min(dfs(pos + 1, &next, stream, num_sets, assoc, memo));
                }
            }
            cost + best
        };
        memo.insert((pos, state.clone()), result);
        result
    }
    let state: State = vec![Vec::new(); num_sets as usize];
    let mut memo = HashMap::new();
    dfs(0, &state, stream, num_sets, assoc, &mut memo)
}

/// Demand misses of one offline-ideal policy replayed over `stream`.
pub fn ideal_demand_misses(geom: CacheGeometry, kind: PolicyKind, stream: &[Req]) -> u64 {
    let records: Vec<StreamRecord> = stream
        .iter()
        .map(|&(line, is_prefetch)| StreamRecord {
            line: LineAddr::new(u64::from(line)),
            is_prefetch,
        })
        .collect();
    let future = FutureIndex::build(&records);
    let policy = build_ideal_policy(kind, geom, future);
    let mut cache: Cache<dyn ReplacementPolicy> = Cache::new(geom, policy);
    let mut misses = 0u64;
    for (i, &(line, is_prefetch)) in stream.iter().enumerate() {
        let out = cache.access(LineId::new(line), Addr::new(0), is_prefetch, i as u64);
        if !out.is_hit() && !is_prefetch {
            misses += 1;
        }
    }
    misses
}

/// Geometries tiny enough for exhaustive search.
const GEOMETRIES: [(u64, u16); 3] = [(128, 2), (256, 2), (192, 3)];

fn gen_case(seed: u64) -> (CacheGeometry, Vec<Req>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (size, assoc) = GEOMETRIES[rng.gen_range(0..GEOMETRIES.len())];
    let geom = CacheGeometry::new(size, assoc);
    let universe = rng.gen_range(4u32..=6);
    let len = rng.gen_range(8usize..=18);
    // Half the cases are demand-only (tight equality oracle for OPT), the
    // rest mix in prefetches (Demand-MIN's domain).
    let prefetch_prob = if rng.gen_bool(0.5) { 0.0 } else { 0.3 };
    let stream = (0..len)
        .map(|_| (rng.gen_range(0..universe), rng.gen_bool(prefetch_prob)))
        .collect();
    (geom, stream)
}

/// The divergence test applied to one (geometry, stream) pair.
fn violation(geom: CacheGeometry, stream: &[Req]) -> Option<String> {
    let min = exhaustive_min_demand_misses(geom, stream);
    let opt = ideal_demand_misses(geom, PolicyKind::OPT, stream);
    let dm = ideal_demand_misses(geom, PolicyKind::DEMAND_MIN, stream);
    if opt < min {
        return Some(format!(
            "opt {opt} demand misses beats the exhaustive minimum {min}: the search or the cache is wrong"
        ));
    }
    if dm < min {
        return Some(format!(
            "demand-min {dm} demand misses beats the exhaustive minimum {min}"
        ));
    }
    let demand_only = stream.iter().all(|&(_, p)| !p);
    if demand_only && opt != min {
        return Some(format!(
            "demand-only stream: opt {opt} != exhaustive minimum {min}"
        ));
    }
    if demand_only && dm != min {
        return Some(format!(
            "demand-only stream: demand-min {dm} != exhaustive minimum {min}"
        ));
    }
    // With prefetches in the stream Demand-MIN is the demand-optimal
    // policy, so it must also not lose to OPT.
    if dm > opt {
        return Some(format!(
            "demand-min {dm} demand misses exceeds opt {opt} on the same stream"
        ));
    }
    None
}

/// Checks one generated case; shrinks the request stream on failure.
pub fn check(seed: u64) -> Result<(), (String, String)> {
    let (geom, stream) = gen_case(seed);
    let Some(message) = violation(geom, &stream) else {
        return Ok(());
    };
    let minimal = shrink_list(&stream, |candidate| violation(geom, candidate).is_some());
    let final_message = violation(geom, &minimal).expect("shrunk case still fails");
    let repro = format!(
        "geometry {} B / {}-way ({} sets), stream of {} (shrunk from {}):\n  {:?}\n  {}",
        geom.size_bytes,
        geom.assoc,
        geom.num_sets(),
        minimal.len(),
        stream.len(),
        minimal,
        final_message,
    );
    Err((message, repro))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_matches_known_belady_example() {
        // 1 set x 2 ways, demand stream A B A C A: Belady evicts B at C's
        // fill, so misses = A, B, C = 3.
        let geom = CacheGeometry::new(128, 2);
        let stream: Vec<Req> = [0u32, 1, 0, 2, 0].iter().map(|&l| (l, false)).collect();
        assert_eq!(exhaustive_min_demand_misses(geom, &stream), 3);
    }

    #[test]
    fn prefetch_misses_are_free() {
        // Same stream, but B arrives as a prefetch: only A and C count.
        let geom = CacheGeometry::new(128, 2);
        let stream: Vec<Req> = vec![(0, false), (1, true), (0, false), (2, false), (0, false)];
        assert_eq!(exhaustive_min_demand_misses(geom, &stream), 2);
    }

    #[test]
    fn ideal_policies_meet_the_bound_on_many_seeds() {
        for seed in 0..64 {
            if let Err((msg, _)) = check(seed) {
                panic!("seed {seed}: {msg}");
            }
        }
    }
}
