//! Dimension 1: brute-force associative cache model.
//!
//! Drives the production [`Cache`] and an independent, deliberately naive
//! model through the same random operation stream (demand/prefetch
//! accesses, invalidations, demotions) and compares the outcome of every
//! operation *and* the full resident tag state after it. The model keeps
//! one `Option<Slot>` per way and scans everything — no interning, no
//! scratch buffers, no trait dispatch — so a divergence localizes a bug
//! in the production fast path (or in the published algorithm's
//! transcription, cf. CacheQuery's query-based policy checking).
//!
//! Which registered policies the dimension mirrors is tracked explicitly:
//! [`model_covered`] lists the mirrored ones (LRU, SRRIP, DRRIP, TRRIP),
//! [`model_exemptions`] documents why the rest are checked elsewhere, and
//! a guard test fails whenever a newly registered policy appears in
//! neither list.

use std::sync::Arc;

use rand::{Rng, SeedableRng, StdRng};
use ripple_program::LineAddr;
use ripple_sim::{
    AccessOutcome, Cache, CacheGeometry, DrripPolicy, LineId, LruPolicy, PolicyKind,
    ReplacementPolicy, SrripPolicy, Temperature, TemperatureMap, TrripPolicy,
};

use crate::shrink::shrink_list;

/// Which replacement policy a model case exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelPolicy {
    /// True LRU (stamp clock).
    Lru,
    /// Static RRIP.
    Srrip,
    /// Dynamic RRIP with set dueling.
    Drrip,
    /// Temperature-steered RRIP with set dueling.
    Trrip,
}

impl ModelPolicy {
    fn name(self) -> &'static str {
        match self {
            ModelPolicy::Lru => "lru",
            ModelPolicy::Srrip => "srrip",
            ModelPolicy::Drrip => "drrip",
            ModelPolicy::Trrip => "trrip",
        }
    }
}

/// Registered policies this dimension mirrors brute-force.
pub fn model_covered() -> Vec<PolicyKind> {
    vec![
        PolicyKind::LRU,
        PolicyKind::SRRIP,
        PolicyKind::DRRIP,
        PolicyKind::TRRIP,
    ]
}

/// Registered policies deliberately *not* mirrored here, each with the
/// reason and the dimension that covers it instead. The guard test below
/// fails if a policy is registered but appears in neither list — adding a
/// policy forces an explicit coverage decision.
pub fn model_exemptions() -> Vec<(PolicyKind, &'static str)> {
    vec![
        (
            PolicyKind::TREE_PLRU,
            "tree-bit state has no simple independent mirror; covered by the \
             equivalence and threads dimensions",
        ),
        (
            PolicyKind::RANDOM,
            "victim choice is a seeded RNG stream, mirroring it would copy the \
             implementation; covered by the equivalence and threads dimensions",
        ),
        (
            PolicyKind::GHRP,
            "predictor tables are the implementation; covered by the equivalence \
             and threads dimensions",
        ),
        (
            PolicyKind::HAWKEYE,
            "OPTgen sampler state is the implementation; covered by the \
             equivalence and threads dimensions",
        ),
        (
            PolicyKind::HARMONY,
            "Demand-MIN-trained Hawkeye variant, same reasoning as hawkeye; \
             covered by the equivalence and threads dimensions",
        ),
        (
            PolicyKind::OPT,
            "offline ideal; pinned exactly by the belady dimension's exhaustive \
             search",
        ),
        (
            PolicyKind::DEMAND_MIN,
            "offline ideal; lower-bounded by the belady dimension's exhaustive \
             search",
        ),
    ]
}

/// Which model implementation to run — the faithful one, or a
/// deliberately broken one used by self-tests to prove the checker
/// detects and shrinks injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFlavor {
    /// The obviously-correct model.
    Faithful,
    /// LRU tie-break inverted (highest way instead of lowest): a fault
    /// only reachable after two demotions tie at stamp zero.
    BrokenLruTieBreak,
}

/// One cache operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Demand or prefetch access.
    Access {
        /// Raw line index (identity interning).
        line: u32,
        /// Whether the access is a prefetch.
        prefetch: bool,
    },
    /// Invalidate the line if present.
    Invalidate(u32),
    /// Demote the line to the bottom of the replacement order.
    Demote(u32),
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    line: u32,
    prefetched: bool,
    stamp: u64,
    rrpv: u8,
}

const RRPV_MAX: u8 = 3;
const RRPV_LONG: u8 = 2;
const PSEL_MAX: i16 = 511;
const PSEL_MIN: i16 = -512;

/// The brute-force model: per-way `Option<Slot>` plus the policy's global
/// counters, every decision recomputed by direct scan.
struct ModelCache {
    num_sets: u32,
    policy: ModelPolicy,
    flavor: ModelFlavor,
    sets: Vec<Vec<Option<Slot>>>,
    clock: u64,
    psel: i16,
    brrip_ctr: u32,
    temps: Arc<TemperatureMap>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModelOutcome {
    Hit,
    Miss { evicted: Option<u32> },
    Present(bool),
}

impl ModelCache {
    fn new(
        geom: CacheGeometry,
        policy: ModelPolicy,
        flavor: ModelFlavor,
        temps: Arc<TemperatureMap>,
    ) -> Self {
        ModelCache {
            num_sets: geom.num_sets() as u32,
            policy,
            flavor,
            sets: vec![vec![None; usize::from(geom.assoc)]; geom.num_sets() as usize],
            clock: 0,
            psel: 0,
            brrip_ctr: 0,
            temps,
        }
    }

    fn set_of(&self, line: u32) -> usize {
        (line % self.num_sets) as usize
    }

    fn temp_of(&self, line: u32) -> Temperature {
        self.temps.of_line(LineAddr::new(u64::from(line)))
    }

    /// Mirror of the (fixed) set-dueling leader classification shared by
    /// DRRIP and TRRIP: symmetric single-leader dueling at or below 32
    /// sets, complement-select above.
    fn duel_role(&self, set: u32) -> i16 {
        // Returns the PSEL delta a miss in this set trains: +1 for SRRIP
        // leaders, -1 for BRRIP leaders, 0 for followers.
        if self.num_sets <= 32 {
            if self.num_sets < 2 {
                return 0;
            }
            if set == 0 {
                return 1;
            }
            if set == self.num_sets - 1 {
                return -1;
            }
            return 0;
        }
        let sel = set & 0x1f;
        let region = (set >> 5) & 0x1f;
        if sel == region {
            1
        } else if sel == (!region & 0x1f) {
            -1
        } else {
            0
        }
    }

    /// Whether a fill/hit in `set` runs the challenger side (BRRIP for
    /// DRRIP, temperature hints for TRRIP).
    fn duel_uses_challenger(&self, set: u32) -> bool {
        match self.duel_role(set) {
            1 => false,
            -1 => true,
            _ => self.psel > 0,
        }
    }

    fn fill_metadata(&mut self, set: u32, line: u32, prefetch: bool) -> Slot {
        let rrpv = match self.policy {
            ModelPolicy::Lru => 0,
            ModelPolicy::Srrip => RRPV_LONG,
            ModelPolicy::Drrip => {
                let delta = self.duel_role(set);
                self.psel = (self.psel + delta).clamp(PSEL_MIN, PSEL_MAX);
                if self.duel_uses_challenger(set) {
                    self.brrip_ctr = self.brrip_ctr.wrapping_add(1);
                    if self.brrip_ctr.is_multiple_of(32) {
                        RRPV_LONG
                    } else {
                        RRPV_MAX
                    }
                } else {
                    RRPV_LONG
                }
            }
            ModelPolicy::Trrip => {
                let delta = self.duel_role(set);
                self.psel = (self.psel + delta).clamp(PSEL_MIN, PSEL_MAX);
                if self.duel_uses_challenger(set) {
                    match self.temp_of(line) {
                        Temperature::Hot => 0,
                        Temperature::Warm => RRPV_LONG,
                        Temperature::Cold => RRPV_MAX,
                    }
                } else {
                    RRPV_LONG
                }
            }
        };
        self.clock += 1;
        Slot {
            line,
            prefetched: prefetch,
            stamp: self.clock,
            rrpv,
        }
    }

    fn victim_way(&mut self, set: usize) -> usize {
        match self.policy {
            ModelPolicy::Lru => {
                let stamps: Vec<u64> = self.sets[set]
                    .iter()
                    .map(|s| s.expect("victim on full set").stamp)
                    .collect();
                let best = *stamps.iter().min().expect("non-empty set");
                match self.flavor {
                    ModelFlavor::Faithful => {
                        stamps.iter().position(|&s| s == best).expect("min exists")
                    }
                    ModelFlavor::BrokenLruTieBreak => {
                        stamps.len() - 1 - stamps.iter().rev().position(|&s| s == best).unwrap()
                    }
                }
            }
            ModelPolicy::Srrip | ModelPolicy::Drrip | ModelPolicy::Trrip => loop {
                if let Some(w) = self.sets[set]
                    .iter()
                    .position(|s| s.expect("victim on full set").rrpv >= RRPV_MAX)
                {
                    break w;
                }
                for s in self.sets[set].iter_mut() {
                    s.as_mut().expect("full set").rrpv += 1;
                }
            },
        }
    }

    fn step(&mut self, op: Op) -> ModelOutcome {
        match op {
            Op::Access { line, prefetch } => {
                let set = self.set_of(line);
                if let Some(w) = self.sets[set]
                    .iter()
                    .position(|s| s.is_some_and(|s| s.line == line))
                {
                    // Computed before the slot borrow: TRRIP caps hit
                    // promotion of cold lines on the hint side.
                    let capped = self.policy == ModelPolicy::Trrip
                        && self.duel_uses_challenger(set as u32)
                        && self.temp_of(line) == Temperature::Cold;
                    let slot = self.sets[set][w].as_mut().expect("hit slot");
                    if !prefetch {
                        slot.prefetched = false;
                    }
                    match self.policy {
                        ModelPolicy::Lru => {
                            self.clock += 1;
                            slot.stamp = self.clock;
                        }
                        ModelPolicy::Srrip | ModelPolicy::Drrip => slot.rrpv = 0,
                        ModelPolicy::Trrip => {
                            slot.rrpv = if capped { RRPV_LONG } else { 0 };
                        }
                    }
                    return ModelOutcome::Hit;
                }
                if let Some(w) = self.sets[set].iter().position(|s| s.is_none()) {
                    let slot = self.fill_metadata(set as u32, line, prefetch);
                    self.sets[set][w] = Some(slot);
                    return ModelOutcome::Miss { evicted: None };
                }
                let w = self.victim_way(set);
                let evicted = self.sets[set][w].expect("full set").line;
                let slot = self.fill_metadata(set as u32, line, prefetch);
                self.sets[set][w] = Some(slot);
                ModelOutcome::Miss {
                    evicted: Some(evicted),
                }
            }
            Op::Invalidate(line) => {
                let set = self.set_of(line);
                match self.sets[set]
                    .iter()
                    .position(|s| s.is_some_and(|s| s.line == line))
                {
                    Some(w) => {
                        self.sets[set][w] = None;
                        ModelOutcome::Present(true)
                    }
                    None => ModelOutcome::Present(false),
                }
            }
            Op::Demote(line) => {
                let set = self.set_of(line);
                match self.sets[set]
                    .iter()
                    .position(|s| s.is_some_and(|s| s.line == line))
                {
                    Some(w) => {
                        let slot = self.sets[set][w].as_mut().expect("demote slot");
                        match self.policy {
                            ModelPolicy::Lru => slot.stamp = 0,
                            ModelPolicy::Srrip | ModelPolicy::Drrip | ModelPolicy::Trrip => {
                                slot.rrpv = RRPV_MAX
                            }
                        }
                        ModelOutcome::Present(true)
                    }
                    None => ModelOutcome::Present(false),
                }
            }
        }
    }

    fn resident(&self) -> Vec<(u32, usize, LineId, bool)> {
        let mut out = Vec::new();
        for (set, ways) in self.sets.iter().enumerate() {
            for (way, slot) in ways.iter().enumerate() {
                if let Some(s) = slot {
                    out.push((set as u32, way, LineId::new(s.line), s.prefetched));
                }
            }
        }
        out
    }
}

fn production_policy(
    policy: ModelPolicy,
    geom: CacheGeometry,
    temps: &Arc<TemperatureMap>,
) -> Box<dyn ReplacementPolicy> {
    match policy {
        ModelPolicy::Lru => Box::new(LruPolicy::new(geom)),
        ModelPolicy::Srrip => Box::new(SrripPolicy::new(geom)),
        ModelPolicy::Drrip => Box::new(DrripPolicy::new(geom)),
        ModelPolicy::Trrip => Box::new(TrripPolicy::new(geom, Some(temps.clone()))),
    }
}

/// Runs `ops` through the production cache and the model; returns the
/// first divergence as a message, or `None` when they agree throughout.
pub fn run_ops(
    geom: CacheGeometry,
    policy: ModelPolicy,
    flavor: ModelFlavor,
    temps: &Arc<TemperatureMap>,
    ops: &[Op],
) -> Option<String> {
    let mut cache: Cache<dyn ReplacementPolicy> =
        Cache::new(geom, production_policy(policy, geom, temps));
    let mut model = ModelCache::new(geom, policy, flavor, temps.clone());
    for (i, &op) in ops.iter().enumerate() {
        let got = match op {
            Op::Access { line, prefetch } => {
                // The fetch PC is the line's base address, so PC-keyed
                // policies (TRRIP's temperature lookup) see the same line
                // the model does.
                let pc = LineAddr::new(u64::from(line)).base_addr();
                match cache.access(LineId::new(line), pc, prefetch, i as u64) {
                    AccessOutcome::Hit => ModelOutcome::Hit,
                    AccessOutcome::Miss { evicted } => ModelOutcome::Miss {
                        evicted: evicted.map(LineId::get),
                    },
                }
            }
            Op::Invalidate(line) => ModelOutcome::Present(cache.invalidate(LineId::new(line))),
            Op::Demote(line) => ModelOutcome::Present(cache.demote(LineId::new(line))),
        };
        let want = model.step(op);
        if got != want {
            return Some(format!(
                "op {i} {op:?}: production {got:?} != model {want:?} ({})",
                policy.name()
            ));
        }
        let (got_state, want_state) = (cache.resident_lines(), model.resident());
        if got_state != want_state {
            return Some(format!(
                "op {i} {op:?}: tag state diverged ({}):\n  production {got_state:?}\n  model      {want_state:?}",
                policy.name()
            ));
        }
    }
    None
}

/// Geometries small enough to conflict constantly yet covering 1..4 sets
/// and 2..4 ways.
const GEOMETRIES: [(u64, u16); 5] = [(128, 2), (256, 2), (256, 4), (512, 4), (512, 2)];

fn gen_case(seed: u64) -> (CacheGeometry, ModelPolicy, Arc<TemperatureMap>, Vec<Op>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (size, assoc) = GEOMETRIES[rng.gen_range(0..GEOMETRIES.len())];
    let geom = CacheGeometry::new(size, assoc);
    let policy = match rng.gen_range(0u32..4) {
        0 => ModelPolicy::Lru,
        1 => ModelPolicy::Srrip,
        2 => ModelPolicy::Drrip,
        _ => ModelPolicy::Trrip,
    };
    // Universe slightly larger than the cache so misses and evictions are
    // constant; small enough that reuse (hits, demote/invalidate of
    // resident lines) is common.
    let universe = geom.num_lines() as u32 + rng.gen_range(1..=geom.num_lines() as u32);
    let n = rng.gen_range(60usize..=240);
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let line = rng.gen_range(0..universe);
        ops.push(match rng.gen_range(0u32..100) {
            0..=69 => Op::Access {
                line,
                prefetch: rng.gen_bool(0.25),
            },
            70..=84 => Op::Invalidate(line),
            _ => Op::Demote(line),
        });
    }
    // A random temperature profile over the line universe (TRRIP cases
    // exercise all three classes plus the unprofiled-warm default).
    let mut temps = TemperatureMap::new();
    if policy == ModelPolicy::Trrip {
        for line in 0..universe {
            match rng.gen_range(0u32..4) {
                0 => temps.set(LineAddr::new(u64::from(line)), Temperature::Hot),
                1 => temps.set(LineAddr::new(u64::from(line)), Temperature::Cold),
                2 => temps.set(LineAddr::new(u64::from(line)), Temperature::Warm),
                _ => {} // unprofiled: defaults to warm
            }
        }
    }
    (geom, policy, Arc::new(temps), ops)
}

/// Checks one generated case; on divergence, shrinks the op stream to a
/// locally minimal failing repro.
pub fn check(seed: u64) -> Result<(), (String, String)> {
    check_with_flavor(seed, ModelFlavor::Faithful)
}

/// [`check`] against a chosen model flavor (self-tests inject
/// [`ModelFlavor::BrokenLruTieBreak`] to prove faults are caught).
pub fn check_with_flavor(seed: u64, flavor: ModelFlavor) -> Result<(), (String, String)> {
    let (geom, policy, temps, ops) = gen_case(seed);
    let Some(message) = run_ops(geom, policy, flavor, &temps, &ops) else {
        return Ok(());
    };
    let minimal = shrink_list(&ops, |candidate| {
        run_ops(geom, policy, flavor, &temps, candidate).is_some()
    });
    let final_message =
        run_ops(geom, policy, flavor, &temps, &minimal).expect("shrunk case still fails");
    let repro = format!(
        "geometry {} B / {}-way ({} sets), policy {}, {} profiled lines, {} ops (shrunk from {}):\n  {:?}\n  {}",
        geom.size_bytes,
        geom.assoc,
        geom.num_sets(),
        policy.name(),
        temps.len(),
        minimal.len(),
        ops.len(),
        minimal,
        final_message,
    );
    Err((message, repro))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faithful_model_agrees_on_many_seeds() {
        for seed in 0..64 {
            if let Err((msg, _)) = check(seed) {
                panic!("seed {seed}: {msg}");
            }
        }
    }

    #[test]
    fn trrip_mirror_agrees_on_many_seeds() {
        // Force the TRRIP mirror (instead of the random policy pick) so
        // its hint-insertion, capped-promotion and dueling paths are
        // fuzzed densely, with a fresh random temperature map per seed.
        for seed in 0..48u64 {
            let (geom, _, _, ops) = gen_case(seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x7272_6970);
            let mut temps = TemperatureMap::new();
            for line in 0..geom.num_lines() as u32 * 2 {
                match rng.gen_range(0u32..4) {
                    0 => temps.set(LineAddr::new(u64::from(line)), Temperature::Hot),
                    1 => temps.set(LineAddr::new(u64::from(line)), Temperature::Cold),
                    2 => temps.set(LineAddr::new(u64::from(line)), Temperature::Warm),
                    _ => {}
                }
            }
            if let Some(msg) = run_ops(
                geom,
                ModelPolicy::Trrip,
                ModelFlavor::Faithful,
                &Arc::new(temps),
                &ops,
            ) {
                panic!("seed {seed}: {msg}");
            }
        }
    }

    #[test]
    fn every_registered_policy_is_covered_or_exempted() {
        // The coverage guard: registering a policy without deciding how
        // the differential checker covers it is a test failure.
        use ripple_sim::PolicyRegistry;
        let covered = model_covered();
        let exempted = model_exemptions();
        for id in PolicyRegistry::global().all() {
            let in_covered = covered.contains(&id);
            let in_exempt = exempted.iter().any(|&(p, _)| p == id);
            assert!(
                in_covered || in_exempt,
                "policy {id:?} is registered but neither mirrored by the model-cache \
                 dimension nor explicitly exempted; add a ModelPolicy mirror or an \
                 exemption with a reason"
            );
            assert!(
                !(in_covered && in_exempt),
                "policy {id:?} is both covered and exempted"
            );
        }
        assert_eq!(
            covered.len() + exempted.len(),
            PolicyRegistry::global().len()
        );
        for (_, reason) in &exempted {
            assert!(!reason.is_empty());
        }
    }

    #[test]
    fn broken_model_is_caught_and_shrunk() {
        // The inverted LRU tie-break only fires after two demotions tie at
        // stamp 0 in a full set — the fuzzer must find it and produce a
        // small repro.
        let mut caught = 0;
        let mut min_len = usize::MAX;
        for seed in 0..400 {
            if let Err((_, repro)) = check_with_flavor(seed, ModelFlavor::BrokenLruTieBreak) {
                caught += 1;
                let ops = repro.matches("Demote").count() + repro.matches("Access").count();
                min_len = min_len.min(ops);
            }
        }
        assert!(caught > 0, "injected fault never detected");
        // A minimal repro needs ~2 demotes + ~3 fills + 1 evicting access;
        // anything under a dozen ops proves shrinking works.
        assert!(min_len <= 12, "shrunk repro still has {min_len} ops");
    }
}
