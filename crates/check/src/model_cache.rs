//! Dimension 1: brute-force associative cache model.
//!
//! Drives the production [`Cache`] and an independent, deliberately naive
//! model through the same random operation stream (demand/prefetch
//! accesses, invalidations, demotions) and compares the outcome of every
//! operation *and* the full resident tag state after it. The model keeps
//! one `Option<Slot>` per way and scans everything — no interning, no
//! scratch buffers, no trait dispatch — so a divergence localizes a bug
//! in the production fast path (or in the published algorithm's
//! transcription, cf. CacheQuery's query-based policy checking).

use rand::{Rng, SeedableRng, StdRng};
use ripple_program::Addr;
use ripple_sim::{
    AccessOutcome, Cache, CacheGeometry, DrripPolicy, LineId, LruPolicy, ReplacementPolicy,
    SrripPolicy,
};

use crate::shrink::shrink_list;

/// Which replacement policy a model case exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelPolicy {
    /// True LRU (stamp clock).
    Lru,
    /// Static RRIP.
    Srrip,
    /// Dynamic RRIP with set dueling.
    Drrip,
}

impl ModelPolicy {
    fn name(self) -> &'static str {
        match self {
            ModelPolicy::Lru => "lru",
            ModelPolicy::Srrip => "srrip",
            ModelPolicy::Drrip => "drrip",
        }
    }
}

/// Which model implementation to run — the faithful one, or a
/// deliberately broken one used by self-tests to prove the checker
/// detects and shrinks injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFlavor {
    /// The obviously-correct model.
    Faithful,
    /// LRU tie-break inverted (highest way instead of lowest): a fault
    /// only reachable after two demotions tie at stamp zero.
    BrokenLruTieBreak,
}

/// One cache operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Demand or prefetch access.
    Access {
        /// Raw line index (identity interning).
        line: u32,
        /// Whether the access is a prefetch.
        prefetch: bool,
    },
    /// Invalidate the line if present.
    Invalidate(u32),
    /// Demote the line to the bottom of the replacement order.
    Demote(u32),
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    line: u32,
    prefetched: bool,
    stamp: u64,
    rrpv: u8,
}

const RRPV_MAX: u8 = 3;
const RRPV_LONG: u8 = 2;
const PSEL_MAX: i16 = 511;
const PSEL_MIN: i16 = -512;

/// The brute-force model: per-way `Option<Slot>` plus the policy's global
/// counters, every decision recomputed by direct scan.
struct ModelCache {
    num_sets: u32,
    policy: ModelPolicy,
    flavor: ModelFlavor,
    sets: Vec<Vec<Option<Slot>>>,
    clock: u64,
    psel: i16,
    brrip_ctr: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModelOutcome {
    Hit,
    Miss { evicted: Option<u32> },
    Present(bool),
}

impl ModelCache {
    fn new(geom: CacheGeometry, policy: ModelPolicy, flavor: ModelFlavor) -> Self {
        ModelCache {
            num_sets: geom.num_sets() as u32,
            policy,
            flavor,
            sets: vec![vec![None; usize::from(geom.assoc)]; geom.num_sets() as usize],
            clock: 0,
            psel: 0,
            brrip_ctr: 0,
        }
    }

    fn set_of(&self, line: u32) -> usize {
        (line % self.num_sets) as usize
    }

    /// Mirror of the (fixed) DRRIP leader classification: symmetric
    /// single-leader dueling at or below 32 sets, complement-select above.
    fn drrip_role(&self, set: u32) -> i16 {
        // Returns the PSEL delta a miss in this set trains: +1 for SRRIP
        // leaders, -1 for BRRIP leaders, 0 for followers.
        if self.num_sets <= 32 {
            if self.num_sets < 2 {
                return 0;
            }
            if set == 0 {
                return 1;
            }
            if set == self.num_sets - 1 {
                return -1;
            }
            return 0;
        }
        let sel = set & 0x1f;
        let region = (set >> 5) & 0x1f;
        if sel == region {
            1
        } else if sel == (!region & 0x1f) {
            -1
        } else {
            0
        }
    }

    fn drrip_uses_brrip(&self, set: u32) -> bool {
        match self.drrip_role(set) {
            1 => false,
            -1 => true,
            _ => self.psel > 0,
        }
    }

    fn fill_metadata(&mut self, set: u32, line: u32, prefetch: bool) -> Slot {
        let rrpv = match self.policy {
            ModelPolicy::Lru => 0,
            ModelPolicy::Srrip => RRPV_LONG,
            ModelPolicy::Drrip => {
                let delta = self.drrip_role(set);
                self.psel = (self.psel + delta).clamp(PSEL_MIN, PSEL_MAX);
                if self.drrip_uses_brrip(set) {
                    self.brrip_ctr = self.brrip_ctr.wrapping_add(1);
                    if self.brrip_ctr.is_multiple_of(32) {
                        RRPV_LONG
                    } else {
                        RRPV_MAX
                    }
                } else {
                    RRPV_LONG
                }
            }
        };
        self.clock += 1;
        Slot {
            line,
            prefetched: prefetch,
            stamp: self.clock,
            rrpv,
        }
    }

    fn victim_way(&mut self, set: usize) -> usize {
        match self.policy {
            ModelPolicy::Lru => {
                let stamps: Vec<u64> = self.sets[set]
                    .iter()
                    .map(|s| s.expect("victim on full set").stamp)
                    .collect();
                let best = *stamps.iter().min().expect("non-empty set");
                match self.flavor {
                    ModelFlavor::Faithful => {
                        stamps.iter().position(|&s| s == best).expect("min exists")
                    }
                    ModelFlavor::BrokenLruTieBreak => {
                        stamps.len() - 1 - stamps.iter().rev().position(|&s| s == best).unwrap()
                    }
                }
            }
            ModelPolicy::Srrip | ModelPolicy::Drrip => loop {
                if let Some(w) = self.sets[set]
                    .iter()
                    .position(|s| s.expect("victim on full set").rrpv >= RRPV_MAX)
                {
                    break w;
                }
                for s in self.sets[set].iter_mut() {
                    s.as_mut().expect("full set").rrpv += 1;
                }
            },
        }
    }

    fn step(&mut self, op: Op) -> ModelOutcome {
        match op {
            Op::Access { line, prefetch } => {
                let set = self.set_of(line);
                if let Some(w) = self.sets[set]
                    .iter()
                    .position(|s| s.is_some_and(|s| s.line == line))
                {
                    let slot = self.sets[set][w].as_mut().expect("hit slot");
                    if !prefetch {
                        slot.prefetched = false;
                    }
                    match self.policy {
                        ModelPolicy::Lru => {
                            self.clock += 1;
                            slot.stamp = self.clock;
                        }
                        ModelPolicy::Srrip | ModelPolicy::Drrip => slot.rrpv = 0,
                    }
                    return ModelOutcome::Hit;
                }
                if let Some(w) = self.sets[set].iter().position(|s| s.is_none()) {
                    let slot = self.fill_metadata(set as u32, line, prefetch);
                    self.sets[set][w] = Some(slot);
                    return ModelOutcome::Miss { evicted: None };
                }
                let w = self.victim_way(set);
                let evicted = self.sets[set][w].expect("full set").line;
                let slot = self.fill_metadata(set as u32, line, prefetch);
                self.sets[set][w] = Some(slot);
                ModelOutcome::Miss {
                    evicted: Some(evicted),
                }
            }
            Op::Invalidate(line) => {
                let set = self.set_of(line);
                match self.sets[set]
                    .iter()
                    .position(|s| s.is_some_and(|s| s.line == line))
                {
                    Some(w) => {
                        self.sets[set][w] = None;
                        ModelOutcome::Present(true)
                    }
                    None => ModelOutcome::Present(false),
                }
            }
            Op::Demote(line) => {
                let set = self.set_of(line);
                match self.sets[set]
                    .iter()
                    .position(|s| s.is_some_and(|s| s.line == line))
                {
                    Some(w) => {
                        let slot = self.sets[set][w].as_mut().expect("demote slot");
                        match self.policy {
                            ModelPolicy::Lru => slot.stamp = 0,
                            ModelPolicy::Srrip | ModelPolicy::Drrip => slot.rrpv = RRPV_MAX,
                        }
                        ModelOutcome::Present(true)
                    }
                    None => ModelOutcome::Present(false),
                }
            }
        }
    }

    fn resident(&self) -> Vec<(u32, usize, LineId, bool)> {
        let mut out = Vec::new();
        for (set, ways) in self.sets.iter().enumerate() {
            for (way, slot) in ways.iter().enumerate() {
                if let Some(s) = slot {
                    out.push((set as u32, way, LineId::new(s.line), s.prefetched));
                }
            }
        }
        out
    }
}

fn production_policy(policy: ModelPolicy, geom: CacheGeometry) -> Box<dyn ReplacementPolicy> {
    match policy {
        ModelPolicy::Lru => Box::new(LruPolicy::new(geom)),
        ModelPolicy::Srrip => Box::new(SrripPolicy::new(geom)),
        ModelPolicy::Drrip => Box::new(DrripPolicy::new(geom)),
    }
}

/// Runs `ops` through the production cache and the model; returns the
/// first divergence as a message, or `None` when they agree throughout.
pub fn run_ops(
    geom: CacheGeometry,
    policy: ModelPolicy,
    flavor: ModelFlavor,
    ops: &[Op],
) -> Option<String> {
    let mut cache: Cache<dyn ReplacementPolicy> = Cache::new(geom, production_policy(policy, geom));
    let mut model = ModelCache::new(geom, policy, flavor);
    for (i, &op) in ops.iter().enumerate() {
        let got = match op {
            Op::Access { line, prefetch } => {
                match cache.access(LineId::new(line), Addr::new(0), prefetch, i as u64) {
                    AccessOutcome::Hit => ModelOutcome::Hit,
                    AccessOutcome::Miss { evicted } => ModelOutcome::Miss {
                        evicted: evicted.map(LineId::get),
                    },
                }
            }
            Op::Invalidate(line) => ModelOutcome::Present(cache.invalidate(LineId::new(line))),
            Op::Demote(line) => ModelOutcome::Present(cache.demote(LineId::new(line))),
        };
        let want = model.step(op);
        if got != want {
            return Some(format!(
                "op {i} {op:?}: production {got:?} != model {want:?} ({})",
                policy.name()
            ));
        }
        let (got_state, want_state) = (cache.resident_lines(), model.resident());
        if got_state != want_state {
            return Some(format!(
                "op {i} {op:?}: tag state diverged ({}):\n  production {got_state:?}\n  model      {want_state:?}",
                policy.name()
            ));
        }
    }
    None
}

/// Geometries small enough to conflict constantly yet covering 1..4 sets
/// and 2..4 ways.
const GEOMETRIES: [(u64, u16); 5] = [(128, 2), (256, 2), (256, 4), (512, 4), (512, 2)];

fn gen_case(seed: u64) -> (CacheGeometry, ModelPolicy, Vec<Op>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (size, assoc) = GEOMETRIES[rng.gen_range(0..GEOMETRIES.len())];
    let geom = CacheGeometry::new(size, assoc);
    let policy = match rng.gen_range(0u32..3) {
        0 => ModelPolicy::Lru,
        1 => ModelPolicy::Srrip,
        _ => ModelPolicy::Drrip,
    };
    // Universe slightly larger than the cache so misses and evictions are
    // constant; small enough that reuse (hits, demote/invalidate of
    // resident lines) is common.
    let universe = geom.num_lines() as u32 + rng.gen_range(1..=geom.num_lines() as u32);
    let n = rng.gen_range(60usize..=240);
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let line = rng.gen_range(0..universe);
        ops.push(match rng.gen_range(0u32..100) {
            0..=69 => Op::Access {
                line,
                prefetch: rng.gen_bool(0.25),
            },
            70..=84 => Op::Invalidate(line),
            _ => Op::Demote(line),
        });
    }
    (geom, policy, ops)
}

/// Checks one generated case; on divergence, shrinks the op stream to a
/// locally minimal failing repro.
pub fn check(seed: u64) -> Result<(), (String, String)> {
    check_with_flavor(seed, ModelFlavor::Faithful)
}

/// [`check`] against a chosen model flavor (self-tests inject
/// [`ModelFlavor::BrokenLruTieBreak`] to prove faults are caught).
pub fn check_with_flavor(seed: u64, flavor: ModelFlavor) -> Result<(), (String, String)> {
    let (geom, policy, ops) = gen_case(seed);
    let Some(message) = run_ops(geom, policy, flavor, &ops) else {
        return Ok(());
    };
    let minimal = shrink_list(&ops, |candidate| {
        run_ops(geom, policy, flavor, candidate).is_some()
    });
    let final_message = run_ops(geom, policy, flavor, &minimal).expect("shrunk case still fails");
    let repro = format!(
        "geometry {} B / {}-way ({} sets), policy {}, {} ops (shrunk from {}):\n  {:?}\n  {}",
        geom.size_bytes,
        geom.assoc,
        geom.num_sets(),
        policy.name(),
        minimal.len(),
        ops.len(),
        minimal,
        final_message,
    );
    Err((message, repro))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faithful_model_agrees_on_many_seeds() {
        for seed in 0..64 {
            if let Err((msg, _)) = check(seed) {
                panic!("seed {seed}: {msg}");
            }
        }
    }

    #[test]
    fn broken_model_is_caught_and_shrunk() {
        // The inverted LRU tie-break only fires after two demotions tie at
        // stamp 0 in a full set — the fuzzer must find it and produce a
        // small repro.
        let mut caught = 0;
        let mut min_len = usize::MAX;
        for seed in 0..400 {
            if let Err((_, repro)) = check_with_flavor(seed, ModelFlavor::BrokenLruTieBreak) {
                caught += 1;
                let ops = repro.matches("Demote").count() + repro.matches("Access").count();
                min_len = min_len.min(ops);
            }
        }
        assert!(caught > 0, "injected fault never detected");
        // A minimal repro needs ~2 demotes + ~3 fills + 1 evicting access;
        // anything under a dozen ops proves shrinking works.
        assert!(min_len <= 12, "shrunk repro still has {min_len} ops");
    }
}
