//! Dimension 4: thread-count invariance of the parallel harness.
//!
//! [`ripple::policy_matrix`] fans one [`SimSession`] out over a work-stealing
//! thread pool. The result must be a pure function of (session, policies):
//! running the same matrix at 1, 2, and 7 threads must return identical
//! [`SimStats`] vectors, and the shared recording pass behind the offline
//! ideal policies must happen at most once no matter how many workers race
//! to request it.
//!
//! [`SimSession`]: ripple_sim::SimSession

use std::sync::Arc;

use rand::{Rng, SeedableRng, StdRng};
use ripple::policy_matrix;
use ripple_obs::MetricsRecorder;
use ripple_sim::{PolicyKind, SimSession};

use crate::case::{all_policies, gen_full_case, FullCase};
use crate::shrink::min_failing_prefix;

/// Picks 3..=5 distinct policies, always including at least one offline
/// ideal so the shared recording pass is exercised.
fn pick_policies(seed: u64) -> Vec<PolicyKind> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7ead_c0de_5eed_f00d);
    let pool = all_policies();
    let want = rng.gen_range(3usize..=5);
    let mut picked: Vec<PolicyKind> = Vec::with_capacity(want);
    while picked.len() < want {
        let p = pool[rng.gen_range(0..pool.len())];
        if !picked.contains(&p) {
            picked.push(p);
        }
    }
    if !picked.iter().any(|p| p.is_offline_ideal()) {
        picked[0] = if rng.gen_bool(0.5) {
            PolicyKind::OPT
        } else {
            PolicyKind::DEMAND_MIN
        };
    }
    picked
}

/// The divergence test applied to one (case, policies) pair.
fn violation(case: &FullCase, policies: &[PolicyKind]) -> Option<String> {
    let session = SimSession::new(
        &case.program,
        &case.layout,
        &case.trace,
        case.config.clone(),
    );
    let baseline = policy_matrix(&session, policies, 1);
    for threads in [2usize, 4, 7] {
        let parallel = policy_matrix(&session, policies, threads);
        if parallel != baseline {
            let idx = parallel
                .iter()
                .zip(baseline.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            return Some(format!(
                "policy matrix differs between 1 and {threads} threads: first divergence at \
                 {:?} (job {idx})",
                policies[idx]
            ));
        }
    }
    let passes = session.recording_passes();
    if passes > 1 {
        return Some(format!(
            "offline recording ran {passes} times on one session; racing workers must share one pass"
        ));
    }
    None
}

/// Checks one generated case; shrinks the trace on failure.
pub fn check(seed: u64) -> Result<(), (String, String)> {
    let case = gen_full_case(seed);
    let policies = pick_policies(seed);
    let Some(message) = violation(&case, &policies) else {
        return Ok(());
    };
    let len = min_failing_prefix(case.trace.len(), |n| {
        violation(&case.truncated(n), &policies).is_some()
    });
    let minimal = case.truncated(len);
    let final_message = violation(&minimal, &policies).expect("shrunk case still fails");
    let repro = format!(
        "case: {}\npolicies: {policies:?}\ntrace shrunk {} -> {} blocks\n{}",
        minimal.label,
        case.trace.len(),
        minimal.trace.len(),
        final_message,
    );
    Err((message, repro))
}

/// [`check`]'s invariance extended to the observed harness: a matrix run
/// through a session carrying a [`MetricsRecorder`] must return the same
/// stats as the unobserved single-thread baseline, and the recorder must
/// report one `harness.job` per policy.
pub fn check_recorded(seed: u64) -> Result<(), (String, String)> {
    let case = gen_full_case(seed);
    let policies = pick_policies(seed);
    let plain_session = SimSession::new(
        &case.program,
        &case.layout,
        &case.trace,
        case.config.clone(),
    );
    let baseline = policy_matrix(&plain_session, &policies, 1);

    let recorder = Arc::new(MetricsRecorder::new());
    let recorded_session = SimSession::new(
        &case.program,
        &case.layout,
        &case.trace,
        case.config.clone(),
    )
    .with_recorder(recorder.clone());
    let observed = policy_matrix(&recorded_session, &policies, 4);

    let problem = if observed != baseline {
        Some("observed policy matrix diverges from the unobserved baseline".to_string())
    } else {
        let jobs = recorder.snapshot().counter("harness.jobs").unwrap_or(0);
        (jobs != policies.len() as u64).then(|| {
            format!(
                "recorder counted {jobs} harness jobs for {} policies",
                policies.len()
            )
        })
    };
    problem.map_or(Ok(()), |message| {
        let repro = format!("case: {}\npolicies: {policies:?}\n{message}", case.label);
        Err((message, repro))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_agree_on_many_seeds() {
        for seed in 0..12 {
            if let Err((msg, repro)) = check(seed) {
                panic!("seed {seed}: {msg}\n{repro}");
            }
        }
    }

    #[test]
    fn observed_matrix_matches_baseline_on_many_seeds() {
        for seed in 0..8 {
            if let Err((msg, repro)) = check_recorded(seed) {
                panic!("seed {seed}: {msg}\n{repro}");
            }
        }
    }

    #[test]
    fn policy_picks_always_include_an_ideal() {
        for seed in 0..64 {
            let picked = pick_policies(seed);
            assert!((3..=5).contains(&picked.len()));
            assert!(picked.iter().any(|p| p.is_offline_ideal()), "seed {seed}");
        }
    }
}
