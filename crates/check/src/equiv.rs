//! Dimension 3: frontend path equivalence and warmup accounting.
//!
//! The simulator has two frontends — the dense interned fast path and the
//! hash-keyed reference path — selected by [`LinePath`]. They must be
//! observationally identical: same [`SimStats`] and the same byte-for-byte
//! eviction stream, for every policy, prefetcher, eviction mechanism,
//! injected program, and scripted-invalidation schedule.
//!
//! A second, independent oracle checks warmup accounting on the interned
//! path alone: warmup is a *stats-only* gate, so rerunning a case with
//! `warmup_fraction = 0` must leave the eviction stream untouched and can
//! only grow each counter. This catches warmup bugs mirrored identically
//! in both frontends, which pure path comparison cannot see.

use std::sync::Arc;

use rand::{Rng, SeedableRng, StdRng};
use ripple_obs::MetricsRecorder;
use ripple_sim::{LinePath, PolicyKind, SimStats};

use crate::case::{all_policies, gen_full_case, run_path, run_path_recorded, FullCase};
use crate::shrink::{min_failing_prefix, shrink_list};

/// Named u64 counters of [`SimStats`], for field-level diff messages and
/// the warmup monotonicity check.
fn counters(s: &SimStats) -> [(&'static str, u64); 15] {
    [
        ("blocks", s.blocks),
        ("instructions", s.instructions),
        ("invalidate_instructions", s.invalidate_instructions),
        ("demand_accesses", s.demand_accesses),
        ("demand_misses", s.demand_misses),
        ("compulsory_misses", s.compulsory_misses),
        ("served_l2", s.served_l2),
        ("served_l3", s.served_l3),
        ("served_mem", s.served_mem),
        ("prefetches_issued", s.prefetches_issued),
        ("prefetch_fills", s.prefetch_fills),
        ("evictions", s.evictions),
        (
            "prefetch_pollution_evictions",
            s.prefetch_pollution_evictions,
        ),
        ("invalidate_hits", s.invalidate_hits),
        ("mispredictions", s.mispredictions),
    ]
}

fn diff_stats(a: &SimStats, b: &SimStats) -> String {
    let mut fields: Vec<String> = counters(a)
        .iter()
        .zip(counters(b).iter())
        .filter(|((_, x), (_, y))| x != y)
        .map(|((name, x), (_, y))| format!("{name}: {x} vs {y}"))
        .collect();
    if a.cycles != b.cycles {
        fields.push(format!("cycles: {} vs {}", a.cycles, b.cycles));
    }
    fields.join(", ")
}

/// The divergence test applied to one (case, policy) pair.
fn violation(case: &FullCase, policy: PolicyKind) -> Option<String> {
    let (si, ei) = run_path(case, policy, LinePath::Interned);
    let (sr, er) = run_path(case, policy, LinePath::Reference);
    if si != sr {
        return Some(format!(
            "interned and reference stats diverge under {policy:?}: {}",
            diff_stats(&si, &sr)
        ));
    }
    if ei != er {
        let idx = ei
            .iter()
            .zip(er.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(ei.len().min(er.len()));
        return Some(format!(
            "eviction streams diverge under {policy:?} at event {idx} ({} vs {} events)",
            ei.len(),
            er.len()
        ));
    }

    // Independent warmup oracle on the interned path.
    if case.config.warmup_fraction > 0.0 {
        let cold = {
            let mut c = case.with_script(case.script().map(<[_]>::to_vec).unwrap_or_default());
            c.config.warmup_fraction = 0.0;
            c
        };
        let (sc, ec) = run_path(&cold, policy, LinePath::Interned);
        if ec != ei {
            return Some(format!(
                "warmup changed the eviction stream under {policy:?}: {} cold vs {} warm events",
                ec.len(),
                ei.len()
            ));
        }
        for ((name, warm), (_, no_warmup)) in counters(&si).iter().zip(counters(&sc).iter()) {
            if warm > no_warmup {
                return Some(format!(
                    "warmup *increased* {name} under {policy:?}: {warm} warm vs {no_warmup} cold"
                ));
            }
        }
        // Warmup-gated scripted invalidations: with no injected
        // instructions in the program, every counted invalidate hit comes
        // from a script entry at a post-warmup position.
        if let Some(script) = case.script() {
            if !case.injected {
                let warmup_until =
                    (case.trace.len() as f64 * case.config.warmup_fraction.clamp(0.0, 0.9)) as u64;
                let eligible = script
                    .iter()
                    .filter(|&&(pos, _)| pos >= warmup_until)
                    .count() as u64;
                if si.invalidate_hits > eligible {
                    return Some(format!(
                        "{} invalidate hits counted under {policy:?} but only {} script entries \
                         fall after warmup position {warmup_until}",
                        si.invalidate_hits, eligible
                    ));
                }
            }
        }
    }
    None
}

fn pick_policy(seed: u64) -> PolicyKind {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let pool = all_policies();
    pool[rng.gen_range(0..pool.len())]
}

/// Checks one generated case; shrinks the trace (then the script) on
/// failure.
pub fn check(seed: u64) -> Result<(), (String, String)> {
    let case = gen_full_case(seed);
    let policy = pick_policy(seed);
    let Some(message) = violation(&case, policy) else {
        return Ok(());
    };

    // Shrink: shortest failing trace prefix first, then ddmin the script.
    let len = min_failing_prefix(case.trace.len(), |n| {
        violation(&case.truncated(n), policy).is_some()
    });
    let mut minimal = case.truncated(len);
    if let Some(script) = minimal.script().map(<[_]>::to_vec) {
        if !script.is_empty() {
            let kept = shrink_list(&script, |entries| {
                violation(&minimal.with_script(entries.to_vec()), policy).is_some()
            });
            if kept.len() < script.len()
                && violation(&minimal.with_script(kept.clone()), policy).is_some()
            {
                minimal = minimal.with_script(kept);
            }
        }
    }
    let final_message = violation(&minimal, policy).expect("shrunk case still fails");
    let repro = format!(
        "case: {}\npolicy: {policy:?}\ntrace shrunk {} -> {} blocks, script {} entries\nscript: {:?}\n{}",
        minimal.label,
        case.trace.len(),
        minimal.trace.len(),
        minimal.script().map_or(0, <[_]>::len),
        minimal.script().unwrap_or(&[]),
        final_message,
    );
    Err((message, repro))
}

/// [`check`] rerun with a live [`MetricsRecorder`] attached: attaching an
/// observability recorder must leave stats and the full eviction stream
/// byte-identical to the unrecorded run, and the recorder must actually
/// have seen the run (at least one `session.run` phase lap).
pub fn check_recorded(seed: u64) -> Result<(), (String, String)> {
    let case = gen_full_case(seed);
    let policy = pick_policy(seed);
    let (plain_stats, plain_events) = run_path(&case, policy, LinePath::Interned);
    let recorder = Arc::new(MetricsRecorder::new());
    let (rec_stats, rec_events) =
        run_path_recorded(&case, policy, LinePath::Interned, recorder.clone());
    let problem = if rec_stats != plain_stats {
        Some(format!(
            "recorder changed the stats under {policy:?}: {}",
            diff_stats(&plain_stats, &rec_stats)
        ))
    } else if rec_events != plain_events {
        Some(format!(
            "recorder changed the eviction stream under {policy:?} ({} vs {} events)",
            plain_events.len(),
            rec_events.len()
        ))
    } else {
        let snapshot = recorder.snapshot();
        match snapshot.phase("session.run") {
            Some(stat) if stat.count > 0 => None,
            _ => Some(format!(
                "recorder saw no session.run phase under {policy:?}"
            )),
        }
    };
    problem.map_or(Ok(()), |message| {
        let repro = format!("case: {}\npolicy: {policy:?}\n{message}", case.label);
        Err((message, repro))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_agree_on_many_seeds() {
        for seed in 0..24 {
            if let Err((msg, repro)) = check(seed) {
                panic!("seed {seed}: {msg}\n{repro}");
            }
        }
    }

    #[test]
    fn recording_never_perturbs_a_run() {
        for seed in 0..16 {
            if let Err((msg, repro)) = check_recorded(seed) {
                panic!("seed {seed}: {msg}\n{repro}");
            }
        }
    }
}
