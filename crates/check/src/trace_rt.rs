//! Dimension 5: trace packet and end-to-end round-trips.
//!
//! Two layered oracles over `ripple-trace`:
//!
//! * **packet level** — any well-formed packet sequence pushed through
//!   [`PacketWriter`] must decode back to exactly the same sequence.
//!   Random addresses near and far from the previous IP exercise every
//!   compression length of the stateful TIP/FUP encoding;
//! * **trace level** — executing a randomized application, recording the
//!   block trace to bytes with [`record_trace`], and reconstructing it
//!   with [`reconstruct_trace`] must reproduce the block sequence exactly.

use rand::{Rng, SeedableRng, StdRng};
use ripple_program::Addr;
use ripple_trace::{decode_packets, reconstruct_trace, record_trace, Packet, PacketWriter};
use ripple_workloads::{execute, generate, AppSpec, InputConfig};

use crate::shrink::{min_failing_prefix, shrink_list};

const LONG_TNT_BITS: u8 = ripple_trace::LONG_TNT_BITS;

fn gen_packets(seed: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = rng.gen_range(1usize..=40);
    let mut last_addr = 0u64;
    (0..len)
        .map(|_| {
            let roll = rng.gen_range(0u32..100);
            if roll < 10 {
                Packet::Psb
            } else if roll < 15 {
                Packet::End
            } else if roll < 55 {
                let count = rng.gen_range(1u8..=LONG_TNT_BITS);
                // Pre-masked: the writer only stores `count` bits, so the
                // round trip is exact equality only for canonical packets.
                let bits = if count == 64 {
                    rng.next_u64()
                } else {
                    rng.next_u64() & ((1u64 << count) - 1)
                };
                Packet::Tnt { bits, count }
            } else {
                // Mix far jumps (full-width IP payloads) with short hops
                // (maximally compressed payloads).
                let addr = if rng.gen_bool(0.5) {
                    rng.next_u64()
                } else {
                    let delta = rng.gen_range(0u64..=0xffff);
                    last_addr.wrapping_add(delta)
                };
                last_addr = addr;
                if roll < 85 {
                    Packet::Tip {
                        addr: Addr::new(addr),
                    }
                } else {
                    Packet::Fup {
                        addr: Addr::new(addr),
                    }
                }
            }
        })
        .collect()
}

fn packet_violation(packets: &[Packet]) -> Option<String> {
    let mut writer = PacketWriter::new();
    for &p in packets {
        writer.write(p);
    }
    let bytes = writer.into_bytes();
    let decoded = match decode_packets(&bytes) {
        Ok(d) => d,
        Err(e) => return Some(format!("decode failed on writer output: {e}")),
    };
    if decoded != packets {
        let idx = decoded
            .iter()
            .zip(packets.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(decoded.len().min(packets.len()));
        return Some(format!(
            "round trip diverges at packet {idx}: wrote {} packets, decoded {}",
            packets.len(),
            decoded.len()
        ));
    }
    None
}

fn trace_violation(
    program: &ripple_program::Program,
    layout: &ripple_program::Layout,
    blocks: &[ripple_program::BlockId],
) -> Option<String> {
    let bytes = record_trace(program, layout, blocks.iter().copied());
    match reconstruct_trace(program, layout, &bytes) {
        Ok(rebuilt) => {
            if rebuilt.blocks() != blocks {
                let idx = rebuilt
                    .blocks()
                    .iter()
                    .zip(blocks.iter())
                    .position(|(a, b)| a != b)
                    .unwrap_or(rebuilt.len().min(blocks.len()));
                Some(format!(
                    "reconstructed trace diverges at block {idx}: recorded {} blocks, rebuilt {} ({} trace bytes)",
                    blocks.len(),
                    rebuilt.len(),
                    bytes.len()
                ))
            } else {
                None
            }
        }
        Err(e) => Some(format!("reconstruction failed: {e}")),
    }
}

/// Checks one packet-level and one trace-level round trip; shrinks the
/// packet list / the block prefix on failure.
pub fn check(seed: u64) -> Result<(), (String, String)> {
    let packets = gen_packets(seed);
    if let Some(message) = packet_violation(&packets) {
        let minimal = shrink_list(&packets, |p| packet_violation(p).is_some());
        let final_message = packet_violation(&minimal).expect("shrunk case still fails");
        let repro = format!(
            "packet list shrunk {} -> {}:\n  {:?}\n  {}",
            packets.len(),
            minimal.len(),
            minimal,
            final_message,
        );
        return Err((message, repro));
    }

    let mut rng = StdRng::seed_from_u64(seed ^ 0x007a_ce0f_u64.rotate_left(17));
    let spec = AppSpec::randomized(rng.next_u64());
    let app = generate(&spec);
    let layout =
        ripple_program::Layout::new(&app.program, &ripple_program::LayoutConfig::default());
    let budget = rng.gen_range(500u64..=2000);
    let trace = execute(
        &app.program,
        &app.model,
        InputConfig::training(rng.next_u64()),
        budget,
    );
    if trace.is_empty() {
        return Ok(());
    }
    let blocks = trace.blocks();
    if let Some(message) = trace_violation(&app.program, &layout, blocks) {
        // Prefixes of a recorded walk are themselves recordable walks.
        let len = min_failing_prefix(blocks.len(), |n| {
            trace_violation(&app.program, &layout, &blocks[..n]).is_some()
        });
        let final_message = trace_violation(&app.program, &layout, &blocks[..len])
            .expect("shrunk case still fails");
        let repro = format!(
            "app {} (spec seed {:#x}), trace shrunk {} -> {len} blocks:\n  {:?}\n  {}",
            spec.name,
            spec.seed,
            blocks.len(),
            &blocks[..len],
            final_message,
        );
        return Err((message, repro));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_hold_on_many_seeds() {
        for seed in 0..48 {
            if let Err((msg, repro)) = check(seed) {
                panic!("seed {seed}: {msg}\n{repro}");
            }
        }
    }

    #[test]
    fn packet_generator_emits_canonical_tnt() {
        for seed in 0..32 {
            for p in gen_packets(seed) {
                if let Packet::Tnt { bits, count } = p {
                    assert!((1..=LONG_TNT_BITS).contains(&count));
                    assert_eq!(bits & !((1u64 << count) - 1), 0);
                }
            }
        }
    }
}
