//! Differential oracle checker for the Ripple simulator.
//!
//! `ripple-check` fuzzes the production simulator against small executable
//! models in ten independent dimensions:
//!
//! 1. [`model_cache`] — a brute-force associative cache model cross-checked
//!    against [`ripple_sim::Cache`] for LRU, SRRIP, DRRIP, and TRRIP,
//!    comparing outcome *and* full resident state after every operation
//!    (a guard test forces every registered policy to be either mirrored
//!    here or explicitly exempted);
//! 2. [`belady`] — an exhaustive Belady search on short request streams
//!    that lower-bounds (and, demand-only, pins exactly) the offline ideal
//!    policies `Opt` and `DemandMin`;
//! 3. [`equiv`] — interned vs reference frontend paths on random full
//!    simulations (stats *and* eviction streams), plus an independent
//!    warmup-accounting oracle;
//! 4. [`threads`] — thread-count invariance of the parallel policy matrix
//!    and single-shot offline recording;
//! 5. [`trace_rt`] — packet encode→decode and end-to-end trace
//!    record→reconstruct round trips;
//! 6. [`faults`] — fault injection: randomly mutated trace bytes and
//!    report documents must surface typed errors (strict) or accounted
//!    loss (lossy), and never panic;
//! 7. [`rewrite_eq`] — incremental relinking vs full rewrite on random
//!    injection-plan chains, dense vs reference cue analysis on real
//!    oracle window sets, and 1-vs-4-thread `RippleOutcome` invariance;
//! 8. [`shards`] — replay shard-count invariance: stats and eviction
//!    streams byte-identical at 1, 2, 4 and 7 replay shards for every
//!    registered policy (set-local families shard, the rest must fall
//!    back to sequential replay unchanged);
//! 9. [`fleet`] — fleet shard aggregation vs a brute-force oracle:
//!    weighted profile merging must equal physically repeating each shard
//!    `weight` times in one long trace, independent of shard order, all
//!    the way through temperature classification;
//! 10. [`lab`] — declarative experiment grids vs independent oracles:
//!     mixed-radix index decoding of the expansion, axis dedup,
//!     JSON round trips, and (on a bounded seed subset) end-to-end
//!     thread-count byte-determinism of the emitted lab report.
//!
//! Every case derives from a single `u64` seed. Failures shrink to locally
//! minimal repros (the vendored proptest stand-in has no shrinking, so
//! [`shrink`] implements greedy prefix bisection and ddmin-style chunk
//! removal by hand) and print a `RIPPLE_CHECK_SEED=<dim>:<seed>` line that
//! replays the exact case.

pub mod belady;
pub mod case;
pub mod equiv;
pub mod faults;
pub mod fleet;
pub mod lab;
pub mod model_cache;
pub mod rewrite_eq;
pub mod shards;
pub mod shrink;
pub mod threads;
pub mod trace_rt;

/// One oracle dimension of the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dimension {
    /// Brute-force associative cache model (LRU/SRRIP/DRRIP/TRRIP).
    ModelCache,
    /// Exhaustive Belady bound on the offline ideal policies.
    Belady,
    /// Interned vs reference frontend equivalence + warmup oracle.
    Equivalence,
    /// Thread-count invariance of the parallel harness.
    Threads,
    /// Trace packet and end-to-end round trips.
    TraceRoundTrip,
    /// Fault injection: corrupted traces and reports never panic.
    Faults,
    /// Incremental relink vs full rewrite + dense vs reference analysis.
    Rewrite,
    /// Replay shard-count invariance of the set-batched replay engine.
    Shards,
    /// Fleet shard aggregation vs the physical-repetition oracle.
    Fleet,
    /// Declarative lab experiment expansion, round trips and determinism.
    Lab,
}

/// Number of checker dimensions (the length of [`ALL_DIMENSIONS`]).
pub const NUM_DIMENSIONS: usize = 10;

/// Every dimension, in the order the corpus round-robins them.
pub const ALL_DIMENSIONS: [Dimension; NUM_DIMENSIONS] = [
    Dimension::ModelCache,
    Dimension::Belady,
    Dimension::Equivalence,
    Dimension::Threads,
    Dimension::TraceRoundTrip,
    Dimension::Faults,
    Dimension::Rewrite,
    Dimension::Shards,
    Dimension::Fleet,
    Dimension::Lab,
];

impl Dimension {
    /// Stable command-line / replay-token name.
    pub fn name(self) -> &'static str {
        match self {
            Dimension::ModelCache => "model-cache",
            Dimension::Belady => "belady",
            Dimension::Equivalence => "equivalence",
            Dimension::Threads => "threads",
            Dimension::TraceRoundTrip => "trace-roundtrip",
            Dimension::Faults => "faults",
            Dimension::Rewrite => "rewrite",
            Dimension::Shards => "shards",
            Dimension::Fleet => "fleet",
            Dimension::Lab => "lab",
        }
    }

    /// Inverse of [`Dimension::name`].
    pub fn parse(name: &str) -> Option<Self> {
        ALL_DIMENSIONS.iter().copied().find(|d| d.name() == name)
    }
}

impl std::fmt::Display for Dimension {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A divergence found by one dimension, with its minimized repro.
#[derive(Debug)]
pub struct Failure {
    /// The dimension that diverged.
    pub dimension: Dimension,
    /// The case seed (replayable via [`check_case`]).
    pub case_seed: u64,
    /// What diverged.
    pub message: String,
    /// The minimized repro description.
    pub repro: String,
}

impl Failure {
    /// The environment line that replays this exact case.
    pub fn replay_line(&self) -> String {
        format!(
            "RIPPLE_CHECK_SEED={}:{:#x} cargo run --release -p ripple-check",
            self.dimension, self.case_seed
        )
    }
}

/// Runs one case of one dimension. `Ok` means no divergence.
pub fn check_case(dimension: Dimension, case_seed: u64) -> Result<(), Failure> {
    let outcome = match dimension {
        Dimension::ModelCache => model_cache::check(case_seed),
        Dimension::Belady => belady::check(case_seed),
        Dimension::Equivalence => equiv::check(case_seed),
        Dimension::Threads => threads::check(case_seed),
        Dimension::TraceRoundTrip => trace_rt::check(case_seed),
        Dimension::Faults => faults::check(case_seed),
        Dimension::Rewrite => rewrite_eq::check(case_seed),
        Dimension::Shards => shards::check(case_seed),
        Dimension::Fleet => fleet::check(case_seed),
        Dimension::Lab => lab::check(case_seed),
    };
    outcome.map_err(|(message, repro)| Failure {
        dimension,
        case_seed,
        message,
        repro,
    })
}

/// [`check_case`] with a live observability recorder in the loop: the
/// full-simulator dimensions rerun with a `MetricsRecorder` attached and
/// demand identical results plus recorded phases. Dimensions that never
/// construct a session delegate to the plain check.
pub fn check_case_recorded(dimension: Dimension, case_seed: u64) -> Result<(), Failure> {
    let outcome = match dimension {
        Dimension::Equivalence => equiv::check_recorded(case_seed),
        Dimension::Threads => threads::check_recorded(case_seed),
        Dimension::Shards => shards::check_recorded(case_seed),
        _ => return check_case(dimension, case_seed),
    };
    outcome.map_err(|(message, repro)| Failure {
        dimension,
        case_seed,
        message,
        repro,
    })
}

/// Derives the case seed for corpus index `index` from `base_seed`
/// (splitmix64-style so neighbouring indices decorrelate).
pub fn mix_seed(base_seed: u64, index: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Outcome of a corpus run.
#[derive(Debug, Default)]
pub struct Report {
    /// Cases passed, per dimension (indexed like [`ALL_DIMENSIONS`]).
    pub passed: [u64; NUM_DIMENSIONS],
    /// First failure per dimension, if any.
    pub failures: Vec<Failure>,
}

impl Report {
    /// Total passed cases across all dimensions.
    pub fn total_passed(&self) -> u64 {
        self.passed.iter().sum()
    }
}

fn dim_index(d: Dimension) -> usize {
    ALL_DIMENSIONS
        .iter()
        .position(|&x| x == d)
        .expect("known dimension")
}

/// Runs `cases` checks, round-robining over `dims`, deriving case seeds
/// from `base_seed`. Stops checking a dimension after its first failure
/// (its minimized repro is expensive enough to produce once) but keeps
/// fuzzing the others. `progress` is called after every case with
/// (done, total).
pub fn run_corpus(
    base_seed: u64,
    cases: u64,
    dims: &[Dimension],
    mut progress: impl FnMut(u64, u64),
) -> Report {
    let mut report = Report::default();
    let mut dead = [false; NUM_DIMENSIONS];
    for index in 0..cases {
        let dimension = dims[(index % dims.len() as u64) as usize];
        let di = dim_index(dimension);
        if dead[di] {
            progress(index + 1, cases);
            continue;
        }
        let case_seed = mix_seed(base_seed, index);
        match check_case(dimension, case_seed) {
            Ok(()) => report.passed[di] += 1,
            Err(failure) => {
                dead[di] = true;
                report.failures.push(failure);
            }
        }
        progress(index + 1, cases);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_names_round_trip() {
        for d in ALL_DIMENSIONS {
            assert_eq!(Dimension::parse(d.name()), Some(d));
        }
        assert_eq!(Dimension::parse("nope"), None);
    }

    #[test]
    fn mixed_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..256 {
            assert!(seen.insert(mix_seed(42, i)));
        }
    }

    #[test]
    fn every_dimension_passes_with_recording_on() {
        for (i, dimension) in ALL_DIMENSIONS.into_iter().enumerate() {
            for case in 0..3u64 {
                let seed = mix_seed(0x0b5e_77ed, (i as u64) * 16 + case);
                if let Err(f) = check_case_recorded(dimension, seed) {
                    panic!("{dimension} seed {seed:#x}: {}\n{}", f.message, f.repro);
                }
            }
        }
    }

    #[test]
    fn corpus_runs_every_dimension() {
        let report = run_corpus(7, 20, &ALL_DIMENSIONS, |_, _| {});
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.total_passed(), 20);
        for (i, &p) in report.passed.iter().enumerate() {
            assert!(p >= 2, "dimension {} starved", ALL_DIMENSIONS[i]);
        }
    }
}
