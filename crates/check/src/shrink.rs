//! Greedy minimization of failing cases.
//!
//! The vendored proptest stand-in has no shrinking, so `ripple-check`
//! minimizes repros itself with two deliberately simple strategies:
//!
//! * [`min_failing_prefix`] — binary search for the shortest failing
//!   prefix of a sequence whose prefixes are themselves valid inputs
//!   (block traces are valid CFG walks, op streams are position-free);
//! * [`shrink_list`] — ddmin-style greedy chunk removal for inputs where
//!   interior elements can be deleted (op streams, packet lists,
//!   invalidation schedules).
//!
//! Both only guarantee a *local* minimum: the returned input fails, and
//! no single further cut the strategy tries keeps it failing.

/// Shortest prefix length `n` in `1..=len` for which `fails(n)` holds,
/// found by bisection. `fails(len)` must be `true` (the full input is a
/// failing case); the predicate need not be monotone — bisection then
/// still returns *a* failing prefix, just not necessarily the shortest.
pub fn min_failing_prefix(len: usize, mut fails: impl FnMut(usize) -> bool) -> usize {
    debug_assert!(len > 0 && fails(len), "full input must fail");
    let (mut lo, mut hi) = (1usize, len);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fails(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    hi
}

/// Greedy chunk removal: repeatedly deletes contiguous chunks (halving
/// the chunk size down to single elements) as long as the remainder still
/// fails. Returns a locally minimal failing subsequence.
pub fn shrink_list<T: Clone>(items: &[T], fails: impl Fn(&[T]) -> bool) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    debug_assert!(fails(&current), "full input must fail");
    let mut chunk = current.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && fails(&candidate) {
                current = candidate;
                removed_any = true;
                // Retry the same start: the next chunk slid into place.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            return current;
        }
        if !removed_any {
            chunk = (chunk / 2).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_bisection_finds_boundary() {
        // Fails once the prefix includes index 12 (length >= 13).
        let n = min_failing_prefix(100, |len| len >= 13);
        assert_eq!(n, 13);
    }

    #[test]
    fn prefix_of_one_is_reachable() {
        assert_eq!(min_failing_prefix(64, |_| true), 1);
    }

    #[test]
    fn chunk_removal_reaches_minimal_pair() {
        // Fails iff both 3 and 7 are present: the minimum is exactly [3, 7].
        let items: Vec<u32> = (0..50).collect();
        let min = shrink_list(&items, |s| s.contains(&3) && s.contains(&7));
        assert_eq!(min, vec![3, 7]);
    }

    #[test]
    fn chunk_removal_keeps_order() {
        let items = vec![9u32, 1, 8, 2, 7];
        let min = shrink_list(&items, |s| {
            let a = s.iter().position(|&x| x == 8);
            let b = s.iter().position(|&x| x == 2);
            matches!((a, b), (Some(i), Some(j)) if i < j)
        });
        assert_eq!(min, vec![8, 2]);
    }
}
